//! Sweep offered load × parallelizability and print a policy league table.
//!
//! Uses the parallel sweep runner, heavy-tail (bounded Pareto) sizes, and
//! rigorous OPT lower bounds, like experiment T1 but as a compact,
//! hackable program.
//!
//! ```sh
//! cargo run --release --example policy_comparison
//! ```

use parsched::PolicyKind;
use parsched_analysis::sweep::{grid2, parallel_map};
use parsched_analysis::table::{fnum, Table};
use parsched_opt::bounds;
use parsched_sim::simulate;
use parsched_workloads::random::{AlphaDist, PoissonWorkload, SizeDist};

fn main() {
    let m = 16.0;
    let p = 64.0;
    let n = 600;
    let loads = [0.5, 0.9, 1.3];
    let alphas = [0.2, 0.5, 0.8];

    let cells = grid2(&loads, &alphas);
    let rows = parallel_map(cells, |(load, alpha)| {
        let sizes = SizeDist::Pareto { p, shape: 1.3 };
        let inst = PoissonWorkload {
            n,
            rate: PoissonWorkload::rate_for_load(load, m, &sizes),
            sizes,
            alphas: AlphaDist::Fixed(alpha),
            seed: 7,
        }
        .generate()
        .expect("workload");
        let lb = bounds::lower_bound(&inst, m);
        let flows: Vec<f64> = PolicyKind::all_standard()
            .iter()
            .map(|k| {
                simulate(&inst, &mut k.build(), m)
                    .expect("run")
                    .metrics
                    .total_flow
                    / lb
            })
            .collect();
        (load, alpha, flows)
    });

    let mut headers = vec!["load".to_string(), "α".to_string()];
    headers.extend(PolicyKind::all_standard().iter().map(|k| k.name()));
    let mut table = Table::with_headers(
        format!("flow / OPT-LB, m={m}, Pareto(1.3) sizes on [1,{p}], n={n}"),
        headers,
    );
    for (load, alpha, flows) in rows {
        let mut row = vec![fnum(load), fnum(alpha)];
        row.extend(flows.iter().map(|&f| fnum(f)));
        table.push_row(row);
    }
    println!("{}", table.render());
    println!("(values are conservative upper estimates of each policy's ratio — lower is better)");
}
