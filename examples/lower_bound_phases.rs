//! Run the Theorem 2 adaptive adversary live against a policy of your
//! choice and print what the adversary did phase by phase.
//!
//! ```sh
//! cargo run --release --example lower_bound_phases [policy] [P]
//! # policy ∈ isrpt|psrpt|ssrpt|greedy|equi|laps (default isrpt)
//! ```

use parsched::PolicyKind;
use parsched_sim::{simulate, PlannedPolicy};
use parsched_workloads::{PhaseFamily, StoppingCase};

fn main() {
    let kind: PolicyKind = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "isrpt".to_string())
        .parse()
        .expect("policy name");
    let p: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64.0);
    let m = 4;
    let alpha = 0.5;
    let fam = PhaseFamily::new(m, alpha, p).with_stream_len(((p * p) as usize).min(8192));
    println!(
        "Theorem 2 family: m = {m}, α = {alpha}, P = {p}, r = {:.4}, L = {} phases, threshold = {:.1}",
        fam.reduction(),
        fam.num_phases(),
        fam.threshold()
    );

    let mut policy = kind.build();
    let (outcome, record) = fam.run_against(&mut policy).expect("adversary run");

    println!("\nadversary transcript against {}:", kind.name());
    for (i, rec) in record.phases.iter().enumerate() {
        println!(
            "  phase {i}: start {:>8.1}, length {:>7.1}: {} long jobs, {} short waves; \
             midpoint debt {:.2}",
            fam.phase_start(i),
            fam.phase_len(i),
            rec.long_ids.len(),
            rec.short_waves.len(),
            record.midpoint_debt.get(i).copied().unwrap_or(f64::NAN),
        );
    }
    match record.case {
        StoppingCase::MidPhase { phase } => println!(
            "  → case 1: debt ≥ threshold at phase {phase}'s midpoint; stream started at t = {:.1}",
            record.t_part2
        ),
        StoppingCase::AllPhases => println!(
            "  → case 2: every midpoint was clean (the long jobs starved instead); \
             stream started at t = {:.1}",
            record.t_part2
        ),
    }

    let plan = fam.opt_plan(&record).expect("standard schedule");
    let opt = simulate(
        &outcome.instance,
        &mut PlannedPolicy::named(plan, "standard"),
        m as f64,
    )
    .expect("opt replay");
    println!(
        "\n{}: total flow {:.1}; paper's standard-schedule certificate: {:.1}",
        kind.name(),
        outcome.metrics.total_flow,
        opt.metrics.total_flow
    );
    println!(
        "⇒ competitive ratio on this instance ≥ {:.2} (Theorem 2: Ω(log P) for every policy)",
        outcome.metrics.total_flow / opt.metrics.total_flow
    );
}
