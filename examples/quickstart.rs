//! Quickstart: schedule a handful of malleable jobs with Intermediate-SRPT
//! and compare against the OPT bracket.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use parsched::{theory, IntermediateSrpt};
use parsched_opt::OptEstimate;
use parsched_sim::{simulate, Instance, JobId, JobSpec};
use parsched_speedup::Curve;

fn main() {
    // Eight processors; six jobs of intermediate parallelizability
    // (speed-up curve Γ(x) = x for x ≤ 1, x^0.5 for x ≥ 1).
    let m = 8.0;
    let alpha = 0.5;
    let jobs = vec![
        JobSpec::new(JobId(0), 0.0, 16.0, Curve::power(alpha)),
        JobSpec::new(JobId(1), 0.0, 2.0, Curve::power(alpha)),
        JobSpec::new(JobId(2), 1.0, 4.0, Curve::power(alpha)),
        JobSpec::new(JobId(3), 2.0, 1.0, Curve::power(alpha)),
        JobSpec::new(JobId(4), 2.5, 8.0, Curve::power(alpha)),
        JobSpec::new(JobId(5), 4.0, 2.0, Curve::power(alpha)),
    ];
    let instance = Instance::new(jobs).expect("valid instance");

    // Run the paper's algorithm on the exact continuous-time engine.
    let outcome = simulate(&instance, &mut IntermediateSrpt::new(), m).expect("simulation");
    println!("Intermediate-SRPT on m = {m} processors, α = {alpha}:");
    for c in &outcome.completed {
        println!(
            "  job {:>3}  size {:>5.1}  released {:>4.1}  completed {:>6.2}  flow {:>6.2}",
            c.id.to_string(),
            c.size,
            c.release,
            c.completion,
            c.flow()
        );
    }
    println!(
        "total flow = {:.2}, mean = {:.2}, makespan = {:.2}",
        outcome.metrics.total_flow, outcome.metrics.mean_flow, outcome.metrics.makespan
    );

    // How close to optimal was that? Bracket OPT rigorously.
    let est = OptEstimate::bracket(&instance, m).expect("bracket");
    let (at_least, at_most) = est.ratio_interval(outcome.metrics.total_flow);
    println!(
        "OPT ∈ [{:.2}, {:.2}] (upper-bound witness: {})",
        est.lower, est.upper, est.upper_witness
    );
    println!("⇒ competitive ratio on this instance ∈ [{at_least:.3}, {at_most:.3}]");
    println!(
        "Theorem 1 guarantee shape: O(4^(1/(1-α)) · log P) = O({:.0})",
        theory::theorem1_bound(alpha, instance.size_ratio())
    );
}
