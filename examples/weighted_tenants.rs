//! Weighted flow time: prioritizing tenants (extension beyond the paper).
//!
//! The paper studies the unweighted objective; the natural practitioner's
//! extension attaches an importance weight to each job and minimizes
//! `Σ w_j·F_j`. This example puts a latency-critical tenant (weight 10)
//! next to batch tenants (weight 1) and compares Intermediate-SRPT
//! against its weighted variant.
//!
//! ```sh
//! cargo run --release --example weighted_tenants
//! ```

use parsched::{IntermediateSrpt, WeightedIntermediateSrpt};
use parsched_analysis::table::{fnum, Table};
use parsched_sim::{simulate, Instance, JobId, JobSpec, Policy};
use parsched_speedup::Curve;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let m = 8.0;
    let mut rng = StdRng::seed_from_u64(17);
    // 200 jobs, 10% belong to the critical tenant (weight 10).
    let mut t = 0.0;
    let jobs: Vec<JobSpec> = (0..200)
        .map(|i| {
            t += -rng.gen::<f64>().max(1e-12).ln() / 2.5;
            let size = 1.0 + rng.gen::<f64>() * 15.0;
            let critical = rng.gen::<f64>() < 0.10;
            JobSpec::new(JobId(i), t, size, Curve::power(0.5)).with_weight(if critical {
                10.0
            } else {
                1.0
            })
        })
        .collect();
    let instance = Instance::new(jobs).expect("valid instance");

    let mut table = Table::new(
        "weighted tenants: critical 10%, weight 10 (m = 8, α = 0.5)",
        &[
            "policy",
            "Σ w·F",
            "critical mean flow",
            "batch mean flow",
            "Σ F",
        ],
    );
    let policies: Vec<Box<dyn Policy>> = vec![
        Box::new(IntermediateSrpt::new()),
        Box::new(WeightedIntermediateSrpt::new()),
    ];
    for mut policy in policies {
        let name = policy.name();
        let out = simulate(&instance, &mut policy, m).expect("run");
        let mean_of = |w: f64| {
            let flows: Vec<f64> = out
                .completed
                .iter()
                .filter(|c| c.weight == w)
                .map(|c| c.flow())
                .collect();
            flows.iter().sum::<f64>() / flows.len().max(1) as f64
        };
        table.push_row(vec![
            name,
            fnum(out.metrics.total_weighted_flow),
            fnum(mean_of(10.0)),
            fnum(mean_of(1.0)),
            fnum(out.metrics.total_flow),
        ]);
    }
    println!("{}", table.render());
    println!(
        "The weighted variant trades a little total flow for a large cut in the\n\
         critical tenant's waiting time — the density rule at work. (No competitive\n\
         guarantee is claimed for weights ≠ 1; see the module docs.)"
    );
}
