//! Watch the "natural" greedy hybrid fall into the Lemma 10 trap.
//!
//! The greedy policy — maximize the instantaneous drain rate of the
//! fractional number of unfinished jobs — looks like the right
//! interpolation between Parallel-SRPT and Sequential-SRPT. This example
//! builds the paper's §3 trap instance, runs greedy and Intermediate-SRPT
//! side by side, and executes the paper's explicit "alternative algorithm"
//! schedule to certify how cheap OPT really is.
//!
//! ```sh
//! cargo run --release --example adversarial_greedy [m]
//! ```

use parsched::{GreedyHybrid, IntermediateSrpt};
use parsched_sim::{simulate, PlannedPolicy};
use parsched_workloads::GreedyTrap;

fn main() {
    let m: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let alpha = 0.5;
    let trap = GreedyTrap::new(m, alpha);
    let instance = trap.instance().expect("trap instance");
    println!(
        "greedy trap (Lemma 10): m = {m}, α = {alpha}, ε = {:.2}",
        1.0 - alpha
    );
    println!(
        "  {} long jobs of size {m}, {} pre-stream unit jobs, {} stream unit jobs (X = {})",
        trap.num_long(),
        trap.num_phase1_units(),
        trap.num_stream_units(),
        trap.stream_duration
    );

    let greedy = simulate(&instance, &mut GreedyHybrid::new(), m as f64).expect("greedy");
    let isrpt = simulate(&instance, &mut IntermediateSrpt::new(), m as f64).expect("isrpt");
    let alt_plan = trap.alternative_plan().expect("alternative schedule");
    let alt = simulate(
        &instance,
        &mut PlannedPolicy::named(alt_plan, "alternative"),
        m as f64,
    )
    .expect("alternative");

    println!("\n  total flow:");
    println!(
        "    greedy hybrid          {:>14.1}",
        greedy.metrics.total_flow
    );
    println!(
        "    Intermediate-SRPT      {:>14.1}",
        isrpt.metrics.total_flow
    );
    println!(
        "    paper's alternative    {:>14.1}   (closed form {:.1})",
        alt.metrics.total_flow,
        trap.alternative_flow_closed_form()
    );

    // Where does greedy's flow go? The starving long jobs.
    let long_flow: f64 = trap.long_ids().filter_map(|id| greedy.flow_of(id)).sum();
    println!(
        "\n  greedy spends {:.0}% of its flow on the {} starved long jobs",
        100.0 * long_flow / greedy.metrics.total_flow,
        trap.num_long()
    );
    println!(
        "  ratio vs the alternative schedule: greedy ≥ {:.2}, Intermediate-SRPT ≥ {:.2}",
        greedy.metrics.total_flow / alt.metrics.total_flow,
        isrpt.metrics.total_flow / alt.metrics.total_flow
    );
    println!(
        "  Lemma 10 predicts greedy ≳ {:.2} (and Ω(P) = Ω(m) as m grows)",
        trap.predicted_ratio_lower()
    );
}
