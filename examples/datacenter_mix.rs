//! A many-core node shared by heterogeneous tenants — the paper's
//! motivating scenario (order-10² processors, more processors than tasks
//! part of the time, tasks of very different parallelizability).
//!
//! Generates a mix of mostly-sequential services (α = 0.2), moderately
//! parallel analytics (α = 0.6), and embarrassingly parallel batch jobs
//! (α = 0.95), then compares every scheduler's mean flow time overall and
//! per tenant class.
//!
//! ```sh
//! cargo run --release --example datacenter_mix
//! ```

use parsched::PolicyKind;
use parsched_analysis::table::{fnum, Table};
use parsched_sim::simulate;
use parsched_workloads::mix::DatacenterMix;

fn main() {
    let m = 128.0; // a Tilera-class many-core part
    let mix = DatacenterMix {
        n: 2000,
        rate: 24.0,
        p: 256.0,
        seed: 42,
    };
    let instance = mix.generate().expect("workload");
    println!(
        "datacenter mix: {} jobs on m = {m}, sizes in [1, {:.0}], three α classes",
        instance.len(),
        instance.p_max()
    );

    let mut table = Table::new(
        "mean flow time per policy and tenant class",
        &[
            "policy",
            "overall",
            "services (α=0.2)",
            "analytics (α=0.6)",
            "batch (α=0.95)",
        ],
    );
    for kind in PolicyKind::all_standard() {
        let outcome = simulate(&instance, &mut kind.build(), m).expect("run");
        // Per-class means, keyed by each job's curve exponent.
        let mut sums = [0.0f64; 3];
        let mut counts = [0usize; 3];
        for c in &outcome.completed {
            let alpha = instance
                .jobs()
                .iter()
                .find(|j| j.id == c.id)
                .and_then(|j| j.curve.alpha())
                .expect("power curves");
            let class = if alpha < 0.4 {
                0
            } else if alpha < 0.8 {
                1
            } else {
                2
            };
            sums[class] += c.flow();
            counts[class] += 1;
        }
        table.push_row(vec![
            kind.name(),
            fnum(outcome.metrics.mean_flow),
            fnum(sums[0] / counts[0].max(1) as f64),
            fnum(sums[1] / counts[1].max(1) as f64),
            fnum(sums[2] / counts[2].max(1) as f64),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Reading guide: Parallel-SRPT starves everything behind big batch jobs;\n\
         Sequential-SRPT wastes idle processors on the batch class;\n\
         Intermediate-SRPT tracks the best column-by-column."
    );
}
