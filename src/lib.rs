//! Umbrella crate for the SPAA'14 "Intermediate Parallelizability"
//! reproduction.
//!
//! Re-exports the whole workspace under one roof for the examples and the
//! cross-crate integration tests:
//!
//! * [`speedup`] — speed-up curve algebra.
//! * [`sim`] — the continuous-time malleable-task simulator.
//! * [`policies`] — Intermediate-SRPT and every baseline.
//! * [`workloads`] — random workloads and the paper's adversarial families.
//! * [`opt`] — rigorous OPT brackets.
//! * [`analysis`] — potential function, lemma checkers, experiments.
//! * [`adversary`] — evolutionary hard-instance mining and the committed
//!   regression corpus.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use parsched as policies;
pub use parsched_adversary as adversary;
pub use parsched_analysis as analysis;
pub use parsched_opt as opt;
pub use parsched_sim as sim;
pub use parsched_speedup as speedup;
pub use parsched_workloads as workloads;
