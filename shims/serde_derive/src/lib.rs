//! No-op `serde_derive` stand-in for offline builds.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` (plus field
//! attributes like `#[serde(default = "...")]`) purely as annotations — no
//! serialization format crate is in the offline dependency set, so nothing
//! ever calls the generated code. These derives therefore accept the same
//! syntax (including the `serde` helper attribute) and expand to nothing,
//! which keeps every annotated type compiling without pulling in the real
//! proc-macro stack (syn/quote) that the offline environment lacks.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]` helpers; expands to
/// nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]` helpers; expands to
/// nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
