//! Offline stand-in for `serde`.
//!
//! The container image this repository builds in has no crates-io access,
//! so the real `serde` cannot be fetched. The workspace only uses serde as
//! *annotations* (`#[derive(Serialize, Deserialize)]` and `#[serde(...)]`
//! field attributes) — there is deliberately no serde format crate in the
//! dependency set (see `parsched_sim::csv` for the hand-rolled I/O). This
//! shim supplies marker traits with the right names plus no-op derive
//! macros, so the annotations keep compiling and the real serde can be
//! swapped back in by pointing `[workspace.dependencies]` at crates-io.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
