//! Offline stand-in for `proptest`.
//!
//! The container this repository builds in has no crates-io access, so the
//! real `proptest` cannot be fetched. This shim re-implements the subset of
//! the API the workspace's property tests use — the [`Strategy`] trait with
//! `prop_map`/`boxed`, range and tuple strategies, [`collection::vec`],
//! [`Just`], `prop_oneof!`, the `proptest!` test-harness macro,
//! `prop_assert!`/`prop_assert_eq!`, and [`ProptestConfig::with_cases`] —
//! on top of the workspace's deterministic RNG.
//!
//! Differences from the real crate, acceptable for this repository:
//! - no shrinking: a failing case panics with the assertion message (the
//!   generated inputs are deterministic per test name, so failures replay
//!   exactly on rerun);
//! - no regression-file persistence (`*.proptest-regressions` files are
//!   ignored);
//! - value streams differ from upstream proptest, so case corpora are not
//!   comparable across the two implementations.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange, SeedableRng, UniformSample};

    /// Deterministic per-test RNG: seeded from an FNV-1a hash of the test
    /// name, so each property gets an independent but reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }

        pub fn sample<T: UniformSample>(&mut self) -> T {
            self.0.gen()
        }

        pub fn sample_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
            self.0.gen_range(range)
        }
    }
}

use test_runner::TestRng;

/// A generator of test values; stand-in for `proptest::strategy::Strategy`.
///
/// Unlike the real trait this produces plain values (no value trees), which
/// is all the no-shrinking runner needs.
pub trait Strategy {
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, u8, u16, u32, u64, usize, i32, i64);

macro_rules! tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

pub mod strategy {
    use super::{BoxedStrategy, Strategy, TestRng};

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives; backs `prop_oneof!`.
    pub struct OneOf<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.sample_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Half-open length range for [`vec`]; converting from `usize` ranges
    /// (rather than taking a strategy) lets bare literals like `1..24`
    /// infer as `usize`, matching the real crate's `Into<SizeRange>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty length range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// Vectors of `elem`-generated values with length drawn uniformly from
    /// `len` (e.g. `1..24`, `2..=8`, or an exact `usize`).
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.sample_range(self.len.lo..self.len.hi);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws `cases` inputs from a deterministic
/// per-test stream and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (@run $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..cfg.cases {
                    let run = || {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                        $body
                    };
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest shim: case {}/{} of `{}` failed (deterministic; reruns reproduce it)",
                            case + 1, cfg.cases, stringify!($name)
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Uniform choice among strategy expressions (all of one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assertion inside a `proptest!` body; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Map, OneOf};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_vec_and_map_compose() {
        let mut rng = crate::test_runner::TestRng::deterministic("compose");
        let strat = collection::vec((0.0f64..10.0, 1u32..=4), 2..6).prop_map(|v| {
            v.into_iter()
                .map(|(x, k)| x * f64::from(k))
                .collect::<Vec<_>>()
        });
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            for x in v {
                assert!((0.0..40.0).contains(&x));
            }
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::test_runner::TestRng::deterministic("oneof");
        let strat = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(strat.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("same");
        let mut b = crate::test_runner::TestRng::deterministic("same");
        let s = 0.0f64..1.0;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: config parsing, multiple args, trailing comma.
        #[test]
        fn macro_roundtrip(x in 1.0f64..2.0, k in 1usize..4,) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((1..4).contains(&k));
            prop_assert_eq!(k, k);
        }
    }

    proptest! {
        /// No-config form falls back to the default case count.
        #[test]
        fn macro_default_config(b in 0u32..2) {
            prop_assert!(b < 2);
        }
    }
}
