//! Offline stand-in for `criterion`.
//!
//! The container this repository builds in has no crates-io access, so the
//! real `criterion` cannot be fetched. This shim keeps the workspace's
//! benches compiling and producing useful numbers: it implements the subset
//! of the API they use (`criterion_group!`/`criterion_main!`, benchmark
//! groups, `bench_with_input`, `Throughput::Elements`, `Bencher::iter`)
//! with a plain wall-clock measurement loop — warm-up, then a fixed number
//! of timed samples, reporting median ns/iter and, when a throughput was
//! declared, elements/sec.
//!
//! Differences from the real crate, acceptable here: no statistical
//! analysis beyond the median, no HTML reports, no saved baselines. The
//! numbers it prints are what `parsched-cli bench-snapshot` parses into
//! `BENCH_engine.json`.
//!
//! CLI compatibility: `cargo bench -- --test` runs every benchmark exactly
//! once (smoke mode); a positional argument filters benchmarks by substring,
//! as with the real crate. Other flags are accepted and ignored.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The iteration processes this many logical elements (e.g. events).
    Elements(u64),
    /// The iteration processes this many bytes.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The measurement harness handed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
    quick: bool,
}

impl Bencher<'_> {
    /// Times `routine`: warm-up to pick an iteration count, then
    /// `sample_count` timed samples. In `--test` (quick) mode the routine
    /// runs exactly once, untimed-in-spirit, to prove it works.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.quick {
            black_box(routine());
            self.samples.push(Duration::ZERO);
            self.iters_per_sample = 1;
            return;
        }

        // Warm-up: run for ~0.5 s to stabilize caches and estimate cost.
        let warmup_budget = Duration::from_millis(500);
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < warmup_budget {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Aim each sample at ~100 ms so short routines are batched.
        let iters = ((0.1 / per_iter).round() as u64).max(1);
        self.iters_per_sample = iters;
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }
}

fn median(durations: &mut [Duration]) -> Duration {
    durations.sort_unstable();
    durations[durations.len() / 2]
}

struct Settings {
    quick: bool,
    filter: Option<String>,
    sample_size: usize,
}

/// Entry point; holds CLI-derived settings shared by all groups.
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            settings: Settings {
                quick: false,
                filter: None,
                sample_size: 10,
            },
        }
    }
}

impl Criterion {
    /// Applies the benchmark harness CLI: `--test` enables smoke mode,
    /// a positional argument filters by substring, everything else that
    /// cargo/libtest pass through is accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" | "--quick" => self.settings.quick = true,
                "--bench" | "--nocapture" | "--noplot" => {}
                s if s.starts_with("--") => {
                    // Flags with values (e.g. --save-baseline foo): skip the value.
                    if matches!(
                        s,
                        "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                    ) {
                        let _ = args.next();
                    }
                }
                s => self.settings.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Default number of samples per benchmark (builder-style, matching
    /// `Criterion::default().sample_size(20)` in group configs).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.settings.sample_size;
        self.run_one(id.to_string(), None, sample_size, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        sample_size: usize,
        mut f: F,
    ) {
        if let Some(filter) = &self.settings.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut samples = Vec::with_capacity(sample_size);
        let mut bencher = Bencher {
            samples: &mut samples,
            iters_per_sample: 1,
            sample_count: sample_size,
            quick: self.settings.quick,
        };
        f(&mut bencher);
        let iters = bencher.iters_per_sample;
        if self.settings.quick {
            println!("{id}: ok (smoke)");
            return;
        }
        if samples.is_empty() {
            println!("{id}: no samples (Bencher::iter never called)");
            return;
        }
        let med = median(&mut samples);
        let ns_per_iter = med.as_secs_f64() * 1e9 / iters as f64;
        match throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / (ns_per_iter * 1e-9);
                println!("{id}: {ns_per_iter:.0} ns/iter ({per_sec:.0} elem/s)");
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / (ns_per_iter * 1e-9);
                println!("{id}: {ns_per_iter:.0} ns/iter ({per_sec:.0} B/s)");
            }
            None => println!("{id}: {ns_per_iter:.0} ns/iter"),
        }
    }
}

/// A named family of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Declares the per-iteration throughput for subsequent benchmarks in
    /// this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id.id);
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.settings.sample_size);
        let throughput = self.throughput;
        self.criterion
            .run_one(full_id, throughput, sample_size, |b| f(b, input));
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id);
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.settings.sample_size);
        let throughput = self.throughput;
        self.criterion.run_one(full_id, throughput, sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Groups benchmark functions; both the positional and the
/// `name/config/targets` forms of the real macro are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            criterion = criterion.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_samples() {
        let mut c = Criterion::default().sample_size(3);
        // Not quick mode would spend ~0.5 s warming up; force quick.
        c.settings.quick = true;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| black_box(2 + 2));
        });
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        c.settings.quick = true;
        let mut g = c.benchmark_group("shim/group");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(100).id, "100");
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
    }
}
