//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the `rand` API this workspace uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool` — on top of
//! xoshiro256++ seeded through splitmix64. The stream differs from the
//! real `StdRng` (ChaCha12), which is fine for this repository: all seeds
//! live in this workspace, and every consumer only relies on determinism
//! and distribution quality, not on a specific stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Types samplable uniformly from an RNG (stand-in for sampling with the
/// `Standard` distribution).
pub trait UniformSample {
    /// Draws one value.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    /// Uniform on `[0, 1)` with 53 random mantissa bits.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl UniformSample for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::sample_from(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        // The half-open draw never returns 1.0, so the endpoint is hit
        // only up to float rounding — adequate for continuous ranges.
        lo + f64::sample_from(rng) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            // One macro arm covers every width, so the narrow types can't
            // use `From` without a per-type arm; `as u64` is exact for all
            // instantiated unsigned widths and intended for the signed ones.
            #[allow(clippy::cast_lossless)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_lossless)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of `T` (e.g. `f64` on `[0, 1)`).
    fn gen<T: UniformSample>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p ∈ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's deterministic generator: xoshiro256++.
    ///
    /// Stand-in for `rand::rngs::StdRng`; same guarantees this repository
    /// relies on (deterministic for a fixed seed, solid statistical
    /// quality), different stream than the real ChaCha12-based one.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but belt and braces:
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(3.0f64..5.0);
            assert!((3.0..5.0).contains(&x));
            let y = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&y));
            let k = rng.gen_range(2usize..10);
            assert!((2..10).contains(&k));
            let j = rng.gen_range(1u32..=6);
            assert!((1..=6).contains(&j));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }
}
