//! The adaptive adversary commits to a concrete instance; replaying that
//! instance statically must reproduce the online run exactly, and the OPT
//! certificates must be feasible for whatever materialized.

use parsched_repro::policies::{IntermediateSrpt, PolicyKind};
use parsched_repro::sim::{simulate, PlannedPolicy};
use parsched_repro::workloads::{PhaseFamily, StoppingCase};

fn family() -> PhaseFamily {
    PhaseFamily::new(4, 0.5, 64.0).with_stream_len(64)
}

#[test]
fn adaptive_run_replays_exactly_on_static_source() {
    let fam = family();
    let (outcome, _) = fam.run_against(&mut IntermediateSrpt::new()).unwrap();
    // Replay the recorded instance with a plain static source.
    let replay = simulate(
        &outcome.instance,
        &mut IntermediateSrpt::new(),
        fam.m as f64,
    )
    .unwrap();
    assert_eq!(outcome.completed.len(), replay.completed.len());
    assert!((outcome.metrics.total_flow - replay.metrics.total_flow).abs() < 1e-6);
}

#[test]
fn different_policies_get_different_instances() {
    // Adaptivity in action: the instance materialized against
    // Parallel-SRPT differs from the one against Intermediate-SRPT
    // (different stopping cases at these parameters).
    let fam = family();
    let (a, ra) = fam.run_against(&mut IntermediateSrpt::new()).unwrap();
    let (b, rb) = fam
        .run_against(&mut PolicyKind::ParallelSrpt.build())
        .unwrap();
    assert_ne!(ra.case, rb.case, "expected different stopping cases");
    assert_ne!(a.instance, b.instance);
}

#[test]
fn opt_certificate_is_feasible_for_every_policy_case() {
    let fam = family();
    for kind in PolicyKind::all_standard() {
        let (outcome, record) = fam.run_against(&mut kind.build()).unwrap();
        let plan = fam.opt_plan(&record).unwrap();
        let opt = simulate(
            &outcome.instance,
            &mut PlannedPolicy::named(plan, "standard"),
            fam.m as f64,
        )
        .unwrap_or_else(|e| panic!("certificate infeasible for {}: {e}", kind.name()));
        assert_eq!(
            opt.metrics.num_jobs,
            outcome.instance.len(),
            "certificate left jobs unfinished for {}",
            kind.name()
        );
        // Bracket consistency: the certificate (an OPT upper bound) must
        // itself respect the provable OPT lower bound, and the online
        // policy must too. (The online policy MAY beat the certificate —
        // it only upper-bounds OPT — so no ordering between those two.)
        let lb = parsched_repro::opt::bounds::lower_bound(&outcome.instance, fam.m as f64);
        assert!(
            opt.metrics.total_flow >= lb * (1.0 - 1e-9),
            "{}",
            kind.name()
        );
        assert!(
            outcome.metrics.total_flow >= lb * (1.0 - 1e-9),
            "{}",
            kind.name()
        );
    }
}

#[test]
fn case1_fires_for_processor_hoarders() {
    // Parallel-SRPT dumps all processors on single unit jobs, so short-job
    // debt builds and the adversary should cut to part 2 mid-phase.
    let fam = family();
    let (_, record) = fam
        .run_against(&mut PolicyKind::ParallelSrpt.build())
        .unwrap();
    assert!(
        matches!(record.case, StoppingCase::MidPhase { .. }),
        "expected case 1, got {:?}",
        record.case
    );
    // The triggering debt is on record and exceeds the threshold.
    let worst = record.midpoint_debt.iter().copied().fold(0.0f64, f64::max);
    assert!(worst >= fam.threshold());
}

#[test]
fn case2_holds_for_short_friendly_policies() {
    // Intermediate-SRPT always clears shorts first → never trips the
    // midpoint threshold → all phases play out.
    let fam = family();
    let (_, record) = fam.run_against(&mut IntermediateSrpt::new()).unwrap();
    assert_eq!(record.case, StoppingCase::AllPhases);
    assert_eq!(record.phases.len(), fam.num_phases());
    assert!(record.midpoint_debt.iter().all(|&d| d < fam.threshold()));
}

#[test]
fn stream_length_is_honored() {
    let fam = PhaseFamily::new(4, 0.5, 32.0).with_stream_len(17);
    let (_, record) = fam.run_against(&mut IntermediateSrpt::new()).unwrap();
    assert_eq!(record.stream.len(), 17);
    // Waves are at consecutive integers from T.
    for (k, (t, ids)) in record.stream.iter().enumerate() {
        assert!((t - (record.t_part2 + k as f64)).abs() < 1e-9);
        assert_eq!(ids.len(), 4);
    }
}
