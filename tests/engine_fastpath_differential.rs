//! Differential oracle for the monomorphized fast event loop
//! (`Engine::run_fast_loop`, see docs/PERF.md §8): with a no-op observer
//! and no auditor, the fast loop must be **bit-identical** to the generic
//! `step()` loop — same aggregate metric bits, same completion sequence
//! (including intra-event order), same per-completion time bits — for
//! every registry policy. The fast loop removes dispatch and bookkeeping,
//! not arithmetic, so there is no tolerance anywhere in this suite.
//!
//! Coverage:
//! * every [`PolicyKind::all_registered`] policy × the three bench
//!   fixtures (stable load, overload, mixed-α) — the exact distributions
//!   the committed `BENCH_engine.json` rows measure;
//! * random mixed-curve instances under proptest, including burst
//!   arrivals and single-machine cases;
//! * a strict audit forces the generic loop (the fast path requires
//!   `auditor.is_none()`), and that audited run must still reproduce the
//!   fast run bit-for-bit — pinning that the fallback is the same
//!   schedule, not a near miss;
//! * suspend under the generic loop, round-trip the `parsched-snap/v1`
//!   document, resume into the *fast* loop: the memoized allocation
//!   profile and cached next-completion are rebuilt from restored state,
//!   so the resumed run must finish bit-identically to both uninterrupted
//!   arms.

use parsched::PolicyKind;
use parsched_bench::{mixed_alpha_fixture, overload_fixture, poisson_fixture};
use parsched_sim::{
    AuditLevel, Engine, EngineConfig, Instance, JobId, JobSpec, NullObserver, RunOutcome, SimError,
    Snapshot, StaticSource,
};
use parsched_speedup::Curve;
use proptest::prelude::*;

/// One full run; `fast` toggles the monomorphized loop, everything else
/// (incremental path, no observer, no audit) is the fast loop's
/// eligibility configuration.
fn run_arm(inst: &Instance, kind: PolicyKind, m: f64, fast: bool) -> RunOutcome {
    let mut policy = kind.build();
    let mut source = StaticSource::new(inst);
    let mut obs = NullObserver;
    let cfg = EngineConfig::new(m).with_fast_loop(fast);
    Engine::new(cfg, policy.as_mut(), &mut source, &mut obs)
        .run()
        .unwrap_or_else(|e| panic!("{} (fast={fast}): {e}", kind.name()))
}

/// Completion sequence as raw bits: order, identity, and exact times.
fn completion_bits(out: &RunOutcome) -> Vec<(u64, u64)> {
    out.completed
        .iter()
        .map(|c| (c.id.0, c.completion.to_bits()))
        .collect()
}

/// The headline equivalence: fast ≡ generic, exactly.
fn assert_fastpath_identical(inst: &Instance, kind: PolicyKind, m: f64, ctx: &str) {
    let name = kind.name();
    let fast = run_arm(inst, kind, m, true);
    let generic = run_arm(inst, kind, m, false);
    assert_eq!(
        fast.metrics, generic.metrics,
        "{ctx}/{name}: metrics diverge"
    );
    assert_eq!(
        completion_bits(&fast),
        completion_bits(&generic),
        "{ctx}/{name}: completion sequence diverges"
    );
}

/// Every registry policy the fast loop must be transparent for.
fn registry() -> Vec<PolicyKind> {
    PolicyKind::all_registered()
}

/// The three committed bench fixtures, at a size that keeps the full
/// catalog sweep in CI budget while still crossing arena growth,
/// slot-reuse, and interval re-classification boundaries many times.
#[test]
fn every_registry_policy_matches_on_bench_fixtures() {
    let m = 8.0;
    for (ctx, inst) in [
        ("stable", poisson_fixture(2_000, 0.9, m)),
        ("overload", overload_fixture(2_000, m)),
        ("mixed_alpha", mixed_alpha_fixture(2_000, 0.9, m)),
    ] {
        for kind in registry() {
            assert_fastpath_identical(&inst, kind, m, ctx);
        }
    }
}

/// A strict audit disables the fast loop (its frames observe every step),
/// yet the audited generic run must reproduce the unaudited fast run
/// bit-for-bit: auditing observes the schedule, it never perturbs it.
#[test]
fn strict_audit_falls_back_and_matches_fast_run_exactly() {
    let m = 8.0;
    let inst = mixed_alpha_fixture(1_000, 0.9, m);
    for kind in registry() {
        let name = kind.name();
        let fast = run_arm(&inst, kind, m, true);
        let mut policy = kind.build();
        let mut source = StaticSource::new(&inst);
        let mut obs = NullObserver;
        let cfg = EngineConfig::new(m).with_audit(AuditLevel::Strict);
        let audited = Engine::new(cfg, policy.as_mut(), &mut source, &mut obs)
            .run()
            .unwrap_or_else(|e| panic!("{name} (strict audit): {e}"));
        assert!(
            audited.audit.is_some(),
            "{name}: strict audit did not report"
        );
        assert_eq!(fast.metrics, audited.metrics, "{name}: audited ≠ fast");
        assert_eq!(
            completion_bits(&fast),
            completion_bits(&audited),
            "{name}: audited completion sequence ≠ fast"
        );
    }
}

/// Suspend mid-run under the generic `step()` loop, round-trip the
/// snapshot document, resume into an engine whose remaining events run
/// through the fast loop. The restored engine must rebuild the fast
/// loop's derived state (allocation memo, cached next completion) and
/// finish bit-identically to an uninterrupted run of either arm.
fn suspend_then_resume_fast(
    inst: &Instance,
    kind: PolicyKind,
    m: f64,
    suspend_at: u64,
) -> RunOutcome {
    let name = kind.name();
    let mut policy = kind.build();
    let mut source = StaticSource::new(inst);
    let mut obs = NullObserver;
    let cfg = EngineConfig::new(m).with_fast_loop(false);
    let mut engine = Engine::new(cfg, policy.as_mut(), &mut source, &mut obs);
    for _ in 0..suspend_at {
        match engine.step() {
            Ok(true) => {}
            Ok(false) => break, // short run: resume from the finished state
            Err(e) => panic!("{name}: pre-suspend step: {e}"),
        }
    }
    let snap = engine.snapshot().expect("snapshot");
    drop(engine);

    // Ship the document, not the struct — resume from the decoded form.
    let decoded = Snapshot::from_json(&snap.to_json()).expect("parse own rendering");
    assert_eq!(decoded, snap, "{name}: snapshot codec round trip drifted");

    let mut policy2 = kind.build();
    let mut source2 = StaticSource::new(inst);
    let mut obs2 = NullObserver;
    let mut resumed = Engine::new(
        EngineConfig::new(m),
        policy2.as_mut(),
        &mut source2,
        &mut obs2,
    );
    resumed.restore(&decoded).expect("restore");
    resumed
        .run_loop()
        .unwrap_or_else(|e: SimError| panic!("{name}: post-restore fast loop: {e}"));
    resumed
        .into_outcome()
        .unwrap_or_else(|e| panic!("{name}: resumed outcome: {e}"))
}

#[test]
fn snapshot_resume_into_fast_loop_is_bit_identical() {
    let m = 4.0;
    let inst = poisson_fixture(600, 0.9, m);
    for kind in registry() {
        let name = kind.name();
        let fast = run_arm(&inst, kind, m, true);
        for suspend_at in [1, 37, 250, 900] {
            let resumed = suspend_then_resume_fast(&inst, kind, m, suspend_at);
            assert_eq!(
                fast.metrics, resumed.metrics,
                "{name}@{suspend_at}: resumed metrics diverge"
            );
            assert_eq!(
                completion_bits(&fast),
                completion_bits(&resumed),
                "{name}@{suspend_at}: resumed completion sequence diverges"
            );
        }
    }
}

/// One generated job: `(release, size, curve selector, alpha)` — the same
/// generator the streaming differential sweeps, so the two oracles probe
/// the same instance space.
fn job_from(id: u64, raw: (f64, f64, u8, f64)) -> JobSpec {
    let (release, size, which, alpha) = raw;
    let curve = match which % 4 {
        0 => Curve::Sequential,
        1 => Curve::FullyParallel,
        2 => Curve::power(alpha),
        _ => Curve::try_amdahl(alpha.min(0.9)).unwrap(),
    };
    JobSpec::new(JobId(id), release, size, curve)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random mixed-curve instances: fast ≡ generic for every registry
    /// policy, across machine counts including the single-machine edge.
    #[test]
    fn fast_loop_matches_generic_on_random_instances(
        raw in proptest::collection::vec(
            (0.0f64..12.0, 0.1f64..8.0, 0u8..4, 0.05f64..1.0),
            1..24,
        ),
        m_sel in 0u8..3,
    ) {
        let m = [1.0, 2.0, 8.0][m_sel as usize];
        let jobs: Vec<JobSpec> = raw
            .into_iter()
            .enumerate()
            .map(|(i, r)| job_from(i as u64, r))
            .collect();
        let inst = Instance::new(jobs).unwrap();
        for kind in registry() {
            assert_fastpath_identical(&inst, kind, m, "random");
        }
    }

    /// Coincident arrivals and ties: many jobs released at identical
    /// instants force admission batching, zero-dt events, and slot reuse
    /// in the same event — the paths the fast loop's hoisted admission
    /// restructure touches most.
    #[test]
    fn coincident_releases_match(
        sizes in proptest::collection::vec(0.25f64..4.0, 2..12),
        burst_t in 0.0f64..3.0,
    ) {
        let jobs: Vec<JobSpec> = sizes
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                JobSpec::new(JobId(i as u64), burst_t, p, Curve::power(0.5))
            })
            .collect();
        let inst = Instance::new(jobs).unwrap();
        for kind in registry() {
            assert_fastpath_identical(&inst, kind, 2.0, "coincident");
        }
    }
}
