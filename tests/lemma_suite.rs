//! The paper's lemma machinery checked across a grid of workloads,
//! algorithm/reference pairs, and parallelizability levels.

use parsched_repro::analysis::potential::lockstep_report;
use parsched_repro::policies::{IntermediateSrpt, PolicyKind};
use parsched_repro::sim::Instance;
use parsched_repro::workloads::mix::SawtoothWorkload;
use parsched_repro::workloads::random::{AlphaDist, PoissonWorkload, SizeDist};

const M: f64 = 4.0;

fn poisson(seed: u64, load: f64, alpha: f64) -> Instance {
    let sizes = SizeDist::LogUniform { p: 16.0 };
    PoissonWorkload {
        n: 120,
        rate: PoissonWorkload::rate_for_load(load, M, &sizes),
        sizes,
        alphas: AlphaDist::Fixed(alpha),
        seed,
    }
    .generate()
    .expect("workload")
}

#[test]
fn lemmas_hold_across_seeds_and_references() {
    for seed in 0..4 {
        let inst = poisson(seed, 1.2, 0.5);
        for kind in [
            PolicyKind::Equi,
            PolicyKind::SequentialSrpt,
            PolicyKind::ParallelSrpt,
            PolicyKind::Laps(0.5),
        ] {
            let rep = lockstep_report(
                &inst,
                M,
                &mut IntermediateSrpt::new(),
                &mut kind.build(),
                0.5,
            )
            .expect("lockstep");
            let l = &rep.lemmas;
            assert!(
                l.lemma1_ok() && l.lemma4_ok() && l.lemma5_ok(),
                "seed {seed}, ref {}: {l:?}",
                kind.name()
            );
        }
    }
}

#[test]
fn lemmas_hold_across_alpha_spectrum() {
    for alpha in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let inst = poisson(7, 1.3, alpha);
        let rep = lockstep_report(
            &inst,
            M,
            &mut IntermediateSrpt::new(),
            &mut PolicyKind::Equi.build(),
            alpha,
        )
        .expect("lockstep");
        assert!(
            rep.lemmas.lemma1_ok() && rep.lemmas.lemma4_ok() && rep.lemmas.lemma5_ok(),
            "α={alpha}: {:?}",
            rep.lemmas
        );
        assert!(
            rep.potential.satisfies_paper_conditions(500.0, 1e-3),
            "α={alpha}: {:?}",
            rep.potential
        );
    }
}

#[test]
fn potential_conditions_hold_on_regime_crossing_workloads() {
    for alpha in [0.25, 0.75] {
        let inst = SawtoothWorkload::crossing(M as usize, 5, alpha)
            .generate()
            .expect("sawtooth");
        for kind in [PolicyKind::Equi, PolicyKind::SequentialSrpt] {
            let rep = lockstep_report(
                &inst,
                M,
                &mut IntermediateSrpt::new(),
                &mut kind.build(),
                alpha,
            )
            .expect("lockstep");
            let p = &rep.potential;
            assert!(p.phi_start.abs() < 1e-9, "{p:?}");
            assert!(p.phi_end.abs() < 1e-6, "{p:?}");
            assert!(p.max_jump <= 1e-3, "{p:?}");
            assert!(p.overload_zero_opt_drift <= 1e-3, "{p:?}");
            assert!(p.underload_zero_opt_drift <= 1e-3, "{p:?}");
        }
    }
}

#[test]
fn lemmas_hold_against_random_feasible_references() {
    // The lemmas quantify over ALL feasible schedules; fuzz the reference
    // side with seeded random allocators.
    use parsched_repro::policies::RandomAllocation;
    let inst = poisson(21, 1.4, 0.5);
    for seed in 0..6 {
        let rep = lockstep_report(
            &inst,
            M,
            &mut IntermediateSrpt::new(),
            &mut RandomAllocation::new(seed, 0.5),
            0.5,
        )
        .expect("lockstep");
        assert!(
            rep.lemmas.lemma1_ok() && rep.lemmas.lemma4_ok() && rep.lemmas.lemma5_ok(),
            "seed {seed}: {:?}",
            rep.lemmas
        );
        assert!(
            rep.potential.max_jump <= 1e-3,
            "seed {seed}: {:?}",
            rep.potential
        );
    }
}

#[test]
fn overloaded_samples_actually_occur() {
    // The checkers only bite at overloaded times; make sure the suite's
    // workloads genuinely exercise them.
    let inst = poisson(3, 1.5, 0.5);
    let rep = lockstep_report(
        &inst,
        M,
        &mut IntermediateSrpt::new(),
        &mut PolicyKind::Equi.build(),
        0.5,
    )
    .expect("lockstep");
    assert!(
        rep.lemmas.overloaded_samples > 20,
        "only {} overloaded samples",
        rep.lemmas.overloaded_samples
    );
}

#[test]
fn lemma_checks_are_not_vacuous() {
    // Lemma 1's RHS minus LHS should get *close* to binding somewhere:
    // under heavy overload with an aggressive reference, the worst slack
    // is finite and not absurdly negative (the inequality has teeth).
    let inst = poisson(13, 1.8, 0.5);
    let rep = lockstep_report(
        &inst,
        M,
        &mut IntermediateSrpt::new(),
        &mut PolicyKind::ParallelSrpt.build(),
        0.5,
    )
    .expect("lockstep");
    assert!(rep.lemmas.lemma1_worst.is_finite());
    assert!(rep.lemmas.lemma1_worst > -1e3);
}
