//! Integration tests for the weighted-flow extension and instance I/O.

use parsched_repro::policies::{IntermediateSrpt, WeightedIntermediateSrpt};
use parsched_repro::sim::csv::{instance_from_csv, instance_to_csv};
use parsched_repro::sim::{simulate, Instance, JobId, JobSpec};
use parsched_repro::speedup::Curve;

fn weighted_instance(seed_shift: u64) -> Instance {
    let jobs: Vec<JobSpec> = (0..60)
        .map(|i| {
            let release = (i as f64 * 0.61) % 20.0;
            let size = 1.0 + ((i + seed_shift) as f64 * 1.37) % 12.0;
            let weight = if i % 5 == 0 { 8.0 } else { 1.0 };
            JobSpec::new(JobId(i), release, size, Curve::power(0.5)).with_weight(weight)
        })
        .collect();
    Instance::new(jobs).expect("valid instance")
}

#[test]
fn weighted_policy_improves_weighted_flow() {
    let inst = weighted_instance(0);
    let m = 4.0;
    let plain = simulate(&inst, &mut IntermediateSrpt::new(), m)
        .unwrap()
        .metrics;
    let weighted = simulate(&inst, &mut WeightedIntermediateSrpt::new(), m)
        .unwrap()
        .metrics;
    assert!(
        weighted.total_weighted_flow <= plain.total_weighted_flow * 1.001,
        "weighted policy should not lose on its own objective: {} vs {}",
        weighted.total_weighted_flow,
        plain.total_weighted_flow
    );
    // And the two objectives genuinely disagree on this instance.
    assert!(weighted.total_flow >= plain.total_flow * 0.999);
}

#[test]
fn weighted_flow_reduces_to_flow_at_unit_weights() {
    let inst = Instance::from_sizes(
        &[(0.0, 3.0), (1.0, 1.0), (2.0, 5.0), (2.5, 2.0)],
        Curve::power(0.5),
    )
    .unwrap();
    let out = simulate(&inst, &mut IntermediateSrpt::new(), 2.0).unwrap();
    assert!((out.metrics.total_weighted_flow - out.metrics.total_flow).abs() < 1e-9);
}

#[test]
fn csv_round_trip_through_simulation() {
    // Serialize, parse back, simulate both: identical results.
    let inst = weighted_instance(3);
    let csv = instance_to_csv(&inst);
    let back = instance_from_csv(&csv).expect("parse back");
    assert_eq!(inst, back);
    let a = simulate(&inst, &mut WeightedIntermediateSrpt::new(), 4.0).unwrap();
    let b = simulate(&back, &mut WeightedIntermediateSrpt::new(), 4.0).unwrap();
    assert_eq!(a.completed, b.completed);
}

#[test]
fn serde_default_weight_applies_to_legacy_rows() {
    // Unweighted CSV (no weight column) must load with w = 1 everywhere.
    let csv = "id,release,size,curve\n0,0,2,pow:0.5\n1,1,3,seq\n";
    let inst = instance_from_csv(csv).unwrap();
    assert!(inst.jobs().iter().all(|j| j.weight == 1.0));
}
