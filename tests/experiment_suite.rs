//! End-to-end smoke of the whole experiment registry in quick mode: every
//! experiment must run and its paper-predicted shape must hold.

use parsched_repro::analysis::experiments::{all_ids, run, ExpOptions};

#[test]
fn every_experiment_passes_in_quick_mode() {
    let opts = ExpOptions::quick();
    for id in all_ids() {
        let res = run(id, &opts).unwrap_or_else(|| panic!("unknown experiment {id}"));
        assert!(!res.tables.is_empty(), "{id} produced no tables");
        assert!(
            res.tables.iter().all(|t| !t.is_empty()),
            "{id} produced an empty table"
        );
        assert!(res.pass, "{id} shape mismatch:\n{}", res.render());
    }
}

#[test]
fn experiment_tables_render_in_all_formats() {
    let res = run("f5", &ExpOptions::quick()).expect("f5");
    for t in &res.tables {
        assert!(!t.render().is_empty());
        assert!(t.to_markdown().lines().count() >= 3);
        assert!(t.to_csv().lines().count() >= 2);
    }
}

#[test]
fn experiments_are_deterministic_given_a_seed() {
    let opts = ExpOptions::quick();
    let a = run("t1", &opts).expect("t1");
    let b = run("t1", &opts).expect("t1");
    let fmt = |r: &parsched_repro::analysis::experiments::ExpResult| {
        r.tables
            .iter()
            .map(|t| t.to_csv())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(fmt(&a), fmt(&b));
}
