//! Cross-policy invariants on shared instances.

use parsched_repro::opt::bounds;
use parsched_repro::policies::{Equi, IntermediateSrpt, PolicyKind, SequentialSrpt};
use parsched_repro::sim::{simulate, Instance};
use parsched_repro::speedup::Curve;
use parsched_repro::workloads::random::{AlphaDist, PoissonWorkload, SizeDist};

fn workload(seed: u64, load: f64, alpha: f64, n: usize, m: f64, p: f64) -> Instance {
    let sizes = SizeDist::LogUniform { p };
    PoissonWorkload {
        n,
        rate: PoissonWorkload::rate_for_load(load, m, &sizes),
        sizes,
        alphas: AlphaDist::Fixed(alpha),
        seed,
    }
    .generate()
    .expect("workload")
}

#[test]
fn every_policy_completes_every_job() {
    let m = 4.0;
    let inst = workload(1, 1.1, 0.5, 200, m, 32.0);
    for kind in PolicyKind::all_standard() {
        let out = simulate(&inst, &mut kind.build(), m).expect("run");
        assert_eq!(out.metrics.num_jobs, inst.len(), "{}", kind.name());
        assert!(out.metrics.total_flow.is_finite());
        assert!(out.metrics.makespan >= inst.last_release());
    }
}

#[test]
fn every_policy_respects_the_opt_lower_bound() {
    let m = 8.0;
    for seed in 0..5 {
        let inst = workload(seed, 0.9, 0.6, 150, m, 16.0);
        let lb = bounds::lower_bound(&inst, m);
        for kind in PolicyKind::all_standard() {
            let flow = simulate(&inst, &mut kind.build(), m)
                .expect("run")
                .metrics
                .total_flow;
            assert!(
                flow >= lb * (1.0 - 1e-9),
                "{} beat the OPT lower bound: {flow} < {lb} (seed {seed})",
                kind.name()
            );
        }
    }
}

#[test]
fn isrpt_equals_sequential_srpt_while_always_overloaded() {
    // n ≥ m throughout (single release wave, sizes equal so the alive count
    // hits m only at the very end where EQUI can only help).
    let m = 4.0;
    let inst = Instance::from_sizes(
        &[
            (0.0, 8.0),
            (0.0, 7.0),
            (0.0, 6.0),
            (0.0, 5.0),
            (0.0, 4.0),
            (0.0, 3.0),
        ],
        Curve::power(0.5),
    )
    .unwrap();
    let a = simulate(&inst, &mut IntermediateSrpt::new(), m).unwrap();
    let b = simulate(&inst, &mut SequentialSrpt::new(), m).unwrap();
    // Identical prefix; ISRPT may only improve the underloaded tail.
    assert!(a.metrics.total_flow <= b.metrics.total_flow + 1e-9);
    // The first completions (while overloaded) are identical.
    assert_eq!(a.completed[0].id, b.completed[0].id);
    assert!((a.completed[0].completion - b.completed[0].completion).abs() < 1e-9);
}

#[test]
fn isrpt_equals_equi_while_always_underloaded() {
    let m = 16.0;
    let inst =
        Instance::from_sizes(&[(0.0, 8.0), (0.5, 4.0), (1.0, 2.0)], Curve::power(0.7)).unwrap();
    let a = simulate(&inst, &mut IntermediateSrpt::new(), m).unwrap();
    let b = simulate(&inst, &mut Equi::new(), m).unwrap();
    assert!(
        (a.metrics.total_flow - b.metrics.total_flow).abs() < 1e-9,
        "{} vs {}",
        a.metrics.total_flow,
        b.metrics.total_flow
    );
    for (ca, cb) in a.completed.iter().zip(&b.completed) {
        assert_eq!(ca.id, cb.id);
        assert!((ca.completion - cb.completion).abs() < 1e-9);
    }
}

#[test]
fn alive_integral_equals_flow_for_every_policy() {
    let m = 4.0;
    let inst = workload(9, 1.0, 0.4, 120, m, 16.0);
    for kind in PolicyKind::all_standard() {
        let out = simulate(&inst, &mut kind.build(), m).expect("run");
        let rel =
            (out.metrics.alive_integral - out.metrics.total_flow).abs() / out.metrics.total_flow;
        assert!(rel < 1e-6, "{}: ∫|A| diverged by {rel}", kind.name());
    }
}

#[test]
fn runs_are_deterministic() {
    let m = 4.0;
    let inst = workload(33, 1.2, 0.5, 150, m, 32.0);
    for kind in PolicyKind::all_standard() {
        let a = simulate(&inst, &mut kind.build(), m).expect("run");
        let b = simulate(&inst, &mut kind.build(), m).expect("run");
        assert_eq!(a.completed, b.completed, "{}", kind.name());
    }
}

#[test]
fn policies_are_reusable_across_runs() {
    // The same policy value reused must reproduce a fresh policy's result
    // (Policy::reset contract).
    let m = 4.0;
    let inst1 = workload(5, 1.0, 0.5, 80, m, 16.0);
    let inst2 = workload(6, 1.0, 0.5, 80, m, 16.0);
    for kind in PolicyKind::all_standard() {
        let mut p = kind.build();
        let _ = simulate(&inst1, &mut p, m).expect("first run");
        let reused = simulate(&inst2, &mut p, m).expect("second run");
        let fresh = simulate(&inst2, &mut kind.build(), m).expect("fresh run");
        assert_eq!(reused.completed, fresh.completed, "{}", kind.name());
    }
}

#[test]
fn fully_parallel_ordering_psrpt_is_best() {
    // On fully parallelizable jobs, Parallel-SRPT is optimal — every other
    // policy is at best equal.
    let m = 4.0;
    let inst = workload(11, 0.9, 1.0, 100, m, 16.0);
    let best = simulate(&inst, &mut PolicyKind::ParallelSrpt.build(), m)
        .unwrap()
        .metrics
        .total_flow;
    for kind in PolicyKind::all_standard() {
        let flow = simulate(&inst, &mut kind.build(), m)
            .unwrap()
            .metrics
            .total_flow;
        assert!(
            flow >= best * (1.0 - 1e-6),
            "{} beat PSRPT on fully parallel jobs: {flow} < {best}",
            kind.name()
        );
    }
}

#[test]
fn sequential_jobs_make_extra_processors_useless() {
    // With α = 0 and n ≤ m, every work-conserving policy that gives each
    // job ≥ 1 processor finishes identically.
    let inst = Instance::from_sizes(&[(0.0, 3.0), (0.0, 5.0)], Curve::Sequential).unwrap();
    let flows: Vec<f64> = [
        PolicyKind::IntermediateSrpt,
        PolicyKind::SequentialSrpt,
        PolicyKind::Equi,
    ]
    .iter()
    .map(|k| {
        simulate(&inst, &mut k.build(), 8.0)
            .unwrap()
            .metrics
            .total_flow
    })
    .collect();
    for f in &flows {
        assert!((f - 8.0).abs() < 1e-9, "{flows:?}");
    }
}
