//! Engine-level contracts for the future-event queue (see
//! `crates/simcore/src/calendar.rs` for the queue-level property tests):
//!
//! * the calendar-queue arm and the binary-heap control arm must produce
//!   **bit-identical** runs — same event count, same completion sequence,
//!   same metrics to the last bit — across fixtures and policies;
//! * a same-timestamp arrival + completion is one engine step, counted
//!   once (`Engine::coalesced_steps`, docs/PERF.md §4);
//! * the Parallel-SRPT event count on the standard n = 10⁴ fixture is
//!   pinned exactly: 19_999 = 2n − 1, one coalesced step on this seed,
//!   while Intermediate-SRPT sees 20_000 (no coincidence under its
//!   allocation). Any drift in arrival admission, queue ordering, or
//!   coalescing shows up here as an off-by-k.

use parsched::PolicyKind;
use parsched_bench::{mixed_alpha_fixture, overload_fixture, poisson_fixture};
use parsched_sim::{
    Engine, EngineConfig, EventQueueKind, Instance, JobId, JobSpec, NullObserver, RunOutcome,
    StaticSource,
};
use parsched_speedup::Curve;

fn run_with_queue(inst: &Instance, kind: &PolicyKind, queue: EventQueueKind) -> RunOutcome {
    let mut policy = kind.build();
    let mut source = StaticSource::new(inst);
    let mut obs = NullObserver;
    let cfg = EngineConfig::new(8.0).with_event_queue(queue);
    Engine::new(cfg, policy.as_mut(), &mut source, &mut obs)
        .run()
        .expect("queue-arm run")
}

#[test]
fn calendar_and_heap_arms_are_bit_identical_end_to_end() {
    let fixtures: [(&str, Instance); 3] = [
        ("poisson-0.9", poisson_fixture(2_000, 0.9, 8.0)),
        ("overload", overload_fixture(2_000, 8.0)),
        ("mixed-alpha", mixed_alpha_fixture(2_000, 0.9, 8.0)),
    ];
    let policies = [
        PolicyKind::IntermediateSrpt,
        PolicyKind::ParallelSrpt,
        PolicyKind::Equi,
    ];
    for (name, inst) in &fixtures {
        for kind in &policies {
            let cal = run_with_queue(inst, kind, EventQueueKind::Calendar);
            let heap = run_with_queue(inst, kind, EventQueueKind::Heap);
            let ctx = format!("{name} / {}", kind.name());
            assert_eq!(cal.metrics.events, heap.metrics.events, "{ctx}: events");
            assert_eq!(
                cal.metrics.total_flow.to_bits(),
                heap.metrics.total_flow.to_bits(),
                "{ctx}: total_flow diverged ({} vs {})",
                cal.metrics.total_flow,
                heap.metrics.total_flow
            );
            assert_eq!(
                cal.metrics.makespan.to_bits(),
                heap.metrics.makespan.to_bits(),
                "{ctx}: makespan"
            );
            assert_eq!(
                cal.completed.len(),
                heap.completed.len(),
                "{ctx}: completion count"
            );
            for (a, b) in cal.completed.iter().zip(&heap.completed) {
                assert_eq!(a.id, b.id, "{ctx}: completion order");
                assert_eq!(
                    a.completion.to_bits(),
                    b.completion.to_bits(),
                    "{ctx}: completion time of {:?}",
                    a.id
                );
            }
        }
    }
}

/// Two fully parallelizable jobs on m = 8: job 0 (size 8, release 0)
/// drains at rate 8 and completes at exactly t = 1.0 — the instant job 1
/// is released. The engine must process that coincidence as ONE step
/// (completion + arrival coalesced), and count it once.
#[test]
fn same_timestamp_arrival_and_completion_coalesce_into_one_counted_step() {
    let inst = Instance::new(vec![
        JobSpec::new(JobId(0), 0.0, 8.0, Curve::power(1.0)),
        JobSpec::new(JobId(1), 1.0, 8.0, Curve::power(1.0)),
    ])
    .expect("coincidence instance");
    for queue in [EventQueueKind::Calendar, EventQueueKind::Heap] {
        let mut policy = PolicyKind::IntermediateSrpt.build();
        let mut source = StaticSource::new(&inst);
        let mut obs = NullObserver;
        let cfg = EngineConfig::new(8.0).with_event_queue(queue);
        let mut engine = Engine::new(cfg, policy.as_mut(), &mut source, &mut obs);
        while engine.step().expect("step") {}
        assert_eq!(
            engine.coalesced_steps(),
            1,
            "{queue:?}: the t = 1.0 coincidence must be one coalesced step"
        );
        let out = engine.into_outcome().expect("outcome");
        // 2 events: the t = 0 admission precedes the first step (not an
        // event), t = 1 is ONE coalesced completion+arrival step (not
        // two), t = 2 is the final completion.
        assert_eq!(out.metrics.events, 2, "{queue:?}: event count");
        assert_eq!(out.metrics.makespan, 2.0, "{queue:?}: makespan");
    }
}

#[test]
fn parallel_srpt_event_count_is_pinned_on_the_standard_n1e4_fixture() {
    let inst = poisson_fixture(10_000, 0.9, 8.0);
    for queue in [EventQueueKind::Calendar, EventQueueKind::Heap] {
        let psrpt = run_with_queue(&inst, &PolicyKind::ParallelSrpt, queue);
        assert_eq!(
            psrpt.metrics.events, 19_999,
            "{queue:?}: Parallel-SRPT event count moved — arrival \
             admission, queue ordering, or coalescing changed"
        );
        let isrpt = run_with_queue(&inst, &PolicyKind::IntermediateSrpt, queue);
        assert_eq!(
            isrpt.metrics.events, 20_000,
            "{queue:?}: Intermediate-SRPT event count moved"
        );
    }
}

/// Regression for snapshot/restore on the event queue itself: suspend a
/// mixed-α run (multi-class Γ registry) at assorted event boundaries on
/// BOTH queue arms, restore into a fresh engine, and require the resumed
/// trajectory to be bit-identical to the uninterrupted run. This pins the
/// two restore obligations the queue layer owns — the generation tags
/// (`payload`) and insertion-sequence counter must survive verbatim (a
/// restored arrival wakeup with a re-zeroed tag would be lazily discarded
/// as stale, silently dropping the arrival timeline), and the rebuilt Γ
/// class registry must assign every resumed job its original class id so
/// the per-class rate cache stays bit-identical through later Scan
/// intervals.
#[test]
fn snapshot_restore_resumes_bit_identically_on_both_queue_arms() {
    let inst = mixed_alpha_fixture(600, 0.9, 8.0);
    for queue in [EventQueueKind::Calendar, EventQueueKind::Heap] {
        for kind in [PolicyKind::IntermediateSrpt, PolicyKind::Equi] {
            let baseline = run_with_queue(&inst, &kind, queue);
            for suspend_at in [0u64, 1, 7, 200, 899] {
                // Run the original engine up to the suspend point.
                let mut policy = kind.build();
                let mut source = StaticSource::new(&inst);
                let mut obs = NullObserver;
                let cfg = EngineConfig::new(8.0).with_event_queue(queue);
                let mut engine = Engine::new(cfg, policy.as_mut(), &mut source, &mut obs);
                for _ in 0..suspend_at {
                    assert!(engine.step().expect("pre-suspend step"));
                }
                let snap = engine.snapshot().expect("snapshot");
                drop(engine);
                // Resume on a fresh engine (fresh policy/source values,
                // as a migrated shard would hold) and run out.
                let mut policy2 = kind.build();
                let mut source2 = StaticSource::new(&inst);
                let mut obs2 = NullObserver;
                let mut resumed = Engine::new(cfg, policy2.as_mut(), &mut source2, &mut obs2);
                resumed.restore(&snap).expect("restore");
                while resumed.step().expect("post-restore step") {}
                let out = resumed.into_outcome().expect("resumed outcome");
                let ctx = format!("{queue:?} / {} / suspend@{suspend_at}", kind.name());
                assert_eq!(out.metrics.events, baseline.metrics.events, "{ctx}: events");
                assert_eq!(
                    out.metrics.total_flow.to_bits(),
                    baseline.metrics.total_flow.to_bits(),
                    "{ctx}: total_flow"
                );
                assert_eq!(
                    out.metrics.fractional_flow.to_bits(),
                    baseline.metrics.fractional_flow.to_bits(),
                    "{ctx}: fractional_flow"
                );
                assert_eq!(
                    out.metrics.makespan.to_bits(),
                    baseline.metrics.makespan.to_bits(),
                    "{ctx}: makespan"
                );
                assert_eq!(
                    out.completed.len(),
                    baseline.completed.len(),
                    "{ctx}: completion count"
                );
                for (a, b) in out.completed.iter().zip(&baseline.completed) {
                    assert_eq!(a.id, b.id, "{ctx}: completion order");
                    assert_eq!(
                        a.completion.to_bits(),
                        b.completion.to_bits(),
                        "{ctx}: completion time of {:?}",
                        a.id
                    );
                }
            }
        }
    }
}

/// The coalesced-step counter explains the 2n − 1 above: Parallel-SRPT
/// hits exactly one arrival/completion coincidence on this seed.
#[test]
fn parallel_srpt_coalesces_exactly_one_step_on_the_standard_fixture() {
    let inst = poisson_fixture(10_000, 0.9, 8.0);
    let mut policy = PolicyKind::ParallelSrpt.build();
    let mut source = StaticSource::new(&inst);
    let mut obs = NullObserver;
    let mut engine = Engine::new(
        EngineConfig::new(8.0),
        policy.as_mut(),
        &mut source,
        &mut obs,
    );
    while engine.step().expect("step") {}
    assert_eq!(engine.coalesced_steps(), 1);
    assert_eq!(
        engine.into_outcome().expect("outcome").metrics.events,
        19_999
    );
}
