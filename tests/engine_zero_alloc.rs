//! Steady-state allocation audit for the engine's buffer-reuse contract
//! (see `docs/PERF.md` §6).
//!
//! A counting global allocator wraps the system allocator; the assertions
//! below prove that after a warm-up run, repeated streaming runs on reused
//! [`EngineBuffers`] (and in-place [`Engine::reset`] reruns) execute their
//! entire event loop — arrivals, rebalances, drains, completions — without
//! a single heap allocation. Engine *construction* and *finalization* sit
//! outside the audited window: construction clones the policy name and the
//! source clones the instance, and the streaming finalizer clones the
//! constant-size quantile sketch; none of that is per-event.
//!
//! This is an integration test on purpose: the workspace crates carry
//! `#![forbid(unsafe_code)]`, and a `GlobalAlloc` impl is necessarily
//! `unsafe`. Keeping the counter here confines the unsafety to test code.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use parsched::PolicyKind;
use parsched_sim::{
    Engine, EngineBuffers, EngineConfig, Instance, JobId, JobSpec, NullObserver, StaticSource,
};
use parsched_speedup::Curve;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that moves or grows is an allocation for the purpose
        // of this audit: buffer reuse is supposed to prevent regrowth.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A deterministic arrival-heavy workload: `n` power-law jobs with LCG
/// sizes and staggered releases, enough churn to exercise insertions,
/// promotions, demotions, uniform drains, and completions.
fn workload(n: usize) -> Instance {
    workload_with_alphas(n, &[0.5])
}

/// Same, cycling per-job α through `alphas`: with several distinct
/// exponents the engine's Scan intervals run the kernel-class registry
/// and the grouped per-class Γ rate cache, so the audit also covers
/// that machinery (registry lookups and cache refills must reuse their
/// vectors, not regrow them).
fn workload_with_alphas(n: usize, alphas: &[f64]) -> Instance {
    let mut rng: u64 = 0x5bd1_e995_9e37_79b9;
    let mut next = || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng >> 33) as f64 / (1u64 << 31) as f64
    };
    let jobs = (0..n)
        .map(|i| {
            let release = i as f64 * 0.35;
            let size = 0.5 + 8.0 * next();
            let alpha = alphas[i % alphas.len()];
            JobSpec::new(JobId(i as u64), release, size, Curve::power(alpha))
        })
        .collect();
    Instance::new(jobs).expect("valid workload")
}

/// Streams `inst` once on donated buffers; returns the allocation count
/// observed strictly during the event loop, plus the buffers.
fn audited_run(inst: &Instance, bufs: EngineBuffers) -> (u64, EngineBuffers) {
    let mut policy = PolicyKind::IntermediateSrpt.build();
    let mut source = StaticSource::new(inst);
    let mut obs = NullObserver;
    let cfg = EngineConfig::new(8.0).with_streaming(true);
    let mut engine = Engine::with_buffers(cfg, policy.as_mut(), &mut source, &mut obs, bufs);
    let before = allocs();
    while engine.step().expect("run failed") {}
    let during = allocs() - before;
    // Finalize outside the audited window (clones the 8 KiB sketch).
    let (outcome, bufs) = engine.run_streaming_reusing().expect("finalize failed");
    assert_eq!(outcome.metrics.num_jobs, inst.jobs().len());
    (during, bufs)
}

#[test]
fn steady_state_streaming_runs_allocate_nothing() {
    let inst = workload(4_000);
    // Warm-up: first run grows every buffer to the workload's high-water
    // marks (and is expected to allocate while doing so).
    let (warmup_allocs, bufs) = audited_run(&inst, EngineBuffers::new());
    assert!(warmup_allocs > 0, "warm-up should have grown the buffers");
    // Steady state: every subsequent run on the reused buffers must not
    // touch the heap inside the event loop.
    let (second, bufs) = audited_run(&inst, bufs);
    assert_eq!(second, 0, "second run allocated {second} times");
    let (third, _bufs) = audited_run(&inst, bufs);
    assert_eq!(third, 0, "third run allocated {third} times");
}

#[test]
fn steady_state_mixed_alpha_runs_allocate_nothing() {
    // Multi-class variant: four distinct α values force Scan intervals
    // through the class registry and the grouped-Γ rate cache
    // (docs/PERF.md §7.2). Warm-up populates the registry; steady-state
    // reruns must re-classify and refill the cache without the heap.
    let inst = workload_with_alphas(4_000, &[0.25, 0.5, 0.75, 0.37]);
    let (warmup_allocs, bufs) = audited_run(&inst, EngineBuffers::new());
    assert!(warmup_allocs > 0, "warm-up should have grown the buffers");
    let (second, bufs) = audited_run(&inst, bufs);
    assert_eq!(second, 0, "second mixed-alpha run allocated {second} times");
    let (third, _bufs) = audited_run(&inst, bufs);
    assert_eq!(third, 0, "third mixed-alpha run allocated {third} times");
}

/// Runs `inst` through [`Engine::run_loop`] — which takes the
/// monomorphized fast loop here (incremental policy, no-op observer, no
/// auditor) — on donated buffers; returns the allocation count observed
/// strictly inside the loop, plus the buffers. `streaming` toggles the
/// memory mode; both finalizers run outside the audited window.
fn audited_fast_run(inst: &Instance, streaming: bool, bufs: EngineBuffers) -> (u64, EngineBuffers) {
    let mut policy = PolicyKind::IntermediateSrpt.build();
    let mut source = StaticSource::new(inst);
    let mut obs = NullObserver;
    let cfg = EngineConfig::new(8.0).with_streaming(streaming);
    let mut engine = Engine::with_buffers(cfg, policy.as_mut(), &mut source, &mut obs, bufs);
    let before = allocs();
    engine.run_loop().expect("fast run failed");
    let during = allocs() - before;
    let (num_jobs, bufs) = if streaming {
        let (outcome, bufs) = engine.run_streaming_reusing().expect("finalize failed");
        (outcome.metrics.num_jobs, bufs)
    } else {
        let (outcome, bufs) = engine.run_reusing().expect("finalize failed");
        (outcome.metrics.num_jobs, bufs)
    };
    assert_eq!(num_jobs, inst.jobs().len());
    (during, bufs)
}

#[test]
fn fast_loop_steady_state_allocates_nothing() {
    // The specialized loops inherit the buffer-reuse contract: after a
    // warm-up, the monomorphized fast loop — including the delta-refresh
    // memo, which the mixed-α workload forces through the kernel-class
    // registry and the grouped-Γ rate cache on every re-classification —
    // must run the whole event loop without touching the heap. Audited
    // in both memory modes, since the incremental in-memory path grows
    // the completion log and the streaming path exercises the sink.
    let inst = workload_with_alphas(4_000, &[0.25, 0.5, 0.75, 0.37]);
    for streaming in [false, true] {
        let (warmup_allocs, bufs) = audited_fast_run(&inst, streaming, EngineBuffers::new());
        assert!(
            warmup_allocs > 0,
            "warm-up (streaming={streaming}) should have grown the buffers"
        );
        let (second, bufs) = audited_fast_run(&inst, streaming, bufs);
        assert_eq!(
            second, 0,
            "second fast run (streaming={streaming}) allocated {second} times"
        );
        let (third, _bufs) = audited_fast_run(&inst, streaming, bufs);
        assert_eq!(
            third, 0,
            "third fast run (streaming={streaming}) allocated {third} times"
        );
    }
}

#[test]
fn engine_reset_reruns_allocate_nothing() {
    let inst = workload(2_000);
    let mut policy = PolicyKind::IntermediateSrpt.build();
    let mut source = StaticSource::new(&inst);
    let mut obs = NullObserver;
    let cfg = EngineConfig::new(8.0).with_streaming(true);
    let mut engine = Engine::with_buffers(
        cfg,
        policy.as_mut(),
        &mut source,
        &mut obs,
        EngineBuffers::new(),
    );
    // Warm-up run.
    while engine.step().expect("run failed") {}
    // In-place reset + rerun: zero allocations in reset and the rerun.
    let before = allocs();
    engine.reset().expect("static source rewinds");
    while engine.step().expect("rerun failed") {}
    let during = allocs() - before;
    assert_eq!(during, 0, "reset rerun allocated {during} times");
}

#[test]
fn buffer_reuse_reproduces_identical_metrics() {
    // The reuse machinery must be invisible in the results: a run on
    // dirty recycled buffers is bit-identical to a run on fresh ones.
    let inst = workload(1_500);
    let run = |bufs: EngineBuffers| {
        let mut policy = PolicyKind::IntermediateSrpt.build();
        let mut source = StaticSource::new(&inst);
        let mut obs = NullObserver;
        let cfg = EngineConfig::new(8.0).with_streaming(true);
        Engine::with_buffers(cfg, policy.as_mut(), &mut source, &mut obs, bufs)
            .run_streaming_reusing()
            .expect("run failed")
    };
    let (fresh, bufs) = run(EngineBuffers::new());
    let (reused, _) = run(bufs);
    assert_eq!(
        fresh.metrics.total_flow.to_bits(),
        reused.metrics.total_flow.to_bits()
    );
    assert_eq!(
        fresh.metrics.fractional_flow.to_bits(),
        reused.metrics.fractional_flow.to_bits()
    );
    assert_eq!(
        fresh.metrics.makespan.to_bits(),
        reused.metrics.makespan.to_bits()
    );
    assert_eq!(fresh.metrics.events, reused.metrics.events);
    assert_eq!(fresh.quantiles, reused.quantiles);
}
