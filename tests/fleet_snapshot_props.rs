//! Layer-6 conformance suite for `Engine::snapshot` / `Engine::restore`
//! (docs/TESTING.md): the fleet's suspend/migrate/resume machinery is
//! only sound if a snapshot taken at ANY event boundary, under EVERY
//! registry policy, in BOTH engine modes, resumes to a bit-identical
//! remaining trajectory — and if the `parsched-snap/v1` text codec is a
//! byte-exact fixed point, since that document is what a migration
//! actually ships between shards.
//!
//! Suspend points are drawn pseudo-randomly (splitmix64, fixed seed) plus
//! the structural corners (0, 1, midpoint, last event), so the suite is
//! deterministic yet not tuned to any particular event alignment.

use parsched::PolicyKind;
use parsched_bench::mixed_alpha_fixture;
use parsched_sim::{
    Engine, EngineConfig, Instance, NullObserver, RunMetrics, Snapshot, StaticSource,
};

const M: f64 = 8.0;

fn engine_cfg(streaming: bool) -> EngineConfig {
    EngineConfig::new(M).with_streaming(streaming)
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Uninterrupted reference run. The streaming finalizer's metrics are
/// bit-identical to the in-memory path's, so one shape fits both modes;
/// the completion list is compared separately on the in-memory mode.
fn baseline(inst: &Instance, kind: &PolicyKind, streaming: bool) -> (RunMetrics, Vec<(u64, u64)>) {
    let mut policy = kind.build();
    let mut source = StaticSource::new(inst);
    let mut obs = NullObserver;
    let engine = Engine::new(
        engine_cfg(streaming),
        policy.as_mut(),
        &mut source,
        &mut obs,
    );
    if streaming {
        let out = engine.run_streaming().expect("baseline streaming run");
        (out.metrics, Vec::new())
    } else {
        let out = engine.run().expect("baseline run");
        let completions = out
            .completed
            .iter()
            .map(|c| (c.id.0, c.completion.to_bits()))
            .collect();
        (out.metrics, completions)
    }
}

fn assert_metrics_bit_identical(got: &RunMetrics, want: &RunMetrics, ctx: &str) {
    assert_eq!(got.events, want.events, "{ctx}: events");
    assert_eq!(got.num_jobs, want.num_jobs, "{ctx}: num_jobs");
    for (name, a, b) in [
        ("total_flow", got.total_flow, want.total_flow),
        ("fractional_flow", got.fractional_flow, want.fractional_flow),
        ("makespan", got.makespan, want.makespan),
        ("max_flow", got.max_flow, want.max_flow),
        ("total_stretch", got.total_stretch, want.total_stretch),
        ("max_stretch", got.max_stretch, want.max_stretch),
        (
            "total_weighted_flow",
            got.total_weighted_flow,
            want.total_weighted_flow,
        ),
        ("alive_integral", got.alive_integral, want.alive_integral),
    ] {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{ctx}: {name} diverged ({a} vs {b})"
        );
    }
}

/// Run to `suspend_at`, capture, force the snapshot through the text
/// codec (checking the byte-exact fixed point), resume on a fresh engine,
/// and return the final metrics (+ completion list on the in-memory
/// path).
fn suspend_resume(
    inst: &Instance,
    kind: &PolicyKind,
    streaming: bool,
    suspend_at: u64,
    ctx: &str,
) -> (RunMetrics, Vec<(u64, u64)>) {
    let mut policy = kind.build();
    let mut source = StaticSource::new(inst);
    let mut obs = NullObserver;
    let mut engine = Engine::new(
        engine_cfg(streaming),
        policy.as_mut(),
        &mut source,
        &mut obs,
    );
    for _ in 0..suspend_at {
        assert!(engine.step().expect("pre-suspend step"), "{ctx}: ran out");
    }
    let snap = engine.snapshot().expect("snapshot");
    drop(engine);

    // Codec round trip: parse(render(s)) == s exactly, and re-rendering
    // the parsed snapshot reproduces the document byte-for-byte.
    let doc = snap.to_json();
    let decoded = Snapshot::from_json(&doc).expect("parse own rendering");
    assert_eq!(
        decoded, snap,
        "{ctx}: codec round trip changed the snapshot"
    );
    assert_eq!(
        decoded.to_json(),
        doc,
        "{ctx}: re-rendering is not byte-stable"
    );

    // Resume from the DECODED snapshot — the document is what a migration
    // ships, so the decoded form must carry the full state.
    let mut policy2 = kind.build();
    let mut source2 = StaticSource::new(inst);
    let mut obs2 = NullObserver;
    let mut resumed = Engine::new(
        engine_cfg(streaming),
        policy2.as_mut(),
        &mut source2,
        &mut obs2,
    );
    resumed.restore(&decoded).expect("restore");
    while resumed.step().expect("post-restore step") {}
    if streaming {
        let out = resumed
            .into_streaming_outcome()
            .expect("resumed streaming outcome");
        (out.metrics, Vec::new())
    } else {
        let out = resumed.into_outcome().expect("resumed outcome");
        let completions = out
            .completed
            .iter()
            .map(|c| (c.id.0, c.completion.to_bits()))
            .collect();
        (out.metrics, completions)
    }
}

#[test]
fn every_policy_and_mode_resumes_bit_identically_from_random_suspend_points() {
    let inst = mixed_alpha_fixture(300, 0.9, M);
    let mut rng = 0x5eed_f1ee7u64;
    for kind in PolicyKind::all_registered() {
        for streaming in [false, true] {
            let (want_metrics, want_completions) = baseline(&inst, &kind, streaming);
            let events = want_metrics.events;
            let mut points = vec![0, 1, events / 2, events - 1];
            for _ in 0..3 {
                points.push(splitmix(&mut rng) % events);
            }
            points.sort_unstable();
            points.dedup();
            for suspend_at in points {
                let ctx = format!(
                    "{} / {} / suspend@{suspend_at}",
                    kind.name(),
                    if streaming { "streaming" } else { "in-memory" }
                );
                let (metrics, completions) =
                    suspend_resume(&inst, &kind, streaming, suspend_at, &ctx);
                assert_metrics_bit_identical(&metrics, &want_metrics, &ctx);
                assert_eq!(
                    completions, want_completions,
                    "{ctx}: completion sequence diverged"
                );
            }
        }
    }
}

/// A snapshot of a FINISHED run must restore and immediately report
/// finished with untouched aggregates — the fleet takes this path when a
/// tenant's last slice ends exactly at its final event.
#[test]
fn finished_snapshots_restore_to_finished_engines() {
    let inst = mixed_alpha_fixture(50, 0.9, M);
    for streaming in [false, true] {
        let mut policy = PolicyKind::IntermediateSrpt.build();
        let mut source = StaticSource::new(&inst);
        let mut obs = NullObserver;
        let mut engine = Engine::new(
            engine_cfg(streaming),
            policy.as_mut(),
            &mut source,
            &mut obs,
        );
        while engine.step().expect("step") {}
        let snap = engine.snapshot().expect("snapshot of finished run");
        assert!(snap.is_finished());
        drop(engine);
        let mut policy2 = PolicyKind::IntermediateSrpt.build();
        let mut source2 = StaticSource::new(&inst);
        let mut obs2 = NullObserver;
        let mut resumed = Engine::new(
            engine_cfg(streaming),
            policy2.as_mut(),
            &mut source2,
            &mut obs2,
        );
        resumed.restore(&snap).expect("restore finished snapshot");
        assert!(
            !resumed.step().expect("step on finished engine"),
            "restored finished engine must not step"
        );
    }
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("golden_snapshot.json")
}

/// The committed `parsched-snap/v1` document must match what the current
/// engine captures for the same scenario — any change to the snapshot
/// schema, field order, or float rendering shows up as a diff here.
/// Regenerate deliberately with:
/// `PARSCHED_REGEN_GOLDEN=1 cargo test --test fleet_snapshot_props`.
#[test]
fn golden_snapshot_fixture_is_stable_and_restorable() {
    let inst = mixed_alpha_fixture(40, 0.9, 4.0);
    let kind = PolicyKind::IntermediateSrpt;
    let cfg = EngineConfig::new(4.0);
    let mut policy = kind.build();
    let mut source = StaticSource::new(&inst);
    let mut obs = NullObserver;
    let mut engine = Engine::new(cfg, policy.as_mut(), &mut source, &mut obs);
    for _ in 0..25 {
        assert!(engine.step().expect("step"));
    }
    let fresh = engine.snapshot().expect("snapshot").to_json();
    drop(engine);

    let path = golden_path();
    if std::env::var_os("PARSCHED_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir");
        std::fs::write(&path, &fresh).expect("write golden snapshot");
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e} (regenerate with PARSCHED_REGEN_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        committed, fresh,
        "golden snapshot drifted from the current schema/engine"
    );

    // The committed document must still restore and resume to the same
    // final metrics as an uninterrupted run.
    let mut policy_b = kind.build();
    let mut source_b = StaticSource::new(&inst);
    let mut obs_b = NullObserver;
    let want = Engine::new(cfg, policy_b.as_mut(), &mut source_b, &mut obs_b)
        .run()
        .expect("baseline")
        .metrics;
    let snap = Snapshot::from_json(&committed).expect("parse committed golden");
    let mut policy_c = kind.build();
    let mut source_c = StaticSource::new(&inst);
    let mut obs_c = NullObserver;
    let mut resumed = Engine::new(cfg, policy_c.as_mut(), &mut source_c, &mut obs_c);
    resumed.restore(&snap).expect("restore committed golden");
    while resumed.step().expect("resume step") {}
    let got = resumed.into_outcome().expect("resumed outcome").metrics;
    assert_metrics_bit_identical(&got, &want, "golden resume");
}
