//! Numeric reproductions of calculations done inline in the paper's
//! proofs.

use parsched_repro::policies::{theory, GreedyHybrid, IntermediateSrpt};
use parsched_repro::sim::{simulate, PlannedPolicy};
use parsched_repro::speedup::Curve;
use parsched_repro::workloads::{GreedyTrap, PhaseFamily};

/// §3: "This greedy algorithm will devote all m machines to the 1 job of
/// size 1 … It balances the choice of m^{1−ε} − (m−1)^{1−ε} versus 1/m.
/// Given that ε > 0, it will always choose to assign the machine to the
/// size 1 job."
#[test]
fn greedy_marginal_comparison_from_lemma10() {
    // The comparison m^α − (m−1)^α ≥ 1/m (i.e. α·m^α ≳ 1) holds exactly
    // when m ≥ (1/α)^{1/α} — an implicit side condition of the paper's
    // asymptotic statement. Below that threshold greedy does NOT
    // monopolize (it approaches Sequential-SRPT as α → 0, where it is
    // fine); we check both directions.
    for m in [4u32, 16, 64, 256] {
        for eps in [0.1, 0.5, 0.9] {
            let alpha = 1.0 - eps;
            let curve = Curve::power(alpha);
            // Marginal of the m-th processor on the unit job:
            let unit_marginal = curve.marginal(m - 1) / 1.0;
            // vs the first processor on a size-m long job:
            let long_marginal = curve.marginal(0) / f64::from(m);
            let threshold = (1.0 / alpha).powf(1.0 / alpha);
            if f64::from(m) >= threshold {
                assert!(
                    unit_marginal > long_marginal,
                    "m={m}, ε={eps}: {unit_marginal} vs {long_marginal}"
                );
            } else {
                assert!(
                    unit_marginal < long_marginal,
                    "m={m}, ε={eps}: expected greedy NOT to monopolize below m ≥ (1/α)^{{1/α}}"
                );
            }
        }
    }
}

/// §3's flow accounting for the alternative algorithm: executing the plan
/// matches the closed form `m² + X` exactly (in the paper's normalization
/// X counts stream *time*, and each stream job costs 1/m^{1−ε}).
#[test]
fn lemma10_alternative_flow_accounting() {
    for (m, alpha) in [(4usize, 0.5), (9, 0.5), (16, 0.5), (16, 0.75)] {
        let trap = GreedyTrap::new(m, alpha).with_stream_duration((m * m) as f64);
        let inst = trap.instance().unwrap();
        let plan = trap.alternative_plan().unwrap();
        let run = simulate(&inst, &mut PlannedPolicy::new(plan), m as f64).unwrap();
        let closed = trap.alternative_flow_closed_form();
        assert!(
            (run.metrics.total_flow - closed).abs() / closed < 1e-6,
            "m={m}, α={alpha}: {} vs {}",
            run.metrics.total_flow,
            closed
        );
        // The paper's m² + X shape (with K = m^{1−ε} exact, closed form is
        // m·K + (m−K)·m + X = m² + X).
        let k = trap.k() as f64;
        let expected = m as f64 * k + (m as f64 - k) * m as f64 + trap.stream_duration;
        assert!((closed - expected).abs() < 1e-6);
    }
}

/// Lemma 10's conclusion end-to-end: greedy's measured flow is dominated
/// by the starved long jobs and its ratio exceeds Intermediate-SRPT's by
/// a factor growing with m.
#[test]
fn lemma10_separation_end_to_end() {
    let mut prev_gap = 0.0;
    for m in [4usize, 9, 16] {
        let trap = GreedyTrap::new(m, 0.5);
        let inst = trap.instance().unwrap();
        let greedy = simulate(&inst, &mut GreedyHybrid::new(), m as f64)
            .unwrap()
            .metrics
            .total_flow;
        let isrpt = simulate(&inst, &mut IntermediateSrpt::new(), m as f64)
            .unwrap()
            .metrics
            .total_flow;
        let gap = greedy / isrpt;
        assert!(gap > prev_gap, "gap should grow with m: {gap} at m={m}");
        prev_gap = gap;
    }
    assert!(
        prev_gap > 4.0,
        "expected a large separation, got {prev_gap}"
    );
}

/// §4's derived constants: `r = ½(1 − 2^{-ε})`, phase lengths shrink
/// geometrically, and the standard schedule per phase costs
/// `2·m·p_i + (m/2)·(p_i/2)²`-ish. We check the executable schedule's
/// per-phase flow against that formula for a single-phase family.
#[test]
fn theorem2_standard_schedule_cost_shape() {
    let fam = PhaseFamily::new(4, 0.5, 64.0).with_stream_len(1);
    let (outcome, record) = fam.run_against(&mut IntermediateSrpt::new()).unwrap();
    let plan = fam.opt_plan(&record).unwrap();
    let opt = simulate(&outcome.instance, &mut PlannedPolicy::new(plan), 4.0).unwrap();
    // Paper's standard-schedule cost for phase 0 (length p = 64, m = 4):
    // long jobs: (m/2)·p = 128; shorts: W = p/2 = 32 waves, each with
    // m/2 jobs at flow 1 (served on arrival) and m/2 at flow p/2 + 1 = 33
    // (served in the phase's second half) → 32·(2·1 + 2·33) = 2176;
    // plus the single stream wave: m jobs at flow 1 each.
    let m = 4.0;
    let p = 64.0;
    let waves = 32.0;
    let expected_phase = (m / 2.0) * p + waves * ((m / 2.0) * 1.0 + (m / 2.0) * (p / 2.0 + 1.0));
    // Plus the single stream wave: m jobs at flow 1.
    let expected = expected_phase + m;
    assert!(
        (opt.metrics.total_flow - expected).abs() / expected < 1e-9,
        "measured {} vs paper formula {}",
        opt.metrics.total_flow,
        expected
    );
}

/// Theorem 1's bound is the product of the two factors the paper states.
#[test]
fn theorem1_bound_factorization() {
    let alpha = 0.5;
    let p = 1024.0;
    let bound = theory::theorem1_bound(alpha, p);
    assert!((bound - theory::four_power(alpha) * 10.0).abs() < 1e-9);
    // And it degenerates exactly at α = 1, matching the paper's point that
    // the guarantee jumps from 1 to Θ(log P) the instant α < 1.
    assert_eq!(theory::theorem1_bound(1.0, p), f64::INFINITY);
    assert!(theory::theorem1_bound(0.99, p).is_finite());
}

/// The class arithmetic in §2.2: `⌈log P⌉` initial classes, class −1 for
/// sub-unit remainders, and Lemma 4's RHS doubling per class.
#[test]
fn class_arithmetic_matches_paper() {
    use parsched_repro::sim::{class_index, num_classes};
    assert_eq!(num_classes(1024.0), 11); // k ∈ {0,…,10}
    assert_eq!(class_index(1024.0), 10);
    assert_eq!(class_index(1023.9), 9);
    assert_eq!(class_index(0.37), -1);
    for k in 0..10 {
        assert_eq!(
            theory::lemma4_rhs(8.0, k + 1) / theory::lemma4_rhs(8.0, k),
            2.0
        );
    }
}
