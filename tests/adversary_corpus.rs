//! Correctness layer 5: adversarial corpus replay (see docs/TESTING.md).
//!
//! Every `parsched-adv/v1` document under `tests/corpus/adversary/` is a
//! hard instance mined by `parsched adversary` — an empirical
//! competitive-ratio witness against a named policy. This suite replays
//! each one on every CI run and pins three things:
//!
//! 1. **Ratios never regress**: the re-measured flow divided by the
//!    *recorded* lower bound must stay at or above the recorded ratio
//!    (minus float tolerance). An engine or policy change that quietly
//!    makes a policy look better on its hardest known inputs is either a
//!    genuine improvement (re-mine and re-commit the corpus, with the
//!    new ratio in the entry) or a simulation bug — both deserve a red
//!    test, not silence.
//! 2. **Lower bounds only improve**: the recomputed best LB must not
//!    drop below the recorded one (a weaker LB would inflate every
//!    ratio the repo reports).
//! 3. **Strict audits stay green on the nastiest known instances**, on
//!    both engine paths, with bit-identical cross-path aggregates.

use std::collections::BTreeSet;
use std::path::PathBuf;

use parsched::PolicyKind;
use parsched_adversary::{strict_dual_path_check, CorpusEntry, KIND_HARD, KIND_REPRODUCER};
use parsched_opt::best_lower_bound;
use parsched_sim::simulate;

/// Relative slack on ratio reproduction: the engine promises incremental
/// vs legacy agreement to 1e-6 relative, so replay inherits the same.
const RTOL: f64 = 1e-6;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/adversary")
}

/// Every committed entry, sorted by file name for deterministic order.
fn load_corpus() -> Vec<(String, CorpusEntry)> {
    let mut names: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus/adversary exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    names.sort();
    names
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).expect("readable corpus file");
            let entry = CorpusEntry::from_json(&text)
                .unwrap_or_else(|e| panic!("{name}: bad corpus entry: {e}"));
            (name, entry)
        })
        .collect()
}

#[test]
fn corpus_is_populated_and_covers_every_standard_policy() {
    let corpus = load_corpus();
    let hard: Vec<_> = corpus.iter().filter(|(_, e)| e.kind == KIND_HARD).collect();
    assert!(
        hard.len() >= 10,
        "corpus must hold ≥ 10 hard instances, found {}",
        hard.len()
    );
    let policies: BTreeSet<&str> = hard.iter().map(|(_, e)| e.policy.as_str()).collect();
    for token in [
        "isrpt", "psrpt", "ssrpt", "greedy", "equi", "laps:0.5", "setf",
    ] {
        assert!(policies.contains(token), "no corpus entry for {token}");
        let best = hard
            .iter()
            .filter(|(_, e)| e.policy == token)
            .map(|(_, e)| e.ratio)
            .fold(0.0f64, f64::max);
        assert!(
            best > 1.0,
            "{token}: corpus must witness a ratio strictly above the trivial \
             1.0 baseline, best recorded is {best}"
        );
    }
}

#[test]
fn corpus_entries_round_trip_through_the_codec() {
    for (name, entry) in load_corpus() {
        let rendered = entry.to_json();
        let original = std::fs::read_to_string(corpus_dir().join(&name)).unwrap();
        assert_eq!(
            rendered, original,
            "{name}: committed bytes must re-render identically"
        );
    }
}

#[test]
fn recorded_ratios_reproduce_and_never_regress() {
    for (name, entry) in load_corpus() {
        if entry.kind != KIND_HARD {
            continue;
        }
        let instance = entry.instance().unwrap_or_else(|e| panic!("{name}: {e}"));
        let kind: PolicyKind = entry
            .policy
            .parse()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let flow = simulate(&instance, kind.build().as_mut(), entry.m)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .metrics
            .total_flow;
        let measured = flow / entry.lb;
        assert!(
            measured >= entry.ratio * (1.0 - RTOL),
            "{name}: measured ratio {measured} regressed below recorded {} \
             (flow {flow} vs recorded {})",
            entry.ratio,
            entry.flow
        );
        // The recorded flow itself must reproduce within tolerance (in
        // either direction — a *jump* would mean nondeterminism).
        assert!(
            (flow - entry.flow).abs() <= entry.flow.abs() * RTOL,
            "{name}: flow {flow} drifted from recorded {}",
            entry.flow
        );
    }
}

#[test]
fn recorded_lower_bounds_are_still_valid_and_not_weakened() {
    for (name, entry) in load_corpus() {
        if entry.kind != KIND_HARD {
            continue;
        }
        let instance = entry.instance().unwrap();
        let (lb, _) = best_lower_bound(&instance, entry.m);
        assert!(
            lb >= entry.lb * (1.0 - RTOL),
            "{name}: best LB {lb} dropped below recorded {} — a weakened \
             bound would inflate every reported ratio",
            entry.lb
        );
        assert!(
            entry.lb <= entry.flow * (1.0 + RTOL),
            "{name}: recorded LB {} exceeds recorded flow {} — not a valid \
             lower bound",
            entry.lb,
            entry.flow
        );
    }
}

#[test]
fn strict_audits_pass_on_both_engine_paths() {
    for (name, entry) in load_corpus() {
        if entry.kind != KIND_HARD {
            continue;
        }
        let instance = entry.instance().unwrap();
        let kind: PolicyKind = entry.policy.parse().unwrap();
        strict_dual_path_check(&instance, kind, entry.m).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn no_unresolved_engine_reproducers_are_committed() {
    // A `reproducer` entry is a known-failing engine input the search
    // shrank; committing one is a statement that the engine is broken.
    // The corpus must stay free of them — fixing the bug should remove
    // the reproducer in the same PR.
    for (name, entry) in load_corpus() {
        assert!(
            entry.kind != KIND_REPRODUCER,
            "{name}: unresolved engine-failure reproducer in the corpus \
             ({}); fix the engine and drop the file",
            entry.genome
        );
    }
}
