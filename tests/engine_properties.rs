//! Property-based tests of the simulation engine's conservation laws and
//! the policies' structural invariants, on randomized instances.

use proptest::prelude::*;

use parsched_repro::opt::bounds;
use parsched_repro::policies::PolicyKind;
use parsched_repro::sim::{simulate, Instance, JobId, JobSpec, Policy};
use parsched_repro::speedup::Curve;

/// Strategy: a small random instance of power-law jobs.
fn arb_instance() -> impl Strategy<Value = Instance> {
    let job = (0.0f64..20.0, 1.0f64..16.0, 0.0f64..=1.0);
    proptest::collection::vec(job, 1..24).prop_map(|jobs| {
        Instance::new(
            jobs.into_iter()
                .enumerate()
                .map(|(i, (r, p, a))| JobSpec::new(JobId(i as u64), r, p, Curve::power(a)))
                .collect(),
        )
        .expect("valid instance")
    })
}

fn arb_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::IntermediateSrpt),
        Just(PolicyKind::ParallelSrpt),
        Just(PolicyKind::SequentialSrpt),
        Just(PolicyKind::Greedy),
        Just(PolicyKind::Equi),
        Just(PolicyKind::Laps(0.5)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every job completes, exactly once, no earlier than both its release
    /// and its fastest possible processing time.
    #[test]
    fn completion_sanity(inst in arb_instance(), kind in arb_policy(), m in 1u32..=8) {
        let m = f64::from(m);
        let out = simulate(&inst, &mut kind.build(), m).expect("run");
        prop_assert_eq!(out.metrics.num_jobs, inst.len());
        let mut seen = std::collections::HashSet::new();
        for c in &out.completed {
            prop_assert!(seen.insert(c.id));
            let spec = inst.jobs().iter().find(|j| j.id == c.id).expect("spec");
            let min_flow = spec.curve.time_to_finish(spec.size, m);
            prop_assert!(c.completion >= spec.release + min_flow - 1e-6,
                "job {} finished impossibly fast: {} < {} + {}",
                c.id, c.completion, spec.release, min_flow);
        }
    }

    /// ∫|A(t)|dt = Σ_j F_j — the engine's two flow accountings agree.
    #[test]
    fn flow_conservation(inst in arb_instance(), kind in arb_policy(), m in 1u32..=8) {
        let m = f64::from(m);
        let out = simulate(&inst, &mut kind.build(), m).expect("run");
        let rel = (out.metrics.alive_integral - out.metrics.total_flow).abs()
            / out.metrics.total_flow.max(1.0);
        prop_assert!(rel < 1e-6, "∫|A| = {}, Σflow = {}", out.metrics.alive_integral, out.metrics.total_flow);
    }

    /// Fractional flow never exceeds integral flow, and max ≤ total.
    #[test]
    fn metric_orderings(inst in arb_instance(), kind in arb_policy(), m in 1u32..=8) {
        let m = f64::from(m);
        let out = simulate(&inst, &mut kind.build(), m).expect("run");
        prop_assert!(out.metrics.fractional_flow <= out.metrics.total_flow + 1e-6);
        prop_assert!(out.metrics.max_flow <= out.metrics.total_flow + 1e-9);
        prop_assert!(out.metrics.mean_flow <= out.metrics.max_flow + 1e-9);
    }

    /// Both OPT lower bounds really are lower bounds, for every policy.
    #[test]
    fn opt_lower_bounds_hold(inst in arb_instance(), kind in arb_policy(), m in 1u32..=8) {
        let m = f64::from(m);
        let flow = simulate(&inst, &mut kind.build(), m).expect("run").metrics.total_flow;
        // Relative slack: the engine's completion snap (≤ EPS·size per
        // job) accumulates across completions, so exact-optimal policies
        // can undershoot the exact bound by O(n²·EPS).
        let budget = flow * (1.0 + 1e-6) + 1e-6;
        prop_assert!(bounds::processing_lb(&inst, m) <= budget);
        prop_assert!(bounds::srpt_fluid_lb(&inst, m) <= budget);
    }

    /// Speed augmentation can only help (run at speed 2 ≤ flow at speed 1).
    #[test]
    fn speed_augmentation_monotone(inst in arb_instance(), m in 1u32..=4) {
        use parsched_repro::sim::{Engine, EngineConfig, NullObserver, StaticSource};
        let m = f64::from(m);
        let run = |speed: f64| {
            let mut p = PolicyKind::IntermediateSrpt.build();
            let mut s = StaticSource::new(&inst);
            let mut o = NullObserver;
            Engine::new(EngineConfig::new(m).with_speed(speed), &mut p, &mut s, &mut o)
                .run()
                .expect("run")
                .metrics
                .total_flow
        };
        prop_assert!(run(2.0) <= run(1.0) + 1e-6);
    }

    /// More processors never hurt Intermediate-SRPT on these instances.
    #[test]
    fn more_processors_do_not_hurt_isrpt(inst in arb_instance(), m in 1u32..=4) {
        let m = f64::from(m);
        let f1 = simulate(&inst, &mut PolicyKind::IntermediateSrpt.build(), m)
            .expect("run").metrics.total_flow;
        let f2 = simulate(&inst, &mut PolicyKind::IntermediateSrpt.build(), 2.0 * m)
            .expect("run").metrics.total_flow;
        prop_assert!(f2 <= f1 * (1.0 + 1e-6), "m={m}: {f1} vs 2m: {f2}");
    }

    /// Allocation feasibility: a spy policy wrapper confirms the engine
    /// rejects nothing the real policies produce (shares ≥ 0, Σ ≤ m),
    /// by simply succeeding — plus Φ's rank invariant (every policy run
    /// keeps ranks ≤ m) holds trivially; here we assert end-to-end
    /// success for all kinds at fractional m too.
    #[test]
    fn fractional_processor_counts_work(inst in arb_instance(), kind in arb_policy()) {
        let out = simulate(&inst, &mut kind.build(), 3.0);
        prop_assert!(out.is_ok(), "{:?}", out.err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differential test: the exact event engine agrees with the naive
    /// fixed-timestep oracle to within the oracle's discretization error.
    /// (Event-invariant policies only: the greedy hybrid intentionally
    /// drifts between quanta, so its two simulations legitimately differ.)
    #[test]
    fn exact_engine_matches_quantized_oracle(
        inst in arb_instance(),
        kind in prop_oneof![
            Just(PolicyKind::IntermediateSrpt),
            Just(PolicyKind::SequentialSrpt),
            Just(PolicyKind::ParallelSrpt),
            Just(PolicyKind::Equi),
        ],
        m in 1u32..=6,
    ) {
        use parsched_repro::sim::quantized::simulate_quantized;
        let m = f64::from(m);
        let exact = simulate(&inst, &mut kind.build(), m).expect("exact").metrics;
        let dt = 1e-3;
        let quant = simulate_quantized(&inst, &mut kind.build(), m, dt, 50_000_000)
            .expect("quantized");
        prop_assert_eq!(quant.num_jobs, exact.num_jobs);
        // Each completion can be late by up to one step (plus trajectory
        // divergence bounded by steps since allocations refresh every dt);
        // empirically n·dt·small-constant covers it.
        let budget = inst.len() as f64 * dt * 20.0 + 1e-6;
        prop_assert!(
            (quant.total_flow - exact.total_flow).abs() <= budget,
            "exact {} vs quantized {} (budget {})",
            exact.total_flow, quant.total_flow, budget
        );
    }
}

/// A policy that deliberately reorders its shares to stress the engine's
/// validation paths (still feasible).
struct Shuffler(u64);

impl Policy for Shuffler {
    fn name(&self) -> String {
        "shuffler".into()
    }
    fn assign(
        &mut self,
        _now: f64,
        m: f64,
        jobs: &[parsched_repro::sim::AliveJob<'_>],
        shares: &mut [f64],
    ) -> Option<f64> {
        // Rotate a full allocation around the alive set, deterministically
        // varying with an internal counter.
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        let pick = (self.0 >> 33) as usize % jobs.len();
        shares.fill(0.0);
        shares[pick] = m;
        Some(0.25)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Even an adversarially churning (but feasible) policy conserves the
    /// engine's accounting.
    #[test]
    fn churning_policy_conserves_flow(inst in arb_instance()) {
        let mut p = Shuffler(42);
        let out = simulate(&inst, &mut p, 4.0).expect("run");
        prop_assert_eq!(out.metrics.num_jobs, inst.len());
        let rel = (out.metrics.alive_integral - out.metrics.total_flow).abs()
            / out.metrics.total_flow.max(1.0);
        prop_assert!(rel < 1e-6);
    }
}
