//! The four-way differential oracle for the streaming engine path
//! (see docs/TESTING.md):
//!
//! ```text
//!                    in-memory            streaming
//! incremental   run()/into_outcome()   run_streaming()
//! legacy        with_full_reassign     with_full_reassign + streaming
//! ```
//!
//! Streaming is a *memory mode*, not a scheduling path: for a fixed
//! per-event path the streaming run must produce **bit-identical** metrics,
//! the identical completion sequence, and the same strict-audit outcome as
//! the in-memory run, because both route completions through the same
//! constant-size sink in the same order. Across per-event paths
//! (incremental vs legacy) the existing float tolerance applies — the two
//! paths evaluate algebraically-equal expressions in different orders.

use parsched::PolicyKind;
use parsched_sim::{
    AuditLevel, Engine, EngineConfig, Instance, JobId, JobSpec, Observer, RunMetrics, StaticSource,
    Time,
};
use parsched_speedup::Curve;
use proptest::prelude::*;

/// Relative tolerance for comparing *across* per-event paths (incremental
/// vs legacy). Within one path, streaming vs in-memory is exact.
const RTOL: f64 = 1e-6;

fn close(a: f64, b: f64, scale: f64) -> bool {
    (a - b).abs() <= RTOL * scale.abs().max(1.0)
}

/// Records the exact completion sequence `(id, time)` in event order.
#[derive(Default)]
struct CompletionLog {
    seq: Vec<(JobId, Time)>,
}

impl Observer for CompletionLog {
    fn on_completion(&mut self, t: Time, job: &JobSpec) {
        self.seq.push((job.id, t));
    }

    fn needs_allocation_stream(&self) -> bool {
        false
    }
}

/// One run of a registry policy over `inst` in the given mode; returns the
/// aggregate metrics, the completion sequence, and whether a strict audit
/// passed (`run` errors on violation, so reaching the metrics means pass).
fn run_mode(
    inst: &Instance,
    kind: PolicyKind,
    m: f64,
    full_reassign: bool,
    streaming: bool,
    audit: AuditLevel,
) -> (RunMetrics, Vec<(JobId, Time)>) {
    let mut policy = kind.build();
    let mut source = StaticSource::new(inst);
    let mut log = CompletionLog::default();
    let cfg = EngineConfig::new(m)
        .with_full_reassign(full_reassign)
        .with_streaming(streaming)
        .with_audit(audit);
    let engine = Engine::new(cfg, policy.as_mut(), &mut source, &mut log);
    let metrics = if streaming {
        engine
            .run_streaming()
            .unwrap_or_else(|e| {
                panic!(
                    "{} (streaming, full_reassign={full_reassign}): {e}",
                    kind.name()
                )
            })
            .metrics
    } else {
        engine
            .run()
            .unwrap_or_else(|e| {
                panic!(
                    "{} (in-memory, full_reassign={full_reassign}): {e}",
                    kind.name()
                )
            })
            .metrics
    };
    (metrics, log.seq)
}

/// Every registry policy the differential harness sweeps.
fn registry() -> Vec<PolicyKind> {
    let mut kinds = PolicyKind::all_standard();
    kinds.push(PolicyKind::Threshold(2.0));
    kinds
}

/// The full four-way check for one policy on one instance.
///
/// * streaming ≡ in-memory **exactly** (per per-event path): every scalar
///   of [`RunMetrics`] via `assert_eq!`, and the completion sequence
///   including intra-event order;
/// * incremental ≡ legacy within [`RTOL`] (pre-existing guarantee, checked
///   here so a streaming-only regression cannot hide behind it);
/// * strict audits pass in all four modes.
fn assert_four_way(inst: &Instance, kind: PolicyKind, m: f64, audit: AuditLevel) {
    let name = kind.name();
    let (mem_inc, seq_mem_inc) = run_mode(inst, kind, m, false, false, audit);
    let (st_inc, seq_st_inc) = run_mode(inst, kind, m, false, true, audit);
    let (mem_leg, seq_mem_leg) = run_mode(inst, kind, m, true, false, audit);
    let (st_leg, seq_st_leg) = run_mode(inst, kind, m, true, true, audit);

    // Memory mode is invisible: bit-identical aggregates and sequences.
    assert_eq!(
        mem_inc, st_inc,
        "{name}: streaming ≠ in-memory (incremental)"
    );
    assert_eq!(mem_leg, st_leg, "{name}: streaming ≠ in-memory (legacy)");
    assert_eq!(
        seq_mem_inc, seq_st_inc,
        "{name}: completion sequences diverge (incremental)"
    );
    assert_eq!(
        seq_mem_leg, seq_st_leg,
        "{name}: completion sequences diverge (legacy)"
    );

    // Across per-event paths: same schedule up to float tolerance.
    assert_eq!(
        seq_mem_inc.len(),
        seq_mem_leg.len(),
        "{name}: completion counts differ across paths"
    );
    for (what, u, v) in [
        ("total_flow", mem_inc.total_flow, mem_leg.total_flow),
        (
            "fractional_flow",
            mem_inc.fractional_flow,
            mem_leg.fractional_flow,
        ),
        (
            "alive_integral",
            mem_inc.alive_integral,
            mem_leg.alive_integral,
        ),
        ("makespan", mem_inc.makespan, mem_leg.makespan),
        ("max_flow", mem_inc.max_flow, mem_leg.max_flow),
        (
            "total_stretch",
            mem_inc.total_stretch,
            mem_leg.total_stretch,
        ),
        (
            "total_weighted_flow",
            mem_inc.total_weighted_flow,
            mem_leg.total_weighted_flow,
        ),
    ] {
        assert!(
            close(u, v, v),
            "{name}: {what} = {u} (incremental) vs {v} (legacy)"
        );
    }
}

/// One generated job: `(release, size, curve selector, alpha)`.
fn job_from(id: u64, raw: (f64, f64, u8, f64)) -> JobSpec {
    let (release, size, which, alpha) = raw;
    let curve = match which % 4 {
        0 => Curve::Sequential,
        1 => Curve::FullyParallel,
        2 => Curve::power(alpha),
        _ => Curve::try_amdahl(alpha.min(0.9)).unwrap(),
    };
    JobSpec::new(JobId(id), release, size, curve)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: all four modes agree for every registry
    /// policy on random mixed-curve instances, under a strict audit.
    #[test]
    fn streaming_matches_all_in_memory_paths_on_random_instances(
        raw in proptest::collection::vec(
            (0.0f64..12.0, 0.1f64..8.0, 0u8..4, 0.05f64..1.0),
            1..24,
        ),
        m_sel in 0u8..3,
    ) {
        let m = [1.0, 2.0, 8.0][m_sel as usize];
        let jobs: Vec<JobSpec> = raw
            .into_iter()
            .enumerate()
            .map(|(i, r)| job_from(i as u64, r))
            .collect();
        let inst = Instance::new(jobs).unwrap();
        for kind in registry() {
            assert_four_way(&inst, kind, m, AuditLevel::Strict);
        }
    }

    /// Burst arrivals landing exactly on completion instants: arrivals in
    /// the same event as retirements, so freshly-freed arena slots are
    /// reused immediately. Slot reuse must not perturb anything — the
    /// SRPT order keys on `(remaining, release, id)`, never on the index.
    #[test]
    fn burst_at_retirement_boundary_matches(
        p in 0.5f64..4.0,
        burst in 2usize..6,
        m_sel in 0u8..2,
    ) {
        let m = [2.0, 4.0][m_sel as usize];
        let mut jobs: Vec<JobSpec> = (0..m as u64)
            .map(|i| JobSpec::new(JobId(i), 0.0, p, Curve::Sequential))
            .collect();
        for k in 0..burst as u64 {
            jobs.push(JobSpec::new(
                JobId(m as u64 + k),
                p,
                1.0 + (k / 2) as f64,
                if k % 2 == 0 { Curve::Sequential } else { Curve::power(0.5) },
            ));
        }
        let inst = Instance::new(jobs).unwrap();
        for kind in registry() {
            assert_four_way(&inst, kind, m, AuditLevel::Strict);
        }
    }

    /// Moderately large random workloads (n up to 10⁴ across the suite's
    /// case budget) on the flagship policy, audit sampled: exercises many
    /// admit→retire→reuse cycles per slot.
    #[test]
    fn larger_workloads_stay_bit_identical(
        n in 200usize..1000,
        seed_jobs in proptest::collection::vec(
            (0.0f64..50.0, 0.1f64..16.0, 0u8..4, 0.05f64..1.0),
            8,
        ),
    ) {
        // Tile the 8 sampled job shapes across n ids with arithmetic
        // release jitter — large n without a huge generated vector.
        let jobs: Vec<JobSpec> = (0..n)
            .map(|i| {
                let (release, size, which, alpha) = seed_jobs[i % seed_jobs.len()];
                job_from(
                    i as u64,
                    (release + (i / seed_jobs.len()) as f64 * 0.37, size, which, alpha),
                )
            })
            .collect();
        let inst = Instance::new(jobs).unwrap();
        for kind in [PolicyKind::IntermediateSrpt, PolicyKind::Equi] {
            assert_four_way(&inst, kind, 8.0, AuditLevel::Sampled(64));
        }
    }
}

/// Deterministic regression: simultaneous completions *at* the retirement
/// boundary together with a same-instant burst. Two jobs retire in one
/// event (their slots hit the free list back-to-back), the burst reuses
/// those exact slots, and a straggler lands mid-drain.
#[test]
fn regression_simultaneous_retirement_with_burst() {
    let m = 2.0;
    let jobs = vec![
        JobSpec::new(JobId(0), 0.0, 2.0, Curve::Sequential),
        JobSpec::new(JobId(1), 0.0, 2.0, Curve::Sequential),
        JobSpec::new(JobId(2), 2.0, 1.0, Curve::Sequential),
        JobSpec::new(JobId(3), 2.0, 1.0, Curve::Sequential),
        JobSpec::new(JobId(4), 2.0, 2.0, Curve::power(0.5)),
        JobSpec::new(JobId(5), 2.5, 0.25, Curve::FullyParallel),
    ];
    let inst = Instance::new(jobs).unwrap();
    for kind in registry() {
        assert_four_way(&inst, kind, m, AuditLevel::Strict);
    }
}

/// Deterministic regression: a long chain of disjoint-lifetime jobs, so a
/// single arena slot is recycled dozens of times while the big aggregates
/// accumulate — the shape that would expose any sink/finalizer divergence
/// between the memory modes.
#[test]
fn regression_single_slot_recycled_many_times() {
    let jobs: Vec<JobSpec> = (0..64)
        .map(|i| JobSpec::new(JobId(i), 3.0 * i as f64, 1.0, Curve::power(0.5)))
        .collect();
    let inst = Instance::new(jobs).unwrap();
    for kind in registry() {
        assert_four_way(&inst, kind, 4.0, AuditLevel::Strict);
    }
}

/// The PR 6 mixed-α fixture through the full oracle: four α classes per
/// instance, so the kernel-class registry path (Γ evaluation grouped by
/// curve class, PR 6) is exercised in all four modes rather than the
/// single-class fast path the other fixtures mostly hit.
#[test]
fn mixed_alpha_fixture_agrees_in_all_four_modes() {
    let inst = parsched_bench::mixed_alpha_fixture(160, 0.9, 4.0);
    // The fixture draws from four distinct α values; the class registry
    // must actually be multi-class or this test regressed into the fast
    // path.
    let classes: std::collections::BTreeSet<u64> = inst
        .jobs()
        .iter()
        .map(|j| match j.curve {
            Curve::Power { alpha } => alpha.to_bits(),
            ref other => panic!("fixture emits power curves only, got {other:?}"),
        })
        .collect();
    assert!(
        classes.len() >= 4,
        "expected ≥ 4 α classes, got {classes:?}"
    );
    for kind in registry() {
        assert_four_way(&inst, kind, 4.0, AuditLevel::Strict);
    }
}

/// The convenience entry points agree with each other: `simulate` (the
/// in-memory helper) and `simulate_streaming` over a `StaticSource` of the
/// same instance produce identical metrics.
#[test]
fn convenience_entry_points_agree() {
    let inst = Instance::from_sizes(
        &[(0.0, 4.0), (0.5, 1.0), (1.0, 2.0), (1.0, 2.0), (3.0, 0.5)],
        Curve::power(0.5),
    )
    .unwrap();
    let mut policy = PolicyKind::IntermediateSrpt.build();
    let mem = parsched_sim::simulate(&inst, policy.as_mut(), 4.0).unwrap();
    let mut source = StaticSource::new(&inst);
    let mut policy2 = PolicyKind::IntermediateSrpt.build();
    let st = parsched_sim::simulate_streaming(&mut source, policy2.as_mut(), 4.0).unwrap();
    assert_eq!(mem.metrics, st.metrics);
    assert_eq!(st.admitted, inst.len());
}
