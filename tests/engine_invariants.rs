//! Property tests of the runtime invariant-audit layer: every registry
//! policy, on both engine paths, passes a strict audit on random
//! workloads — and a deliberately broken policy is *caught*, with
//! structured context identifying the event.

use proptest::prelude::*;

use parsched_repro::policies::PolicyKind;
use parsched_repro::sim::{
    AuditLevel, Engine, EngineConfig, EnginePath, Instance, JobId, JobSpec, NullObserver, Policy,
    RunOutcome, SimError, StaticSource,
};
use parsched_repro::speedup::Curve;

/// Strategy: a small random instance of power-law jobs.
fn arb_instance() -> impl Strategy<Value = Instance> {
    let job = (0.0f64..20.0, 1.0f64..16.0, 0.0f64..=1.0);
    proptest::collection::vec(job, 1..24).prop_map(|jobs| {
        Instance::new(
            jobs.into_iter()
                .enumerate()
                .map(|(i, (r, p, a))| JobSpec::new(JobId(i as u64), r, p, Curve::power(a)))
                .collect(),
        )
        .expect("valid instance")
    })
}

/// Every policy the registry can build, including the θ-ablation.
fn arb_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::IntermediateSrpt),
        Just(PolicyKind::ParallelSrpt),
        Just(PolicyKind::SequentialSrpt),
        Just(PolicyKind::Greedy),
        Just(PolicyKind::Equi),
        Just(PolicyKind::Laps(0.5)),
        Just(PolicyKind::Setf),
        Just(PolicyKind::Threshold(2.0)),
    ]
}

fn run_audited(
    inst: &Instance,
    kind: PolicyKind,
    m: f64,
    full_reassign: bool,
    level: AuditLevel,
) -> Result<RunOutcome, SimError> {
    let mut policy = kind.build();
    let mut source = StaticSource::new(inst);
    let mut obs = NullObserver;
    Engine::new(
        EngineConfig::new(m)
            .with_full_reassign(full_reassign)
            .with_audit(level),
        &mut policy,
        &mut source,
        &mut obs,
    )
    .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Zero violations at Strict for every registry policy, on both the
    /// exhaustive and (where the policy supports it) incremental paths —
    /// and the audited metrics match the unaudited run exactly.
    #[test]
    fn strict_audit_passes_everywhere(
        inst in arb_instance(),
        kind in arb_policy(),
        m in 1u32..=8,
    ) {
        let m = f64::from(m);
        for full_reassign in [false, true] {
            let plain = run_audited(&inst, kind, m, full_reassign, AuditLevel::Off).expect("run");
            prop_assert!(plain.audit.is_none());
            let out = run_audited(&inst, kind, m, full_reassign, AuditLevel::Strict)
                .unwrap_or_else(|e| panic!(
                    "{} (full_reassign={full_reassign}) failed audit: {e}",
                    kind.name()
                ));
            let report = out.audit.expect("audited run carries a report");
            prop_assert!(report.frames > 0 || inst.is_empty());
            prop_assert!(report.final_checked);
            // Auditing is observation only: the schedule is unchanged.
            prop_assert_eq!(&out.metrics, &plain.metrics);
        }
    }

    /// Sampled and Final levels accept whatever Strict accepts.
    #[test]
    fn weaker_levels_are_monotone(
        inst in arb_instance(),
        kind in arb_policy(),
        stride in 2u32..=128,
    ) {
        run_audited(&inst, kind, 4.0, false, AuditLevel::Strict).expect("strict");
        let sampled = run_audited(&inst, kind, 4.0, false, AuditLevel::Sampled(stride))
            .expect("sampled");
        let report = sampled.audit.expect("report");
        prop_assert!(report.frames <= sampled.metrics.events);
        let fin = run_audited(&inst, kind, 4.0, false, AuditLevel::Final).expect("final");
        let report = fin.audit.expect("report");
        prop_assert_eq!(report.frames, 0);
        prop_assert!(report.final_checked);
    }
}

/// A deliberately broken policy: it *claims* SRPT-ordered allocations
/// ([`Policy::srpt_ordered`]) but gives the whole machine to the job with
/// the **most** remaining work — the exact mutation the srpt-prefix
/// invariant exists to catch.
struct AntiSrpt;

impl Policy for AntiSrpt {
    fn name(&self) -> String {
        "anti-srpt".into()
    }

    fn assign(
        &mut self,
        _now: f64,
        m: f64,
        jobs: &[parsched_repro::sim::AliveJob<'_>],
        shares: &mut [f64],
    ) -> Option<f64> {
        let longest = (0..jobs.len())
            .max_by(|&a, &b| jobs[a].remaining.total_cmp(&jobs[b].remaining))
            .expect("assign is called with alive jobs");
        shares.fill(0.0);
        shares[longest] = m;
        None
    }

    fn srpt_ordered(&self) -> bool {
        true
    }
}

#[test]
fn mutated_policy_is_caught_with_structured_context() {
    // Two jobs alive from t = 0 with distinct remaining work: serving the
    // larger one while starving the smaller violates the SRPT-prefix claim
    // at the very first allocation.
    let inst = Instance::new(vec![
        JobSpec::new(JobId(0), 0.0, 1.0, Curve::FullyParallel),
        JobSpec::new(JobId(1), 0.0, 2.0, Curve::FullyParallel),
    ])
    .unwrap();
    let mut policy = AntiSrpt;
    let mut source = StaticSource::new(&inst);
    let mut obs = NullObserver;
    let err = Engine::new(
        EngineConfig::new(1.0).with_audit(AuditLevel::Strict),
        &mut policy,
        &mut source,
        &mut obs,
    )
    .run()
    .expect_err("the auditor must reject the anti-SRPT allocation");
    let SimError::AuditFailed { violation } = err else {
        panic!("expected AuditFailed, got {err:?}")
    };
    assert_eq!(violation.invariant, "srpt-prefix");
    assert_eq!(violation.event, 0, "caught at the first allocation");
    assert_eq!(violation.at, 0.0);
    assert_eq!(violation.policy, "anti-srpt");
    assert_eq!(violation.path, EnginePath::Exhaustive);
    assert!(
        violation.detail.contains("job"),
        "detail names the starved job: {}",
        violation.detail
    );
    // The same policy without the claim is (by this invariant) fine.
    struct Honest;
    impl Policy for Honest {
        fn name(&self) -> String {
            "honest-lrpt".into()
        }
        fn assign(
            &mut self,
            now: f64,
            m: f64,
            jobs: &[parsched_repro::sim::AliveJob<'_>],
            shares: &mut [f64],
        ) -> Option<f64> {
            AntiSrpt.assign(now, m, jobs, shares)
        }
    }
    let mut policy = Honest;
    let mut source = StaticSource::new(&inst);
    let mut obs = NullObserver;
    Engine::new(
        EngineConfig::new(1.0).with_audit(AuditLevel::Strict),
        &mut policy,
        &mut source,
        &mut obs,
    )
    .run()
    .expect("without the srpt_ordered claim the run is conservation-clean");
}

#[test]
fn corrupted_trace_allocation_is_caught_as_capacity_violation() {
    // A live policy cannot oversubscribe — the engine rejects infeasible
    // allocations before the auditor sees them — so the capacity mutation
    // goes through the offline replayer, which trusts only the invariants.
    use parsched_repro::sim::{record_run, replay, TraceEvent};

    let inst = Instance::new(vec![
        JobSpec::new(JobId(0), 0.0, 4.0, Curve::FullyParallel),
        JobSpec::new(JobId(1), 0.0, 4.0, Curve::FullyParallel),
    ])
    .unwrap();
    let (mut trace, _) = record_run(&inst, &mut PolicyKind::Equi.build(), 2.0).unwrap();
    let (corrupt_index, t) = trace
        .events
        .iter()
        .enumerate()
        .find_map(|(i, ev)| match ev {
            TraceEvent::Allocation { t, shares } if !shares.is_empty() => Some((i, *t)),
            _ => None,
        })
        .expect("trace has allocations");
    if let TraceEvent::Allocation { shares, .. } = &mut trace.events[corrupt_index] {
        shares[0].1 += 5.0;
    }
    let err = replay(&trace, AuditLevel::Strict)
        .expect_err("the replayer must reject an oversubscribed allocation");
    let SimError::AuditFailed { violation } = err else {
        panic!("expected AuditFailed, got {err:?}")
    };
    assert_eq!(violation.invariant, "capacity");
    assert_eq!(violation.path, EnginePath::Replay);
    assert_eq!(violation.at, t);
    assert!((violation.expected - 2.0).abs() < 1e-12);
    assert!(violation.actual > 2.0);
}
