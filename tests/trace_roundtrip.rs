//! Trace round-trip guarantees: record → serialize → parse → replay
//! reproduces the original run's metrics and passes a strict audit — and
//! a committed golden fixture pins the on-disk format so accidental
//! schema drift fails loudly.

use std::path::PathBuf;

use parsched_repro::policies::PolicyKind;
use parsched_repro::sim::trace::{trace_from_json, trace_to_json};
use parsched_repro::sim::{record_run, replay, AuditLevel, Instance, JobId, JobSpec, SimError};
use parsched_repro::speedup::Curve;

/// The fixed instance behind `tests/fixtures/golden_trace.json`: one job
/// of each curve family, staggered releases, awkward (non-dyadic) sizes.
fn golden_instance() -> Instance {
    Instance::new(vec![
        JobSpec::new(JobId(0), 0.0, 5.0, Curve::power(0.5)),
        JobSpec::new(JobId(1), 0.5, 3.0, Curve::Sequential),
        JobSpec::new(JobId(2), 1.0, 4.0, Curve::FullyParallel),
        JobSpec::new(JobId(3), 1.5, 2.0, Curve::try_amdahl(0.25).unwrap()),
        JobSpec::new(JobId(4), 2.0, 1.0 / 3.0, Curve::power(1.0 / 7.0)),
    ])
    .unwrap()
}

/// Replay re-accumulates sums in a different order than the engine, so
/// float fields may differ in the last ulp; counts must match exactly.
fn assert_metrics_close(
    a: &parsched_repro::sim::RunMetrics,
    b: &parsched_repro::sim::RunMetrics,
    what: &str,
) {
    assert_eq!(a.num_jobs, b.num_jobs, "{what}: num_jobs");
    assert_eq!(a.events, b.events, "{what}: events");
    for (name, x, y) in [
        ("total_flow", a.total_flow, b.total_flow),
        ("mean_flow", a.mean_flow, b.mean_flow),
        ("max_flow", a.max_flow, b.max_flow),
        ("fractional_flow", a.fractional_flow, b.fractional_flow),
        ("makespan", a.makespan, b.makespan),
        ("alive_integral", a.alive_integral, b.alive_integral),
        ("total_stretch", a.total_stretch, b.total_stretch),
        ("max_stretch", a.max_stretch, b.max_stretch),
        (
            "total_weighted_flow",
            a.total_weighted_flow,
            b.total_weighted_flow,
        ),
    ] {
        assert!(
            (x - y).abs() <= 1e-12 * x.abs().max(1.0),
            "{what}: {name} {x} vs {y}"
        );
    }
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("golden_trace.json")
}

#[test]
fn record_serialize_replay_reproduces_metrics() {
    let inst = golden_instance();
    for kind in PolicyKind::all_standard() {
        for m in [1.0, 2.0, 5.0] {
            let (trace, outcome) = record_run(&inst, kind.build().as_mut(), m).unwrap();
            let json = trace_to_json(&trace);
            let parsed = trace_from_json(&json).unwrap();
            assert_eq!(parsed, trace, "{} m={m}: lossy serialization", kind.name());
            let replayed = replay(&parsed, AuditLevel::Strict)
                .unwrap_or_else(|e| panic!("{} m={m}: replay failed: {e}", kind.name()));
            assert_metrics_close(
                &replayed.metrics,
                &outcome.metrics,
                &format!("{} m={m}", kind.name()),
            );
            assert!(replayed.report.final_checked);
            assert_eq!(
                replayed.completed.len(),
                outcome.completed.len(),
                "{} m={m}",
                kind.name()
            );
        }
    }
}

#[test]
fn second_serialization_is_byte_identical() {
    let (trace, _) = record_run(
        &golden_instance(),
        PolicyKind::IntermediateSrpt.build().as_mut(),
        2.0,
    )
    .unwrap();
    let json = trace_to_json(&trace);
    let again = trace_to_json(&trace_from_json(&json).unwrap());
    assert_eq!(json, again);
}

/// The committed fixture both replays clean and matches what today's
/// recorder produces for the same instance — any change to the engine's
/// event sequence, float formatting, or the schema shows up as a diff
/// here. Regenerate deliberately with:
/// `PARSCHED_REGEN_GOLDEN=1 cargo test --test trace_roundtrip`.
#[test]
fn golden_fixture_is_stable_and_audit_clean() {
    let (fresh, outcome) = record_run(
        &golden_instance(),
        PolicyKind::IntermediateSrpt.build().as_mut(),
        2.0,
    )
    .unwrap();
    let fresh_json = trace_to_json(&fresh);
    let path = golden_path();
    if std::env::var_os("PARSCHED_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &fresh_json).unwrap();
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e} (regenerate with PARSCHED_REGEN_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        committed, fresh_json,
        "golden trace drifted from the current recorder"
    );
    let replayed = replay(&trace_from_json(&committed).unwrap(), AuditLevel::Strict).unwrap();
    assert_metrics_close(&replayed.metrics, &outcome.metrics, "golden");
}

/// `parsched audit` maps parse errors to exit 2 and audit violations to
/// exit 1, so the two `SimError` shapes must never blur: malformed input
/// (empty files, truncated downloads) is a *parse* error, not an
/// `AuditFailed` — the CLI-level counterpart lives in
/// `crates/cli/tests/cli.rs`.
#[test]
fn empty_and_truncated_traces_are_parse_errors_not_violations() {
    let committed = std::fs::read_to_string(golden_path()).unwrap();
    let half = {
        let mut cut = committed.len() / 2;
        while !committed.is_char_boundary(cut) {
            cut -= 1;
        }
        &committed[..cut]
    };
    for (what, text) in [
        ("empty", ""),
        ("whitespace", "  \n\t\n"),
        ("bare brace", "{"),
        ("truncated golden", half),
        ("wrong top-level type", "[1, 2, 3]"),
    ] {
        let err = trace_from_json(text).expect_err(what);
        assert!(
            !matches!(err, SimError::AuditFailed { .. }),
            "{what}: parse failure misreported as an audit violation: {err}"
        );
    }
    // A recognizable document with the wrong schema tag is also a parse
    // error, and names the offending schema.
    let wrong = committed.replace("parsched-trace/v1", "parsched-trace/v0");
    let err = trace_from_json(&wrong).expect_err("wrong schema");
    assert!(
        err.to_string().contains("unsupported schema"),
        "unexpected error for wrong schema: {err}"
    );
}

/// The flip side: a trace that *parses* but whose recorded summary
/// disagrees with its own event log is an audit violation (`AuditFailed`
/// → CLI exit 1), not a parse error.
#[test]
fn tampered_recorded_metrics_replay_as_a_violation() {
    let (trace, _) = record_run(
        &golden_instance(),
        PolicyKind::IntermediateSrpt.build().as_mut(),
        2.0,
    )
    .unwrap();
    let mut tampered = trace;
    let rec = tampered
        .recorded
        .as_mut()
        .expect("record_run keeps metrics");
    rec.total_flow *= 2.0;
    let err = replay(&tampered, AuditLevel::Strict).expect_err("tampered summary");
    match err {
        SimError::AuditFailed { violation } => {
            assert_eq!(violation.invariant, "recorded-metrics", "{violation}");
        }
        other => panic!("tampered trace must fail as a violation, got: {other}"),
    }
}
