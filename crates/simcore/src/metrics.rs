//! Run outcomes: per-job completions and aggregate flow-time metrics.

use serde::{Deserialize, Serialize};

use crate::job::{Instance, JobId, Time, Work};

/// One finished job with its schedule-dependent timings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletedJob {
    /// Job id.
    pub id: JobId,
    /// Release time `r_j`.
    pub release: Time,
    /// Original size `p_j`.
    pub size: Work,
    /// Completion time `C_j`.
    pub completion: Time,
    /// Importance weight `w_j` (1 in the paper's unweighted setting).
    #[serde(default = "default_weight")]
    pub weight: f64,
}

// Referenced only from the `#[serde(default)]` attribute above; the offline
// serde shim expands that attribute to nothing, so rustc can't see the use.
#[allow(dead_code)]
fn default_weight() -> f64 {
    1.0
}

impl CompletedJob {
    /// Flow (response) time `F_j = C_j − r_j`.
    pub fn flow(&self) -> f64 {
        self.completion - self.release
    }

    /// Stretch `F_j / p_j` — how much worse than "ran alone at rate 1"
    /// (≥ the slowdown against a dedicated processor).
    pub fn stretch(&self) -> f64 {
        self.flow() / self.size
    }

    /// Weighted flow `w_j · F_j`.
    pub fn weighted_flow(&self) -> f64 {
        self.weight * self.flow()
    }
}

/// Aggregate metrics of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RunMetrics {
    /// Total flow time `Σ_j (C_j − r_j)` — the paper's objective (×`n`).
    pub total_flow: f64,
    /// `total_flow / n` (0 when `n = 0`).
    pub mean_flow: f64,
    /// Largest individual flow time.
    pub max_flow: f64,
    /// Total *fractional* flow time `∫ Σ_j p_j(t)/p_j dt`.
    pub fractional_flow: f64,
    /// Time the last job completed.
    pub makespan: Time,
    /// Number of completed jobs.
    pub num_jobs: usize,
    /// Number of engine events processed (arrivals, completions, quanta).
    pub events: u64,
    /// `∫ |A(t)| dt`, which must equal `total_flow` when every job
    /// completes — an internal consistency check used by tests.
    pub alive_integral: f64,
    /// Total stretch `Σ_j F_j / p_j` (flow normalized by size — the
    /// standard fairness companion to total flow in this literature).
    pub total_stretch: f64,
    /// Largest individual stretch.
    pub max_stretch: f64,
    /// Total *weighted* flow `Σ_j w_j·F_j` (equals `total_flow` when all
    /// weights are 1, the paper's setting).
    pub total_weighted_flow: f64,
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Aggregates.
    pub metrics: RunMetrics,
    /// Per-job completions, in completion order.
    pub completed: Vec<CompletedJob>,
    /// The instance as actually emitted by the arrival source. For a
    /// [`crate::StaticSource`] this equals the input; for an adaptive
    /// adversary it is the concrete instance the adversary committed to, and
    /// can be replayed against any other policy or an OPT bound.
    pub instance: Instance,
    /// Report of the runtime invariant audit, when one was enabled via
    /// [`crate::EngineConfig::with_audit`]. `None` means the run was not
    /// audited; `Some` means every enabled check passed (a violation
    /// aborts the run with [`crate::SimError::AuditFailed`] instead).
    pub audit: Option<crate::invariant::AuditReport>,
}

impl RunOutcome {
    /// Flow time of a specific job, if it completed.
    pub fn flow_of(&self, id: JobId) -> Option<f64> {
        self.completed.iter().find(|c| c.id == id).map(|c| c.flow())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completed_job_flow() {
        let c = CompletedJob {
            id: JobId(3),
            release: 2.0,
            size: 1.0,
            completion: 5.5,
            weight: 2.0,
        };
        assert_eq!(c.flow(), 3.5);
        assert_eq!(c.weighted_flow(), 7.0);
        assert_eq!(c.stretch(), 3.5);
    }

    #[test]
    fn flow_of_finds_jobs() {
        let outcome = RunOutcome {
            metrics: RunMetrics::default(),
            completed: vec![CompletedJob {
                id: JobId(1),
                release: 0.0,
                size: 1.0,
                completion: 4.0,
                weight: 1.0,
            }],
            instance: Instance::new(vec![]).unwrap(),
            audit: None,
        };
        assert_eq!(outcome.flow_of(JobId(1)), Some(4.0));
        assert_eq!(outcome.flow_of(JobId(2)), None);
    }
}
