//! A deliberately naive fixed-timestep simulator, kept as a differential
//! oracle for the exact event-driven [`crate::Engine`].
//!
//! The event engine computes completions analytically and is what every
//! experiment uses; this module re-simulates the same semantics with a
//! fixed quantum `dt` (allocations recomputed every step, work drained by
//! `Γ(x)·dt`, completions detected at step boundaries). As `dt → 0` its
//! flow time converges to the exact engine's — the differential tests in
//! this module and the workspace property suite pin both implementations
//! against each other, so a bug would have to be present in two
//! independently written simulators to go unnoticed.

use parsched_speedup::EPS;

use crate::error::SimError;
use crate::job::{Instance, Time};
use crate::kahan::NeumaierSum;
use crate::policy::{AliveJob, Policy};

/// Result of a quantized run.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedOutcome {
    /// Total flow time (completions rounded up to step boundaries, so
    /// this converges to the exact value from above as `dt → 0`).
    pub total_flow: f64,
    /// Number of completed jobs.
    pub num_jobs: usize,
    /// Steps executed.
    pub steps: u64,
}

/// Simulates `policy` on `instance` with timestep `dt`.
///
/// Errors mirror the exact engine's: infeasible allocations are rejected,
/// and a configurable step budget guards against starvation (a policy
/// that never serves some job).
pub fn simulate_quantized(
    instance: &Instance,
    policy: &mut dyn Policy,
    m: f64,
    dt: Time,
    max_steps: u64,
) -> Result<QuantizedOutcome, SimError> {
    assert!(dt > 0.0 && dt.is_finite());
    policy.reset();
    let jobs = instance.jobs();
    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.size).collect();
    let mut done: Vec<bool> = vec![false; jobs.len()];
    let mut next_arrival = 0usize;
    let mut alive: Vec<usize> = Vec::new();
    let mut total_flow = NeumaierSum::new();
    let mut completed = 0usize;
    let mut steps = 0u64;
    let mut now = 0.0f64;
    let mut shares: Vec<f64> = Vec::new();

    while completed < jobs.len() {
        steps += 1;
        if steps > max_steps {
            return Err(SimError::EventLimit { limit: max_steps });
        }
        // Admit arrivals due by the start of this step.
        while next_arrival < jobs.len() && jobs[next_arrival].release <= now + EPS {
            alive.push(next_arrival);
            next_arrival += 1;
        }
        if alive.is_empty() {
            // Jump to the next arrival (aligned to the step grid).
            let t = jobs[next_arrival].release;
            let k = ((t - now) / dt).floor().max(0.0);
            now += (k + 1.0) * dt;
            continue;
        }
        // Ask the policy.
        let views: Vec<AliveJob<'_>> = alive
            .iter()
            .map(|&i| AliveJob {
                spec: &jobs[i],
                remaining: remaining[i],
            })
            .collect();
        shares.clear();
        shares.resize(alive.len(), 0.0);
        policy.assign(now, m, &views, &mut shares);
        let total = NeumaierSum::total(shares.iter().map(|s| s.max(0.0)));
        if total > m * (1.0 + 1e-9) + EPS {
            return Err(SimError::InfeasibleAllocation {
                at: now,
                requested: total,
                available: m,
                policy: policy.name(),
            });
        }
        // Drain for one step.
        now += dt;
        let mut i = 0;
        while i < alive.len() {
            let idx = alive[i];
            let rate = jobs[idx].curve.rate(shares[i].max(0.0));
            remaining[idx] -= rate * dt;
            if remaining[idx] <= EPS * jobs[idx].size.max(1.0) {
                remaining[idx] = 0.0;
                done[idx] = true;
                total_flow.add(now - jobs[idx].release);
                completed += 1;
                alive.swap_remove(i);
                shares.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }
    debug_assert!(done.iter().all(|&d| d));
    Ok(QuantizedOutcome {
        total_flow: total_flow.value(),
        num_jobs: completed,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::policy::EquiSplit;
    use parsched_speedup::Curve;

    fn inst(jobs: &[(f64, f64)], curve: Curve) -> Instance {
        Instance::from_sizes(jobs, curve).unwrap()
    }

    #[test]
    fn converges_to_the_exact_engine() {
        let instance = inst(
            &[(0.0, 3.0), (0.5, 1.0), (2.0, 2.5), (2.0, 4.0)],
            Curve::power(0.6),
        );
        let exact = simulate(&instance, &mut EquiSplit, 3.0)
            .unwrap()
            .metrics
            .total_flow;
        let mut prev_err = f64::INFINITY;
        for dt in [0.1, 0.01, 0.001] {
            let q = simulate_quantized(&instance, &mut EquiSplit, 3.0, dt, 10_000_000).unwrap();
            let err = (q.total_flow - exact).abs();
            assert!(
                err < prev_err + 1e-12,
                "error should shrink: dt={dt}, {err}"
            );
            prev_err = err;
        }
        assert!(prev_err < 0.05, "final error too large: {prev_err}");
    }

    #[test]
    fn quantized_flow_upper_bounds_exact_flow() {
        // Completions are rounded up to step boundaries, so the quantized
        // flow can only overestimate (given the same trajectory).
        let instance = inst(&[(0.0, 2.0), (0.0, 1.0)], Curve::Sequential);
        let exact = simulate(&instance, &mut EquiSplit, 2.0)
            .unwrap()
            .metrics
            .total_flow;
        let q = simulate_quantized(&instance, &mut EquiSplit, 2.0, 0.05, 1_000_000).unwrap();
        assert!(q.total_flow >= exact - 1e-9);
        assert_eq!(q.num_jobs, 2);
    }

    #[test]
    fn idle_gaps_are_skipped_on_the_grid() {
        let instance = inst(&[(0.0, 1.0), (100.0, 1.0)], Curve::Sequential);
        let q = simulate_quantized(&instance, &mut EquiSplit, 1.0, 0.5, 1_000_000).unwrap();
        // Should not take 200+ steps of idling per unit: the gap is jumped.
        assert!(q.steps < 50, "steps = {}", q.steps);
        assert_eq!(q.num_jobs, 2);
    }

    #[test]
    fn step_budget_is_enforced() {
        let instance = inst(&[(0.0, 1000.0)], Curve::Sequential);
        let err = simulate_quantized(&instance, &mut EquiSplit, 1.0, 0.001, 100).unwrap_err();
        assert!(matches!(err, SimError::EventLimit { limit: 100 }));
    }
}
