//! Continuous-time, event-driven simulator for malleable tasks with
//! speed-up curves.
//!
//! This crate is the machine-model substrate for the SPAA'14 reproduction:
//! `m` identical unit-speed processors that can be **fractionally divided**
//! among jobs, where a job allocated `x` processors drains work at rate
//! `Γ_j(x)` given by its speed-up curve ([`parsched_speedup::Curve`]).
//!
//! # Architecture
//!
//! * [`Instance`] / [`JobSpec`] — a static description of a workload.
//! * [`Policy`] — an online scheduler: at each decision point it maps the
//!   set of alive jobs to a processor allocation (and may request an early
//!   re-decision via a *quantum*, used by policies whose allocation drifts
//!   between discrete events, like the paper's §3 greedy hybrid).
//! * [`ArrivalSource`] — where jobs come from. [`StaticSource`] replays an
//!   [`Instance`]; adaptive adversaries (the paper's Theorem 2 construction)
//!   implement this trait and may inspect the live system state through
//!   [`SystemView`] when deciding what to release next.
//! * [`Engine`] — the event loop. Between events every allocation is
//!   constant, so each job's remaining work is a linear function of time and
//!   the engine computes the next completion **analytically**; for all the
//!   SRPT-family policies in `parsched` the simulation is therefore exact
//!   (up to `f64`), not time-stepped.
//! * [`Observer`] — trace hooks (per event) used by the potential-function
//!   instrumentation and the lemma checkers in `parsched-analysis`.
//! * [`AllocationPlan`] / [`PlannedPolicy`] — replay a hand-constructed
//!   schedule (the paper's "standard" and "alternative" OPT schedules).
//!
//! # Example
//!
//! ```
//! use parsched_sim::{simulate, Instance, JobSpec, JobId, EquiSplit};
//! use parsched_speedup::Curve;
//!
//! // Two jobs of intermediate parallelizability on 4 processors.
//! let inst = Instance::new(vec![
//!     JobSpec::new(JobId(0), 0.0, 4.0, Curve::power(0.5)),
//!     JobSpec::new(JobId(1), 0.0, 4.0, Curve::power(0.5)),
//! ]).unwrap();
//! let outcome = simulate(&inst, &mut EquiSplit::new(), 4.0).unwrap();
//! // Each job gets 2 processors → rate √2 → finishes at 4/√2 ≈ 2.83.
//! assert!((outcome.metrics.total_flow - 2.0 * 4.0 / 2f64.sqrt()).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod calendar;
pub mod csv;
mod engine;
mod error;
#[cfg(feature = "hotpath")]
pub mod hotpath;
pub mod invariant;
mod job;
pub mod jsonlite;
mod kahan;
mod metrics;
mod observer;
mod plan;
mod policy;
pub mod quantized;
mod snapshot;
mod source;
mod srpt_set;
mod streaming;
pub mod trace;

pub use engine::{
    simulate, simulate_audited, simulate_streaming, simulate_streaming_audited,
    simulate_with_observer, AliveSnapshot, Engine, EngineBuffers, EngineConfig, EventQueueKind,
};
pub use error::SimError;
pub use invariant::{AuditLevel, AuditReport, Auditor, EnginePath, Invariant, Violation};
pub use job::{class_index, num_classes, Instance, JobId, JobSpec, Time, Work};
pub use kahan::NeumaierSum;
pub use metrics::{CompletedJob, RunMetrics, RunOutcome};
pub use observer::{
    AliveTrace, AllocationSegment, AllocationTrace, NullObserver, Observer, TracePoint,
};
pub use plan::{AllocationPlan, PlanSegment, PlannedPolicy};
pub use policy::{AliveJob, AllocationStability, EquiSplit, Policy, PrefixAllocation};
pub use snapshot::{Snapshot, SNAP_FORMAT};
pub use source::{arrival_tolerance, ArrivalSource, StaticSource, SystemView};
pub use streaming::{QuantileSketch, StreamingMetrics, StreamingOutcome};
pub use trace::{record_run, replay, ReplayOutcome, Trace, TraceEvent, TraceRecorder};
