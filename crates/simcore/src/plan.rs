//! Fixed allocation timelines ("planned" schedules).
//!
//! The paper's lower-bound proofs exhibit explicit feasible schedules (the
//! "standard schedule" of Theorem 2 and the "alternative algorithm" of
//! Lemma 10) whose flow time upper-bounds OPT. [`AllocationPlan`] expresses
//! such a schedule as a piecewise-constant allocation timeline, and
//! [`PlannedPolicy`] replays it through the ordinary [`Policy`] interface so
//! the engine can execute and *verify* it (a plan that fails to finish its
//! jobs, or overcommits processors, is rejected at construction or run
//! time).

// BTreeMap, not HashMap: `from_tracks` *iterates* the active set to emit
// `PlanSegment::shares`, so the map's iteration order is observable in the
// plan (and in anything downstream that hashes or serializes it). Ordered
// maps keep plans a pure function of their inputs.
use std::collections::BTreeMap;

use parsched_speedup::EPS;
use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::job::{JobId, Time};
use crate::policy::{AliveJob, Policy};

/// A constant allocation over a half-open time interval `[start, end)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanSegment {
    /// Interval start.
    pub start: Time,
    /// Interval end (exclusive).
    pub end: Time,
    /// Processor shares per job during the interval. Jobs not listed get 0.
    pub shares: Vec<(JobId, f64)>,
}

/// A piecewise-constant allocation timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationPlan {
    segments: Vec<PlanSegment>,
}

impl AllocationPlan {
    /// Builds a plan, validating segment ordering and feasibility on `m`
    /// processors.
    pub fn new(mut segments: Vec<PlanSegment>, m: f64) -> Result<Self, SimError> {
        segments.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite times"));
        let mut prev_end = 0.0;
        for (i, seg) in segments.iter().enumerate() {
            if !seg.start.is_finite() || !seg.end.is_finite() || seg.end <= seg.start {
                return Err(SimError::BadInstance {
                    what: format!(
                        "plan segment {i} has invalid interval [{}, {})",
                        seg.start, seg.end
                    ),
                });
            }
            if seg.start < prev_end - EPS {
                return Err(SimError::BadInstance {
                    what: format!("plan segment {i} overlaps its predecessor"),
                });
            }
            prev_end = seg.end;
            let total =
                crate::kahan::NeumaierSum::total(seg.shares.iter().map(|&(_, s)| s.max(0.0)));
            if seg.shares.iter().any(|&(_, s)| !s.is_finite() || s < -EPS) {
                return Err(SimError::BadInstance {
                    what: format!("plan segment {i} has an invalid share"),
                });
            }
            if total > m * (1.0 + 1e-9) + EPS {
                return Err(SimError::BadInstance {
                    what: format!("plan segment {i} uses {total} > {m} processors"),
                });
            }
        }
        Ok(Self { segments })
    }

    /// Builds a plan from per-job *tracks* — intervals `(start, end, job,
    /// share)` that may overlap in time across jobs.
    ///
    /// The paper's hand-constructed OPT schedules are naturally expressed
    /// as one track per job ("this long job holds one machine for the whole
    /// phase"); this constructor sweeps the track endpoints and merges them
    /// into the non-overlapping piecewise-constant segments the plan
    /// representation requires, validating feasibility (`Σ shares ≤ m`) in
    /// every elementary interval.
    pub fn from_tracks(tracks: &[(Time, Time, JobId, f64)], m: f64) -> Result<Self, SimError> {
        #[derive(Clone, Copy)]
        enum Edge {
            Start(usize),
            End(usize),
        }
        let mut events: Vec<(Time, Edge)> = Vec::with_capacity(tracks.len() * 2);
        for (i, &(start, end, id, share)) in tracks.iter().enumerate() {
            if !start.is_finite() || !end.is_finite() || end <= start {
                return Err(SimError::BadInstance {
                    what: format!("track for {id} has invalid interval [{start}, {end})"),
                });
            }
            if !share.is_finite() || share < 0.0 {
                return Err(SimError::BadInstance {
                    what: format!("track for {id} has invalid share {share}"),
                });
            }
            events.push((start, Edge::Start(i)));
            events.push((end, Edge::End(i)));
        }
        // Ends before starts at equal times, so back-to-back tracks of the
        // same job don't double-count.
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).expect("finite times").then_with(|| {
                let rank = |e: &Edge| match e {
                    Edge::End(_) => 0,
                    Edge::Start(_) => 1,
                };
                rank(&a.1).cmp(&rank(&b.1))
            })
        });
        let mut segments = Vec::new();
        let mut active: BTreeMap<JobId, f64> = BTreeMap::new();
        let mut prev_t: Option<Time> = None;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            if let Some(p) = prev_t {
                if t > p + EPS && !active.is_empty() {
                    let shares: Vec<(JobId, f64)> = active
                        .iter()
                        .filter(|&(_, &s)| s > EPS)
                        .map(|(&id, &s)| (id, s))
                        .collect();
                    if !shares.is_empty() {
                        segments.push(PlanSegment {
                            start: p,
                            end: t,
                            shares,
                        });
                    }
                }
            }
            // Apply every edge at this timestamp.
            while i < events.len() && events[i].0 <= t + EPS {
                match events[i].1 {
                    Edge::End(k) => {
                        let (_, _, id, share) = tracks[k];
                        if let Some(s) = active.get_mut(&id) {
                            *s -= share;
                            if *s <= EPS {
                                active.remove(&id);
                            }
                        }
                    }
                    Edge::Start(k) => {
                        let (_, _, id, share) = tracks[k];
                        *active.entry(id).or_insert(0.0) += share;
                    }
                }
                i += 1;
            }
            prev_t = Some(t);
        }
        Self::new(segments, m)
    }

    /// The validated segments in time order.
    pub fn segments(&self) -> &[PlanSegment] {
        &self.segments
    }

    /// The segment active at time `t`, if any.
    pub fn segment_at(&self, t: Time) -> Option<&PlanSegment> {
        // Last segment with start ≤ t whose end is still ahead.
        let idx = self.segments.partition_point(|s| s.start <= t + EPS);
        if idx == 0 {
            return None;
        }
        // lint:allow(L007) idx > 0 is established by the branch above and segments is non-empty; in bounds by construction
        let seg = &self.segments[idx - 1];
        (t < seg.end - EPS).then_some(seg)
    }

    /// End time of the final segment (0 for an empty plan).
    pub fn horizon(&self) -> Time {
        self.segments.last().map_or(0.0, |s| s.end)
    }
}

/// Replays an [`AllocationPlan`] as a [`Policy`].
///
/// Jobs alive but absent from the current segment receive zero processors;
/// time outside all segments is idle. Combined with the engine's stall
/// detection this means an incomplete plan fails loudly rather than
/// producing a bogus flow time.
#[derive(Debug, Clone)]
pub struct PlannedPolicy {
    plan: AllocationPlan,
    name: String,
}

impl PlannedPolicy {
    /// Wraps a plan.
    pub fn new(plan: AllocationPlan) -> Self {
        Self {
            plan,
            name: "planned".to_string(),
        }
    }

    /// Wraps a plan with a display name.
    pub fn named(plan: AllocationPlan, name: impl Into<String>) -> Self {
        Self {
            plan,
            name: name.into(),
        }
    }
}

impl Policy for PlannedPolicy {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn assign(
        &mut self,
        now: Time,
        _m: f64,
        jobs: &[AliveJob<'_>],
        shares: &mut [f64],
    ) -> Option<f64> {
        shares.fill(0.0);
        match self.plan.segment_at(now) {
            Some(seg) => {
                // lint:allow(L007) exhaustive-oracle planning arm, not the streaming steady-state path
                let lookup: BTreeMap<JobId, f64> = seg.shares.iter().copied().collect();
                for (i, job) in jobs.iter().enumerate() {
                    if let Some(&s) = lookup.get(&job.id()) {
                        shares[i] = s.max(0.0);
                    }
                }
                // Re-decide exactly at the segment boundary.
                Some((seg.end - now).max(EPS))
            }
            None => {
                // Idle until the next segment starts (if any).
                let next_start = self
                    .plan
                    .segments()
                    .iter()
                    .map(|s| s.start)
                    .find(|&s| s > now + EPS);
                next_start.map(|s| s - now)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::job::{Instance, JobSpec};
    use parsched_speedup::Curve;

    fn seg(start: f64, end: f64, shares: &[(u64, f64)]) -> PlanSegment {
        PlanSegment {
            start,
            end,
            shares: shares.iter().map(|&(id, s)| (JobId(id), s)).collect(),
        }
    }

    #[test]
    fn plan_validation_rejects_overlap_and_overcommit() {
        assert!(AllocationPlan::new(vec![seg(0.0, 1.0, &[]), seg(0.5, 2.0, &[])], 2.0).is_err());
        assert!(AllocationPlan::new(vec![seg(1.0, 1.0, &[])], 2.0).is_err());
        assert!(AllocationPlan::new(vec![seg(0.0, 1.0, &[(0, 1.5), (1, 1.0)])], 2.0).is_err());
        assert!(AllocationPlan::new(vec![seg(0.0, 1.0, &[(0, f64::NAN)])], 2.0).is_err());
        assert!(AllocationPlan::new(vec![seg(0.0, 1.0, &[(0, 2.0)])], 2.0).is_ok());
    }

    #[test]
    fn segment_lookup() {
        let plan = AllocationPlan::new(
            vec![seg(0.0, 1.0, &[(0, 1.0)]), seg(2.0, 3.0, &[(1, 1.0)])],
            1.0,
        )
        .unwrap();
        assert_eq!(plan.segment_at(0.5).unwrap().start, 0.0);
        assert!(plan.segment_at(1.5).is_none()); // gap
        assert_eq!(plan.segment_at(2.0).unwrap().start, 2.0);
        assert!(plan.segment_at(3.5).is_none()); // past horizon
        assert_eq!(plan.horizon(), 3.0);
    }

    #[test]
    fn planned_policy_executes_a_simple_schedule() {
        // Two sequential unit jobs on one processor, run back to back.
        let instance = Instance::new(vec![
            JobSpec::new(JobId(0), 0.0, 1.0, Curve::Sequential),
            JobSpec::new(JobId(1), 0.0, 1.0, Curve::Sequential),
        ])
        .unwrap();
        let plan = AllocationPlan::new(
            vec![seg(0.0, 1.0, &[(0, 1.0)]), seg(1.0, 2.0, &[(1, 1.0)])],
            1.0,
        )
        .unwrap();
        let outcome = simulate(&instance, &mut PlannedPolicy::new(plan), 1.0).unwrap();
        assert_eq!(outcome.flow_of(JobId(0)), Some(1.0));
        assert_eq!(outcome.flow_of(JobId(1)), Some(2.0));
    }

    #[test]
    fn planned_policy_idles_through_gaps() {
        // Job released at 0 but only scheduled from t=2.
        let instance =
            Instance::new(vec![JobSpec::new(JobId(0), 0.0, 1.0, Curve::Sequential)]).unwrap();
        let plan = AllocationPlan::new(vec![seg(2.0, 3.5, &[(0, 1.0)])], 1.0).unwrap();
        let outcome = simulate(&instance, &mut PlannedPolicy::new(plan), 1.0).unwrap();
        assert_eq!(outcome.flow_of(JobId(0)), Some(3.0));
    }

    #[test]
    fn from_tracks_merges_overlapping_intervals() {
        // Job 0 holds one machine on [0, 4); job 1 holds one on [1, 2).
        let plan = AllocationPlan::from_tracks(
            &[(0.0, 4.0, JobId(0), 1.0), (1.0, 2.0, JobId(1), 1.0)],
            2.0,
        )
        .unwrap();
        assert_eq!(plan.segments().len(), 3);
        let mid = plan.segment_at(1.5).unwrap();
        assert_eq!(mid.shares.len(), 2);
        let early = plan.segment_at(0.5).unwrap();
        assert_eq!(early.shares, vec![(JobId(0), 1.0)]);
    }

    #[test]
    fn from_tracks_detects_overcommit() {
        let err = AllocationPlan::from_tracks(
            &[(0.0, 2.0, JobId(0), 1.5), (1.0, 3.0, JobId(1), 1.0)],
            2.0,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::BadInstance { .. }));
    }

    #[test]
    fn from_tracks_back_to_back_same_job() {
        // Two adjacent tracks of the same job don't double-count at the
        // shared boundary.
        let plan = AllocationPlan::from_tracks(
            &[(0.0, 1.0, JobId(0), 2.0), (1.0, 2.0, JobId(0), 2.0)],
            2.0,
        )
        .unwrap();
        for seg in plan.segments() {
            assert_eq!(seg.shares, vec![(JobId(0), 2.0)]);
        }
    }

    #[test]
    fn from_tracks_executes_correctly() {
        // The merged plan actually schedules: 2 sequential jobs, job 0 on
        // machine A the whole time, job 1 on machine B.
        let instance = Instance::new(vec![
            JobSpec::new(JobId(0), 0.0, 3.0, Curve::Sequential),
            JobSpec::new(JobId(1), 1.0, 1.0, Curve::Sequential),
        ])
        .unwrap();
        let plan = AllocationPlan::from_tracks(
            &[(0.0, 3.0, JobId(0), 1.0), (1.0, 2.0, JobId(1), 1.0)],
            2.0,
        )
        .unwrap();
        let outcome = simulate(&instance, &mut PlannedPolicy::new(plan), 2.0).unwrap();
        assert_eq!(outcome.flow_of(JobId(0)), Some(3.0));
        assert_eq!(outcome.flow_of(JobId(1)), Some(1.0));
    }

    #[test]
    fn incomplete_plan_stalls_loudly() {
        let instance =
            Instance::new(vec![JobSpec::new(JobId(0), 0.0, 5.0, Curve::Sequential)]).unwrap();
        let plan = AllocationPlan::new(vec![seg(0.0, 1.0, &[(0, 1.0)])], 1.0).unwrap();
        let err = simulate(&instance, &mut PlannedPolicy::new(plan), 1.0).unwrap_err();
        assert!(matches!(err, SimError::Stalled { .. }));
    }
}
