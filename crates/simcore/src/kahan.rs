//! Compensated floating-point summation (Neumaier's variant of Kahan).
//!
//! The engine's flow-identity accumulators (`Σ flow`, `∫|A| dt`, fractional
//! flow) and [`crate::SystemView::remaining_work_where`] add up to millions
//! of small terms over a run. Naive left-to-right `f64` summation loses the
//! small terms entirely once the running sum dwarfs them (at 10⁶ unit jobs
//! against a 10¹⁶-scale sum, every addend falls below half an ulp and the
//! sum never moves), which is enough to trip the `flow-identity` audit's
//! relative tolerance on long streaming runs. Neumaier summation carries a
//! correction term that recovers the rounding error of every addition, with
//! worst-case error independent of `n` — two flops extra per add, no
//! allocation, and the result depends only on the *order* of `add` calls,
//! which keeps the streaming/in-memory differential guarantee bit-exact.

use std::iter::Sum;
use std::ops::AddAssign;

/// A running compensated sum.
///
/// `value()` returns `sum + compensation`; the compensation accumulates the
/// low-order bits each individual addition rounded away. Unlike classic
/// Kahan, Neumaier's branch also handles addends *larger* than the running
/// sum (the first huge job after many tiny ones).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeumaierSum {
    sum: f64,
    comp: f64,
}

impl NeumaierSum {
    /// An empty sum (0.0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one term.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        // Recover exactly what the addition above rounded away; which side
        // lost bits depends on which operand is larger in magnitude.
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.comp
    }

    /// The raw `(sum, compensation)` pair, for snapshotting. Restoring via
    /// [`NeumaierSum::from_parts`] resumes the exact accumulator state, so a
    /// suspended run continues bit-identically — `value()` alone would lose
    /// the low-order bits the compensation is carrying.
    #[inline]
    pub fn parts(&self) -> (f64, f64) {
        (self.sum, self.comp)
    }

    /// Rebuilds an accumulator from a [`NeumaierSum::parts`] pair.
    #[inline]
    pub fn from_parts(sum: f64, comp: f64) -> Self {
        Self { sum, comp }
    }

    /// Compensated sum of an iterator of terms.
    pub fn total<I: IntoIterator<Item = f64>>(iter: I) -> f64 {
        let mut s = Self::new();
        for x in iter {
            s.add(x);
        }
        s.value()
    }
}

impl AddAssign<f64> for NeumaierSum {
    fn add_assign(&mut self, x: f64) {
        self.add(x);
    }
}

impl Sum<f64> for NeumaierSum {
    fn sum<I: Iterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_terms_naive_summation_drops() {
        // 10⁶ unit terms against a 10¹⁶ head: each 1.0 is below half an ulp
        // of the running sum, so the naive sum never moves off 1e16.
        let mut naive = 1e16;
        let mut comp = NeumaierSum::new();
        comp.add(1e16);
        for _ in 0..1_000_000 {
            naive += 1.0;
            comp.add(1.0);
        }
        assert_eq!(naive, 1e16, "test premise: naive summation drifts");
        assert_eq!(comp.value(), 1e16 + 1e6);
    }

    #[test]
    fn handles_addend_larger_than_sum() {
        // The classic Kahan killer: [1, 1e100, 1, -1e100] sums to 2.
        assert_eq!(NeumaierSum::total([1.0, 1e100, 1.0, -1e100]), 2.0);
    }

    #[test]
    fn matches_naive_sum_on_benign_input() {
        let terms: Vec<f64> = (1..=100).map(|i| f64::from(i) * 0.5).collect();
        let naive: f64 = terms.iter().sum();
        assert_eq!(NeumaierSum::total(terms.iter().copied()), naive);
    }

    #[test]
    fn operator_and_iterator_forms_agree() {
        let mut a = NeumaierSum::new();
        a += 0.1;
        a += 0.2;
        let b: NeumaierSum = [0.1f64, 0.2].into_iter().sum();
        assert_eq!(a.value(), b.value());
    }
}
