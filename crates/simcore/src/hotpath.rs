//! Per-phase hot-path profiler for the event loops (`hotpath` feature).
//!
//! Compiled only under the `hotpath` cargo feature and armed at runtime by
//! [`crate::EngineConfig::with_hotpath_profile`]; with the flag off the
//! instrumentation is one predictable branch per phase. The engine buckets
//! every event's wall-clock time into four phases:
//!
//! * **queue** — arrival admission and next-event selection,
//! * **refresh** — allocation/profile refresh (policy dispatch,
//!   rebalance, interval classification),
//! * **metrics** — interval integration of the flow/work accumulators,
//! * **dispatch** — completion collection, sink recording, and policy
//!   callbacks.
//!
//! The totals are diagnostics, not run state: they never feed back into
//! the simulation, are not snapshotted, and are only meaningful relative
//! to each other (the timestamping itself costs tens of ns per event, so
//! headline throughput is always measured with the flag off —
//! `bench-snapshot` runs a separate profiled pass to fill the
//! `hotpath_ns` fields). Wall-clock reads are confined to this module and
//! are exempt from the determinism lint because the measured durations
//! never influence engine arithmetic.

/// Accumulated wall-clock nanoseconds per event-loop phase.
#[derive(Debug, Default, Clone, Copy)]
pub struct PhaseTotals {
    /// Arrival admission + next-event selection.
    pub queue_ns: u64,
    /// Allocation/profile refresh.
    pub refresh_ns: u64,
    /// Interval metric integration.
    pub metrics_ns: u64,
    /// Completion collection + callbacks.
    pub dispatch_ns: u64,
    /// Events measured (so callers can form per-event averages).
    pub events: u64,
}

impl PhaseTotals {
    /// All-zero totals. The engine resets with this constant rather than
    /// `Default::default()` so the determinism lint's call graph (which
    /// links qualified calls by name) doesn't pick up spurious edges to
    /// every workspace `default`.
    pub const ZERO: Self = Self {
        queue_ns: 0,
        refresh_ns: 0,
        metrics_ns: 0,
        dispatch_ns: 0,
        events: 0,
    };

    /// Whether anything was measured.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Per-event averages `(queue, refresh, metrics, dispatch)` in ns.
    pub fn per_event(&self) -> (f64, f64, f64, f64) {
        let n = (self.events as f64).max(1.0);
        (
            self.queue_ns as f64 / n,
            self.refresh_ns as f64 / n,
            self.metrics_ns as f64 / n,
            self.dispatch_ns as f64 / n,
        )
    }
}

/// An opaque phase-start timestamp.
// lint:allow(L002) profiler-only wall clock; durations are diagnostics and never feed back into simulation arithmetic
pub struct Stamp(std::time::Instant);

/// Takes a phase-start timestamp.
#[inline]
pub fn stamp() -> Stamp {
    // lint:allow(L002) profiler-only wall clock; durations are diagnostics and never feed back into simulation arithmetic
    Stamp(std::time::Instant::now())
}

/// Nanoseconds elapsed since `s` (saturating into `u64`).
#[inline]
pub fn ns_since(s: Stamp) -> u64 {
    u64::try_from(s.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}
