//! Runtime invariant auditing for the simulation engine.
//!
//! The paper's model (§1.1) imposes hard conservation laws that every run
//! must satisfy no matter which engine path executes it: the allocation can
//! never exceed the machine capacity (`Σ_j x_j ≤ m`), work drains exactly
//! at the speed-up curve (`ṗ_j = −Γ_j(x_j)`), remaining work never goes
//! negative, the event clock never goes backwards, and at the end of the
//! run the flow-time identity `Σ_j F_j = ∫ |A(t)| dt` closes the books.
//! The competitive analyses this repository reproduces (and the related
//! heSRPT / SRPT-on-identical-machines lines of work) lean on exactly
//! these identities, so checking them at runtime turns the analysis
//! machinery into executable correctness tooling.
//!
//! The [`Auditor`] consumes [`AuditFrame`]s — per-event snapshots of the
//! alive set with its current allocation — and drives a suite of
//! [`Invariant`]s over them. Frames come from two producers:
//!
//! * the [`crate::Engine`] itself, when [`crate::EngineConfig::with_audit`]
//!   enables auditing (both the exhaustive and the incremental path build
//!   frames from their own internal state, so the audit observes what the
//!   engine *actually did*, not what it intended);
//! * the [`crate::trace::Replayer`], which reconstructs frames from a
//!   recorded event log and re-checks a run offline.
//!
//! A violation aborts the run with [`SimError::AuditFailed`] carrying a
//! structured [`Violation`] — event index, time, job, expected vs. actual,
//! policy and path — so a failure is a minimal bug report.

use parsched_speedup::EPS;

use crate::error::SimError;
use crate::job::{JobId, Time, Work};

/// Relative tolerance for drain-consistency and end-of-run accounting
/// identities (looser than [`EPS`]: these compare *accumulated* sums).
const REL_TOL: f64 = 1e-6;

/// Default stride for [`AuditLevel::Sampled`]: one frame *pair* (two
/// consecutive events, so drain consistency stays checkable) every this
/// many events.
pub const DEFAULT_SAMPLE_STRIDE: u32 = 64;

/// How much auditing the engine performs during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditLevel {
    /// No auditing (the default; zero overhead).
    Off,
    /// Only the end-of-run accounting identities are checked.
    Final,
    /// Per-event checks on a sampled subset of events: two consecutive
    /// events (a *pair*, so the drain check applies) every `stride`
    /// events, plus the end-of-run identities.
    Sampled(u32),
    /// Every event is checked, plus the end-of-run identities. On the
    /// incremental path this makes audited events `O(n)` again — auditing
    /// is a diagnostic mode, not a production fast path.
    Strict,
}

impl AuditLevel {
    /// Whether auditing is disabled.
    pub fn is_off(&self) -> bool {
        matches!(self, AuditLevel::Off)
    }

    /// Whether a frame should be captured for the event with this index.
    pub fn wants_frame(&self, event: u64) -> bool {
        match *self {
            AuditLevel::Off | AuditLevel::Final => false,
            AuditLevel::Sampled(stride) => event % u64::from(stride.max(2)) < 2,
            AuditLevel::Strict => true,
        }
    }

    /// Stable lowercase name (`off`, `final`, `sampled`, `strict`).
    pub fn name(&self) -> &'static str {
        match self {
            AuditLevel::Off => "off",
            AuditLevel::Final => "final",
            AuditLevel::Sampled(_) => "sampled",
            AuditLevel::Strict => "strict",
        }
    }
}

impl std::str::FromStr for AuditLevel {
    type Err = String;

    /// Parses `off`, `final`, `sampled`, `sampled:<stride>`, or `strict`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Ok(AuditLevel::Off),
            "final" => Ok(AuditLevel::Final),
            "sampled" => Ok(AuditLevel::Sampled(DEFAULT_SAMPLE_STRIDE)),
            "strict" => Ok(AuditLevel::Strict),
            other => {
                if let Some(stride) = other.strip_prefix("sampled:") {
                    let stride: u32 = stride
                        .parse()
                        .map_err(|e| format!("bad sample stride: {e}"))?;
                    if stride < 2 {
                        return Err("sample stride must be ≥ 2".to_string());
                    }
                    Ok(AuditLevel::Sampled(stride))
                } else {
                    Err(format!(
                        "unknown audit level '{s}' (expected off|final|sampled[:stride]|strict)"
                    ))
                }
            }
        }
    }
}

/// Which engine execution path produced a frame (carried into violations
/// so a failure names the code path that broke the law).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnginePath {
    /// Full view + `Policy::assign` at every event.
    Exhaustive,
    /// SRPT-ordered alive set + prefix profile.
    Incremental,
    /// Offline replay of a recorded trace.
    Replay,
}

impl std::fmt::Display for EnginePath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EnginePath::Exhaustive => "exhaustive",
            EnginePath::Incremental => "incremental",
            EnginePath::Replay => "replay",
        })
    }
}

/// A structured invariant violation: everything needed to reproduce and
/// localize the failure without re-running under a debugger.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Name of the violated invariant (stable identifier).
    pub invariant: &'static str,
    /// Engine event index at which the violation was observed.
    pub event: u64,
    /// Simulation time of the offending frame.
    pub at: Time,
    /// The job involved, when the violation is job-local.
    pub job: Option<JobId>,
    /// The value the invariant required.
    pub expected: f64,
    /// The value actually observed.
    pub actual: f64,
    /// Name of the active policy.
    pub policy: String,
    /// Which engine path was executing.
    pub path: EnginePath,
    /// Human-readable description of the defect.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invariant '{}' violated at t={} (event {}{}) [policy {}, {} path]: {} (expected {}, actual {})",
            self.invariant,
            self.at,
            self.event,
            self.job
                .map(|j| format!(", job {j}"))
                .unwrap_or_default(),
            self.policy,
            self.path,
            self.detail,
            self.expected,
            self.actual,
        )
    }
}

/// One alive job inside an [`AuditFrame`].
#[derive(Debug, Clone, PartialEq)]
pub struct FrameJob {
    /// Job id.
    pub id: JobId,
    /// Release time.
    pub release: Time,
    /// Original size `p_j`.
    pub size: Work,
    /// Remaining work `p_j(t)` at the frame time.
    pub remaining: Work,
    /// Processors allocated for the interval starting at the frame time.
    pub share: f64,
    /// Speed-adjusted drain rate `speed · Γ_j(share)` for that interval.
    pub rate: f64,
}

/// A per-event snapshot of the system with the allocation decided for the
/// interval *starting* at [`AuditFrame::t`].
#[derive(Debug, Clone, PartialEq)]
pub struct AuditFrame {
    /// Engine event index (frames within one run strictly increase).
    pub event: u64,
    /// Frame time (start of the constant-allocation interval).
    pub t: Time,
    /// Machine capacity `m`.
    pub m: f64,
    /// Which execution path produced the frame.
    pub path: EnginePath,
    /// Active policy name.
    pub policy: String,
    /// The alive jobs. On the incremental path (and only there) the order
    /// is the engine's maintained SRPT order, which
    /// [`SrptOrderPreserved`] checks; other producers make no order
    /// promise.
    pub jobs: Vec<FrameJob>,
    /// Whether `jobs` is claimed to be in SRPT order.
    pub srpt_ordered_iteration: bool,
    /// Whether the active policy declares [`crate::Policy::srpt_ordered`]
    /// (gates the [`SrptPrefixShares`] check; e.g. EQUI does not claim
    /// it — its allocation is order-agnostic).
    pub srpt_ordered_policy: bool,
}

/// End-of-run accounting handed to [`Invariant::check_final`].
#[derive(Debug, Clone, PartialEq)]
pub struct FinalAccounting {
    /// `Σ_j F_j` over completed jobs.
    pub total_flow: f64,
    /// `∫ |A(t)| dt` as integrated by the engine.
    pub alive_integral: f64,
    /// Total fractional flow `∫ Σ_j p_j(t)/p_j dt`.
    pub fractional_flow: f64,
    /// Number of completed jobs.
    pub completed: usize,
    /// Number of jobs ever admitted.
    pub admitted: usize,
    /// Jobs still alive when the run ended (0 for a completed run).
    pub alive_left: usize,
    /// Final simulation time.
    pub at: Time,
    /// Events processed.
    pub events: u64,
    /// Active policy name.
    pub policy: String,
    /// Which execution path ran.
    pub path: EnginePath,
}

/// A runtime-checkable law of the simulation.
///
/// Implementations are stateful (the auditor keeps them across the whole
/// run) but the built-in suite only ever compares *consecutive* frames,
/// which the auditor hands over explicitly.
pub trait Invariant {
    /// Stable identifier used in violations and reports.
    fn name(&self) -> &'static str;

    /// Checks one frame (with the previous captured frame, if any). Push
    /// any violations into `out`.
    fn check_frame(
        &mut self,
        prev: Option<&AuditFrame>,
        cur: &AuditFrame,
        out: &mut Vec<Violation>,
    ) {
        let _ = (prev, cur, out);
    }

    /// Checks the end-of-run accounting.
    fn check_final(&mut self, end: &FinalAccounting, out: &mut Vec<Violation>) {
        let _ = (end, out);
    }
}

fn violation(cur: &AuditFrame, invariant: &'static str) -> Violation {
    Violation {
        invariant,
        event: cur.event,
        at: cur.t,
        job: None,
        expected: 0.0,
        actual: 0.0,
        policy: cur.policy.clone(),
        path: cur.path,
        detail: String::new(),
    }
}

/// Capacity conservation: every share is finite and non-negative and the
/// shares sum to at most `m` (`Σ_j x_j ≤ m + ε`).
#[derive(Debug, Default)]
pub struct CapacityConservation;

impl Invariant for CapacityConservation {
    fn name(&self) -> &'static str {
        "capacity"
    }

    fn check_frame(
        &mut self,
        _prev: Option<&AuditFrame>,
        cur: &AuditFrame,
        out: &mut Vec<Violation>,
    ) {
        let mut total = 0.0;
        for j in &cur.jobs {
            if !j.share.is_finite() || j.share < -EPS {
                out.push(Violation {
                    job: Some(j.id),
                    expected: 0.0,
                    actual: j.share,
                    detail: format!(
                        "share of job {} is {}, not a finite value ≥ 0",
                        j.id, j.share
                    ),
                    ..violation(cur, self.name())
                });
            }
            total += j.share.max(0.0);
        }
        let cap = cur.m * (1.0 + 1e-9) + EPS;
        if total > cap {
            out.push(Violation {
                expected: cur.m,
                actual: total,
                detail: format!("allocated {} of {} processors", total, cur.m),
                ..violation(cur, self.name())
            });
        }
    }
}

/// Remaining work stays within `[0, p_j]` (up to tolerance) while a job is
/// alive.
#[derive(Debug, Default)]
pub struct NonNegativeRemaining;

impl Invariant for NonNegativeRemaining {
    fn name(&self) -> &'static str {
        "non-negative-remaining"
    }

    fn check_frame(
        &mut self,
        _prev: Option<&AuditFrame>,
        cur: &AuditFrame,
        out: &mut Vec<Violation>,
    ) {
        for j in &cur.jobs {
            let tol = EPS * j.size.max(1.0);
            if !j.remaining.is_finite() || j.remaining < -tol || j.remaining > j.size + tol {
                out.push(Violation {
                    job: Some(j.id),
                    expected: j.size,
                    actual: j.remaining,
                    detail: format!(
                        "remaining work {} of job {} outside [0, {}]",
                        j.remaining, j.id, j.size
                    ),
                    ..violation(cur, self.name())
                });
            }
        }
    }
}

/// The event clock never runs backwards and event indices strictly
/// increase.
#[derive(Debug, Default)]
pub struct MonotoneClock;

impl Invariant for MonotoneClock {
    fn name(&self) -> &'static str {
        "monotone-clock"
    }

    fn check_frame(
        &mut self,
        prev: Option<&AuditFrame>,
        cur: &AuditFrame,
        out: &mut Vec<Violation>,
    ) {
        let Some(prev) = prev else { return };
        if cur.t < prev.t - EPS * prev.t.abs().max(1.0) {
            out.push(Violation {
                expected: prev.t,
                actual: cur.t,
                detail: format!("time went backwards: {} after {}", cur.t, prev.t),
                ..violation(cur, self.name())
            });
        }
        if cur.event <= prev.event {
            out.push(Violation {
                expected: prev.event as f64 + 1.0,
                actual: cur.event as f64,
                detail: format!(
                    "event index did not advance: {} after {}",
                    cur.event, prev.event
                ),
                ..violation(cur, self.name())
            });
        }
    }
}

/// Work drains exactly at the speed-up curve: between two *consecutive*
/// events, `p_j(t₁) = max(0, p_j(t₀) − speed·Γ_j(x_j)·(t₁ − t₀))` for every
/// job alive in both frames.
#[derive(Debug, Default)]
pub struct WorkDrainConsistency;

impl Invariant for WorkDrainConsistency {
    fn name(&self) -> &'static str {
        "work-drain"
    }

    fn check_frame(
        &mut self,
        prev: Option<&AuditFrame>,
        cur: &AuditFrame,
        out: &mut Vec<Violation>,
    ) {
        let Some(prev) = prev else { return };
        // Only adjacent events share one constant-allocation interval; a
        // sampled gap spans many reallocation decisions.
        if cur.event != prev.event + 1 {
            return;
        }
        let dt = (cur.t - prev.t).max(0.0);
        let index: std::collections::BTreeMap<JobId, &FrameJob> =
            prev.jobs.iter().map(|j| (j.id, j)).collect();
        for j in &cur.jobs {
            let Some(p) = index.get(&j.id) else { continue };
            let expected = (p.remaining - p.rate * dt).max(0.0);
            let tol = REL_TOL * j.size.max(1.0);
            if (j.remaining - expected).abs() > tol {
                out.push(Violation {
                    job: Some(j.id),
                    expected,
                    actual: j.remaining,
                    detail: format!(
                        "job {} drained to {} over dt={} at rate {}, speed-up curve predicts {}",
                        j.id, j.remaining, dt, p.rate, expected
                    ),
                    ..violation(cur, self.name())
                });
            }
        }
    }
}

/// On the incremental path the engine's maintained alive order must be the
/// SRPT order: remaining work is non-decreasing along the iteration.
#[derive(Debug, Default)]
pub struct SrptOrderPreserved;

impl Invariant for SrptOrderPreserved {
    fn name(&self) -> &'static str {
        "srpt-order"
    }

    fn check_frame(
        &mut self,
        _prev: Option<&AuditFrame>,
        cur: &AuditFrame,
        out: &mut Vec<Violation>,
    ) {
        if !cur.srpt_ordered_iteration {
            return;
        }
        for w in cur.jobs.windows(2) {
            let tol = EPS * w[0].remaining.abs().max(w[1].remaining.abs()).max(1.0);
            if w[1].remaining < w[0].remaining - tol {
                out.push(Violation {
                    job: Some(w[1].id),
                    expected: w[0].remaining,
                    actual: w[1].remaining,
                    detail: format!(
                        "alive set left SRPT order: job {} (remaining {}) follows job {} (remaining {})",
                        w[1].id, w[1].remaining, w[0].id, w[0].remaining
                    ),
                    ..violation(cur, self.name())
                });
            }
        }
    }
}

/// For policies that declare [`crate::Policy::srpt_ordered`], the
/// scheduled set must be a *prefix of the SRPT order* with one common
/// share: no zero-share job may have less remaining work than a scheduled
/// job, and all scheduled jobs receive the same share.
#[derive(Debug, Default)]
pub struct SrptPrefixShares;

impl Invariant for SrptPrefixShares {
    fn name(&self) -> &'static str {
        "srpt-prefix"
    }

    fn check_frame(
        &mut self,
        _prev: Option<&AuditFrame>,
        cur: &AuditFrame,
        out: &mut Vec<Violation>,
    ) {
        if !cur.srpt_ordered_policy {
            return;
        }
        let mut max_scheduled: Option<&FrameJob> = None;
        let mut share: Option<f64> = None;
        for j in cur.jobs.iter().filter(|j| j.share > EPS) {
            if max_scheduled.is_none_or(|s| j.remaining > s.remaining) {
                max_scheduled = Some(j);
            }
            match share {
                None => share = Some(j.share),
                Some(s) if (j.share - s).abs() > EPS * s.max(1.0) => {
                    out.push(Violation {
                        job: Some(j.id),
                        expected: s,
                        actual: j.share,
                        detail: format!(
                            "scheduled jobs do not share equally: job {} holds {}, others hold {}",
                            j.id, j.share, s
                        ),
                        ..violation(cur, self.name())
                    });
                }
                Some(_) => {}
            }
        }
        let Some(max_scheduled) = max_scheduled else {
            return;
        };
        for j in cur.jobs.iter().filter(|j| j.share <= EPS) {
            let tol = EPS
                * j.remaining
                    .abs()
                    .max(max_scheduled.remaining.abs())
                    .max(1.0);
            if j.remaining < max_scheduled.remaining - tol {
                out.push(Violation {
                    job: Some(j.id),
                    expected: max_scheduled.remaining,
                    actual: j.remaining,
                    detail: format!(
                        "scheduled set is not an SRPT prefix: job {} (remaining {}) is starved while job {} (remaining {}) runs",
                        j.id, j.remaining, max_scheduled.id, max_scheduled.remaining
                    ),
                    ..violation(cur, self.name())
                });
            }
        }
    }
}

/// End-of-run accounting: every admitted job completed, and the flow-time
/// identity `Σ_j F_j = ∫ |A(t)| dt` holds (with `fractional ≤ integral`).
#[derive(Debug, Default)]
pub struct FlowTimeIdentity;

impl Invariant for FlowTimeIdentity {
    fn name(&self) -> &'static str {
        "flow-identity"
    }

    fn check_final(&mut self, end: &FinalAccounting, out: &mut Vec<Violation>) {
        let base = Violation {
            invariant: self.name(),
            event: end.events,
            at: end.at,
            job: None,
            expected: 0.0,
            actual: 0.0,
            policy: end.policy.clone(),
            path: end.path,
            detail: String::new(),
        };
        if end.alive_left == 0 && end.completed != end.admitted {
            out.push(Violation {
                expected: end.admitted as f64,
                actual: end.completed as f64,
                detail: format!(
                    "{} jobs admitted but {} completed",
                    end.admitted, end.completed
                ),
                ..base.clone()
            });
        }
        // The identity only closes once every alive job has completed.
        if end.alive_left == 0 {
            let tol = REL_TOL * end.total_flow.abs().max(1.0);
            if (end.total_flow - end.alive_integral).abs() > tol {
                out.push(Violation {
                    expected: end.alive_integral,
                    actual: end.total_flow,
                    detail: format!(
                        "flow-time identity broken: Σ F_j = {} but ∫|A(t)|dt = {}",
                        end.total_flow, end.alive_integral
                    ),
                    ..base.clone()
                });
            }
        }
        let tol = REL_TOL * end.total_flow.abs().max(1.0);
        if end.fractional_flow > end.total_flow + tol {
            out.push(Violation {
                expected: end.total_flow,
                actual: end.fractional_flow,
                detail: format!(
                    "fractional flow {} exceeds integral flow {}",
                    end.fractional_flow, end.total_flow
                ),
                ..base
            });
        }
    }
}

/// The built-in invariant suite, in check order.
pub fn builtin_invariants() -> Vec<Box<dyn Invariant>> {
    vec![
        Box::new(MonotoneClock),
        Box::new(CapacityConservation),
        Box::new(NonNegativeRemaining),
        Box::new(WorkDrainConsistency),
        Box::new(SrptOrderPreserved),
        Box::new(SrptPrefixShares),
        Box::new(FlowTimeIdentity),
    ]
}

/// Summary of a completed audit, attached to
/// [`crate::RunOutcome::audit`].
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// The level the audit ran at.
    pub level: AuditLevel,
    /// Number of per-event frames checked.
    pub frames: u64,
    /// Whether the end-of-run identities were checked.
    pub final_checked: bool,
    /// Names of the active invariants.
    pub invariants: Vec<&'static str>,
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "audit {} ✓ ({} frames, {} invariants{})",
            self.level.name(),
            self.frames,
            self.invariants.len(),
            if self.final_checked {
                ", final identities"
            } else {
                ""
            }
        )
    }
}

/// Drives a suite of [`Invariant`]s over a stream of frames and a final
/// accounting, failing fast on the first violation.
pub struct Auditor {
    level: AuditLevel,
    invariants: Vec<Box<dyn Invariant>>,
    prev: Option<AuditFrame>,
    frames: u64,
    final_checked: bool,
}

impl std::fmt::Debug for Auditor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Auditor")
            .field("level", &self.level)
            .field("frames", &self.frames)
            .field("invariants", &self.invariants.len())
            .finish()
    }
}

impl Auditor {
    /// Creates an auditor running the [`builtin_invariants`] suite.
    pub fn new(level: AuditLevel) -> Self {
        Self::with_invariants(level, builtin_invariants())
    }

    /// Creates an auditor over a custom invariant suite.
    pub fn with_invariants(level: AuditLevel, invariants: Vec<Box<dyn Invariant>>) -> Self {
        Self {
            level,
            invariants,
            prev: None,
            frames: 0,
            final_checked: false,
        }
    }

    /// The audit level.
    pub fn level(&self) -> AuditLevel {
        self.level
    }

    /// Whether the frame for event index `event` should be captured (and
    /// handed to [`Auditor::check_frame`]).
    pub fn wants_frame(&self, event: u64) -> bool {
        self.level.wants_frame(event)
    }

    /// Checks one frame against the suite. Fails with the first (most
    /// severe by suite order) violation.
    pub fn check_frame(&mut self, frame: AuditFrame) -> Result<(), SimError> {
        let mut out = Vec::new();
        for inv in &mut self.invariants {
            inv.check_frame(self.prev.as_ref(), &frame, &mut out);
        }
        self.frames += 1;
        self.prev = Some(frame);
        match out.into_iter().next() {
            Some(v) => Err(SimError::AuditFailed {
                violation: Box::new(v),
            }),
            None => Ok(()),
        }
    }

    /// Checks the end-of-run accounting identities.
    pub fn check_final(&mut self, end: &FinalAccounting) -> Result<(), SimError> {
        let mut out = Vec::new();
        for inv in &mut self.invariants {
            inv.check_final(end, &mut out);
        }
        self.final_checked = true;
        match out.into_iter().next() {
            Some(v) => Err(SimError::AuditFailed {
                violation: Box::new(v),
            }),
            None => Ok(()),
        }
    }

    /// The report of everything checked so far.
    pub fn report(&self) -> AuditReport {
        AuditReport {
            level: self.level,
            frames: self.frames,
            final_checked: self.final_checked,
            invariants: self.invariants.iter().map(|i| i.name()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(event: u64, t: f64, jobs: Vec<FrameJob>) -> AuditFrame {
        AuditFrame {
            event,
            t,
            m: 4.0,
            path: EnginePath::Exhaustive,
            policy: "test".to_string(),
            jobs,
            srpt_ordered_iteration: false,
            srpt_ordered_policy: false,
        }
    }

    fn job(id: u64, remaining: f64, share: f64, rate: f64) -> FrameJob {
        FrameJob {
            id: JobId(id),
            release: 0.0,
            size: 10.0,
            remaining,
            share,
            rate,
        }
    }

    #[test]
    fn audit_level_parsing_and_sampling() {
        assert_eq!("strict".parse::<AuditLevel>().unwrap(), AuditLevel::Strict);
        assert_eq!("off".parse::<AuditLevel>().unwrap(), AuditLevel::Off);
        assert_eq!(
            "sampled".parse::<AuditLevel>().unwrap(),
            AuditLevel::Sampled(DEFAULT_SAMPLE_STRIDE)
        );
        assert_eq!(
            "sampled:10".parse::<AuditLevel>().unwrap(),
            AuditLevel::Sampled(10)
        );
        assert!("sampled:1".parse::<AuditLevel>().is_err());
        assert!("bogus".parse::<AuditLevel>().is_err());
        // Sampled captures event pairs so the drain check stays possible.
        let lvl = AuditLevel::Sampled(10);
        assert!(lvl.wants_frame(0) && lvl.wants_frame(1));
        assert!(!lvl.wants_frame(2) && !lvl.wants_frame(9));
        assert!(lvl.wants_frame(10) && lvl.wants_frame(11));
        assert!(AuditLevel::Strict.wants_frame(7));
        assert!(!AuditLevel::Final.wants_frame(0));
        assert!(!AuditLevel::Off.wants_frame(0));
    }

    #[test]
    fn capacity_violation_is_structured() {
        let mut aud = Auditor::new(AuditLevel::Strict);
        let err = aud
            .check_frame(frame(
                3,
                1.5,
                vec![job(0, 5.0, 3.0, 3.0), job(1, 6.0, 3.0, 3.0)],
            ))
            .unwrap_err();
        let SimError::AuditFailed { violation } = err else {
            panic!("wrong error kind")
        };
        assert_eq!(violation.invariant, "capacity");
        assert_eq!(violation.event, 3);
        assert_eq!(violation.at, 1.5);
        assert!((violation.actual - 6.0).abs() < 1e-12);
        assert!((violation.expected - 4.0).abs() < 1e-12);
        assert!(violation.to_string().contains("capacity"), "{violation}");
    }

    #[test]
    fn drain_consistency_flags_teleporting_work() {
        let mut aud = Auditor::new(AuditLevel::Strict);
        aud.check_frame(frame(0, 0.0, vec![job(0, 10.0, 1.0, 1.0)]))
            .unwrap();
        // After dt = 2 at rate 1 the job must hold 8, not 5.
        let err = aud
            .check_frame(frame(1, 2.0, vec![job(0, 5.0, 1.0, 1.0)]))
            .unwrap_err();
        let SimError::AuditFailed { violation } = err else {
            panic!("wrong error kind")
        };
        assert_eq!(violation.invariant, "work-drain");
        assert_eq!(violation.job, Some(JobId(0)));
        assert!((violation.expected - 8.0).abs() < 1e-9);
        assert!((violation.actual - 5.0).abs() < 1e-12);
    }

    #[test]
    fn drain_check_skips_sampled_gaps() {
        let mut aud = Auditor::new(AuditLevel::Sampled(8));
        aud.check_frame(frame(0, 0.0, vec![job(0, 10.0, 1.0, 1.0)]))
            .unwrap();
        // Event 8 is far from event 0: the interval spans many decisions,
        // so the drain invariant must not fire.
        aud.check_frame(frame(8, 2.0, vec![job(0, 3.0, 1.0, 1.0)]))
            .unwrap();
    }

    #[test]
    fn srpt_order_checked_only_when_claimed() {
        let jobs = vec![job(0, 9.0, 1.0, 1.0), job(1, 2.0, 1.0, 1.0)];
        let mut unordered = frame(0, 0.0, jobs.clone());
        Auditor::new(AuditLevel::Strict)
            .check_frame(unordered.clone())
            .unwrap();
        unordered.srpt_ordered_iteration = true;
        let err = Auditor::new(AuditLevel::Strict)
            .check_frame(unordered)
            .unwrap_err();
        let SimError::AuditFailed { violation } = err else {
            panic!("wrong error kind")
        };
        assert_eq!(violation.invariant, "srpt-order");
    }

    #[test]
    fn srpt_prefix_flags_starved_short_job() {
        let mut f = frame(2, 1.0, vec![job(0, 9.0, 4.0, 4.0), job(1, 2.0, 0.0, 0.0)]);
        f.srpt_ordered_policy = true;
        let err = Auditor::new(AuditLevel::Strict).check_frame(f).unwrap_err();
        let SimError::AuditFailed { violation } = err else {
            panic!("wrong error kind")
        };
        assert_eq!(violation.invariant, "srpt-prefix");
        assert_eq!(violation.job, Some(JobId(1)));
        assert!(violation.detail.contains("starved"), "{}", violation.detail);
    }

    #[test]
    fn flow_identity_checked_at_final() {
        let mut aud = Auditor::new(AuditLevel::Final);
        let mut end = FinalAccounting {
            total_flow: 10.0,
            alive_integral: 10.0 + 1e-9,
            fractional_flow: 6.0,
            completed: 3,
            admitted: 3,
            alive_left: 0,
            at: 7.0,
            events: 9,
            policy: "test".to_string(),
            path: EnginePath::Exhaustive,
        };
        aud.check_final(&end).unwrap();
        assert!(aud.report().final_checked);
        end.alive_integral = 12.0;
        let err = Auditor::new(AuditLevel::Final)
            .check_final(&end)
            .unwrap_err();
        let SimError::AuditFailed { violation } = err else {
            panic!("wrong error kind")
        };
        assert_eq!(violation.invariant, "flow-identity");
    }

    #[test]
    fn report_counts_frames() {
        let mut aud = Auditor::new(AuditLevel::Strict);
        aud.check_frame(frame(0, 0.0, vec![])).unwrap();
        aud.check_frame(frame(1, 1.0, vec![])).unwrap();
        let report = aud.report();
        assert_eq!(report.frames, 2);
        assert!(!report.final_checked);
        assert!(report.invariants.contains(&"capacity"));
        assert!(report.to_string().contains("2 frames"), "{report}");
    }
}
