//! Constant-size metric accumulation for the streaming engine path.
//!
//! The in-memory engine keeps every [`crate::CompletedJob`] and derives the
//! aggregate [`RunMetrics`] at the end of the run — `O(total jobs)` memory.
//! The streaming path replaces that accumulator with [`StreamingMetrics`]:
//! a fixed-size sink that folds each completion into the scalar aggregates
//! *at the moment it happens*, in completion order, using the exact same
//! floating-point operations the in-memory finalizer would perform. Both
//! engine modes route completions through this sink, so every scalar in
//! [`RunMetrics`] is **bit-identical** between a streaming run and an
//! in-memory run of the same workload (see `docs/TESTING.md` on the
//! four-way differential oracle).
//!
//! Flow-time *distributions* cannot be kept exactly in constant space, so
//! the sink also maintains a [`QuantileSketch`]: a log-bucketed histogram
//! with a deterministic, a-priori relative error bound (§ sketch docs).

use crate::invariant::AuditReport;
use crate::job::{Time, Work};
use crate::kahan::NeumaierSum;
use crate::metrics::RunMetrics;

/// Number of histogram buckets per octave (factor-of-2 range) — buckets are
/// geometric with ratio `2^(1/8)`.
const BUCKETS_PER_OCTAVE: f64 = 8.0;
/// Bucket index offset: bucket 512 starts at 1.0, covering `2^-64 ..
/// 2^64` overall (flow times far outside that range clamp to the ends).
const BUCKET_OFFSET: i64 = 512;
/// Total bucket count: 8 KiB of `u64` counters, independent of `n`.
const NUM_BUCKETS: usize = 1024;

/// A fixed-size quantile sketch over positive values (flow times).
///
/// Values land in geometric buckets `[2^(k/8), 2^((k+1)/8))`; a quantile
/// query returns the geometric midpoint of the bucket holding the target
/// rank, clamped to the exact observed `[min, max]`. The midpoint is within
/// a factor `2^(1/16)` of every value in its bucket, so the **relative
/// error of any quantile is at most `2^(1/16) − 1 ≈ 4.4%`** — deterministic
/// and independent of `n`, unlike sampling sketches. Memory is a flat
/// `1024 × u64` array (8 KiB) covering `2^-64 .. 2^64`; non-positive values
/// (a flow can be exactly 0 when a job completes within snap tolerance of
/// its release) count in the lowest bucket and are represented by `min`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    counts: Vec<u64>,
    total: u64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Clears all recorded values in place, retaining the bucket array.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }

    fn bucket_of(x: f64) -> usize {
        if x > 0.0 && x.is_finite() {
            let k = (x.log2() * BUCKETS_PER_OCTAVE).floor() as i64 + BUCKET_OFFSET;
            k.clamp(0, NUM_BUCKETS as i64 - 1) as usize
        } else {
            0
        }
    }

    /// Records one value.
    pub fn record(&mut self, x: f64) {
        self.counts[Self::bucket_of(x)] += 1;
        self.total += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.is_empty() {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest recorded value (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.is_empty() {
            f64::NAN
        } else {
            self.max
        }
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`), or `NaN` when empty.
    ///
    /// Returns the geometric midpoint of the bucket containing the rank
    /// `⌈q·n⌉` value, clamped to the observed `[min, max]` — so `q = 0`
    /// yields exactly `min` and `q = 1` exactly `max`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.is_empty() {
            return f64::NAN;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).clamp(1, self.total);
        // The extreme ranks are tracked exactly; everything between them
        // carries the bucket-midpoint error bound.
        if rank == 1 {
            return self.min;
        }
        if rank == self.total {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let mid =
                    ((i as i64 - BUCKET_OFFSET) as f64 / BUCKETS_PER_OCTAVE + 1.0 / 16.0).exp2();
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// The streaming replacement for the `Vec<CompletedJob>` accumulator.
///
/// One `record` call per completion, in completion order; all state is
/// constant-size. The scalar aggregates mirror the in-memory finalizer's
/// arithmetic term-for-term (totals via [`NeumaierSum`], extrema via
/// `f64::max`), which is what makes the two paths bit-identical.
#[derive(Debug, Clone, Default)]
pub struct StreamingMetrics {
    count: u64,
    total_flow: NeumaierSum,
    max_flow: f64,
    total_stretch: NeumaierSum,
    max_stretch: f64,
    total_weighted_flow: NeumaierSum,
    makespan: Time,
    sketch: QuantileSketch,
}

impl StreamingMetrics {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all aggregates in place, retaining the sketch's bucket array
    /// (part of the engine's buffer-reuse contract; see
    /// [`crate::EngineBuffers`]).
    pub fn reset(&mut self) {
        self.count = 0;
        self.total_flow = NeumaierSum::new();
        self.max_flow = 0.0;
        self.total_stretch = NeumaierSum::new();
        self.max_stretch = 0.0;
        self.total_weighted_flow = NeumaierSum::new();
        self.makespan = 0.0;
        self.sketch.reset();
    }

    /// Folds one completion into the aggregates. Must be called in
    /// completion order (the engine's event order).
    pub fn record(&mut self, release: Time, size: Work, completion: Time, weight: f64) {
        let flow = completion - release;
        self.count += 1;
        self.total_flow.add(flow);
        self.max_flow = self.max_flow.max(flow);
        self.total_stretch.add(flow / size);
        self.max_stretch = self.max_stretch.max(flow / size);
        self.total_weighted_flow.add(weight * flow);
        self.makespan = self.makespan.max(completion);
        self.sketch.record(flow);
    }

    /// Number of recorded completions.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total flow time so far.
    pub fn total_flow(&self) -> f64 {
        self.total_flow.value()
    }

    /// Largest individual flow time so far.
    pub fn max_flow(&self) -> f64 {
        self.max_flow
    }

    /// Time of the latest completion so far.
    pub fn makespan(&self) -> Time {
        self.makespan
    }

    /// The flow-time distribution sketch.
    pub fn sketch(&self) -> &QuantileSketch {
        &self.sketch
    }

    /// Captures the full accumulator state for a snapshot. Totals are kept
    /// as raw Neumaier `(sum, compensation)` pairs — collapsing them to
    /// `value()` would drop the low-order bits and break bit-identical
    /// resume.
    pub(crate) fn snapshot_state(&self) -> SinkState {
        let (tf, tfc) = self.total_flow.parts();
        let (ts, tsc) = self.total_stretch.parts();
        let (tw, twc) = self.total_weighted_flow.parts();
        SinkState {
            count: self.count,
            total_flow: (tf, tfc),
            max_flow: self.max_flow,
            total_stretch: (ts, tsc),
            max_stretch: self.max_stretch,
            total_weighted_flow: (tw, twc),
            makespan: self.makespan,
            sketch_counts: self.sketch.counts.clone(),
            sketch_total: self.sketch.total,
            sketch_min: self.sketch.min,
            sketch_max: self.sketch.max,
        }
    }

    /// Restores the accumulator state captured by
    /// [`StreamingMetrics::snapshot_state`]. Returns `false` when the
    /// sketch bucket array has the wrong length (a corrupt document).
    pub(crate) fn restore_state(&mut self, s: &SinkState) -> bool {
        if s.sketch_counts.len() != NUM_BUCKETS {
            return false;
        }
        self.count = s.count;
        self.total_flow = NeumaierSum::from_parts(s.total_flow.0, s.total_flow.1);
        self.max_flow = s.max_flow;
        self.total_stretch = NeumaierSum::from_parts(s.total_stretch.0, s.total_stretch.1);
        self.max_stretch = s.max_stretch;
        self.total_weighted_flow =
            NeumaierSum::from_parts(s.total_weighted_flow.0, s.total_weighted_flow.1);
        self.makespan = s.makespan;
        self.sketch.counts.clear();
        self.sketch.counts.extend_from_slice(&s.sketch_counts);
        self.sketch.total = s.sketch_total;
        self.sketch.min = s.sketch_min;
        self.sketch.max = s.sketch_max;
        true
    }

    /// Assembles the aggregate [`RunMetrics`], identical to what the
    /// in-memory finalizer computes from its completion list.
    pub fn run_metrics(
        &self,
        events: u64,
        fractional_flow: f64,
        alive_integral: f64,
    ) -> RunMetrics {
        let n = self.count as usize;
        let total_flow = self.total_flow.value();
        RunMetrics {
            total_flow,
            mean_flow: if n == 0 { 0.0 } else { total_flow / n as f64 },
            max_flow: self.max_flow,
            fractional_flow,
            makespan: self.makespan,
            num_jobs: n,
            events,
            alive_integral,
            total_stretch: self.total_stretch.value(),
            max_stretch: self.max_stretch,
            total_weighted_flow: self.total_weighted_flow.value(),
        }
    }
}

/// Raw accumulator state of a [`StreamingMetrics`] sink, as captured for a
/// `parsched-snap/v1` document. Every `f64` here is stored/compared by bit
/// pattern (the sketch's empty-state extrema are ±∞).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SinkState {
    pub(crate) count: u64,
    pub(crate) total_flow: (f64, f64),
    pub(crate) max_flow: f64,
    pub(crate) total_stretch: (f64, f64),
    pub(crate) max_stretch: f64,
    pub(crate) total_weighted_flow: (f64, f64),
    pub(crate) makespan: Time,
    pub(crate) sketch_counts: Vec<u64>,
    pub(crate) sketch_total: u64,
    pub(crate) sketch_min: f64,
    pub(crate) sketch_max: f64,
}

/// Everything a streaming run produces. There is deliberately no
/// per-job completion list and no materialized [`crate::Instance`] — the
/// whole point of the path is that nothing here grows with `n`.
#[derive(Debug, Clone)]
pub struct StreamingOutcome {
    /// Aggregates — every scalar bit-identical to the in-memory path's
    /// [`crate::RunOutcome::metrics`] on the same workload.
    pub metrics: RunMetrics,
    /// Flow-time distribution sketch (see [`QuantileSketch`] error bound).
    pub quantiles: QuantileSketch,
    /// High-water mark of the alive set — the quantity that actually
    /// bounds the streaming engine's memory.
    pub peak_alive: usize,
    /// Total jobs admitted from the source over the run.
    pub admitted: usize,
    /// Invariant-audit report when auditing was enabled (see
    /// [`crate::EngineConfig::with_audit`]).
    pub audit: Option<AuditReport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_quantiles_respect_relative_error_bound() {
        let mut s = QuantileSketch::new();
        let values: Vec<f64> = (1..=10_000).map(|i| f64::from(i) * 0.37).collect();
        for &v in &values {
            s.record(v);
        }
        let bound = 2f64.powf(1.0 / 16.0) - 1.0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let est = s.quantile(q);
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            assert!(
                (est - exact).abs() <= bound * exact + 1e-12,
                "q={q}: est {est} vs exact {exact} (bound {bound})"
            );
        }
    }

    #[test]
    fn sketch_extreme_quantiles_are_exact() {
        let mut s = QuantileSketch::new();
        for v in [3.0, 1.5, 97.0, 0.25] {
            s.record(v);
        }
        assert_eq!(s.quantile(0.0), 0.25);
        assert_eq!(s.quantile(1.0), 97.0);
        assert_eq!(s.min(), 0.25);
        assert_eq!(s.max(), 97.0);
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn sketch_handles_degenerate_values() {
        let mut s = QuantileSketch::new();
        s.record(0.0); // flow can be exactly 0 via snap tolerance
        s.record(1e-300); // subnormal-adjacent
        s.record(1e300); // far beyond the top bucket
        assert_eq!(s.count(), 3);
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 1e300);
        assert!(s.quantile(0.5).is_finite());
    }

    #[test]
    fn empty_sketch_yields_nan() {
        let s = QuantileSketch::new();
        assert!(s.quantile(0.5).is_nan());
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
        assert!(s.is_empty());
    }

    #[test]
    fn sink_matches_hand_computed_aggregates() {
        let mut sink = StreamingMetrics::new();
        // (release, size, completion, weight)
        sink.record(0.0, 1.0, 2.0, 1.0); // flow 2, stretch 2
        sink.record(1.0, 4.0, 4.0, 2.0); // flow 3, stretch 0.75, weighted 6
        let m = sink.run_metrics(7, 4.5, 5.0);
        assert_eq!(m.total_flow, 5.0);
        assert_eq!(m.mean_flow, 2.5);
        assert_eq!(m.max_flow, 3.0);
        assert_eq!(m.total_stretch, 2.75);
        assert_eq!(m.max_stretch, 2.0);
        assert_eq!(m.total_weighted_flow, 8.0);
        assert_eq!(m.makespan, 4.0);
        assert_eq!(m.num_jobs, 2);
        assert_eq!(m.events, 7);
        assert_eq!(m.fractional_flow, 4.5);
        assert_eq!(m.alive_integral, 5.0);
    }

    #[test]
    fn empty_sink_yields_zero_metrics() {
        let m = StreamingMetrics::new().run_metrics(0, 0.0, 0.0);
        assert_eq!(m.num_jobs, 0);
        assert_eq!(m.total_flow, 0.0);
        assert_eq!(m.mean_flow, 0.0);
    }
}
