//! Plain-text (CSV) persistence for instances.
//!
//! The offline dependency set has no serde *format* crate, so instances
//! round-trip through a small hand-rolled CSV dialect:
//!
//! ```text
//! id,release,size,curve
//! 0,0.0,16,pow:0.5
//! 1,1.5,2,seq
//! 2,2.0,4,amdahl:0.25
//! 3,3.0,8,pwl:0 0;2 2;8 5
//! ```
//!
//! `curve` is one of `par`, `seq`, `pow:<α>`, `amdahl:<s>`, or
//! `pwl:<x y;…>`. Floats print with enough digits to round-trip exactly.

use parsched_speedup::{Curve, PiecewiseLinear};

use crate::error::SimError;
use crate::job::{Instance, JobId, JobSpec};

/// Serializes a curve to the compact field syntax above (`par`, `seq`,
/// `pow:<α>`, `amdahl:<s>`, `pwl:<x y;…>`). Shared by the CSV dialect and
/// the trace format ([`crate::trace`]).
pub fn curve_to_field(curve: &Curve) -> String {
    match curve {
        Curve::FullyParallel => "par".to_string(),
        Curve::Sequential => "seq".to_string(),
        Curve::Power { alpha } => format!("pow:{alpha:?}"),
        Curve::Amdahl { serial_fraction } => format!("amdahl:{serial_fraction:?}"),
        Curve::Piecewise(p) => {
            let pts: Vec<String> = p
                .points()
                .iter()
                .map(|(x, y)| format!("{x:?} {y:?}"))
                .collect();
            format!("pwl:{}", pts.join(";"))
        }
    }
}

/// Parses the compact curve field syntax emitted by [`curve_to_field`].
pub fn curve_from_field(field: &str) -> Result<Curve, SimError> {
    let bad = |what: String| SimError::BadInstance { what };
    match field {
        "par" => Ok(Curve::FullyParallel),
        "seq" => Ok(Curve::Sequential),
        other => {
            if let Some(alpha) = other.strip_prefix("pow:") {
                let alpha: f64 = alpha
                    .parse()
                    .map_err(|e| bad(format!("bad power exponent: {e}")))?;
                Curve::try_power(alpha).map_err(|e| bad(e.to_string()))
            } else if let Some(s) = other.strip_prefix("amdahl:") {
                let s: f64 = s
                    .parse()
                    .map_err(|e| bad(format!("bad Amdahl fraction: {e}")))?;
                Curve::try_amdahl(s).map_err(|e| bad(e.to_string()))
            } else if let Some(pts) = other.strip_prefix("pwl:") {
                let mut points = Vec::new();
                for pair in pts.split(';') {
                    let mut it = pair.split_whitespace();
                    let x: f64 = it
                        .next()
                        .ok_or_else(|| bad("pwl point missing x".into()))?
                        .parse()
                        .map_err(|e| bad(format!("bad pwl x: {e}")))?;
                    let y: f64 = it
                        .next()
                        .ok_or_else(|| bad("pwl point missing y".into()))?
                        .parse()
                        .map_err(|e| bad(format!("bad pwl y: {e}")))?;
                    points.push((x, y));
                }
                Ok(Curve::Piecewise(
                    PiecewiseLinear::new(points).map_err(|e| bad(e.to_string()))?,
                ))
            } else {
                Err(bad(format!("unknown curve '{other}'")))
            }
        }
    }
}

/// Serializes an instance to the CSV dialect above (with header). A
/// fifth `weight` column is emitted only when some job's weight differs
/// from 1, keeping the common unweighted files minimal.
pub fn instance_to_csv(instance: &Instance) -> String {
    // Weights are parsed or defaulted, never computed — exact by intent.
    let weighted = instance
        .jobs()
        .iter()
        .any(|j| !parsched_speedup::exact_eq(j.weight, 1.0));
    let mut out = String::from(if weighted {
        "id,release,size,curve,weight\n"
    } else {
        "id,release,size,curve\n"
    });
    for j in instance.jobs() {
        if weighted {
            out.push_str(&format!(
                "{},{:?},{:?},{},{:?}\n",
                j.id.0,
                j.release,
                j.size,
                curve_to_field(&j.curve),
                j.weight
            ));
        } else {
            out.push_str(&format!(
                "{},{:?},{:?},{}\n",
                j.id.0,
                j.release,
                j.size,
                curve_to_field(&j.curve)
            ));
        }
    }
    out
}

/// Parses an instance from the CSV dialect above. The header row is
/// required; blank lines and `#` comments are ignored.
pub fn instance_from_csv(text: &str) -> Result<Instance, SimError> {
    let bad = |line: usize, what: &str| SimError::BadInstance {
        what: format!("csv line {line}: {what}"),
    };
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty() && !l.trim_start().starts_with('#'));
    let weighted = match lines.next() {
        Some((_, h)) if h.trim() == "id,release,size,curve" => false,
        Some((_, h)) if h.trim() == "id,release,size,curve,weight" => true,
        _ => {
            return Err(SimError::BadInstance {
                what: "missing csv header 'id,release,size,curve[,weight]'".to_string(),
            })
        }
    };
    let mut jobs = Vec::new();
    for (ln, line) in lines {
        let mut fields = line.splitn(4, ',');
        let id: u64 = fields
            .next()
            .ok_or_else(|| bad(ln + 1, "missing id"))?
            .trim()
            .parse()
            .map_err(|_| bad(ln + 1, "bad id"))?;
        let release: f64 = fields
            .next()
            .ok_or_else(|| bad(ln + 1, "missing release"))?
            .trim()
            .parse()
            .map_err(|_| bad(ln + 1, "bad release"))?;
        let size: f64 = fields
            .next()
            .ok_or_else(|| bad(ln + 1, "missing size"))?
            .trim()
            .parse()
            .map_err(|_| bad(ln + 1, "bad size"))?;
        let rest = fields.next().ok_or_else(|| bad(ln + 1, "missing curve"))?;
        let (curve_field, weight) = if weighted {
            let (c, w) = rest
                .rsplit_once(',')
                .ok_or_else(|| bad(ln + 1, "missing weight"))?;
            let w: f64 = w.trim().parse().map_err(|_| bad(ln + 1, "bad weight"))?;
            (c, w)
        } else {
            (rest, 1.0)
        };
        let curve = curve_from_field(curve_field.trim())?;
        jobs.push(JobSpec::new(JobId(id), release, size, curve).with_weight(weight));
    }
    Instance::new(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Instance {
        Instance::new(vec![
            JobSpec::new(JobId(0), 0.0, 16.0, Curve::power(0.5)),
            JobSpec::new(JobId(1), 1.5, 2.0, Curve::Sequential),
            JobSpec::new(JobId(2), 2.0, 4.0, Curve::try_amdahl(0.25).unwrap()),
            JobSpec::new(JobId(3), 3.0, 8.0, Curve::FullyParallel),
            JobSpec::new(
                JobId(4),
                4.0,
                1.0,
                Curve::Piecewise(PiecewiseLinear::saturating(2.0).unwrap()),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let inst = sample();
        let csv = instance_to_csv(&inst);
        let back = instance_from_csv(&csv).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn round_trip_preserves_awkward_floats() {
        let inst = Instance::new(vec![JobSpec::new(
            JobId(0),
            0.1 + 0.2, // 0.30000000000000004
            1.0 / 3.0,
            Curve::power(1.0 / 7.0),
        )])
        .unwrap();
        let back = instance_from_csv(&instance_to_csv(&inst)).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn weighted_instances_round_trip_with_fifth_column() {
        let inst = Instance::new(vec![
            JobSpec::new(JobId(0), 0.0, 2.0, Curve::power(0.5)).with_weight(3.5),
            JobSpec::new(JobId(1), 1.0, 4.0, Curve::Sequential), // weight 1
        ])
        .unwrap();
        let csv = instance_to_csv(&inst);
        assert!(csv.starts_with("id,release,size,curve,weight\n"), "{csv}");
        let back = instance_from_csv(&csv).unwrap();
        assert_eq!(inst, back);
        assert_eq!(back.jobs()[0].weight, 3.5);
        assert_eq!(back.jobs()[1].weight, 1.0);
    }

    #[test]
    fn unweighted_instances_omit_the_weight_column() {
        let csv = instance_to_csv(&sample());
        assert!(csv.starts_with("id,release,size,curve\n"));
        assert!(!csv.contains("weight"));
    }

    #[test]
    fn weighted_header_requires_weight_field() {
        let err = instance_from_csv("id,release,size,curve,weight\n0,0,1,seq\n").unwrap_err();
        assert!(err.to_string().contains("weight"), "{err}");
        // The weight must also be valid.
        assert!(instance_from_csv("id,release,size,curve,weight\n0,0,1,seq,-2\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# a comment\nid,release,size,curve\n\n0,0,1,seq\n# trailing\n";
        let inst = instance_from_csv(text).unwrap();
        assert_eq!(inst.len(), 1);
    }

    #[test]
    fn malformed_input_is_rejected_with_line_numbers() {
        assert!(instance_from_csv("nope").is_err());
        let err = instance_from_csv("id,release,size,curve\n0,x,1,seq\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(instance_from_csv("id,release,size,curve\n0,0,1,pow:9\n").is_err());
        assert!(instance_from_csv("id,release,size,curve\n0,0,1,banana\n").is_err());
        assert!(instance_from_csv("id,release,size,curve\n0,0,1,pwl:0 0;1\n").is_err());
        // Semantic validation still applies (duplicate ids).
        assert!(instance_from_csv("id,release,size,curve\n0,0,1,seq\n0,1,1,seq\n").is_err());
    }

    #[test]
    fn generated_instances_round_trip() {
        // A denser instance with many distinct power exponents.
        let jobs: Vec<JobSpec> = (0..50)
            .map(|i| {
                JobSpec::new(
                    JobId(i),
                    i as f64 * 0.37,
                    1.0 + (i as f64 * 1.61803) % 15.0,
                    Curve::power((i as f64 * 0.0199) % 1.0),
                )
            })
            .collect();
        let inst = Instance::new(jobs).unwrap();
        assert_eq!(instance_from_csv(&instance_to_csv(&inst)).unwrap(), inst);
    }
}
