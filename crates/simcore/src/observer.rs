//! Trace hooks fired by the engine at every event boundary.

use crate::job::{JobSpec, Time};
use crate::policy::AliveJob;

/// Callbacks invoked by the [`crate::Engine`] as the simulation advances.
///
/// All methods have empty defaults; implement only what you need. The
/// engine guarantees the call order per event boundary at time `t`:
/// `on_completion`* → `on_arrivals`? → `on_allocation` (for the interval
/// *starting* at `t`).
pub trait Observer {
    /// Jobs released at time `t` (called once per batch).
    fn on_arrivals(&mut self, t: Time, jobs: &[JobSpec]) {
        let _ = (t, jobs);
    }

    /// A job completed at time `t`.
    fn on_completion(&mut self, t: Time, job: &JobSpec) {
        let _ = (t, job);
    }

    /// A fresh allocation decision covering the interval starting at `t`:
    /// `shares[i]` processors for `jobs[i]`.
    fn on_allocation(&mut self, t: Time, jobs: &[AliveJob<'_>], shares: &[f64]) {
        let _ = (t, jobs, shares);
    }

    /// The engine advanced from `t0` to `t1` with a constant allocation.
    fn on_advance(&mut self, t0: Time, t1: Time) {
        let _ = (t0, t1);
    }

    /// Whether this observer consumes [`Observer::on_allocation`].
    ///
    /// Building the per-interval `(jobs, shares)` view is the one `O(n)`
    /// cost the engine's incremental `O(log n)` path cannot avoid, so
    /// observers that ignore `on_allocation` should return `false` to keep
    /// that path enabled. All other callbacks (`on_arrivals`,
    /// `on_completion`, `on_advance`) fire on every path regardless of this
    /// hint. The default is `true` — the conservative answer that forces
    /// the exhaustive path.
    fn needs_allocation_stream(&self) -> bool {
        true
    }

    /// Whether every callback on this observer is a no-op.
    ///
    /// Observers returning `true` promise that skipping their callbacks
    /// entirely is indistinguishable from calling them, which lets the
    /// engine's monomorphized fast loop elide the per-event virtual
    /// dispatch (see `Engine::run_loop`). The default is `false` — the
    /// conservative answer that keeps every callback firing.
    fn is_noop(&self) -> bool {
        false
    }
}

/// An observer that records nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn needs_allocation_stream(&self) -> bool {
        false
    }

    fn is_noop(&self) -> bool {
        true
    }
}

/// One sample of the alive-job count step function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Sample time.
    pub t: Time,
    /// `|A(t)|` immediately after the event at `t`.
    pub alive: usize,
}

/// Records the step function `t ↦ |A(t)|` (one point per event).
///
/// Used by experiment F5 to visualize Intermediate-SRPT's regime switching
/// between overloaded (`|A(t)| ≥ m`) and underloaded times.
#[derive(Debug, Default, Clone)]
pub struct AliveTrace {
    points: Vec<TracePoint>,
    alive_now: usize,
}

impl AliveTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded samples in time order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Largest observed `|A(t)|`.
    pub fn peak(&self) -> usize {
        self.points.iter().map(|p| p.alive).max().unwrap_or(0)
    }

    /// `|A(t)|` at an arbitrary time (the value of the step function:
    /// the last sample at or before `t`; 0 before the first sample).
    pub fn alive_at(&self, t: Time) -> usize {
        let idx = self.points.partition_point(|p| p.t <= t + 1e-12);
        if idx == 0 {
            0
        } else {
            self.points[idx - 1].alive
        }
    }

    /// Fraction of *event samples* at which `|A(t)| ≥ m` (a cheap summary
    /// of how often the system was overloaded; time-weighted statistics can
    /// be derived from [`AliveTrace::points`]).
    pub fn overloaded_fraction(&self, m: usize) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let over = self.points.iter().filter(|p| p.alive >= m).count();
        over as f64 / self.points.len() as f64
    }

    fn push(&mut self, t: Time) {
        // Collapse repeated samples at the same instant: keep the last.
        if let Some(last) = self.points.last_mut() {
            if last.t == t {
                last.alive = self.alive_now;
                return;
            }
        }
        self.points.push(TracePoint {
            t,
            alive: self.alive_now,
        });
    }
}

impl Observer for AliveTrace {
    fn on_arrivals(&mut self, t: Time, jobs: &[JobSpec]) {
        self.alive_now += jobs.len();
        self.push(t);
    }

    fn on_completion(&mut self, t: Time, _job: &JobSpec) {
        self.alive_now -= 1;
        self.push(t);
    }

    fn needs_allocation_stream(&self) -> bool {
        false
    }
}

/// One constant-allocation segment of one job's schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocationSegment {
    /// Segment start.
    pub start: Time,
    /// Segment end.
    pub end: Time,
    /// The job.
    pub id: crate::job::JobId,
    /// Processors held throughout the segment.
    pub share: f64,
}

/// Records the full allocation timeline of a run: one
/// [`AllocationSegment`] per (job, constant-allocation interval).
///
/// This is the observer behind Gantt-chart rendering and share-based
/// post-hoc analyses. Adjacent segments with the same share are merged.
#[derive(Debug, Default, Clone)]
pub struct AllocationTrace {
    segments: Vec<AllocationSegment>,
    current: Vec<(crate::job::JobId, f64)>,
}

impl AllocationTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded segments in time order (per interval; jobs within an
    /// interval are in allocation order).
    pub fn segments(&self) -> &[AllocationSegment] {
        &self.segments
    }

    /// Total processor-time recorded (`Σ share·(end − start)`).
    pub fn total_processor_time(&self) -> f64 {
        crate::kahan::NeumaierSum::total(self.segments.iter().map(|s| s.share * (s.end - s.start)))
    }

    /// The segments of one job, in time order.
    pub fn of_job(&self, id: crate::job::JobId) -> Vec<AllocationSegment> {
        self.segments
            .iter()
            .filter(|s| s.id == id)
            .copied()
            .collect()
    }
}

impl Observer for AllocationTrace {
    fn on_allocation(&mut self, _t: Time, jobs: &[AliveJob<'_>], shares: &[f64]) {
        self.current = jobs
            .iter()
            .zip(shares)
            .filter(|&(_, &s)| s > 0.0)
            .map(|(j, &s)| (j.id(), s))
            .collect();
    }

    fn on_advance(&mut self, t0: Time, t1: Time) {
        if t1 <= t0 {
            return;
        }
        for &(id, share) in &self.current {
            // Merge with the previous segment of the same job when the
            // allocation is unchanged and the intervals abut.
            if let Some(last) = self
                .segments
                .iter_mut()
                .rev()
                .find(|s| s.id == id && (s.end - t0).abs() < 1e-12)
            {
                if (last.share - share).abs() < 1e-12 {
                    last.end = t1;
                    continue;
                }
            }
            self.segments.push(AllocationSegment {
                start: t0,
                end: t1,
                id,
                share,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use parsched_speedup::Curve;

    fn spec(id: u64) -> JobSpec {
        JobSpec::new(JobId(id), 0.0, 1.0, Curve::Sequential)
    }

    #[test]
    fn alive_trace_counts_arrivals_and_completions() {
        let mut tr = AliveTrace::new();
        tr.on_arrivals(0.0, &[spec(0), spec(1)]);
        tr.on_arrivals(1.0, &[spec(2)]);
        tr.on_completion(2.0, &spec(0));
        assert_eq!(
            tr.points(),
            &[
                TracePoint { t: 0.0, alive: 2 },
                TracePoint { t: 1.0, alive: 3 },
                TracePoint { t: 2.0, alive: 2 },
            ]
        );
        assert_eq!(tr.peak(), 3);
    }

    #[test]
    fn alive_trace_collapses_simultaneous_events() {
        let mut tr = AliveTrace::new();
        tr.on_arrivals(0.0, &[spec(0)]);
        tr.on_completion(1.0, &spec(0));
        tr.on_arrivals(1.0, &[spec(1), spec(2)]);
        // Both t=1 events collapse to the final state.
        assert_eq!(tr.points().len(), 2);
        assert_eq!(tr.points()[1], TracePoint { t: 1.0, alive: 2 });
    }

    #[test]
    fn alive_at_reads_the_step_function() {
        let mut tr = AliveTrace::new();
        tr.on_arrivals(1.0, &[spec(0), spec(1)]);
        tr.on_completion(3.0, &spec(0));
        assert_eq!(tr.alive_at(0.5), 0);
        assert_eq!(tr.alive_at(1.0), 2);
        assert_eq!(tr.alive_at(2.9), 2);
        assert_eq!(tr.alive_at(3.0), 1);
        assert_eq!(tr.alive_at(99.0), 1);
    }

    #[test]
    fn allocation_trace_records_and_merges_segments() {
        use crate::engine::simulate_with_observer;
        use crate::job::Instance;
        use crate::policy::EquiSplit;
        // Two sequential jobs, m = 2: each holds 1 processor from 0 to its
        // completion; the allocation never changes so segments merge.
        let inst = Instance::from_sizes(&[(0.0, 2.0), (0.0, 3.0)], Curve::Sequential).unwrap();
        let mut trace = AllocationTrace::new();
        simulate_with_observer(&inst, &mut EquiSplit, 2.0, &mut trace).unwrap();
        let j0 = trace.of_job(JobId(0));
        assert_eq!(j0.len(), 1);
        assert!((j0[0].start - 0.0).abs() < 1e-12 && (j0[0].end - 2.0).abs() < 1e-9);
        assert!((j0[0].share - 1.0).abs() < 1e-12);
        let j1 = trace.of_job(JobId(1));
        // Job 1: share 1 on [0,2), then share 2 on [2,3) — distinct
        // segments because the share changed.
        assert_eq!(j1.len(), 2);
        assert!((j1[1].share - 2.0).abs() < 1e-12);
        // Processor-time = total work actually drained at Γ(x) ≤ x… for
        // sequential jobs share 2 wastes 1: 2 + (2 + 2·1) = work 5 ≤ 6.
        assert!((trace.total_processor_time() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn overloaded_fraction_counts_samples() {
        let mut tr = AliveTrace::new();
        tr.on_arrivals(0.0, &[spec(0), spec(1)]); // alive 2
        tr.on_completion(1.0, &spec(0)); // alive 1
        assert_eq!(tr.overloaded_fraction(2), 0.5);
        assert_eq!(tr.overloaded_fraction(5), 0.0);
        assert_eq!(AliveTrace::new().overloaded_fraction(1), 0.0);
    }
}
