//! The ordered alive set behind the engine's incremental `O(log n)` path.
//!
//! [`SrptSet`] maintains the alive jobs in SRPT order — `(remaining,
//! release, id)` — split into two partitions:
//!
//! * **running**: the scheduled prefix (the `k` smallest jobs), keyed in
//!   *offset* space `key = remaining + D`, where `D` is the cumulative
//!   drain applied uniformly to the whole prefix;
//! * **queued**: everything else, keyed by its literal remaining work
//!   (queued jobs receive zero processors and do not drain).
//!
//! Between events a prefix policy drains every scheduled job at a common
//! rate `r` (the paper's order-invariance observation: with equal shares
//! the SRPT order cannot change between events). Instead of touching every
//! running key, a uniform advance just bumps `D += r·dt` — materialized
//! remaining work is `key − D`. Because all running keys share the same
//! offset, their relative order is preserved, and since running jobs only
//! shrink while queued jobs are static, the cross-partition invariant
//! `max(running) − D ≤ min(queued)` is preserved too.
//!
//! # Representation
//!
//! Both partitions are **`Vec`-backed heaps**, not `BTreeMap`s: the hot
//! loop needs only `insert`, `pop-min`, `pop-max` (demotion), and the two
//! peeks — all `O(log n)` on a contiguous array with no per-node
//! allocation, where the seed's B-tree paid pointer chasing plus a node
//! allocation/free per structural change on every event. The running
//! prefix is a **min-max heap** (Atkinson et al.: even levels ordered by
//! min, odd by max, so both ends pop in `O(log k)`); the queue only ever
//! pops its minimum (promotion) and is a plain binary min-heap. Buffers
//! are retained across [`SrptSet::reset`], which is what makes repeated
//! engine runs allocation-free after warm-up (see `docs/PERF.md` §6).
//!
//! Ordered iteration (audit frames, snapshots, heterogeneous-prefix
//! scans) is off the steady-state path and materializes a sorted copy; the
//! sort uses the same total order the B-tree kept, so every externally
//! observable sequence — completion order, tie-breaks, floating-point
//! accumulation order of the running sums — is unchanged.
//!
//! Heterogeneous prefixes (different curves at share ≠ 1) drain at
//! per-job rates; [`SrptSet::drain_scan`] handles those intervals in
//! `O(k log k)`. Two counters maintained on the fly — jobs whose curve
//! differs from the first-admitted reference and jobs with `Γ(1) ≠ 1` —
//! let the engine detect the uniform case in `O(1)`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use parsched_speedup::Curve;

use crate::job::{JobId, JobSpec, Time, Work};

/// Rebase threshold for the drain offset: past this, `ulp(D)` approaches
/// the engine's `EPS`-scaled completion tolerances, so keys are rebuilt
/// with the offset folded in (an `O(k log k)` cleanup, amortized free).
const REBASE_LIMIT: f64 = 1e6;

/// SRPT ordering key. For running entries `key` is in offset space
/// (`remaining + D`); for queued entries it is the literal remaining work.
/// Ties break by `(release, id)`, matching `parsched_core::util::srpt_order`.
#[derive(Debug, Clone, Copy)]
struct OrdKey {
    key: f64,
    release: Time,
    id: JobId,
}

impl PartialEq for OrdKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for OrdKey {}

impl PartialOrd for OrdKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .total_cmp(&other.key)
            .then_with(|| self.release.total_cmp(&other.release))
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// Per-job payload carried alongside the ordering key: everything the set
/// needs to maintain its sums and counters without consulting the engine.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Slot {
    /// Index into the engine's job arena.
    pub idx: usize,
    /// Original size `p_j` (denominator of fractional flow).
    pub size: Work,
    /// Curve differs from the set's reference curve.
    hetero: bool,
    /// `Γ(1) ≠ 1` for this job's curve.
    nonunit: bool,
}

/// One heap element: ordering key plus payload. Total order is the key's
/// (keys are unique — `id` is a tie-break of last resort — so `Eq` by key
/// is consistent with logical identity).
#[derive(Debug, Clone, Copy)]
struct Entry {
    key: OrdKey,
    slot: Slot,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A `Vec`-backed min-max heap (Atkinson–Sack–Santoro–Strothotte):
/// `O(log n)` push / pop-min / pop-max, `O(1)` peek at both ends, and no
/// per-node allocation. Levels alternate: the root level (depth 0) and
/// every even depth satisfy the *min* property (element ≤ its subtree),
/// odd depths the *max* property (element ≥ its subtree).
#[derive(Debug, Default)]
struct MinMaxHeap {
    a: Vec<Entry>,
}

/// Whether heap index `i` sits on a min (even-depth) level.
#[inline]
fn on_min_level(i: usize) -> bool {
    // depth = floor(log2(i + 1)); even depth ⇔ min level.
    (i + 1).ilog2() & 1 == 0
}

impl MinMaxHeap {
    #[inline]
    fn len(&self) -> usize {
        self.a.len()
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    #[inline]
    fn peek_min(&self) -> Option<&Entry> {
        self.a.first()
    }

    fn max_index(&self) -> Option<usize> {
        match self.a.len() {
            0 => None,
            1 => Some(0),
            2 => Some(1),
            _ => Some(if self.a[1] >= self.a[2] { 1 } else { 2 }),
        }
    }

    #[inline]
    fn peek_max(&self) -> Option<&Entry> {
        self.max_index().map(|i| &self.a[i])
    }

    fn push(&mut self, e: Entry) {
        self.a.push(e);
        self.bubble_up(self.a.len() - 1);
    }

    fn pop_min(&mut self) -> Option<Entry> {
        if self.a.is_empty() {
            return None;
        }
        let min = self.a.swap_remove(0);
        if !self.a.is_empty() {
            self.trickle_down(0);
        }
        Some(min)
    }

    fn pop_max(&mut self) -> Option<Entry> {
        let i = self.max_index()?;
        let max = self.a.swap_remove(i);
        if i < self.a.len() {
            self.trickle_down(i);
        }
        Some(max)
    }

    fn clear(&mut self) {
        self.a.clear();
    }

    /// Unordered view of the entries (callers sort for SRPT order).
    #[inline]
    fn entries(&self) -> &[Entry] {
        &self.a
    }

    /// Drains all entries (unordered) into `out`, leaving capacity behind.
    fn drain_into(&mut self, out: &mut Vec<Entry>) {
        out.extend_from_slice(&self.a);
        self.a.clear();
    }

    fn bubble_up(&mut self, mut i: usize) {
        if i == 0 {
            return;
        }
        let parent = (i - 1) / 2;
        if on_min_level(i) {
            if self.a[i] > self.a[parent] {
                self.a.swap(i, parent);
                i = parent;
                self.bubble_up_grand(i, false);
            } else {
                self.bubble_up_grand(i, true);
            }
        } else if self.a[i] < self.a[parent] {
            self.a.swap(i, parent);
            i = parent;
            self.bubble_up_grand(i, true);
        } else {
            self.bubble_up_grand(i, false);
        }
    }

    /// Sifts `i` toward the root along grandparent links; `min` selects
    /// which property (min or max levels) is being restored.
    fn bubble_up_grand(&mut self, mut i: usize, min: bool) {
        while i > 2 {
            let gp = ((i - 1) / 2 - 1) / 2;
            let swap = if min {
                self.a[i] < self.a[gp]
            } else {
                self.a[i] > self.a[gp]
            };
            if !swap {
                break;
            }
            self.a.swap(i, gp);
            i = gp;
        }
    }

    fn trickle_down(&mut self, i: usize) {
        if on_min_level(i) {
            self.trickle(i, true);
        } else {
            self.trickle(i, false);
        }
    }

    /// Restores the heap property below `i`; `min` selects the property of
    /// `i`'s level. Standard min-max trickle: descend to the extreme child
    /// or grandchild, swapping the intervening parent when a grandchild
    /// wins.
    fn trickle(&mut self, mut i: usize, min: bool) {
        let len = self.a.len();
        loop {
            // The extreme element among children and grandchildren.
            let first_child = 2 * i + 1;
            if first_child >= len {
                return;
            }
            let mut best = first_child;
            let mut best_is_grandchild = false;
            let second_child = first_child + 1;
            if second_child < len {
                let better = if min {
                    self.a[second_child] < self.a[best]
                } else {
                    self.a[second_child] > self.a[best]
                };
                if better {
                    best = second_child;
                }
            }
            let first_grand = 4 * i + 3;
            for g in first_grand..(first_grand + 4).min(len) {
                let better = if min {
                    self.a[g] < self.a[best]
                } else {
                    self.a[g] > self.a[best]
                };
                if better {
                    best = g;
                    best_is_grandchild = true;
                }
            }
            let improves = if min {
                self.a[best] < self.a[i]
            } else {
                self.a[best] > self.a[i]
            };
            if !improves {
                return;
            }
            self.a.swap(i, best);
            if !best_is_grandchild {
                return;
            }
            // After a grandchild swap the intervening parent (an opposite-
            // level node) may now violate its own property.
            let parent = (best - 1) / 2;
            let parent_violated = if min {
                self.a[best] > self.a[parent]
            } else {
                self.a[best] < self.a[parent]
            };
            if parent_violated {
                self.a.swap(best, parent);
            }
            i = best;
        }
    }
}

/// Where an alive job currently lives, reported back to the engine so it
/// can keep per-record state (`remaining` vs. offset key) coherent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Placement {
    /// In the scheduled prefix with the given offset-space key.
    Running {
        /// Offset-space key (`remaining + D`).
        key: f64,
    },
    /// In the queue with the given literal remaining work.
    Queued {
        /// Remaining work.
        remaining: Work,
    },
}

/// One alive-set entry as captured in a `parsched-snap/v1` document:
/// ordering key (offset space for running, literal remaining for queued)
/// plus the full [`Slot`] payload. The `hetero`/`nonunit` flags are stored
/// verbatim — they were computed against the reference curve at *insert*
/// time, and recomputing them on restore could diverge when the reference
/// itself was a later-admitted job's curve in the original run.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SetEntrySnap {
    pub(crate) key: f64,
    pub(crate) release: Time,
    pub(crate) id: JobId,
    pub(crate) idx: usize,
    pub(crate) size: Work,
    pub(crate) hetero: bool,
    pub(crate) nonunit: bool,
}

/// Full [`SrptSet`] state for suspend/resume. The five running/queued sums
/// are captured bit-exact rather than recomputed on restore: they were
/// accumulated incrementally over the run's insert/forget sequence, and any
/// re-summation order would produce different low-order bits.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SetSnap {
    pub(crate) running: Vec<SetEntrySnap>,
    pub(crate) queued: Vec<SetEntrySnap>,
    pub(crate) drain: f64,
    pub(crate) s1: f64,
    pub(crate) sk: f64,
    pub(crate) key_sum: f64,
    pub(crate) q_frac: f64,
    pub(crate) q_rem_sum: f64,
    pub(crate) reference: Option<Curve>,
}

/// The alive set in SRPT order with an `O(1)` uniform-drain fast path.
#[derive(Debug, Default)]
pub(crate) struct SrptSet {
    /// Scheduled prefix: min-max heap over offset-space keys.
    running: MinMaxHeap,
    /// Queue: binary min-heap over literal remaining work.
    queued: BinaryHeap<Reverse<Entry>>,
    /// Scratch for ordered rebuilds (`drain_scan` / `maybe_rebase`);
    /// retained so rebuilds allocate nothing after warm-up.
    // lint:allow(L009) transient scratch for ordered views, empty between events; nothing to restore
    scratch: Vec<Entry>,
    /// Scratch for steady-state ordered *views*
    /// ([`SrptSet::for_each_running_ordered`]); kept separate from
    /// `scratch` because a view can be taken while a rebuild is pending.
    // lint:allow(L009) transient scratch for ordered views, empty between events; nothing to restore
    ordered: Vec<Entry>,
    /// Cumulative uniform drain applied to the running partition.
    drain: f64,
    /// `Σ 1/p_j` over running.
    s1: f64,
    /// `Σ key_j/p_j` over running (offset space).
    sk: f64,
    /// `Σ key_j` over running (offset space; total remaining = key_sum − k·D).
    key_sum: f64,
    /// `Σ rem_j/p_j` over queued.
    q_frac: f64,
    /// `Σ rem_j` over queued.
    q_rem_sum: f64,
    /// Running jobs whose curve differs from `reference`.
    // lint:allow(L009) derived partition statistic; rebuilt by rebuild_running during restore
    hetero_running: usize,
    /// Running jobs with `Γ(1) ≠ 1`.
    // lint:allow(L009) derived partition statistic; rebuilt by rebuild_running during restore
    nonunit_running: usize,
    /// Curve of the first job ever admitted (uniformity baseline).
    reference: Option<Curve>,
}

impl SrptSet {
    /// Clears all state for a fresh run while **retaining** every buffer
    /// (both heap arrays and the rebuild scratch) — the piece of
    /// [`crate::Engine::reset`]'s zero-allocation contract this structure
    /// owns.
    pub fn reset(&mut self) {
        self.running.clear();
        self.queued.clear();
        self.scratch.clear();
        self.ordered.clear();
        self.drain = 0.0;
        self.s1 = 0.0;
        self.sk = 0.0;
        self.key_sum = 0.0;
        self.q_frac = 0.0;
        self.q_rem_sum = 0.0;
        self.hetero_running = 0;
        self.nonunit_running = 0;
        self.reference = None;
    }

    /// Total alive jobs.
    pub fn len(&self) -> usize {
        self.running.len() + self.queued.len()
    }

    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Current cumulative drain offset `D`.
    pub fn drain_offset(&self) -> f64 {
        self.drain
    }

    /// `Σ 1/p_j` over the running prefix.
    pub fn running_inv_size_sum(&self) -> f64 {
        self.s1
    }

    /// `Σ key_j/p_j` over the running prefix (offset space); the running
    /// partition's fractional remaining work is `sk − D·s1`.
    pub fn running_key_frac_sum(&self) -> f64 {
        self.sk
    }

    /// `Σ rem_j/p_j` over queued jobs.
    pub fn queued_frac_sum(&self) -> f64 {
        self.q_frac
    }

    /// Total remaining work across both partitions, `O(1)`.
    pub fn total_remaining(&self) -> f64 {
        let running = self.key_sum - self.running.len() as f64 * self.drain;
        (running + self.q_rem_sum).max(0.0)
    }

    /// `true` iff every running job has the same curve as the reference
    /// (vacuously true when ≤ 1 job runs).
    pub fn uniform_curves(&self) -> bool {
        self.hetero_running == 0
    }

    /// `true` iff every running job has `Γ(1) = 1`.
    pub fn unit_rate_at_one(&self) -> bool {
        self.nonunit_running == 0
    }

    /// The front (smallest-remaining) running job: `(slot, remaining)`.
    pub fn front_running(&self) -> Option<(Slot, f64)> {
        self.running
            .peek_min()
            .map(|e| (e.slot, (e.key.key - self.drain).max(0.0)))
    }

    /// The running prefix in SRPT order as `(slot, remaining)`.
    ///
    /// Materializes a sorted copy: ordered views are off the steady-state
    /// path (audit frames, heterogeneous scans, snapshots), and sorting by
    /// the same total order the old B-tree kept preserves every observable
    /// iteration sequence bit-for-bit.
    pub fn iter_running(&self) -> impl Iterator<Item = (Slot, f64)> + '_ {
        // lint:allow(L007) ordered views are off the steady-state path (module docs): they materialize a sorted copy for observers and tests
        let mut v: Vec<Entry> = self.running.entries().to_vec();
        v.sort_unstable();
        let drain = self.drain;
        v.into_iter()
            .map(move |e| (e.slot, (e.key.key - drain).max(0.0)))
    }

    /// Visits the running prefix in SRPT order without allocating: the
    /// sort happens in the retained `ordered` scratch, so once that buffer
    /// has grown to the high-water mark this is heap-free — the variant
    /// the engine's Scan interval uses on its steady-state path.
    ///
    /// The visit order is identical to [`SrptSet::iter_running`]: both
    /// `sort_unstable` the same entries by the same total `OrdKey` order,
    /// and keys are unique (ties broken by release then id), so unstable
    /// sorting cannot permute observably. Order matters: the engine
    /// accumulates per-job fractional flow in this sequence and float
    /// addition is not associative.
    pub fn for_each_running_ordered(&mut self, mut f: impl FnMut(Slot, f64)) {
        self.ordered.clear();
        self.ordered.extend_from_slice(self.running.entries());
        self.ordered.sort_unstable();
        let drain = self.drain;
        for e in &self.ordered {
            f(e.slot, (e.key.key - drain).max(0.0));
        }
    }

    /// Queued jobs in SRPT order as `(slot, remaining)` (sorted copy, see
    /// [`SrptSet::iter_running`]).
    pub fn iter_queued(&self) -> impl Iterator<Item = (Slot, f64)> + '_ {
        // lint:allow(L007) ordered views are off the steady-state path (module docs): they materialize a sorted copy for observers and tests
        let mut v: Vec<Entry> = Vec::with_capacity(self.queued.len());
        // lint:allow(L007) ordered views are off the steady-state path (module docs): they materialize a sorted copy for observers and tests
        v.extend(self.queued.iter().map(|r| r.0));
        v.sort_unstable();
        v.into_iter().map(|e| (e.slot, e.key.key))
    }

    /// The whole alive set in SRPT order as `(idx, remaining)`.
    pub fn iter_alive(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.iter_running()
            .chain(self.iter_queued())
            .map(|(s, rem)| (s.idx, rem))
    }

    fn flags_for(&mut self, curve: &Curve) -> (bool, bool) {
        let reference = self.reference.get_or_insert_with(|| curve.clone());
        let hetero = reference != curve;
        let nonunit = (curve.rate(1.0) - 1.0).abs() > 1e-12;
        (hetero, nonunit)
    }

    fn add_running(&mut self, key: OrdKey, slot: Slot) {
        self.s1 += 1.0 / slot.size;
        self.sk += key.key / slot.size;
        self.key_sum += key.key;
        self.hetero_running += usize::from(slot.hetero);
        self.nonunit_running += usize::from(slot.nonunit);
        self.running.push(Entry { key, slot });
    }

    fn settle_running(&mut self) {
        if self.running.is_empty() {
            // Kill accumulator drift and reset the offset for free whenever
            // the prefix empties.
            self.s1 = 0.0;
            self.sk = 0.0;
            self.key_sum = 0.0;
            self.drain = 0.0;
            debug_assert_eq!(self.hetero_running, 0);
            debug_assert_eq!(self.nonunit_running, 0);
        }
    }

    fn forget_running(&mut self, key: &OrdKey, slot: &Slot) {
        self.s1 -= 1.0 / slot.size;
        self.sk -= key.key / slot.size;
        self.key_sum -= key.key;
        self.hetero_running -= usize::from(slot.hetero);
        self.nonunit_running -= usize::from(slot.nonunit);
    }

    fn add_queued(&mut self, key: OrdKey, slot: Slot) {
        self.q_frac += key.key / slot.size;
        self.q_rem_sum += key.key;
        self.queued.push(Reverse(Entry { key, slot }));
    }

    fn forget_queued(&mut self, key: &OrdKey, slot: &Slot) {
        self.q_frac -= key.key / slot.size;
        self.q_rem_sum -= key.key;
        if self.queued.is_empty() {
            self.q_frac = 0.0;
            self.q_rem_sum = 0.0;
        }
    }

    /// Inserts a newly arrived job and returns where it landed. The caller
    /// follows up with [`SrptSet::rebalance`] once the batch is in.
    pub fn insert(&mut self, idx: usize, spec: &JobSpec, remaining: Work) -> Placement {
        let (hetero, nonunit) = self.flags_for(&spec.curve);
        let slot = Slot {
            idx,
            size: spec.size,
            hetero,
            nonunit,
        };
        let run_key = OrdKey {
            key: remaining + self.drain,
            release: spec.release,
            id: spec.id,
        };
        let belongs_in_prefix = self.running.peek_max().is_some_and(|max| run_key < max.key);
        if belongs_in_prefix {
            self.add_running(run_key, slot);
            Placement::Running { key: run_key.key }
        } else {
            let key = OrdKey {
                key: remaining,
                release: spec.release,
                id: spec.id,
            };
            self.add_queued(key, slot);
            Placement::Queued { remaining }
        }
    }

    /// Restores `running.len() == min(target, len())` by demoting the
    /// largest running jobs or promoting the smallest queued jobs. Reports
    /// every move so the engine can update its per-job records.
    pub fn rebalance(&mut self, target: usize, mut moved: impl FnMut(usize, Placement)) {
        let want = target.min(self.len());
        while self.running.len() > want {
            // lint:allow(L007) pop is guarded by the partition-size accounting just above; the heap is counted non-empty
            let Entry { key, slot } = self.running.pop_max().expect("nonempty");
            let remaining = (key.key - self.drain).max(0.0);
            self.forget_running(&key, &slot);
            self.settle_running();
            let qkey = OrdKey {
                key: remaining,
                release: key.release,
                id: key.id,
            };
            self.add_queued(qkey, slot);
            moved(slot.idx, Placement::Queued { remaining });
        }
        while self.running.len() < want {
            // lint:allow(L007) pop is guarded by the partition-size accounting just above; the heap is counted non-empty
            let Reverse(Entry { key, slot }) = self.queued.pop().expect("nonempty");
            self.forget_queued(&key, &slot);
            let rkey = OrdKey {
                key: key.key + self.drain,
                release: key.release,
                id: key.id,
            };
            self.add_running(rkey, slot);
            moved(slot.idx, Placement::Running { key: rkey.key });
        }
    }

    /// Applies a uniform drain of `amount = r·dt` to the running prefix in
    /// `O(1)`. Only valid when every running job drains at the same rate.
    pub fn advance_uniform(&mut self, amount: f64) {
        if !self.running.is_empty() {
            self.drain += amount;
        }
    }

    /// Pops the front running job (the imminent completion). Returns the
    /// slot and its materialized remaining work.
    pub fn pop_front_running(&mut self) -> Option<(Slot, f64)> {
        let Entry { key, slot } = self.running.pop_min()?;
        let remaining = (key.key - self.drain).max(0.0);
        self.forget_running(&key, &slot);
        self.settle_running();
        Some((slot, remaining))
    }

    /// Rebuilds the running partition through `update` (applied in SRPT
    /// order — the old B-tree's iteration order, so the floating-point sum
    /// accumulation and the `moved` callback sequence are unchanged),
    /// folding the drain offset to zero. Shared by [`SrptSet::drain_scan`]
    /// and [`SrptSet::maybe_rebase`].
    fn rebuild_running(
        &mut self,
        mut update: impl FnMut(usize, f64) -> f64,
        mut moved: impl FnMut(usize, Placement),
    ) {
        self.scratch.clear();
        self.running.drain_into(&mut self.scratch);
        let mut old = std::mem::take(&mut self.scratch);
        old.sort_unstable();
        self.s1 = 0.0;
        self.sk = 0.0;
        self.key_sum = 0.0;
        self.hetero_running = 0;
        self.nonunit_running = 0;
        let drain = std::mem::replace(&mut self.drain, 0.0);
        for Entry { key, slot } in old.drain(..) {
            let rem = update(slot.idx, (key.key - drain).max(0.0));
            let new_key = OrdKey {
                key: rem,
                release: key.release,
                id: key.id,
            };
            self.add_running(new_key, slot);
            moved(slot.idx, Placement::Running { key: rem });
        }
        self.scratch = old;
    }

    /// Drains each running job at its own rate for `dt` — the
    /// heterogeneous-prefix slow path. Rebuilds the running heap (the order
    /// may genuinely change), resets the offset to zero, and reports every
    /// job's new placement. `O(k log k)` in the prefix size.
    pub fn drain_scan(
        &mut self,
        dt: f64,
        rate_of: impl Fn(usize) -> f64,
        moved: impl FnMut(usize, Placement),
    ) {
        self.rebuild_running(|idx, rem| (rem - rate_of(idx) * dt).max(0.0), moved);
    }

    /// Folds the drain offset into the running keys when it has grown past
    /// [`REBASE_LIMIT`], keeping `ulp(key)` well under completion
    /// tolerances. Reports refreshed keys. No-op most of the time.
    pub fn maybe_rebase(&mut self, moved: impl FnMut(usize, Placement)) {
        if self.drain <= REBASE_LIMIT {
            return;
        }
        self.rebuild_running(|_, rem| rem, moved);
    }

    /// Captures the full set state for a snapshot. Both partitions are
    /// emitted in SRPT order, so two engines in the same logical state
    /// render byte-identical documents even when their heap arrays have
    /// different internal layouts (layout depends on push history, which
    /// is not observable — every read path sorts or pops by total order).
    pub(crate) fn snapshot_state(&self) -> SetSnap {
        fn conv(e: &Entry) -> SetEntrySnap {
            SetEntrySnap {
                key: e.key.key,
                release: e.key.release,
                id: e.key.id,
                idx: e.slot.idx,
                size: e.slot.size,
                hetero: e.slot.hetero,
                nonunit: e.slot.nonunit,
            }
        }
        let mut running: Vec<Entry> = self.running.entries().to_vec();
        running.sort_unstable();
        let mut queued: Vec<Entry> = self.queued.iter().map(|r| r.0).collect();
        queued.sort_unstable();
        SetSnap {
            running: running.iter().map(conv).collect(),
            queued: queued.iter().map(conv).collect(),
            drain: self.drain,
            s1: self.s1,
            sk: self.sk,
            key_sum: self.key_sum,
            q_frac: self.q_frac,
            q_rem_sum: self.q_rem_sum,
            reference: self.reference.clone(),
        }
    }

    /// Restores the state captured by [`SrptSet::snapshot_state`], retaining
    /// buffer capacity. Entries are re-pushed with their stored keys and
    /// flags; the uniformity counters are recounted from the per-entry flags
    /// and the running/queued sums are installed bit-exact.
    pub(crate) fn restore_state(&mut self, snap: &SetSnap) {
        self.reset();
        self.reference = snap.reference.clone();
        for e in &snap.running {
            self.hetero_running += usize::from(e.hetero);
            self.nonunit_running += usize::from(e.nonunit);
            self.running.push(Entry {
                key: OrdKey {
                    key: e.key,
                    release: e.release,
                    id: e.id,
                },
                slot: Slot {
                    idx: e.idx,
                    size: e.size,
                    hetero: e.hetero,
                    nonunit: e.nonunit,
                },
            });
        }
        for e in &snap.queued {
            self.queued.push(Reverse(Entry {
                key: OrdKey {
                    key: e.key,
                    release: e.release,
                    id: e.id,
                },
                slot: Slot {
                    idx: e.idx,
                    size: e.size,
                    hetero: e.hetero,
                    nonunit: e.nonunit,
                },
            }));
        }
        self.drain = snap.drain;
        self.s1 = snap.s1;
        self.sk = snap.sk;
        self.key_sum = snap.key_sum;
        self.q_frac = snap.q_frac;
        self.q_rem_sum = snap.q_rem_sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u64, release: Time, size: Work) -> JobSpec {
        JobSpec::new(JobId(id), release, size, Curve::Sequential)
    }

    fn remaining_in_order(set: &SrptSet) -> Vec<(usize, f64)> {
        set.iter_alive().collect()
    }

    #[test]
    fn insert_and_rebalance_partition_by_srpt_order() {
        let mut set = SrptSet::default();
        for (i, size) in [5.0, 1.0, 3.0].iter().enumerate() {
            set.insert(i, &spec(i as u64, 0.0, *size), *size);
        }
        set.rebalance(2, |_, _| {});
        assert_eq!(set.running_len(), 2);
        let order: Vec<usize> = set.iter_alive().map(|(idx, _)| idx).collect();
        assert_eq!(order, vec![1, 2, 0]); // remaining 1, 3, 5
        let running: Vec<usize> = set.iter_running().map(|(s, _)| s.idx).collect();
        assert_eq!(running, vec![1, 2]);
    }

    #[test]
    fn for_each_running_ordered_matches_iter_running_bitwise() {
        let mut set = SrptSet::default();
        let sizes = [5.0, 1.0, 3.0, 2.75, 4.5, 0.25, 7.0, 6.125];
        for (i, size) in sizes.iter().enumerate() {
            set.insert(i, &spec(i as u64, 0.1 * i as f64, *size), *size);
        }
        set.rebalance(5, |_, _| {});
        set.advance_uniform(0.4375); // non-trivial drain offset
        let via_iter: Vec<(usize, u64)> = set
            .iter_running()
            .map(|(s, rem)| (s.idx, rem.to_bits()))
            .collect();
        let mut via_visit = Vec::new();
        set.for_each_running_ordered(|s, rem| via_visit.push((s.idx, rem.to_bits())));
        assert_eq!(via_iter, via_visit);
        assert_eq!(via_visit.len(), 5);
    }

    #[test]
    fn uniform_advance_drains_only_the_prefix() {
        let mut set = SrptSet::default();
        set.insert(0, &spec(0, 0.0, 2.0), 2.0);
        set.insert(1, &spec(1, 0.0, 4.0), 4.0);
        set.rebalance(1, |_, _| {});
        set.advance_uniform(1.5);
        let rems = remaining_in_order(&set);
        assert!((rems[0].1 - 0.5).abs() < 1e-12); // running drained
        assert!((rems[1].1 - 4.0).abs() < 1e-12); // queued untouched
        assert!((set.total_remaining() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn pop_front_returns_smallest_and_resets_offset_when_empty() {
        let mut set = SrptSet::default();
        set.insert(0, &spec(0, 0.0, 2.0), 2.0);
        set.rebalance(1, |_, _| {});
        set.advance_uniform(2.0);
        let (slot, rem) = set.pop_front_running().unwrap();
        assert_eq!(slot.idx, 0);
        assert!(rem.abs() < 1e-12);
        assert_eq!(set.len(), 0);
        assert_eq!(set.drain_offset(), 0.0);
        assert_eq!(set.running_inv_size_sum(), 0.0);
    }

    #[test]
    fn rebalance_promotes_in_srpt_order_after_completion() {
        let mut set = SrptSet::default();
        for (i, size) in [1.0, 2.0, 3.0].iter().enumerate() {
            set.insert(i, &spec(i as u64, 0.0, *size), *size);
        }
        set.rebalance(2, |_, _| {});
        set.advance_uniform(1.0);
        set.pop_front_running().unwrap(); // job 0 done
        let mut promoted = vec![];
        set.rebalance(2, |idx, p| promoted.push((idx, p)));
        assert_eq!(promoted.len(), 1);
        assert_eq!(promoted[0].0, 2); // remaining 3.0 job joins the prefix
                                      // Job 1 drained 1.0 → remaining 1.0; job 2 still 3.0.
        let rems = remaining_in_order(&set);
        assert!((rems[0].1 - 1.0).abs() < 1e-12);
        assert!((rems[1].1 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ties_break_by_release_then_id() {
        let mut set = SrptSet::default();
        set.insert(0, &spec(9, 1.0, 2.0), 2.0);
        set.insert(1, &spec(3, 0.0, 2.0), 2.0);
        set.insert(2, &spec(5, 0.0, 2.0), 2.0);
        set.rebalance(3, |_, _| {});
        let order: Vec<usize> = set.iter_alive().map(|(idx, _)| idx).collect();
        assert_eq!(order, vec![1, 2, 0]); // (0.0, id 3), (0.0, id 5), (1.0, id 9)
    }

    #[test]
    fn uniformity_counters_track_membership() {
        let mut set = SrptSet::default();
        set.insert(0, &spec(0, 0.0, 2.0), 2.0); // reference: Sequential
        let mut par = spec(1, 0.0, 3.0);
        par.curve = Curve::FullyParallel;
        set.insert(1, &par, 3.0);
        set.rebalance(2, |_, _| {});
        assert!(!set.uniform_curves());
        assert!(set.unit_rate_at_one()); // both Γ(1) = 1
        set.rebalance(1, |_, _| {}); // demote the parallel job (larger)
        assert!(set.uniform_curves());
    }

    #[test]
    fn drain_scan_reorders_by_new_remaining() {
        let mut set = SrptSet::default();
        // Sequential job drains at rate(2) = 1; parallel at rate(2) = 2.
        set.insert(0, &spec(0, 0.0, 3.0), 3.0);
        let mut par = spec(1, 0.0, 3.5);
        par.curve = Curve::FullyParallel;
        set.insert(1, &par, 3.5);
        set.rebalance(2, |_, _| {});
        let rate = |idx: usize| if idx == 0 { 1.0 } else { 2.0 };
        set.drain_scan(1.5, rate, |_, _| {});
        // Remaining: job 0 → 1.5, job 1 → 0.5; order flips.
        let order = remaining_in_order(&set);
        assert_eq!(order[0].0, 1);
        assert!((order[0].1 - 0.5).abs() < 1e-12);
        assert!((order[1].1 - 1.5).abs() < 1e-12);
        assert_eq!(set.drain_offset(), 0.0);
    }

    #[test]
    fn rebase_folds_offset_without_changing_state() {
        let mut set = SrptSet::default();
        set.insert(0, &spec(0, 0.0, 3e6), 3e6);
        set.insert(1, &spec(1, 0.0, 4e6), 4e6);
        set.rebalance(2, |_, _| {});
        set.advance_uniform(2e6);
        let before: Vec<(usize, f64)> = remaining_in_order(&set);
        let total = set.total_remaining();
        let mut updates = 0;
        set.maybe_rebase(|_, _| updates += 1);
        assert_eq!(updates, 2);
        assert_eq!(set.drain_offset(), 0.0);
        let after: Vec<(usize, f64)> = remaining_in_order(&set);
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b.0, a.0);
            assert!((b.1 - a.1).abs() < 1e-6 * b.1.max(1.0));
        }
        assert!((set.total_remaining() - total).abs() < 1e-6 * total.max(1.0));
    }

    #[test]
    fn fractional_sums_match_direct_computation() {
        let mut set = SrptSet::default();
        let sizes = [2.0, 5.0, 7.0, 11.0];
        for (i, size) in sizes.iter().enumerate() {
            set.insert(i, &spec(i as u64, 0.0, *size), *size);
        }
        set.rebalance(2, |_, _| {});
        set.advance_uniform(1.0);
        // Running: 2.0→1.0, 5.0→4.0. Queued: 7.0, 11.0.
        let run_frac = set.running_key_frac_sum() - set.drain_offset() * set.running_inv_size_sum();
        let expect_run = 1.0 / 2.0 + 4.0 / 5.0;
        assert!((run_frac - expect_run).abs() < 1e-12);
        let expect_q = 1.0 + 1.0; // 7/7 + 11/11
        assert!((set.queued_frac_sum() - expect_q).abs() < 1e-12);
        assert!((set.total_remaining() - (1.0 + 4.0 + 7.0 + 11.0)).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state_but_keeps_capacity() {
        let mut set = SrptSet::default();
        for i in 0..64usize {
            let size = 1.0 + i as f64;
            set.insert(i, &spec(i as u64, 0.0, size), size);
        }
        set.rebalance(8, |_, _| {});
        set.advance_uniform(0.25);
        set.reset();
        assert_eq!(set.len(), 0);
        assert_eq!(set.running_len(), 0);
        assert_eq!(set.drain_offset(), 0.0);
        assert_eq!(set.total_remaining(), 0.0);
        assert!(set.uniform_curves() && set.unit_rate_at_one());
        // The set is fully reusable after reset.
        set.insert(0, &spec(100, 0.0, 2.0), 2.0);
        set.rebalance(1, |_, _| {});
        assert_eq!(set.front_running().unwrap().0.idx, 0);
    }

    /// Min-max heap fuzz: interleaved push / pop-min / pop-max against a
    /// sorted-Vec model, checking both peeks before every mutation.
    #[test]
    fn min_max_heap_matches_sorted_model_under_churn() {
        let mut heap = MinMaxHeap::default();
        let mut model: Vec<OrdKey> = Vec::new();
        let mut rng: u64 = 0x1234_5678_9abc_def0;
        let mut next = |m: u64| {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) % m
        };
        let slot = Slot {
            idx: 0,
            size: 1.0,
            hetero: false,
            nonunit: false,
        };
        for step in 0..4000 {
            // Peeks agree with the model.
            model.sort();
            assert_eq!(
                heap.peek_min().map(|e| e.key.id),
                model.first().map(|k| k.id)
            );
            assert_eq!(
                heap.peek_max().map(|e| e.key.id),
                model.last().map(|k| k.id)
            );
            match next(4) {
                0 | 1 => {
                    let key = OrdKey {
                        key: next(50) as f64 * 0.5,
                        release: 0.0,
                        id: JobId(step as u64),
                    };
                    heap.push(Entry { key, slot });
                    model.push(key);
                }
                2 => {
                    let got = heap.pop_min().map(|e| e.key.id);
                    let want = model.first().map(|k| k.id);
                    assert_eq!(got, want, "pop_min at step {step}");
                    if !model.is_empty() {
                        model.remove(0);
                    }
                }
                _ => {
                    let got = heap.pop_max().map(|e| e.key.id);
                    let want = model.last().map(|k| k.id);
                    assert_eq!(got, want, "pop_max at step {step}");
                    model.pop();
                }
            }
            assert_eq!(heap.len(), model.len());
        }
    }

    /// Naive reference order: `(remaining, release, id)` ascending.
    fn sort_model(model: &mut [(usize, f64, f64, u64)]) {
        model.sort_by(|a, b| {
            a.1.total_cmp(&b.1)
                .then(a.2.total_cmp(&b.2))
                .then(a.3.cmp(&b.3))
        });
    }

    #[test]
    fn churn_matches_naive_reference_model() {
        // Differential test: 200 steps of interleaved arrivals, offset-bump
        // drains, and front completions, against a sorted-Vec model. Any
        // ordering or sum drift introduced by the offset representation
        // (insert-during-drain, rebases, tie-breaks) shows up here.
        const PREFIX: usize = 3;
        let mut set = SrptSet::default();
        let mut model: Vec<(usize, f64, f64, u64)> = Vec::new();
        let mut rng: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = |m: u64| {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) % m
        };
        let mut arena = 0usize;
        for step in 0..200 {
            match next(3) {
                0 => {
                    let size = 1.0 + next(16) as f64;
                    let release = f64::from(step);
                    set.insert(arena, &spec(arena as u64, release, size), size);
                    model.push((arena, size, release, arena as u64));
                    arena += 1;
                }
                1 => {
                    // Drain halfway to the front-running completion.
                    if let Some((_, rem)) = set.front_running() {
                        let amount = rem * 0.5;
                        let k = set.running_len();
                        set.advance_uniform(amount);
                        sort_model(&mut model);
                        for e in model.iter_mut().take(k) {
                            e.1 -= amount;
                        }
                    }
                }
                _ => {
                    // Drain exactly to the front completion and pop it.
                    if let Some((_, rem)) = set.front_running() {
                        let k = set.running_len();
                        set.advance_uniform(rem);
                        let (slot, left) = set.pop_front_running().unwrap();
                        assert!(left.abs() < 1e-9, "step {step}: leftover {left}");
                        sort_model(&mut model);
                        for e in model.iter_mut().take(k) {
                            e.1 -= rem;
                        }
                        assert_eq!(slot.idx, model[0].0, "step {step}: wrong completion");
                        model.remove(0);
                    }
                }
            }
            set.rebalance(PREFIX, |_, _| {});
            sort_model(&mut model);
            let got: Vec<(usize, f64)> = set.iter_alive().collect();
            assert_eq!(got.len(), model.len(), "step {step}");
            for (g, e) in got.iter().zip(&model) {
                assert_eq!(g.0, e.0, "step {step}: order diverged");
                assert!(
                    (g.1 - e.1).abs() < 1e-9 * e.1.abs().max(1.0),
                    "step {step}: remaining {} vs model {}",
                    g.1,
                    e.1
                );
            }
            let expect_total: f64 = model.iter().map(|e| e.1).sum();
            assert!((set.total_remaining() - expect_total).abs() < 1e-9 * expect_total.max(1.0));
        }
    }

    #[test]
    fn equal_remaining_after_offset_bump_ties_by_release_then_id() {
        let mut set = SrptSet::default();
        // Job 0 (release 0) starts at 5 and drains to 2; job 1 (release 7)
        // then arrives with remaining exactly 2. The drained job keeps
        // priority through the earlier release despite identical remaining.
        set.insert(0, &spec(0, 0.0, 5.0), 5.0);
        set.rebalance(1, |_, _| {});
        set.advance_uniform(3.0);
        set.insert(1, &spec(1, 7.0, 2.0), 2.0);
        set.rebalance(2, |_, _| {});
        let order: Vec<(usize, f64)> = set.iter_alive().collect();
        assert_eq!(order[0].0, 0);
        assert_eq!(order[1].0, 1);
        assert!((order[0].1 - 2.0).abs() < 1e-12);
        assert!((order[1].1 - 2.0).abs() < 1e-12);
        // And the completion order honors the same tie-break.
        set.advance_uniform(2.0);
        assert_eq!(set.pop_front_running().unwrap().0.idx, 0);
        set.rebalance(2, |_, _| {});
        set.advance_uniform(2.0);
        assert_eq!(set.pop_front_running().unwrap().0.idx, 1);
    }

    #[test]
    fn insert_at_prefix_boundary_queues_then_promotes_in_order() {
        let mut set = SrptSet::default();
        set.insert(0, &spec(0, 0.0, 2.0), 2.0);
        set.insert(1, &spec(1, 0.0, 6.0), 6.0);
        set.rebalance(2, |_, _| {});
        // Remaining exactly equal to the largest running job: by the SRPT
        // tie-break (later release) it does NOT belong in the prefix.
        let p = set.insert(2, &spec(2, 1.0, 6.0), 6.0);
        assert_eq!(p, Placement::Queued { remaining: 6.0 });
        // Smaller than the front: belongs strictly inside the prefix.
        let p = set.insert(3, &spec(3, 1.0, 1.0), 1.0);
        assert!(matches!(p, Placement::Running { .. }));
        set.rebalance(2, |_, _| {});
        assert_eq!(set.running_len(), 2);
        let order: Vec<usize> = set.iter_alive().map(|(i, _)| i).collect();
        assert_eq!(order, vec![3, 0, 1, 2]);
    }

    #[test]
    fn front_completion_with_tied_pair_pops_one_at_a_time() {
        let mut set = SrptSet::default();
        set.insert(0, &spec(0, 0.0, 3.0), 3.0);
        set.insert(1, &spec(1, 0.0, 3.0), 3.0);
        set.rebalance(2, |_, _| {});
        set.advance_uniform(3.0); // both hit zero simultaneously
        let (first, r1) = set.pop_front_running().unwrap();
        let (second, r2) = set.pop_front_running().unwrap();
        assert_eq!((first.idx, second.idx), (0, 1)); // id tie-break
        assert!(r1.abs() < 1e-12 && r2.abs() < 1e-12);
        assert_eq!(set.len(), 0);
        assert_eq!(set.drain_offset(), 0.0);
        assert!(set.pop_front_running().is_none());
    }

    #[test]
    fn insert_during_drain_lands_in_correct_position() {
        let mut set = SrptSet::default();
        set.insert(0, &spec(0, 0.0, 4.0), 4.0);
        set.insert(1, &spec(1, 0.0, 10.0), 10.0);
        set.rebalance(2, |_, _| {});
        set.advance_uniform(3.0); // remaining: 1.0, 7.0
                                  // New arrival with remaining 2.0 belongs between them.
        let p = set.insert(2, &spec(2, 3.0, 2.0), 2.0);
        assert!(matches!(p, Placement::Running { .. }));
        set.rebalance(2, |_, _| {});
        let order: Vec<usize> = set.iter_alive().map(|(i, _)| i).collect();
        assert_eq!(order, vec![0, 2, 1]);
        assert_eq!(set.running_len(), 2);
    }
}
