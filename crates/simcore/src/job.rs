//! Jobs, instances, and the paper's size-class arithmetic.

use parsched_speedup::Curve;
use serde::{Deserialize, Serialize};

use crate::error::SimError;

/// Simulation time (continuous, seconds of an abstract clock).
pub type Time = f64;
/// Work volume (processor-seconds at rate 1).
pub type Work = f64;

/// Identifier of a job, unique within an [`Instance`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// A single task: release time, size (total work), and speed-up curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique job identifier.
    pub id: JobId,
    /// Release (arrival) time `r_j ≥ 0`.
    pub release: Time,
    /// Total work `p_j > 0`. The paper assumes `p_j ∈ [1, P]`.
    pub size: Work,
    /// Speed-up curve `Γ_j`.
    pub curve: Curve,
    /// Importance weight `w_j > 0` for the *weighted* flow objective
    /// `Σ w_j·F_j` — an extension beyond the paper (which studies the
    /// unweighted case, `w_j = 1`).
    #[serde(default = "default_weight")]
    pub weight: f64,
}

// Referenced only from the `#[serde(default)]` attribute above; the offline
// serde shim expands that attribute to nothing, so rustc can't see the use.
#[allow(dead_code)]
fn default_weight() -> f64 {
    1.0
}

impl JobSpec {
    /// Creates an unweighted job spec (`w_j = 1`, the paper's setting).
    pub fn new(id: JobId, release: Time, size: Work, curve: Curve) -> Self {
        Self {
            id,
            release,
            size,
            curve,
            weight: 1.0,
        }
    }

    /// Sets the importance weight (builder style).
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }
}

/// A static workload: a validated collection of [`JobSpec`]s sorted by
/// `(release, id)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    jobs: Vec<JobSpec>,
}

impl Instance {
    /// Builds an instance, validating every job and sorting by release time.
    ///
    /// Rejects: non-finite or negative releases, non-finite or non-positive
    /// sizes, duplicate ids, and invalid curves.
    pub fn new(mut jobs: Vec<JobSpec>) -> Result<Self, SimError> {
        let mut seen = std::collections::BTreeSet::new();
        for j in &jobs {
            if !j.release.is_finite() || j.release < 0.0 {
                return Err(SimError::BadInstance {
                    what: format!("job {} has invalid release {}", j.id, j.release),
                });
            }
            if !j.size.is_finite() || j.size <= 0.0 {
                return Err(SimError::BadInstance {
                    what: format!("job {} has invalid size {}", j.id, j.size),
                });
            }
            if j.curve.validate().is_err() {
                return Err(SimError::BadInstance {
                    what: format!("job {} has invalid curve {:?}", j.id, j.curve),
                });
            }
            if !j.weight.is_finite() || j.weight <= 0.0 {
                return Err(SimError::BadInstance {
                    what: format!("job {} has invalid weight {}", j.id, j.weight),
                });
            }
            if !seen.insert(j.id) {
                return Err(SimError::BadInstance {
                    what: format!("duplicate job id {}", j.id),
                });
            }
        }
        jobs.sort_by(|a, b| {
            a.release
                .partial_cmp(&b.release)
                .expect("releases are finite")
                .then(a.id.cmp(&b.id))
        });
        Ok(Self { jobs })
    }

    /// Builds an instance from specs the engine already admitted.
    ///
    /// Admission enforces exactly the invariants [`Instance::new`] checks
    /// (finite release/size/weight, valid curve, unique ids), so this skips
    /// the per-job validation and the duplicate-id hash pass; the arena is
    /// in admission order, which for replayed instances is already
    /// `(release, id)` — the sort below is a no-op check in that case.
    pub(crate) fn from_admitted(mut jobs: Vec<JobSpec>) -> Self {
        let sorted = jobs
            .windows(2)
            // lint:allow(L007) windows(2) yields exactly two elements per item
            .all(|w| (w[0].release, w[0].id) <= (w[1].release, w[1].id));
        if !sorted {
            jobs.sort_by(|a, b| {
                a.release
                    .partial_cmp(&b.release)
                    // lint:allow(L007) comparator on admission-validated finite releases; cannot fail at runtime
                    .expect("releases are finite")
                    .then(a.id.cmp(&b.id))
            });
        }
        Self { jobs }
    }

    /// Convenience constructor: jobs `(release, size)` all sharing one curve,
    /// with ids assigned in order.
    pub fn from_sizes(jobs: &[(Time, Work)], curve: Curve) -> Result<Self, SimError> {
        Self::new(
            jobs.iter()
                .enumerate()
                .map(|(i, &(r, p))| JobSpec::new(JobId(i as u64), r, p, curve.clone()))
                .collect(),
        )
    }

    /// The jobs, sorted by `(release, id)`.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the instance has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Smallest job size (`∞` if empty).
    pub fn p_min(&self) -> Work {
        self.jobs
            .iter()
            .map(|j| j.size)
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest job size (`0` if empty).
    pub fn p_max(&self) -> Work {
        self.jobs.iter().map(|j| j.size).fold(0.0, f64::max)
    }

    /// The paper's parameter `P`: the max/min size ratio (`1` if empty).
    ///
    /// The paper normalizes sizes to `[1, P]`; instances here may use any
    /// positive sizes, and `size_ratio` is the scale-free `P`.
    pub fn size_ratio(&self) -> f64 {
        if self.jobs.is_empty() {
            1.0
        } else {
            self.p_max() / self.p_min()
        }
    }

    /// Total work volume of the instance.
    pub fn total_work(&self) -> Work {
        crate::kahan::NeumaierSum::total(self.jobs.iter().map(|j| j.size))
    }

    /// Latest release time (`0` if empty).
    pub fn last_release(&self) -> Time {
        self.jobs.last().map_or(0.0, |j| j.release)
    }

    /// Merges another instance into this one, reassigning the other's ids to
    /// stay unique. Returns the sorted union.
    pub fn merged_with(&self, other: &Instance) -> Result<Instance, SimError> {
        let next_id = self.jobs.iter().map(|j| j.id.0 + 1).max().unwrap_or(0);
        let mut all = self.jobs.clone();
        all.extend(other.jobs.iter().enumerate().map(|(i, j)| JobSpec {
            id: JobId(next_id + i as u64),
            ..j.clone()
        }));
        Instance::new(all)
    }
}

/// The paper's size class of a remaining length: class `k` holds lengths in
/// `[2^k, 2^{k+1})` for `k ≥ 0`, and the special class `-1` holds lengths in
/// `(0, 1)` (§2.2).
pub fn class_index(remaining: Work) -> i32 {
    debug_assert!(remaining > 0.0, "class of non-positive remaining work");
    if remaining < 1.0 {
        -1
    } else {
        remaining.log2().floor() as i32
    }
}

/// `k_max + 1 = ⌊log₂ P⌋ + 1`: the number of non-negative job classes for
/// sizes in `[1, P]` (§2.2 defines `k_max = ⌊log P⌋`).
pub fn num_classes(p: f64) -> usize {
    debug_assert!(p >= 1.0);
    p.log2().floor() as usize + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u64, r: f64, p: f64) -> JobSpec {
        JobSpec::new(JobId(id), r, p, Curve::power(0.5))
    }

    #[test]
    fn instance_sorts_by_release_then_id() {
        let inst = Instance::new(vec![
            spec(2, 5.0, 1.0),
            spec(1, 0.0, 2.0),
            spec(0, 5.0, 3.0),
        ])
        .unwrap();
        let ids: Vec<u64> = inst.jobs().iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![1, 0, 2]);
    }

    #[test]
    fn instance_rejects_bad_jobs() {
        assert!(Instance::new(vec![spec(0, -1.0, 1.0)]).is_err());
        assert!(Instance::new(vec![spec(0, 0.0, 0.0)]).is_err());
        assert!(Instance::new(vec![spec(0, 0.0, -2.0)]).is_err());
        assert!(Instance::new(vec![spec(0, f64::NAN, 1.0)]).is_err());
        assert!(Instance::new(vec![spec(0, 0.0, f64::INFINITY)]).is_err());
        assert!(Instance::new(vec![spec(0, 0.0, 1.0), spec(0, 1.0, 1.0)]).is_err());
        // Invalid curve caught too.
        let bad = JobSpec::new(JobId(0), 0.0, 1.0, Curve::Power { alpha: 9.0 });
        assert!(Instance::new(vec![bad]).is_err());
    }

    #[test]
    fn summary_statistics() {
        let inst = Instance::new(vec![
            spec(0, 0.0, 1.0),
            spec(1, 2.0, 8.0),
            spec(2, 1.0, 4.0),
        ])
        .unwrap();
        assert_eq!(inst.len(), 3);
        assert_eq!(inst.p_min(), 1.0);
        assert_eq!(inst.p_max(), 8.0);
        assert_eq!(inst.size_ratio(), 8.0);
        assert_eq!(inst.total_work(), 13.0);
        assert_eq!(inst.last_release(), 2.0);
    }

    #[test]
    fn empty_instance_statistics_are_neutral() {
        let inst = Instance::new(vec![]).unwrap();
        assert!(inst.is_empty());
        assert_eq!(inst.size_ratio(), 1.0);
        assert_eq!(inst.total_work(), 0.0);
        assert_eq!(inst.last_release(), 0.0);
    }

    #[test]
    fn from_sizes_assigns_sequential_ids() {
        let inst = Instance::from_sizes(&[(0.0, 2.0), (1.0, 3.0)], Curve::Sequential).unwrap();
        assert_eq!(inst.jobs()[0].id, JobId(0));
        assert_eq!(inst.jobs()[1].id, JobId(1));
        assert_eq!(inst.jobs()[1].curve, Curve::Sequential);
    }

    #[test]
    fn merged_with_keeps_ids_unique() {
        let a = Instance::from_sizes(&[(0.0, 1.0), (1.0, 2.0)], Curve::Sequential).unwrap();
        let b = Instance::from_sizes(&[(0.5, 3.0)], Curve::FullyParallel).unwrap();
        let merged = a.merged_with(&b).unwrap();
        assert_eq!(merged.len(), 3);
        let mut ids: Vec<u64> = merged.jobs().iter().map(|j| j.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn class_index_matches_paper_definition() {
        assert_eq!(class_index(0.5), -1);
        assert_eq!(class_index(0.999), -1);
        assert_eq!(class_index(1.0), 0);
        assert_eq!(class_index(1.999), 0);
        assert_eq!(class_index(2.0), 1);
        assert_eq!(class_index(3.999), 1);
        assert_eq!(class_index(4.0), 2);
        assert_eq!(class_index(1024.0), 10);
    }

    #[test]
    fn num_classes_matches_kmax() {
        assert_eq!(num_classes(1.0), 1); // k_max = 0
        assert_eq!(num_classes(2.0), 2); // k_max = 1
        assert_eq!(num_classes(3.0), 2);
        assert_eq!(num_classes(1024.0), 11);
    }
}
