//! Arrival sources: static replay and the hook for adaptive adversaries.

use parsched_speedup::EPS;

use crate::job::{Instance, JobSpec, Time};
use crate::kahan::NeumaierSum;
use crate::policy::AliveJob;

/// A read-only snapshot of the running system handed to an adaptive
/// [`ArrivalSource`] when it emits jobs.
///
/// The paper's Theorem 2 adversary inspects the *online algorithm's*
/// remaining work when deciding whether to continue releasing phases; this
/// view is exactly the information such an adversary may use.
#[derive(Debug)]
pub struct SystemView<'a> {
    /// Current simulation time.
    pub now: Time,
    /// Number of processors.
    pub m: f64,
    /// The algorithm's unfinished jobs (with remaining work).
    pub alive: &'a [AliveJob<'a>],
}

impl SystemView<'_> {
    /// Total remaining work over alive jobs satisfying `pred`.
    ///
    /// Compensated (Neumaier) summation: adaptive adversaries call this
    /// over alive sets of 10⁵–10⁶ jobs whose remaining-work magnitudes
    /// span many orders, where naive left-to-right summation silently
    /// drops the small terms (see [`NeumaierSum`]).
    pub fn remaining_work_where(&self, pred: impl Fn(&AliveJob<'_>) -> bool) -> f64 {
        NeumaierSum::total(self.alive.iter().filter(|j| pred(j)).map(|j| j.remaining))
    }

    /// Number of alive jobs.
    pub fn num_alive(&self) -> usize {
        self.alive.len()
    }
}

/// Produces job arrivals, possibly adaptively.
///
/// The engine polls [`ArrivalSource::next_time`] to schedule the next
/// arrival event; when simulation time reaches it, [`ArrivalSource::emit`]
/// is called with a [`SystemView`] and must return the jobs released at that
/// moment (each with `release` equal to the current time; emitting into the
/// past is an error).
pub trait ArrivalSource {
    /// The next time at which this source wants to emit jobs, or `None` if
    /// exhausted. Must be non-decreasing across calls.
    fn next_time(&self) -> Option<Time>;

    /// Emits the jobs released at `view.now` (which equals the last value
    /// returned by [`ArrivalSource::next_time`], up to float tolerance).
    fn emit(&mut self, view: &SystemView<'_>) -> Vec<JobSpec>;

    /// Like [`ArrivalSource::emit`], but appends into a caller-provided
    /// buffer. The engine calls this with a reused scratch vector so that
    /// steady-state arrivals allocate nothing; the default simply delegates
    /// to [`ArrivalSource::emit`].
    fn emit_into(&mut self, view: &SystemView<'_>, out: &mut Vec<JobSpec>) {
        out.extend(self.emit(view));
    }

    /// Whether [`ArrivalSource::emit`] reads [`SystemView::alive`].
    ///
    /// Adaptive adversaries do; replay sources don't. Sources returning
    /// `false` promise not to look at `alive` and are handed an empty slice
    /// (with `now`/`m` still correct), which lets the engine's incremental
    /// path skip the `O(n)` view materialization at every arrival. The
    /// default is `true` — the conservative answer.
    fn needs_system_view(&self) -> bool {
        true
    }

    /// Rewinds the source to its initial state for a fresh run, returning
    /// `true` on success. Replay sources can; adaptive or generative
    /// sources whose history cannot be replayed keep the default `false`,
    /// which makes [`crate::Engine::reset`] refuse rather than silently
    /// re-run a different workload.
    fn rewind(&mut self) -> bool {
        false
    }

    /// Positions the source as if it had already emitted `emitted_jobs`
    /// jobs, returning `true` on success — the [`crate::Engine::restore`]
    /// counterpart of [`ArrivalSource::rewind`]. Replay sources seek their
    /// cursor; sources that cannot reproduce their position keep the
    /// default `false`, which makes restore refuse rather than resume
    /// against a divergent arrival stream.
    fn fast_forward(&mut self, emitted_jobs: usize) -> bool {
        let _ = emitted_jobs;
        false
    }

    /// Whether every spec this source emits already satisfies the
    /// admission invariants (finite non-negative release, positive finite
    /// size and weight, valid curve, globally unique ids).
    ///
    /// Sources that replay an [`Instance`] can return `true` — the
    /// instance constructors enforce exactly those invariants — which lets
    /// the engine's fast loop skip its per-spec re-validation. Generative
    /// or adaptive sources keep the default `false`, the conservative
    /// answer that re-validates every admission.
    fn pre_validated(&self) -> bool {
        false
    }
}

/// Cap on the clock-relative admission window (absolute sim-time units).
const ARRIVAL_TOL_CAP: f64 = 1e-6;

/// The admission window at clock value `now`: arrivals within this of
/// `now` are released at the current event.
///
/// Relative to the clock so that release times computed along a different
/// float path than the engine's (quantum-heavy policies, `t += gap`
/// cursors) still batch with the event they were scheduled for — but
/// capped absolutely, because an uncapped `EPS · now` window reaches
/// ~0.02 sim-seconds by `t ≈ 2·10⁷` (routine for multi-million-job
/// streaming runs) and admits jobs *visibly* early, inflating
/// `∫|A(t)|dt` until the flow identity `Σ F_j = ∫|A(t)|dt` fails its
/// audit. The engine and every pre-filtering
/// [`ArrivalSource::emit_into`] implementation must use this same
/// window, or a source could emit a job the engine refuses to admit.
pub fn arrival_tolerance(now: Time) -> f64 {
    (EPS * now.abs().max(1.0)).min(ARRIVAL_TOL_CAP)
}

/// Replays a fixed [`Instance`].
#[derive(Debug, Clone)]
pub struct StaticSource {
    jobs: Vec<JobSpec>,
    cursor: usize,
}

impl StaticSource {
    /// A source that replays the given instance's jobs at their release
    /// times.
    pub fn new(instance: &Instance) -> Self {
        Self {
            jobs: instance.jobs().to_vec(),
            cursor: 0,
        }
    }
}

impl ArrivalSource for StaticSource {
    fn next_time(&self) -> Option<Time> {
        self.jobs.get(self.cursor).map(|j| j.release)
    }

    fn emit(&mut self, view: &SystemView<'_>) -> Vec<JobSpec> {
        let mut out = Vec::new();
        self.emit_into(view, &mut out);
        out
    }

    fn emit_into(&mut self, view: &SystemView<'_>, out: &mut Vec<JobSpec>) {
        let tol = arrival_tolerance(view.now);
        while self.cursor < self.jobs.len() {
            let j = &self.jobs[self.cursor];
            // Release all jobs due now (equal release times batch together).
            // The tolerance is the shared admission window, so a clock that
            // drifted by a few ulps (quantum-heavy policies) still collects
            // the arrival it was woken for.
            if j.release <= view.now + tol {
                out.push(j.clone());
                self.cursor += 1;
            } else {
                break;
            }
        }
    }

    fn needs_system_view(&self) -> bool {
        false
    }

    fn rewind(&mut self) -> bool {
        self.cursor = 0;
        true
    }

    fn fast_forward(&mut self, emitted_jobs: usize) -> bool {
        if emitted_jobs > self.jobs.len() {
            return false;
        }
        self.cursor = emitted_jobs;
        true
    }

    fn pre_validated(&self) -> bool {
        // Every `Instance` constructor validates its specs (or, for
        // `Instance::from_admitted`, receives specs the engine already
        // validated at admission), so replaying one cannot emit an
        // invalid or duplicate job.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use parsched_speedup::Curve;

    fn instance() -> Instance {
        Instance::new(vec![
            JobSpec::new(JobId(0), 0.0, 1.0, Curve::Sequential),
            JobSpec::new(JobId(1), 0.0, 2.0, Curve::Sequential),
            JobSpec::new(JobId(2), 3.0, 1.0, Curve::Sequential),
        ])
        .unwrap()
    }

    fn view(now: Time) -> SystemView<'static> {
        SystemView {
            now,
            m: 1.0,
            alive: &[],
        }
    }

    #[test]
    fn static_source_batches_equal_release_times() {
        let mut s = StaticSource::new(&instance());
        assert_eq!(s.next_time(), Some(0.0));
        let batch = s.emit(&view(0.0));
        assert_eq!(batch.len(), 2);
        assert_eq!(s.next_time(), Some(3.0));
        let batch = s.emit(&view(3.0));
        assert_eq!(batch.len(), 1);
        assert_eq!(s.next_time(), None);
    }

    #[test]
    fn static_source_does_not_emit_early() {
        let mut s = StaticSource::new(&instance());
        s.emit(&view(0.0));
        // At t = 2.9 nothing is due.
        assert_eq!(s.emit(&view(2.9)).len(), 0);
        assert_eq!(s.next_time(), Some(3.0));
    }

    #[test]
    fn system_view_aggregates() {
        let spec_a = JobSpec::new(JobId(0), 0.0, 4.0, Curve::Sequential);
        let spec_b = JobSpec::new(JobId(1), 1.0, 2.0, Curve::Sequential);
        let alive = [
            AliveJob {
                spec: &spec_a,
                remaining: 3.0,
            },
            AliveJob {
                spec: &spec_b,
                remaining: 1.0,
            },
        ];
        let v = SystemView {
            now: 2.0,
            m: 4.0,
            alive: &alive,
        };
        assert_eq!(v.num_alive(), 2);
        assert_eq!(v.remaining_work_where(|_| true), 4.0);
        assert_eq!(v.remaining_work_where(|j| j.size() <= 2.0), 1.0);
    }

    #[test]
    fn remaining_work_sum_does_not_drift_over_a_million_tiny_jobs() {
        // One huge job followed by 10⁶ unit jobs: every unit term is below
        // half an ulp of the 10¹⁶-scale running sum, so a naive
        // left-to-right sum returns exactly 1e16 — off by 10⁶ absolute.
        let big = JobSpec::new(JobId(0), 0.0, 1e16, Curve::Sequential);
        let tiny = JobSpec::new(JobId(1), 0.0, 1.0, Curve::Sequential);
        let mut alive = vec![AliveJob {
            spec: &big,
            remaining: 1e16,
        }];
        alive.extend((0..1_000_000).map(|_| AliveJob {
            spec: &tiny,
            remaining: 1.0,
        }));
        let naive: f64 = alive.iter().map(|j| j.remaining).sum();
        assert_eq!(naive, 1e16, "test premise: naive summation drifts");
        let v = SystemView {
            now: 0.0,
            m: 1.0,
            alive: &alive,
        };
        assert_eq!(v.remaining_work_where(|_| true), 1e16 + 1e6);
    }

    #[test]
    fn arrival_tolerance_is_relative_then_capped() {
        // Small clocks: the usual EPS-relative window.
        assert_eq!(arrival_tolerance(0.0), EPS);
        assert_eq!(arrival_tolerance(100.0), EPS * 100.0);
        // Large clocks: capped absolutely, so an n = 10^7 streaming run
        // (makespan ~2*10^7) cannot admit jobs ~0.02 sim-seconds early.
        assert_eq!(arrival_tolerance(2.0e7), 1e-6);
        assert!(arrival_tolerance(1.0e12) == 1e-6);
    }
}
