//! The online scheduling policy interface.

use parsched_speedup::Curve;

use crate::job::{JobId, JobSpec, Time, Work};

/// A view of one unfinished job handed to a [`Policy`] at a decision point.
#[derive(Debug, Clone, Copy)]
pub struct AliveJob<'a> {
    /// The job's immutable description.
    pub spec: &'a JobSpec,
    /// Remaining unprocessed work `p_j(t)`.
    pub remaining: Work,
}

impl AliveJob<'_> {
    /// Job id.
    pub fn id(&self) -> JobId {
        self.spec.id
    }

    /// Release time `r_j`.
    pub fn release(&self) -> Time {
        self.spec.release
    }

    /// Original size `p_j`.
    pub fn size(&self) -> Work {
        self.spec.size
    }

    /// Speed-up curve `Γ_j`.
    pub fn curve(&self) -> &Curve {
        &self.spec.curve
    }
}

/// An online scheduler: maps the current system state to a processor
/// allocation.
///
/// # Contract
///
/// * `assign` must fill `shares[i]` with the allocation of `jobs[i]`; each
///   share must be finite and `≥ 0`, and the shares must sum to at most `m`
///   (the engine verifies this and fails the run otherwise).
/// * The engine calls `assign` at every *event* (arrival, completion) and
///   whenever the previously returned *quantum* expires. Returning
///   `Some(dt)` asks for re-decision after at most `dt` time units even if
///   no discrete event happens — policies whose preferred allocation drifts
///   as remaining work drains (e.g. the §3 greedy hybrid) use this; policies
///   whose allocation only changes at events return `None` and are simulated
///   exactly.
/// * `reset` restores the policy to its initial state so one policy value
///   can be reused across runs.
pub trait Policy {
    /// Stable display name (used in tables, errors, and traces).
    fn name(&self) -> String;

    /// Chooses the allocation at time `now` for the given alive jobs on `m`
    /// processors. Returns an optional re-decision quantum.
    fn assign(&mut self, now: Time, m: f64, jobs: &[AliveJob<'_>], shares: &mut [f64])
        -> Option<f64>;

    /// Restores initial state (default: stateless, nothing to do).
    fn reset(&mut self) {}
}

impl<P: Policy + ?Sized> Policy for Box<P> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn assign(
        &mut self,
        now: Time,
        m: f64,
        jobs: &[AliveJob<'_>],
        shares: &mut [f64],
    ) -> Option<f64> {
        (**self).assign(now, m, jobs, shares)
    }

    fn reset(&mut self) {
        (**self).reset()
    }
}

/// The simplest useful policy: split all `m` processors evenly among all
/// alive jobs (EQUI / processor sharing, Edmonds [TCS'00]).
///
/// Lives in `parsched-sim` (rather than the policy crate) so the engine can
/// be tested and documented without a circular dev-dependency; the policy
/// crate re-exports it as `Equi`.
#[derive(Debug, Default, Clone, Copy)]
pub struct EquiSplit;

impl EquiSplit {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl Policy for EquiSplit {
    fn name(&self) -> String {
        "EQUI".to_string()
    }

    fn assign(
        &mut self,
        _now: Time,
        m: f64,
        jobs: &[AliveJob<'_>],
        shares: &mut [f64],
    ) -> Option<f64> {
        if jobs.is_empty() {
            return None;
        }
        let each = m / jobs.len() as f64;
        shares.fill(each);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_speedup::Curve;

    #[test]
    fn equi_splits_evenly() {
        let specs: Vec<JobSpec> = (0..4)
            .map(|i| JobSpec::new(JobId(i), 0.0, 1.0, Curve::FullyParallel))
            .collect();
        let jobs: Vec<AliveJob<'_>> = specs.iter().map(|s| AliveJob { spec: s, remaining: 1.0 }).collect();
        let mut shares = vec![0.0; 4];
        let q = EquiSplit::new().assign(0.0, 6.0, &jobs, &mut shares);
        assert_eq!(q, None);
        assert!(shares.iter().all(|&s| (s - 1.5).abs() < 1e-12));
    }

    #[test]
    fn equi_handles_empty_system() {
        let mut shares: Vec<f64> = vec![];
        assert_eq!(EquiSplit::new().assign(0.0, 6.0, &[], &mut shares), None);
    }

    #[test]
    fn boxed_policy_delegates() {
        let mut p: Box<dyn Policy> = Box::new(EquiSplit::new());
        assert_eq!(p.name(), "EQUI");
        p.reset();
        let spec = JobSpec::new(JobId(0), 0.0, 1.0, Curve::Sequential);
        let jobs = [AliveJob { spec: &spec, remaining: 0.5 }];
        let mut shares = [0.0];
        p.assign(0.0, 2.0, &jobs, &mut shares);
        assert_eq!(shares[0], 2.0);
    }

    #[test]
    fn alive_job_accessors() {
        let spec = JobSpec::new(JobId(7), 1.5, 3.0, Curve::power(0.5));
        let j = AliveJob { spec: &spec, remaining: 2.0 };
        assert_eq!(j.id(), JobId(7));
        assert_eq!(j.release(), 1.5);
        assert_eq!(j.size(), 3.0);
        assert_eq!(j.remaining, 2.0);
        assert_eq!(j.curve().rate(4.0), 2.0);
    }
}
