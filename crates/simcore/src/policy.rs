//! The online scheduling policy interface.

use parsched_speedup::Curve;

use crate::job::{JobId, JobSpec, Time, Work};

/// A view of one unfinished job handed to a [`Policy`] at a decision point.
#[derive(Debug, Clone, Copy)]
pub struct AliveJob<'a> {
    /// The job's immutable description.
    pub spec: &'a JobSpec,
    /// Remaining unprocessed work `p_j(t)`.
    pub remaining: Work,
}

impl AliveJob<'_> {
    /// Job id.
    pub fn id(&self) -> JobId {
        self.spec.id
    }

    /// Release time `r_j`.
    pub fn release(&self) -> Time {
        self.spec.release
    }

    /// Original size `p_j`.
    pub fn size(&self) -> Work {
        self.spec.size
    }

    /// Speed-up curve `Γ_j`.
    pub fn curve(&self) -> &Curve {
        &self.spec.curve
    }
}

/// How a policy's preferred allocation evolves between discrete events —
/// the contract that decides which engine execution path is sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationStability {
    /// No structural guarantee: the engine must call
    /// [`Policy::assign`] on the full alive set at every event (the
    /// `O(n)`-per-event legacy path).
    General,
    /// The allocation is a *prefix profile of the SRPT order*: at every
    /// decision point, the first `k` jobs in `(remaining, release, id)`
    /// order each receive the same share `s` and every other job receives
    /// zero, where `(k, s)` depends only on `(|A(t)|, m)` (via
    /// [`Policy::prefix_allocation`]). The whole SRPT policy family —
    /// Intermediate-SRPT, Sequential-SRPT, Parallel-SRPT, Threshold-SRPT,
    /// and EQUI — has this shape, and it is what makes the incremental
    /// `O(log n)`-per-event engine path sound: between events the scheduled
    /// prefix drains at a common rate, so the SRPT order is invariant.
    ///
    /// Policies declaring this MUST return `Some` from
    /// [`Policy::prefix_allocation`] for every `n ≥ 1`, MUST have `assign`
    /// agree with that profile, and MUST NOT rely on quantum re-decisions
    /// (the incremental path never calls `assign`, so a returned quantum
    /// would be ignored).
    SrptPrefix,
}

/// A prefix-of-SRPT-order allocation: the first `count` jobs in
/// `(remaining, release, id)` order each receive `share` processors; all
/// other alive jobs receive zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefixAllocation {
    /// Number of scheduled jobs `k ≥ 1` (callers clamp to `n`).
    pub count: usize,
    /// Processors per scheduled job (`count · share ≤ m`).
    pub share: f64,
}

/// An online scheduler: maps the current system state to a processor
/// allocation.
///
/// # Contract
///
/// * `assign` must fill `shares[i]` with the allocation of `jobs[i]`; each
///   share must be finite and `≥ 0`, and the shares must sum to at most `m`
///   (the engine verifies this and fails the run otherwise).
/// * The engine calls `assign` at every *event* (arrival, completion) and
///   whenever the previously returned *quantum* expires. Returning
///   `Some(dt)` asks for re-decision after at most `dt` time units even if
///   no discrete event happens — policies whose preferred allocation drifts
///   as remaining work drains (e.g. the §3 greedy hybrid) use this; policies
///   whose allocation only changes at events return `None` and are simulated
///   exactly.
/// * `reset` restores the policy to its initial state so one policy value
///   can be reused across runs.
///
/// # Incremental protocol
///
/// Policies whose allocation is a prefix profile of the SRPT order can opt
/// into the engine's `O(log n)`-per-event path by returning
/// [`AllocationStability::SrptPrefix`] from [`Policy::stability`] and
/// implementing [`Policy::prefix_allocation`]. On that path the engine
/// never calls `assign`; it maintains the SRPT order itself and applies the
/// profile directly. [`Policy::on_arrival`] / [`Policy::on_completion`] are
/// lightweight event notifications (fired on every path) for policies that
/// keep internal statistics.
pub trait Policy {
    /// Stable display name (used in tables, errors, and traces).
    fn name(&self) -> String;

    /// Chooses the allocation at time `now` for the given alive jobs on `m`
    /// processors. Returns an optional re-decision quantum.
    fn assign(
        &mut self,
        now: Time,
        m: f64,
        jobs: &[AliveJob<'_>],
        shares: &mut [f64],
    ) -> Option<f64>;

    /// Restores initial state (default: stateless, nothing to do).
    fn reset(&mut self) {}

    /// How this policy's allocation evolves between events (default:
    /// [`AllocationStability::General`], the conservative answer).
    fn stability(&self) -> AllocationStability {
        AllocationStability::General
    }

    /// The prefix profile `(k, s)` for `n` alive jobs on `m` processors.
    ///
    /// Must be `Some` (with `1 ≤ k ≤ n`, `s > 0`, `k·s ≤ m`) whenever
    /// [`Policy::stability`] returns [`AllocationStability::SrptPrefix`]
    /// and `n ≥ 1`; the default returns `None`.
    fn prefix_allocation(&self, n_alive: usize, m: f64) -> Option<PrefixAllocation> {
        let _ = (n_alive, m);
        None
    }

    /// Whether this policy's allocation is always *SRPT-ordered*: the set
    /// of jobs with positive share is a prefix of the SRPT order
    /// (`(remaining, release, id)`) and all scheduled jobs receive the
    /// same share. The runtime invariant audit
    /// ([`crate::EngineConfig::with_audit`]) checks the `srpt-prefix`
    /// invariant only for policies that declare this.
    ///
    /// This is a *claimed semantic property checked by the audit*, distinct
    /// from [`Policy::stability`], which is an *execution-path contract*:
    /// EQUI runs on the incremental path (its equal split is a trivial
    /// whole-set prefix profile) but does not claim SRPT ordering — its
    /// allocation is order-agnostic, so the check would be vacuous. The
    /// SRPT policy family (Intermediate/Sequential/Parallel/Threshold-SRPT)
    /// overrides this to `true`. Default: `false`, the conservative answer.
    fn srpt_ordered(&self) -> bool {
        false
    }

    /// Notification that jobs arrived at `now`, leaving `n_alive` alive
    /// jobs (fired once per arrival batch, on every engine path).
    fn on_arrival(&mut self, now: Time, n_alive: usize) {
        let _ = (now, n_alive);
    }

    /// Notification that one or more jobs completed at `now`, leaving
    /// `n_alive` alive jobs (fired once per completion batch, on every
    /// engine path).
    fn on_completion(&mut self, now: Time, n_alive: usize) {
        let _ = (now, n_alive);
    }

    /// Whether [`Policy::on_arrival`] and [`Policy::on_completion`] are
    /// both no-ops for this policy.
    ///
    /// Policies returning `true` promise that skipping the notifications
    /// is indistinguishable from delivering them, which lets the engine's
    /// monomorphized fast loop elide the two per-event virtual calls (the
    /// [`crate::Observer::is_noop`] pattern). The default is `false` — the
    /// conservative answer that keeps every notification firing — so a
    /// policy that starts keeping event statistics cannot be silently
    /// starved by a stale hint it never opted into.
    fn event_hooks_are_noop(&self) -> bool {
        false
    }

    /// The policy's mutable run state as opaque words, for
    /// [`crate::Engine::snapshot`]. Stateless policies (the default) return
    /// an empty vector. Stateful policies (e.g. a seeded randomized policy's
    /// RNG position) must capture everything their future decisions depend
    /// on: after `reset()` + [`Policy::restore_state`] with these words, the
    /// policy must make bit-identical decisions to the captured one.
    fn snapshot_state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores run state captured by [`Policy::snapshot_state`]. Called
    /// after `reset()`. Returns `false` when the words are not a valid
    /// state for this policy (the default accepts only an empty slice).
    fn restore_state(&mut self, state: &[u64]) -> bool {
        state.is_empty()
    }
}

impl<P: Policy + ?Sized> Policy for Box<P> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn assign(
        &mut self,
        now: Time,
        m: f64,
        jobs: &[AliveJob<'_>],
        shares: &mut [f64],
    ) -> Option<f64> {
        (**self).assign(now, m, jobs, shares)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn stability(&self) -> AllocationStability {
        (**self).stability()
    }

    fn prefix_allocation(&self, n_alive: usize, m: f64) -> Option<PrefixAllocation> {
        (**self).prefix_allocation(n_alive, m)
    }

    fn srpt_ordered(&self) -> bool {
        (**self).srpt_ordered()
    }

    fn on_arrival(&mut self, now: Time, n_alive: usize) {
        (**self).on_arrival(now, n_alive)
    }

    fn on_completion(&mut self, now: Time, n_alive: usize) {
        (**self).on_completion(now, n_alive)
    }

    fn event_hooks_are_noop(&self) -> bool {
        (**self).event_hooks_are_noop()
    }

    fn snapshot_state(&self) -> Vec<u64> {
        (**self).snapshot_state()
    }

    fn restore_state(&mut self, state: &[u64]) -> bool {
        (**self).restore_state(state)
    }
}

/// The simplest useful policy: split all `m` processors evenly among all
/// alive jobs (EQUI / processor sharing, Edmonds [TCS'00]).
///
/// Lives in `parsched-sim` (rather than the policy crate) so the engine can
/// be tested and documented without a circular dev-dependency; the policy
/// crate re-exports it as `Equi`.
#[derive(Debug, Default, Clone, Copy)]
pub struct EquiSplit;

impl EquiSplit {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl Policy for EquiSplit {
    fn name(&self) -> String {
        // lint:allow(L007) Policy::name runs at engine construction and in error reporting, never per event
        "EQUI".to_string()
    }

    fn assign(
        &mut self,
        _now: Time,
        m: f64,
        jobs: &[AliveJob<'_>],
        shares: &mut [f64],
    ) -> Option<f64> {
        if jobs.is_empty() {
            return None;
        }
        let each = m / jobs.len() as f64;
        shares.fill(each);
        None
    }

    fn stability(&self) -> AllocationStability {
        AllocationStability::SrptPrefix
    }

    fn event_hooks_are_noop(&self) -> bool {
        // Stateless: both event hooks are the empty defaults, so the
        // fast loop may elide the two per-event virtual calls.
        true
    }

    fn prefix_allocation(&self, n_alive: usize, m: f64) -> Option<PrefixAllocation> {
        if n_alive == 0 {
            return None;
        }
        Some(PrefixAllocation {
            count: n_alive,
            share: m / n_alive as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_speedup::Curve;

    #[test]
    fn equi_splits_evenly() {
        let specs: Vec<JobSpec> = (0..4)
            .map(|i| JobSpec::new(JobId(i), 0.0, 1.0, Curve::FullyParallel))
            .collect();
        let jobs: Vec<AliveJob<'_>> = specs
            .iter()
            .map(|s| AliveJob {
                spec: s,
                remaining: 1.0,
            })
            .collect();
        let mut shares = vec![0.0; 4];
        let q = EquiSplit::new().assign(0.0, 6.0, &jobs, &mut shares);
        assert_eq!(q, None);
        assert!(shares.iter().all(|&s| (s - 1.5).abs() < 1e-12));
    }

    #[test]
    fn equi_handles_empty_system() {
        let mut shares: Vec<f64> = vec![];
        assert_eq!(EquiSplit::new().assign(0.0, 6.0, &[], &mut shares), None);
    }

    #[test]
    fn boxed_policy_delegates() {
        let mut p: Box<dyn Policy> = Box::new(EquiSplit::new());
        assert_eq!(p.name(), "EQUI");
        p.reset();
        let spec = JobSpec::new(JobId(0), 0.0, 1.0, Curve::Sequential);
        let jobs = [AliveJob {
            spec: &spec,
            remaining: 0.5,
        }];
        let mut shares = [0.0];
        p.assign(0.0, 2.0, &jobs, &mut shares);
        assert_eq!(shares[0], 2.0);
    }

    #[test]
    fn equi_prefix_profile_matches_assign() {
        let p = EquiSplit::new();
        assert_eq!(p.stability(), AllocationStability::SrptPrefix);
        // EQUI rides the incremental path but does not claim SRPT ordering.
        assert!(!p.srpt_ordered());
        for n in 1..=9usize {
            let prof = p.prefix_allocation(n, 6.0).unwrap();
            assert_eq!(prof.count, n);
            assert!((prof.count as f64 * prof.share - 6.0).abs() < 1e-12);
        }
        assert!(p.prefix_allocation(0, 6.0).is_none());
    }

    #[test]
    fn alive_job_accessors() {
        let spec = JobSpec::new(JobId(7), 1.5, 3.0, Curve::power(0.5));
        let j = AliveJob {
            spec: &spec,
            remaining: 2.0,
        };
        assert_eq!(j.id(), JobId(7));
        assert_eq!(j.release(), 1.5);
        assert_eq!(j.size(), 3.0);
        assert_eq!(j.remaining, 2.0);
        assert_eq!(j.curve().rate(4.0), 2.0);
    }
}
