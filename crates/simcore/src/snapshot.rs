//! Suspend/resume snapshots of a running [`crate::Engine`].
//!
//! A [`Snapshot`] captures *everything* the event loop's future trajectory
//! depends on — clock, arena lanes, SRPT partitions with their compensated
//! sums, the generation-tagged event queue, policy state, and the metric
//! accumulators — such that `restore → run-to-completion` is **bit-identical**
//! to running the original engine to completion: same completion order, same
//! low-order float bits in every aggregate, same event count. That contract
//! is what lets the fleet layer suspend a tenant at any event boundary,
//! migrate it to another shard (or another process, via the text codec), and
//! resume as if nothing happened.
//!
//! # The `parsched-snap/v1` document
//!
//! Snapshots serialize to a single-line JSON document through the same
//! hand-rolled [`crate::jsonlite`] dialect the trace format uses. Two codec
//! rules make the rendering byte-stable and the round-trip exact:
//!
//! * **Every `f64` is stored as its IEEE-754 bit pattern**, a `u64` decimal
//!   lexeme. Engine state legitimately contains `±∞` (the quantile sketch's
//!   empty-state extrema) and depends on low-order bits that decimal
//!   shortest-round-trip formatting preserves but whose lexemes are not
//!   canonical across writers; bit patterns are.
//! * **Field order is fixed** and rendering is compact, so
//!   `parse → render` is the identity on any document this module emits —
//!   a snapshot can hop between shards through the text form any number of
//!   times without a byte changing.
//!
//! Speed-up curves ride on the compact field syntax from [`crate::csv`]
//! (`pow:<α>`, `pwl:…`), whose `{:?}` float formatting is exact by Rust's
//! shortest-round-trip guarantee.
//!
//! What is deliberately **not** captured: observers (a restored engine gets
//! whatever observer its host wires up; snapshotting requires the null
//! observer's path anyway on the incremental engine), auditors (snapshot
//! requires [`crate::AuditLevel::Off`] — audit state is a debugging aid, not
//! run state), and the calendar queue's bucket geometry (pop order is a pure
//! function of the `(time, seq)` entries, which *are* captured; the restored
//! queue re-primes itself on the first insert).

use crate::csv::{curve_from_field, curve_to_field};
use crate::error::SimError;
use crate::job::{JobId, JobSpec, Time};
use crate::jsonlite::Json;
use crate::metrics::CompletedJob;
use crate::srpt_set::{SetEntrySnap, SetSnap};
use crate::streaming::SinkState;

/// The format tag every document leads with.
pub const SNAP_FORMAT: &str = "parsched-snap/v1";

/// Engine-configuration fingerprint. Restore refuses a config whose
/// semantics differ from the one that produced the snapshot — resuming a
/// `speed = 1.0` snapshot on a `speed = 1.5` engine would be a silently
/// different trajectory, not a resume.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SnapCfg {
    pub(crate) m: f64,
    pub(crate) speed: f64,
    pub(crate) full_reassign: bool,
    pub(crate) streaming: bool,
    pub(crate) pow_kernel: bool,
    pub(crate) heap_queue: bool,
}

/// Mirror of the engine's private interval classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SnapInterval {
    Idle,
    Uniform { rate: f64 },
    Scan,
}

/// One arena slot: the admission spec plus every mutable lane. The `kern`
/// lane is *not* here — kernels are reconstructed from the curve and the
/// `pow_kernel` flag, which is bit-identical because kernel construction is
/// deterministic in α (see the class-registry note on [`Snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SnapJob {
    pub(crate) spec: JobSpec,
    pub(crate) remaining: f64,
    pub(crate) run_key: f64,
    pub(crate) class: u32,
    pub(crate) in_running: bool,
    pub(crate) done: bool,
}

/// A complete engine state at an event boundary. Produce with
/// [`crate::Engine::snapshot`], resume with [`crate::Engine::restore`],
/// and move between processes with [`Snapshot::to_json`] /
/// [`Snapshot::from_json`].
///
/// The Γ class registry is serialized as the α bit patterns in first-seen
/// order rather than replay-rebuilt on restore: under streaming slot
/// recycling the surviving arena slots need not mention every class ever
/// registered, and class ids stored in the `class` lane index this exact
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    pub(crate) cfg: SnapCfg,
    pub(crate) policy_name: String,
    pub(crate) policy_state: Vec<u64>,
    pub(crate) incremental: bool,
    pub(crate) now: Time,
    pub(crate) events: u64,
    pub(crate) coalesced: u64,
    pub(crate) arr_gen: u64,
    pub(crate) finished: bool,
    pub(crate) alloc_fresh: bool,
    pub(crate) quantum_deadline: Option<Time>,
    pub(crate) next_completion: Option<Time>,
    pub(crate) next_arrival: Option<Time>,
    pub(crate) profile_count: usize,
    pub(crate) profile_share: f64,
    pub(crate) interval: SnapInterval,
    pub(crate) frac_flow: (f64, f64),
    pub(crate) alive_integral: (f64, f64),
    pub(crate) admitted: usize,
    pub(crate) peak_alive: usize,
    pub(crate) sink: SinkState,
    pub(crate) jobs: Vec<SnapJob>,
    pub(crate) class_alpha_bits: Vec<u64>,
    pub(crate) free: Vec<usize>,
    pub(crate) alive: Vec<usize>,
    pub(crate) shares: Vec<f64>,
    pub(crate) rates: Vec<f64>,
    pub(crate) srpt: SetSnap,
    pub(crate) completed: Vec<CompletedJob>,
    pub(crate) equeue_entries: Vec<(f64, u64, u64)>,
    pub(crate) equeue_next_seq: u64,
}

impl Snapshot {
    /// Simulation clock at the suspend point.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Events processed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Whether the run had already finished when captured.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Total jobs admitted from the source so far.
    pub fn admitted(&self) -> usize {
        self.admitted
    }

    /// Jobs completed so far.
    pub fn completed_count(&self) -> u64 {
        self.sink.count
    }

    /// Unfinished released jobs at the suspend point.
    pub fn alive_count(&self) -> usize {
        if self.incremental {
            self.srpt.running.len() + self.srpt.queued.len()
        } else {
            self.alive.len()
        }
    }

    /// Total flow time accumulated over completions so far (the running
    /// value of the compensated sum — what `total_flow` will report if no
    /// further job completes).
    pub fn total_flow_so_far(&self) -> f64 {
        self.sink.total_flow.0 + self.sink.total_flow.1
    }

    /// Completion time of `id`, if it had already completed at the
    /// suspend point. Streaming captures retain no completion records, so
    /// this is always `None` for streaming snapshots — callers that need
    /// per-job completions under streaming must watch the live run (e.g.
    /// via [`crate::Observer::on_completion`]).
    pub fn completion_of(&self, id: JobId) -> Option<Time> {
        self.completed
            .iter()
            .find(|c| c.id == id)
            .map(|c| c.completion)
    }

    /// Name of the policy that was driving the run.
    pub fn policy_name(&self) -> &str {
        &self.policy_name
    }

    /// Whether the captured engine ran in memory-bounded streaming mode.
    pub fn streaming(&self) -> bool {
        self.cfg.streaming
    }

    /// Renders the `parsched-snap/v1` document (compact single line).
    /// `from_json(to_json(s)) == s` exactly, and `to_json` of the parsed
    /// snapshot reproduces the document byte-for-byte.
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }

    /// Parses a `parsched-snap/v1` document.
    pub fn from_json(text: &str) -> Result<Snapshot, SimError> {
        let doc = Json::parse(text).map_err(|e| bad(format!("unparseable document: {e}")))?;
        Self::from_value(&doc)
    }

    fn to_value(&self) -> Json {
        let obj = |fields: Vec<(&str, Json)>| {
            Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        };
        let cfg = obj(vec![
            ("m", fbits(self.cfg.m)),
            ("speed", fbits(self.cfg.speed)),
            ("full_reassign", Json::Bool(self.cfg.full_reassign)),
            ("streaming", Json::Bool(self.cfg.streaming)),
            ("pow_kernel", Json::Bool(self.cfg.pow_kernel)),
            ("heap_queue", Json::Bool(self.cfg.heap_queue)),
        ]);
        let policy = obj(vec![
            ("name", Json::Str(self.policy_name.clone())),
            (
                "state",
                Json::Arr(self.policy_state.iter().map(|&w| unum(w)).collect()),
            ),
        ]);
        let clock = obj(vec![
            ("now", fbits(self.now)),
            ("events", unum(self.events)),
            ("coalesced", unum(self.coalesced)),
            ("arr_gen", unum(self.arr_gen)),
            ("finished", Json::Bool(self.finished)),
            ("alloc_fresh", Json::Bool(self.alloc_fresh)),
            ("quantum_deadline", opt_fbits(self.quantum_deadline)),
            ("next_completion", opt_fbits(self.next_completion)),
            ("next_arrival", opt_fbits(self.next_arrival)),
        ]);
        let interval = match self.interval {
            SnapInterval::Idle => obj(vec![("kind", Json::Str("idle".into()))]),
            SnapInterval::Uniform { rate } => obj(vec![
                ("kind", Json::Str("uniform".into())),
                ("rate", fbits(rate)),
            ]),
            SnapInterval::Scan => obj(vec![("kind", Json::Str("scan".into()))]),
        };
        let accum = obj(vec![
            ("frac_flow", pair(self.frac_flow)),
            ("alive_integral", pair(self.alive_integral)),
            ("admitted", unum(self.admitted as u64)),
            ("peak_alive", unum(self.peak_alive as u64)),
        ]);
        let sink = obj(vec![
            ("count", unum(self.sink.count)),
            ("total_flow", pair(self.sink.total_flow)),
            ("max_flow", fbits(self.sink.max_flow)),
            ("total_stretch", pair(self.sink.total_stretch)),
            ("max_stretch", fbits(self.sink.max_stretch)),
            ("total_weighted_flow", pair(self.sink.total_weighted_flow)),
            ("makespan", fbits(self.sink.makespan)),
            (
                "sketch_counts",
                Json::Arr(self.sink.sketch_counts.iter().map(|&c| unum(c)).collect()),
            ),
            ("sketch_total", unum(self.sink.sketch_total)),
            ("sketch_min", fbits(self.sink.sketch_min)),
            ("sketch_max", fbits(self.sink.sketch_max)),
        ]);
        let jobs = Json::Arr(
            self.jobs
                .iter()
                .map(|j| {
                    Json::Arr(vec![
                        unum(j.spec.id.0),
                        fbits(j.spec.release),
                        fbits(j.spec.size),
                        fbits(j.spec.weight),
                        Json::Str(curve_to_field(&j.spec.curve)),
                        fbits(j.remaining),
                        fbits(j.run_key),
                        unum(u64::from(j.class)),
                        Json::Bool(j.in_running),
                        Json::Bool(j.done),
                    ])
                })
                .collect(),
        );
        let arena = obj(vec![
            ("jobs", jobs),
            (
                "classes",
                Json::Arr(self.class_alpha_bits.iter().map(|&b| unum(b)).collect()),
            ),
            (
                "free",
                Json::Arr(self.free.iter().map(|&i| unum(i as u64)).collect()),
            ),
        ]);
        let exhaustive = obj(vec![
            (
                "alive",
                Json::Arr(self.alive.iter().map(|&i| unum(i as u64)).collect()),
            ),
            (
                "shares",
                Json::Arr(self.shares.iter().map(|&s| fbits(s)).collect()),
            ),
            (
                "rates",
                Json::Arr(self.rates.iter().map(|&r| fbits(r)).collect()),
            ),
        ]);
        let set_entry = |e: &SetEntrySnap| {
            Json::Arr(vec![
                fbits(e.key),
                fbits(e.release),
                unum(e.id.0),
                unum(e.idx as u64),
                fbits(e.size),
                Json::Bool(e.hetero),
                Json::Bool(e.nonunit),
            ])
        };
        let srpt = obj(vec![
            (
                "running",
                Json::Arr(self.srpt.running.iter().map(set_entry).collect()),
            ),
            (
                "queued",
                Json::Arr(self.srpt.queued.iter().map(set_entry).collect()),
            ),
            ("drain", fbits(self.srpt.drain)),
            ("s1", fbits(self.srpt.s1)),
            ("sk", fbits(self.srpt.sk)),
            ("key_sum", fbits(self.srpt.key_sum)),
            ("q_frac", fbits(self.srpt.q_frac)),
            ("q_rem_sum", fbits(self.srpt.q_rem_sum)),
            (
                "reference",
                match &self.srpt.reference {
                    None => Json::Null,
                    Some(c) => Json::Str(curve_to_field(c)),
                },
            ),
        ]);
        let completed = Json::Arr(
            self.completed
                .iter()
                .map(|c| {
                    Json::Arr(vec![
                        unum(c.id.0),
                        fbits(c.release),
                        fbits(c.size),
                        fbits(c.completion),
                        fbits(c.weight),
                    ])
                })
                .collect(),
        );
        let equeue = obj(vec![
            (
                "entries",
                Json::Arr(
                    self.equeue_entries
                        .iter()
                        .map(|&(t, seq, payload)| {
                            Json::Arr(vec![fbits(t), unum(seq), unum(payload)])
                        })
                        .collect(),
                ),
            ),
            ("next_seq", unum(self.equeue_next_seq)),
        ]);
        obj(vec![
            ("format", Json::Str(SNAP_FORMAT.into())),
            ("cfg", cfg),
            ("policy", policy),
            ("incremental", Json::Bool(self.incremental)),
            ("clock", clock),
            (
                "profile",
                obj(vec![
                    ("count", unum(self.profile_count as u64)),
                    ("share", fbits(self.profile_share)),
                ]),
            ),
            ("interval", interval),
            ("accum", accum),
            ("sink", sink),
            ("arena", arena),
            ("exhaustive", exhaustive),
            ("srpt", srpt),
            ("completed", completed),
            ("equeue", equeue),
        ])
    }

    fn from_value(doc: &Json) -> Result<Snapshot, SimError> {
        let format = str_at(doc, "format")?;
        if format != SNAP_FORMAT {
            return Err(bad(format!(
                "unsupported snapshot format '{format}' (expected '{SNAP_FORMAT}')"
            )));
        }
        let cfg_v = field(doc, "cfg")?;
        let cfg = SnapCfg {
            m: f_at(cfg_v, "m")?,
            speed: f_at(cfg_v, "speed")?,
            full_reassign: bool_at(cfg_v, "full_reassign")?,
            streaming: bool_at(cfg_v, "streaming")?,
            pow_kernel: bool_at(cfg_v, "pow_kernel")?,
            heap_queue: bool_at(cfg_v, "heap_queue")?,
        };
        let policy_v = field(doc, "policy")?;
        let policy_name = str_at(policy_v, "name")?.to_string();
        let policy_state = arr_at(policy_v, "state")?
            .iter()
            .map(|v| v.as_u64().map_err(|e| bad(format!("policy state: {e}"))))
            .collect::<Result<Vec<u64>, SimError>>()?;
        let clock = field(doc, "clock")?;
        let profile = field(doc, "profile")?;
        let interval_v = field(doc, "interval")?;
        let interval = match str_at(interval_v, "kind")? {
            "idle" => SnapInterval::Idle,
            "uniform" => SnapInterval::Uniform {
                rate: f_at(interval_v, "rate")?,
            },
            "scan" => SnapInterval::Scan,
            other => return Err(bad(format!("unknown interval kind '{other}'"))),
        };
        let accum = field(doc, "accum")?;
        let sink_v = field(doc, "sink")?;
        let sink = SinkState {
            count: u_at(sink_v, "count")?,
            total_flow: pair_at(sink_v, "total_flow")?,
            max_flow: f_at(sink_v, "max_flow")?,
            total_stretch: pair_at(sink_v, "total_stretch")?,
            max_stretch: f_at(sink_v, "max_stretch")?,
            total_weighted_flow: pair_at(sink_v, "total_weighted_flow")?,
            makespan: f_at(sink_v, "makespan")?,
            sketch_counts: arr_at(sink_v, "sketch_counts")?
                .iter()
                .map(|v| v.as_u64().map_err(|e| bad(format!("sketch counts: {e}"))))
                .collect::<Result<Vec<u64>, SimError>>()?,
            sketch_total: u_at(sink_v, "sketch_total")?,
            sketch_min: f_at(sink_v, "sketch_min")?,
            sketch_max: f_at(sink_v, "sketch_max")?,
        };
        let arena = field(doc, "arena")?;
        let jobs = arr_at(arena, "jobs")?
            .iter()
            .map(|row| {
                let row = row.as_arr().map_err(|e| bad(format!("arena job: {e}")))?;
                if row.len() != 10 {
                    return Err(bad(format!(
                        "arena job row has {} fields (expected 10)",
                        row.len()
                    )));
                }
                let class64 = row[7]
                    .as_u64()
                    .map_err(|e| bad(format!("arena class: {e}")))?;
                let class = u32::try_from(class64)
                    .map_err(|_| bad(format!("arena class {class64} out of u32 range")))?;
                Ok(SnapJob {
                    spec: JobSpec {
                        id: JobId(row[0].as_u64().map_err(|e| bad(format!("job id: {e}")))?),
                        release: f_item(&row[1], "release")?,
                        size: f_item(&row[2], "size")?,
                        weight: f_item(&row[3], "weight")?,
                        curve: curve_from_field(
                            row[4].as_str().map_err(|e| bad(format!("curve: {e}")))?,
                        )?,
                    },
                    remaining: f_item(&row[5], "remaining")?,
                    run_key: f_item(&row[6], "run_key")?,
                    class,
                    in_running: bool_item(&row[8], "in_running")?,
                    done: bool_item(&row[9], "done")?,
                })
            })
            .collect::<Result<Vec<SnapJob>, SimError>>()?;
        let class_alpha_bits = arr_at(arena, "classes")?
            .iter()
            .map(|v| v.as_u64().map_err(|e| bad(format!("class bits: {e}"))))
            .collect::<Result<Vec<u64>, SimError>>()?;
        let free = usize_arr_at(arena, "free")?;
        let exhaustive = field(doc, "exhaustive")?;
        let alive = usize_arr_at(exhaustive, "alive")?;
        let shares = f_arr_at(exhaustive, "shares")?;
        let rates = f_arr_at(exhaustive, "rates")?;
        let srpt_v = field(doc, "srpt")?;
        let set_entries = |key: &str| -> Result<Vec<SetEntrySnap>, SimError> {
            arr_at(srpt_v, key)?
                .iter()
                .map(|row| {
                    let row = row
                        .as_arr()
                        .map_err(|e| bad(format!("srpt {key} entry: {e}")))?;
                    if row.len() != 7 {
                        return Err(bad(format!(
                            "srpt {key} entry has {} fields (expected 7)",
                            row.len()
                        )));
                    }
                    Ok(SetEntrySnap {
                        key: f_item(&row[0], "srpt key")?,
                        release: f_item(&row[1], "srpt release")?,
                        id: JobId(row[2].as_u64().map_err(|e| bad(format!("srpt id: {e}")))?),
                        idx: row[3]
                            .as_usize()
                            .map_err(|e| bad(format!("srpt idx: {e}")))?,
                        size: f_item(&row[4], "srpt size")?,
                        hetero: bool_item(&row[5], "srpt hetero")?,
                        nonunit: bool_item(&row[6], "srpt nonunit")?,
                    })
                })
                .collect()
        };
        let srpt = SetSnap {
            running: set_entries("running")?,
            queued: set_entries("queued")?,
            drain: f_at(srpt_v, "drain")?,
            s1: f_at(srpt_v, "s1")?,
            sk: f_at(srpt_v, "sk")?,
            key_sum: f_at(srpt_v, "key_sum")?,
            q_frac: f_at(srpt_v, "q_frac")?,
            q_rem_sum: f_at(srpt_v, "q_rem_sum")?,
            reference: match srpt_v.req("reference").map_err(bad)? {
                Json::Null => None,
                v => Some(curve_from_field(
                    v.as_str()
                        .map_err(|e| bad(format!("srpt reference: {e}")))?,
                )?),
            },
        };
        let completed = arr_at(doc, "completed")?
            .iter()
            .map(|row| {
                let row = row.as_arr().map_err(|e| bad(format!("completed: {e}")))?;
                if row.len() != 5 {
                    return Err(bad(format!(
                        "completed row has {} fields (expected 5)",
                        row.len()
                    )));
                }
                Ok(CompletedJob {
                    id: JobId(
                        row[0]
                            .as_u64()
                            .map_err(|e| bad(format!("completed id: {e}")))?,
                    ),
                    release: f_item(&row[1], "completed release")?,
                    size: f_item(&row[2], "completed size")?,
                    completion: f_item(&row[3], "completion")?,
                    weight: f_item(&row[4], "completed weight")?,
                })
            })
            .collect::<Result<Vec<CompletedJob>, SimError>>()?;
        let equeue_v = field(doc, "equeue")?;
        let equeue_entries = arr_at(equeue_v, "entries")?
            .iter()
            .map(|row| {
                let row = row
                    .as_arr()
                    .map_err(|e| bad(format!("equeue entry: {e}")))?;
                if row.len() != 3 {
                    return Err(bad(format!(
                        "equeue entry has {} fields (expected 3)",
                        row.len()
                    )));
                }
                Ok((
                    f_item(&row[0], "equeue time")?,
                    row[1]
                        .as_u64()
                        .map_err(|e| bad(format!("equeue seq: {e}")))?,
                    row[2]
                        .as_u64()
                        .map_err(|e| bad(format!("equeue payload: {e}")))?,
                ))
            })
            .collect::<Result<Vec<(f64, u64, u64)>, SimError>>()?;
        Ok(Snapshot {
            cfg,
            policy_name,
            policy_state,
            incremental: bool_at(doc, "incremental")?,
            now: f_at(clock, "now")?,
            events: u_at(clock, "events")?,
            coalesced: u_at(clock, "coalesced")?,
            arr_gen: u_at(clock, "arr_gen")?,
            finished: bool_at(clock, "finished")?,
            alloc_fresh: bool_at(clock, "alloc_fresh")?,
            quantum_deadline: opt_f_at(clock, "quantum_deadline")?,
            next_completion: opt_f_at(clock, "next_completion")?,
            next_arrival: opt_f_at(clock, "next_arrival")?,
            profile_count: u_at(profile, "count")? as usize,
            profile_share: f_at(profile, "share")?,
            interval,
            frac_flow: pair_at(accum, "frac_flow")?,
            alive_integral: pair_at(accum, "alive_integral")?,
            admitted: u_at(accum, "admitted")? as usize,
            peak_alive: u_at(accum, "peak_alive")? as usize,
            sink,
            jobs,
            class_alpha_bits,
            free,
            alive,
            shares,
            rates,
            srpt,
            completed,
            equeue_entries,
            equeue_next_seq: u_at(equeue_v, "next_seq")?,
        })
    }
}

fn bad(what: String) -> SimError {
    SimError::BadInstance {
        what: format!("snapshot: {what}"),
    }
}

/// An `f64` as its bit pattern, the codec's canonical float encoding.
fn fbits(x: f64) -> Json {
    Json::Num(x.to_bits().to_string())
}

fn unum(x: u64) -> Json {
    Json::Num(x.to_string())
}

fn opt_fbits(x: Option<f64>) -> Json {
    match x {
        None => Json::Null,
        Some(v) => fbits(v),
    }
}

fn pair(p: (f64, f64)) -> Json {
    Json::Arr(vec![fbits(p.0), fbits(p.1)])
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, SimError> {
    v.req(key).map_err(bad)
}

fn f_item(v: &Json, what: &str) -> Result<f64, SimError> {
    v.as_u64()
        .map(f64::from_bits)
        .map_err(|e| bad(format!("{what}: {e}")))
}

fn bool_item(v: &Json, what: &str) -> Result<bool, SimError> {
    match v {
        Json::Bool(b) => Ok(*b),
        other => Err(bad(format!("{what}: expected bool, got {other:?}"))),
    }
}

fn f_at(v: &Json, key: &str) -> Result<f64, SimError> {
    f_item(field(v, key)?, key)
}

fn opt_f_at(v: &Json, key: &str) -> Result<Option<f64>, SimError> {
    match field(v, key)? {
        Json::Null => Ok(None),
        other => f_item(other, key).map(Some),
    }
}

fn u_at(v: &Json, key: &str) -> Result<u64, SimError> {
    field(v, key)?
        .as_u64()
        .map_err(|e| bad(format!("{key}: {e}")))
}

fn bool_at(v: &Json, key: &str) -> Result<bool, SimError> {
    bool_item(field(v, key)?, key)
}

fn str_at<'a>(v: &'a Json, key: &str) -> Result<&'a str, SimError> {
    field(v, key)?
        .as_str()
        .map_err(|e| bad(format!("{key}: {e}")))
}

fn arr_at<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], SimError> {
    field(v, key)?
        .as_arr()
        .map_err(|e| bad(format!("{key}: {e}")))
}

fn pair_at(v: &Json, key: &str) -> Result<(f64, f64), SimError> {
    let a = arr_at(v, key)?;
    if a.len() != 2 {
        return Err(bad(format!("{key}: expected 2-element pair")));
    }
    Ok((f_item(&a[0], key)?, f_item(&a[1], key)?))
}

fn usize_arr_at(v: &Json, key: &str) -> Result<Vec<usize>, SimError> {
    arr_at(v, key)?
        .iter()
        .map(|x| x.as_usize().map_err(|e| bad(format!("{key}: {e}"))))
        .collect()
}

fn f_arr_at(v: &Json, key: &str) -> Result<Vec<f64>, SimError> {
    arr_at(v, key)?.iter().map(|x| f_item(x, key)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, EngineConfig, EquiSplit, Instance, StaticSource};
    use parsched_speedup::Curve;

    fn snap_of_run(steps: usize) -> Snapshot {
        let inst = Instance::new(vec![
            JobSpec::new(JobId(0), 0.0, 4.0, Curve::power(0.5)),
            JobSpec::new(JobId(1), 1.0, 2.0, Curve::power(0.5)),
            JobSpec::new(JobId(2), 2.0, 1.0, Curve::Sequential),
        ])
        .unwrap();
        let mut policy = EquiSplit::new();
        let mut source = StaticSource::new(&inst);
        let mut obs = crate::NullObserver;
        let mut eng = Engine::new(EngineConfig::new(4.0), &mut policy, &mut source, &mut obs);
        for _ in 0..steps {
            eng.step().unwrap();
        }
        eng.snapshot().unwrap()
    }

    #[test]
    fn json_round_trip_is_exact_and_byte_stable() {
        for steps in [0, 1, 3] {
            let snap = snap_of_run(steps);
            let text = snap.to_json();
            let back = Snapshot::from_json(&text).unwrap();
            assert_eq!(back, snap, "round-trip at {steps} steps");
            assert_eq!(back.to_json(), text, "byte stability at {steps} steps");
        }
    }

    #[test]
    fn rejects_foreign_formats_and_garbage() {
        assert!(Snapshot::from_json("{}").is_err());
        assert!(Snapshot::from_json("not json").is_err());
        let mut doc = snap_of_run(1).to_json();
        doc = doc.replace(SNAP_FORMAT, "parsched-snap/v999");
        assert!(Snapshot::from_json(&doc).is_err());
    }

    #[test]
    fn accessors_reflect_run_position() {
        let snap = snap_of_run(2);
        assert_eq!(snap.events(), 2);
        assert_eq!(snap.policy_name(), "EQUI");
        assert!(!snap.is_finished());
        assert!(snap.admitted() >= 1);
        assert_eq!(
            snap.alive_count() + snap.completed_count() as usize,
            snap.admitted()
        );
    }
}
