//! Future-event ordering for the engine: a hierarchical calendar queue
//! tuned to near-monotone event times, with a binary-heap control arm.
//!
//! The engine's incremental event loop queues its *arrival timeline*
//! here: wakeups whose times come straight from the arrival source, so
//! they are near-monotone and never re-scheduled once queued. A wakeup
//! superseded by an admission round is generation-tagged stale; its time
//! is ≤ the clock by then, so it surfaces at the queue front and is
//! lazily discarded. (Interval-completion candidates deliberately stay
//! *out* of the queue — they are recomputed by every allocation refresh
//! and would pile up as stale future-time entries; see `docs/PERF.md`
//! §7.)
//!
//! Two interchangeable implementations sit behind [`EventQueue`]:
//!
//! * [`CalendarQueue`] — a single-rotation calendar (Brown's calendar
//!   queue, one level plus an overflow day list). Simulation clocks only
//!   move forward, so inserts land at or after the cursor bucket, making
//!   insert `O(1)` and pop amortized `O(1)` for the near-monotone time
//!   streams the engine produces (see `docs/PERF.md` §7). This is the
//!   default arm.
//! * [`EventHeap`] — a plain `BinaryHeap` in min order; `O(log n)` per
//!   op. Kept as the conventional control arm behind
//!   [`crate::EngineConfig::with_event_queue`] so CI can difference the
//!   two on full runs.
//!
//! **Ordering contract (both arms):** entries pop in ascending
//! `(time, seq)` order, where `seq` is the insertion sequence number —
//! ties on time resolve FIFO by insertion, deterministically. Times are
//! compared with `f64::total_cmp`; non-finite times are rejected at
//! insert. The property tests at the bottom of this file pin the two
//! arms to identical pop sequences, including tie storms and
//! bucket-rollover boundaries.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One queued future event: a timestamp plus an opaque payload (the
/// engine packs an event kind and a generation tag into it).
#[derive(Debug, Clone, Copy)]
struct Entry {
    time: f64,
    seq: u64,
    payload: u64,
}

/// The total order both arms pop in: ascending time (`total_cmp`), FIFO
/// by insertion sequence on ties.
fn cmp_entries(a: &Entry, b: &Entry) -> std::cmp::Ordering {
    a.time.total_cmp(&b.time).then(a.seq.cmp(&b.seq))
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        cmp_entries(self, other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        cmp_entries(self, other)
    }
}

/// Number of buckets in one calendar rotation. The engine keeps a
/// handful of live candidates, so a small power of two keeps the ring
/// cache-resident; property tests exercise multi-rotation loads.
const BUCKETS: usize = 64;

/// A single-rotation calendar queue with an overflow list.
///
/// The ring covers `[base, base + BUCKETS·width)`; entry `t` lands in
/// bucket `⌊(t − base)/width⌋`, times beyond the horizon go to the
/// overflow list, and times before the cursor bucket's start clamp
/// *into* the cursor bucket. The clamp preserves the pop order: every
/// bucket behind the cursor is empty, a clamped entry still wins its
/// bucket's min-scan if it is the smallest, and entries in later
/// buckets are provably later than the cursor bucket's span.
///
/// When a rotation drains, the queue rebases onto the overflow list:
/// `base` snaps to the overflow minimum and `width` adapts to the
/// observed span, so the structure self-tunes to whatever event-time
/// density the workload produces. All bucket vectors retain capacity
/// across [`CalendarQueue::clear`], keeping steady-state operation
/// allocation-free after warm-up.
#[derive(Debug)]
pub(crate) struct CalendarQueue {
    /// Cached `(time, seq)`-minimal entry. The engine's steady state
    /// keeps at most one live wakeup queued, so serving peek/pop/insert
    /// from this slot keeps the bucket ring entirely cold (no cache
    /// traffic) until the queue actually holds two or more entries.
    front: Option<Entry>,
    buckets: Vec<Vec<Entry>>,
    overflow: Vec<Entry>,
    /// Spare vector swapped with `overflow` during rebase so
    /// redistribution never sheds capacity (zero-allocation contract).
    spare: Vec<Entry>,
    /// Start time of bucket 0 of the current rotation.
    base: f64,
    width: f64,
    /// Current bucket index; buckets before it are empty.
    cursor: usize,
    /// Entries resident in the ring + overflow (excludes `front`).
    ring_len: usize,
    seq: u64,
    /// Whether `base`/`width` have been initialized by a first ring push.
    primed: bool,
    /// Time of the most recent insert (for the gap estimate below).
    last_insert: f64,
    /// EWMA of positive deltas between successive insert times. A nearly
    /// empty queue has `span ≈ 0`, so sizing buckets from the span alone
    /// collapses the width to ulp scale and every later insert overflows
    /// (one full rebase per event). Sizing from the observed inter-event
    /// gap instead keeps future near-monotone inserts landing inside the
    /// ring — Brown's classic width heuristic, adapted to a stream.
    gap: f64,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self {
            front: None,
            buckets: (0..BUCKETS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            spare: Vec::new(),
            base: 0.0,
            width: 1.0,
            cursor: 0,
            ring_len: 0,
            seq: 0,
            primed: false,
            last_insert: 0.0,
            gap: 0.0,
        }
    }
}

impl CalendarQueue {
    fn bucket_of(&self, time: f64) -> Option<usize> {
        let off = (time - self.base) / self.width;
        if off >= BUCKETS as f64 {
            return None; // beyond the horizon → overflow
        }
        // Negative offsets (pre-base times) and offsets behind the
        // cursor clamp into the cursor bucket; see the type docs for
        // why that preserves order.
        let idx = if off <= 0.0 { 0 } else { off as usize };
        Some(idx.clamp(self.cursor, BUCKETS - 1))
    }

    fn insert(&mut self, time: f64, payload: u64) {
        // lint:allow(L007) intentional loud failure: a NaN/infinite key would silently corrupt pop order; the engine never schedules one
        assert!(time.is_finite(), "event time must be finite, got {time}");
        let entry = Entry {
            time,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        if self.seq > 1 {
            let d = time - self.last_insert;
            if d > 0.0 && d.is_finite() {
                self.gap = if self.gap > 0.0 {
                    0.875 * self.gap + 0.125 * d
                } else {
                    d
                };
            }
        }
        self.last_insert = self.last_insert.max(time);
        // Serve the front slot first; only a displaced (non-minimal)
        // entry touches the bucket ring.
        match self.front {
            None => self.front = Some(entry),
            Some(f) if cmp_entries(&entry, &f) == std::cmp::Ordering::Less => {
                self.front = Some(entry);
                self.ring_push(f);
            }
            Some(_) => self.ring_push(entry),
        }
    }

    fn ring_push(&mut self, entry: Entry) {
        if !self.primed {
            // First ring push primes the rotation around the first time
            // seen; width adapts at the first rebase.
            self.primed = true;
            self.base = entry.time;
            self.width = entry.time.abs().max(1.0) * 1e-3;
            self.cursor = 0;
        }
        self.ring_len += 1;
        match self.bucket_of(entry.time) {
            Some(b) => self.buckets[b].push(entry),
            None => self.overflow.push(entry),
        }
    }

    /// Advances the cursor to the next non-empty bucket, rebasing from
    /// the overflow list when the rotation is spent. After this returns,
    /// either `ring_len == 0` or `buckets[cursor]` is non-empty.
    fn settle(&mut self) {
        if self.ring_len == 0 {
            return;
        }
        loop {
            while self.cursor < BUCKETS {
                if !self.buckets[self.cursor].is_empty() {
                    return;
                }
                self.cursor += 1;
            }
            // Rotation spent: everything alive is in the overflow list.
            debug_assert_eq!(self.overflow.len(), self.ring_len);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for e in &self.overflow {
                lo = lo.min(e.time);
                hi = hi.max(e.time);
            }
            self.base = lo;
            let span = hi - lo;
            let min_width = lo.abs().max(1.0) * f64::EPSILON * 4.0;
            // Width from whichever is coarser: the resident span spread
            // over the ring, or the inter-insert gap estimate (which
            // keeps a nearly empty queue from collapsing to ulp-width
            // buckets and overflowing on every future insert).
            self.width = (span / BUCKETS as f64).max(self.gap).max(min_width);
            self.cursor = 0;
            // Swap in the retained spare so entries that stay beyond the
            // new horizon land in a warm vector — the rebase allocates
            // nothing once both vectors have grown to their high-water
            // marks.
            let mut pending =
                std::mem::replace(&mut self.overflow, std::mem::take(&mut self.spare));
            for e in pending.drain(..) {
                match self.bucket_of(e.time) {
                    Some(b) => self.buckets[b].push(e),
                    None => self.overflow.push(e),
                }
            }
            self.spare = pending;
            // The rebase put the minimum into bucket 0 by construction,
            // so the outer loop terminates on the next pass.
        }
    }

    /// Index of the `(time, seq)`-minimal entry in the cursor bucket.
    fn min_in_cursor(&self) -> usize {
        let bucket = &self.buckets[self.cursor];
        let mut best = 0;
        for (i, e) in bucket.iter().enumerate().skip(1) {
            // lint:allow(L007) best indexes the bucket being scanned; in bounds by construction
            if cmp_entries(e, &bucket[best]) == std::cmp::Ordering::Less {
                best = i;
            }
        }
        best
    }

    /// Removes and returns the ring's `(time, seq)`-minimal entry.
    fn ring_pop(&mut self) -> Option<Entry> {
        self.settle();
        if self.ring_len == 0 {
            return None;
        }
        let i = self.min_in_cursor();
        let e = self.buckets[self.cursor].swap_remove(i);
        self.ring_len -= 1;
        Some(e)
    }

    fn peek(&self) -> Option<(f64, u64)> {
        self.front.map(|e| (e.time, e.payload))
    }

    fn pop(&mut self) -> Option<(f64, u64)> {
        let e = self.front.take()?;
        self.front = self.ring_pop();
        Some((e.time, e.payload))
    }

    fn len(&self) -> usize {
        self.ring_len + usize::from(self.front.is_some())
    }

    fn clear(&mut self) {
        self.front = None;
        for b in &mut self.buckets {
            b.clear();
        }
        self.overflow.clear();
        self.spare.clear();
        self.base = 0.0;
        self.width = 1.0;
        self.cursor = 0;
        self.ring_len = 0;
        self.seq = 0;
        self.primed = false;
        self.last_insert = 0.0;
        self.gap = 0.0;
    }

    /// All resident entries in pop order, plus the next sequence number.
    fn snapshot_entries(&self) -> (Vec<(f64, u64, u64)>, u64) {
        let mut all: Vec<Entry> = self.front.into_iter().collect();
        for b in &self.buckets {
            all.extend_from_slice(b);
        }
        all.extend_from_slice(&self.overflow);
        all.sort_unstable();
        (
            all.into_iter()
                .map(|e| (e.time, e.seq, e.payload))
                .collect(),
            self.seq,
        )
    }

    /// Rebuilds the queue from [`CalendarQueue::snapshot_entries`] output.
    ///
    /// Entries keep their original sequence numbers — the generation-tagged
    /// staleness protocol the engine layers on top compares payloads, and
    /// the pop order both arms promise is a pure function of `(time, seq)`,
    /// so bucket geometry (`base`/`width`/`gap`) need not round-trip: it is
    /// re-primed by the first ring push and only affects constant factors.
    fn restore_entries(&mut self, entries: &[(f64, u64, u64)], next_seq: u64) {
        self.clear();
        for &(time, seq, payload) in entries {
            let entry = Entry { time, seq, payload };
            self.last_insert = self.last_insert.max(time);
            match self.front {
                None => self.front = Some(entry),
                Some(f) if cmp_entries(&entry, &f) == std::cmp::Ordering::Less => {
                    self.front = Some(entry);
                    self.ring_push(f);
                }
                Some(_) => self.ring_push(entry),
            }
        }
        self.seq = next_seq;
    }
}

/// The binary-heap control arm: identical contract, conventional
/// structure.
#[derive(Debug, Default)]
pub(crate) struct EventHeap {
    heap: BinaryHeap<Reverse<Entry>>,
    seq: u64,
}

impl EventHeap {
    fn insert(&mut self, time: f64, payload: u64) {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        self.heap.push(Reverse(Entry {
            time,
            seq: self.seq,
            payload,
        }));
        self.seq += 1;
    }

    fn peek(&self) -> Option<(f64, u64)> {
        self.heap.peek().map(|Reverse(e)| (e.time, e.payload))
    }

    fn pop(&mut self) -> Option<(f64, u64)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
    }

    /// All resident entries in pop order, plus the next sequence number.
    fn snapshot_entries(&self) -> (Vec<(f64, u64, u64)>, u64) {
        let mut all: Vec<Entry> = self.heap.iter().map(|Reverse(e)| *e).collect();
        all.sort_unstable();
        (
            all.into_iter()
                .map(|e| (e.time, e.seq, e.payload))
                .collect(),
            self.seq,
        )
    }

    /// Rebuilds the heap from [`EventHeap::snapshot_entries`] output,
    /// preserving original sequence numbers.
    fn restore_entries(&mut self, entries: &[(f64, u64, u64)], next_seq: u64) {
        self.clear();
        for &(time, seq, payload) in entries {
            self.heap.push(Reverse(Entry { time, seq, payload }));
        }
        self.seq = next_seq;
    }
}

/// The engine-facing future-event queue: one of the two arms above,
/// selected by [`crate::EngineConfig::with_event_queue`].
#[derive(Debug)]
pub(crate) enum EventQueue {
    /// Calendar-queue arm (default).
    Calendar(CalendarQueue),
    /// Binary-heap control arm.
    Heap(EventHeap),
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::Calendar(CalendarQueue::default())
    }
}

impl EventQueue {
    pub fn heap() -> Self {
        EventQueue::Heap(EventHeap::default())
    }

    pub fn is_heap(&self) -> bool {
        matches!(self, EventQueue::Heap(_))
    }

    /// Queues `(time, payload)`. Panics on non-finite times — the engine
    /// never schedules at `±∞`/NaN, and a silent total-order of NaN
    /// would corrupt pop order.
    pub fn insert(&mut self, time: f64, payload: u64) {
        match self {
            // lint:allow(L007) delegates to CalendarQueue::insert, itself a checked root; name-collides with the std collection sink list
            EventQueue::Calendar(q) => q.insert(time, payload),
            // lint:allow(L007) delegates to EventHeap::insert, itself a checked root; name-collides with the std collection sink list
            EventQueue::Heap(q) => q.insert(time, payload),
        }
    }

    /// The `(time, seq)`-minimal entry without removing it.
    pub fn peek(&mut self) -> Option<(f64, u64)> {
        match self {
            EventQueue::Calendar(q) => q.peek(),
            EventQueue::Heap(q) => q.peek(),
        }
    }

    /// Removes and returns the `(time, seq)`-minimal entry.
    pub fn pop(&mut self) -> Option<(f64, u64)> {
        match self {
            EventQueue::Calendar(q) => q.pop(),
            EventQueue::Heap(q) => q.pop(),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            EventQueue::Calendar(q) => q.len(),
            EventQueue::Heap(q) => q.len(),
        }
    }

    /// Empties the queue, retaining capacity (zero-allocation reuse).
    pub fn clear(&mut self) {
        match self {
            EventQueue::Calendar(q) => q.clear(),
            EventQueue::Heap(q) => q.clear(),
        }
    }

    /// All resident `(time, seq, payload)` entries in pop order plus the
    /// next insertion sequence number — everything a snapshot needs to
    /// reproduce the remaining pop sequence exactly, independent of arm.
    pub fn snapshot_entries(&self) -> (Vec<(f64, u64, u64)>, u64) {
        match self {
            EventQueue::Calendar(q) => q.snapshot_entries(),
            EventQueue::Heap(q) => q.snapshot_entries(),
        }
    }

    /// Rebuilds the queue from [`EventQueue::snapshot_entries`] output,
    /// preserving every entry's original sequence number (tie order) and
    /// the counter future inserts will draw from.
    pub fn restore_entries(&mut self, entries: &[(f64, u64, u64)], next_seq: u64) {
        match self {
            EventQueue::Calendar(q) => q.restore_entries(entries, next_seq),
            EventQueue::Heap(q) => q.restore_entries(entries, next_seq),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut EventQueue) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        out
    }

    #[test]
    fn both_arms_pop_sorted_and_agree() {
        let times = [
            5.0, 1.0, 3.0, 3.0, 2.5, 100.0, 0.5, 3.0, 64.25, 7.75, 1.0, 1e6,
        ];
        let mut cal = EventQueue::default();
        let mut heap = EventQueue::heap();
        for (i, &t) in times.iter().enumerate() {
            cal.insert(t, i as u64);
            heap.insert(t, i as u64);
        }
        let a = drain(&mut cal);
        let b = drain(&mut heap);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0), "not sorted: {a:?}");
    }

    #[test]
    fn ties_pop_fifo_by_insertion_sequence() {
        let mut cal = EventQueue::default();
        let mut heap = EventQueue::heap();
        for q in [&mut cal, &mut heap] {
            for i in 0..10u64 {
                q.insert(42.0, i);
            }
            // An interleaved earlier entry must still pop first.
            q.insert(41.0, 99);
            let order = drain(q);
            assert_eq!(order[0], (41.0, 99));
            let payloads: Vec<u64> = order[1..].iter().map(|e| e.1).collect();
            assert_eq!(payloads, (0..10).collect::<Vec<_>>(), "ties not FIFO");
        }
    }

    #[test]
    fn interleaved_pops_and_near_monotone_inserts_agree() {
        // Deterministic LCG-driven mixed workload: mostly monotone
        // inserts (the engine's pattern) with occasional slightly-late
        // ones, interleaved with pops, across rollover boundaries.
        let mut cal = EventQueue::default();
        let mut heap = EventQueue::heap();
        let mut rng: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut clock = 0.0f64;
        let mut last_pop_cal: Option<(f64, u64)> = None;
        for i in 0..4000u64 {
            let u = next();
            if u < 0.6 || cal.len() == 0 {
                // Near-monotone insert: at or slightly after the last
                // popped time, with occasional big jumps to force the
                // calendar past its horizon (overflow + rebase).
                clock += next() * if next() < 0.05 { 5_000.0 } else { 2.0 };
                let t = if next() < 0.1 {
                    // Slightly late (but ≥ last pop): exercises the
                    // cursor-bucket clamp.
                    last_pop_cal.map_or(clock, |(pt, _)| pt) + next() * 0.25
                } else {
                    clock
                };
                cal.insert(t, i);
                heap.insert(t, i);
            } else {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(a, b, "arms diverged at op {i}");
                if let Some(p) = a {
                    if let Some(prev) = last_pop_cal {
                        assert!(p.0 >= prev.0, "pop order regressed: {prev:?} then {p:?}");
                    }
                    last_pop_cal = Some(p);
                }
            }
        }
        assert_eq!(drain(&mut cal), drain(&mut heap));
    }

    #[test]
    fn rollover_across_many_rotations_preserves_order() {
        // Times spread across thousands of rotations of the initial
        // width so every pop-side rebase path runs.
        let mut cal = EventQueue::default();
        let mut heap = EventQueue::heap();
        for i in 0..500u64 {
            let t = (i as f64 * 7919.0) % 100_003.0; // decorrelated order
            cal.insert(t, i);
            heap.insert(t, i);
        }
        assert_eq!(drain(&mut cal), drain(&mut heap));
    }

    #[test]
    fn clear_retains_determinism_and_resets_sequence() {
        let mut cal = EventQueue::default();
        cal.insert(10.0, 1);
        cal.insert(20.0, 2);
        cal.clear();
        assert_eq!(cal.len(), 0);
        assert_eq!(cal.pop(), None);
        cal.insert(5.0, 7);
        cal.insert(5.0, 8);
        assert_eq!(cal.pop(), Some((5.0, 7)), "seq did not reset on clear");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_times_are_rejected() {
        EventQueue::default().insert(f64::NAN, 0);
    }

    proptest::proptest! {
        #[test]
        fn calendar_matches_heap_on_arbitrary_time_sets(
            raw in proptest::collection::vec(0u64..1_000_000, 1..200),
            scale in 1e-6f64..1e9,
        ) {
            // Times quantized from integers so exact ties occur often.
            let mut cal = EventQueue::default();
            let mut heap = EventQueue::heap();
            for (i, &r) in raw.iter().enumerate() {
                let t = (r / 7) as f64 * scale;
                cal.insert(t, i as u64);
                heap.insert(t, i as u64);
            }
            let a = drain(&mut cal);
            let b = drain(&mut heap);
            proptest::prop_assert_eq!(a, b);
        }
    }
}
