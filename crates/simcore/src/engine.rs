//! The event-driven simulation engine.
//!
//! Between events (arrival, completion, quantum expiry) the allocation is
//! constant, so each job's remaining work decreases linearly and the next
//! completion time is computed in closed form. The engine therefore
//! processes `O(arrivals + completions + quanta)` events, each costing
//! `O(n)` for the alive set — no time discretization, no drift.

use parsched_speedup::{Curve, EPS};

use crate::error::SimError;
use crate::job::{Instance, JobId, JobSpec, Time, Work};
use crate::metrics::{CompletedJob, RunMetrics, RunOutcome};
use crate::observer::{NullObserver, Observer};
use crate::policy::{AliveJob, Policy};
use crate::source::{ArrivalSource, StaticSource, SystemView};

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Number of processors `m` (may be fractional in principle; the paper
    /// uses integers).
    pub m: f64,
    /// Resource-augmentation speed factor: every rate is multiplied by this
    /// (1.0 = the paper's plain competitive-analysis setting; `1 + ε` for
    /// speed-augmentation experiments).
    pub speed: f64,
    /// Hard cap on processed events, to catch runaway quantum loops.
    pub max_events: u64,
    /// Hard cap on simulated time.
    pub max_time: Time,
}

impl EngineConfig {
    /// Default configuration for `m` processors.
    pub fn new(m: f64) -> Self {
        Self {
            m,
            speed: 1.0,
            max_events: 20_000_000,
            max_time: f64::INFINITY,
        }
    }

    /// Sets the speed-augmentation factor.
    pub fn with_speed(mut self, speed: f64) -> Self {
        self.speed = speed;
        self
    }

    /// Sets the event budget.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Sets the time horizon.
    pub fn with_max_time(mut self, max_time: Time) -> Self {
        self.max_time = max_time;
        self
    }
}

/// An owned snapshot of one alive job (used by lockstep analyses that hold
/// snapshots of two engines simultaneously).
#[derive(Debug, Clone)]
pub struct AliveSnapshot {
    /// Job id.
    pub id: JobId,
    /// Release time.
    pub release: Time,
    /// Original size.
    pub size: Work,
    /// Remaining work.
    pub remaining: Work,
    /// Speed-up curve.
    pub curve: Curve,
}

#[derive(Debug)]
struct JobRecord {
    spec: JobSpec,
    remaining: Work,
    done: bool,
}

/// The simulation engine. See the crate docs for the architecture and
/// [`simulate`] for the one-call entry point.
pub struct Engine<'a> {
    cfg: EngineConfig,
    policy: &'a mut dyn Policy,
    source: &'a mut dyn ArrivalSource,
    observer: &'a mut dyn Observer,
    jobs: Vec<JobRecord>,
    ids: std::collections::HashMap<JobId, usize>,
    /// Indices into `jobs` of unfinished, released jobs.
    alive: Vec<usize>,
    /// Allocation for `alive[i]` (valid when `alloc_fresh`).
    shares: Vec<f64>,
    /// Drain rate of `alive[i]` (speed-adjusted; valid when `alloc_fresh`).
    rates: Vec<f64>,
    now: Time,
    alloc_fresh: bool,
    quantum_deadline: Option<Time>,
    events: u64,
    finished: bool,
    // Accumulators.
    total_flow: f64,
    max_flow: f64,
    frac_flow: f64,
    alive_integral: f64,
    completed: Vec<CompletedJob>,
    emitted: Vec<JobSpec>,
}

impl<'a> Engine<'a> {
    /// Creates an engine over the given policy, arrival source, and
    /// observer. The policy is `reset()` so engines can reuse policy values.
    pub fn new(
        cfg: EngineConfig,
        policy: &'a mut dyn Policy,
        source: &'a mut dyn ArrivalSource,
        observer: &'a mut dyn Observer,
    ) -> Self {
        policy.reset();
        Self {
            cfg,
            policy,
            source,
            observer,
            jobs: Vec::new(),
            ids: std::collections::HashMap::new(),
            alive: Vec::new(),
            shares: Vec::new(),
            rates: Vec::new(),
            now: 0.0,
            alloc_fresh: false,
            quantum_deadline: None,
            events: 0,
            finished: false,
            total_flow: 0.0,
            max_flow: 0.0,
            frac_flow: 0.0,
            alive_integral: 0.0,
            completed: Vec::new(),
            emitted: Vec::new(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of unfinished released jobs `|A(t)|`.
    pub fn num_alive(&self) -> usize {
        self.alive.len()
    }

    /// Whether the run has finished (no alive jobs, source exhausted).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Remaining work of a job: `Some(0.0)` once completed, `None` if the
    /// job has not been released (emitted) yet.
    pub fn remaining_of(&self, id: JobId) -> Option<Work> {
        self.ids.get(&id).map(|&i| {
            let rec = &self.jobs[i];
            if rec.done {
                0.0
            } else {
                rec.remaining
            }
        })
    }

    /// Owned snapshots of all alive jobs (unsorted).
    pub fn alive_snapshot(&self) -> Vec<AliveSnapshot> {
        self.alive
            .iter()
            .map(|&i| {
                let rec = &self.jobs[i];
                AliveSnapshot {
                    id: rec.spec.id,
                    release: rec.spec.release,
                    size: rec.spec.size,
                    remaining: rec.remaining,
                    curve: rec.spec.curve.clone(),
                }
            })
            .collect()
    }

    /// Total unfinished work `Σ_{j ∈ A(t)} p_j(t)` (the paper's volume
    /// `V(t)`).
    pub fn total_remaining(&self) -> Work {
        self.alive.iter().map(|&i| self.jobs[i].remaining).sum()
    }

    fn snap_tolerance(size: Work) -> f64 {
        EPS * size.max(1.0)
    }

    /// Releases all arrivals due at the current time. Returns whether any
    /// arrived.
    fn admit_due_arrivals(&mut self) -> Result<bool, SimError> {
        let mut any = false;
        loop {
            match self.source.next_time() {
                Some(t) if t <= self.now + EPS * self.now.max(1.0) => {
                    let batch = {
                        let views: Vec<AliveJob<'_>> = self
                            .alive
                            .iter()
                            .map(|&i| AliveJob {
                                spec: &self.jobs[i].spec,
                                remaining: self.jobs[i].remaining,
                            })
                            .collect();
                        let view = SystemView {
                            now: self.now,
                            m: self.cfg.m,
                            alive: &views,
                        };
                        self.source.emit(&view)
                    };
                    if batch.is_empty() {
                        // An empty batch is a decision-only wakeup (used by
                        // adaptive adversaries at phase midpoints); the
                        // source must still make progress or we'd loop
                        // forever.
                        let stuck = self
                            .source
                            .next_time()
                            .is_some_and(|nt| nt <= t + EPS * t.abs().max(1.0));
                        if stuck {
                            return Err(SimError::BadInstance {
                                what: format!("source emitted nothing at its next_time {t} and did not advance"),
                            });
                        }
                        continue;
                    }
                    for spec in &batch {
                        if spec.release < self.now - EPS * self.now.max(1.0) {
                            return Err(SimError::ArrivalInPast {
                                now: self.now,
                                release: spec.release,
                            });
                        }
                        if self.ids.contains_key(&spec.id) {
                            return Err(SimError::BadInstance {
                                what: format!("duplicate job id {}", spec.id),
                            });
                        }
                        let idx = self.jobs.len();
                        self.ids.insert(spec.id, idx);
                        self.jobs.push(JobRecord {
                            spec: spec.clone(),
                            remaining: spec.size,
                            done: false,
                        });
                        self.alive.push(idx);
                        self.emitted.push(spec.clone());
                    }
                    self.observer.on_arrivals(self.now, &batch);
                    any = true;
                }
                _ => break,
            }
        }
        if any {
            self.alloc_fresh = false;
        }
        Ok(any)
    }

    /// Re-runs the policy and recomputes rates and the quantum deadline.
    fn refresh_allocation(&mut self) -> Result<(), SimError> {
        self.shares.clear();
        self.shares.resize(self.alive.len(), 0.0);
        self.rates.clear();
        self.rates.resize(self.alive.len(), 0.0);
        self.quantum_deadline = None;
        if self.alive.is_empty() {
            self.alloc_fresh = true;
            return Ok(());
        }
        let views: Vec<AliveJob<'_>> = self
            .alive
            .iter()
            .map(|&i| AliveJob {
                spec: &self.jobs[i].spec,
                remaining: self.jobs[i].remaining,
            })
            .collect();
        let quantum = self
            .policy
            .assign(self.now, self.cfg.m, &views, &mut self.shares);
        // Validate feasibility.
        let mut total = 0.0;
        for &s in &self.shares {
            if !s.is_finite() || s < -EPS {
                return Err(SimError::InvalidShare {
                    at: self.now,
                    share: s,
                    policy: self.policy.name(),
                });
            }
            total += s.max(0.0);
        }
        if total > self.cfg.m * (1.0 + 1e-9) + EPS {
            return Err(SimError::InfeasibleAllocation {
                at: self.now,
                requested: total,
                available: self.cfg.m,
                policy: self.policy.name(),
            });
        }
        for (i, &idx) in self.alive.iter().enumerate() {
            let share = self.shares[i].max(0.0);
            self.shares[i] = share;
            self.rates[i] = self.cfg.speed * self.jobs[idx].spec.curve.rate(share);
        }
        if let Some(q) = quantum {
            if q.is_finite() && q > 0.0 {
                self.quantum_deadline = Some(self.now + q);
            }
        }
        self.observer.on_allocation(self.now, &views, &self.shares);
        self.alloc_fresh = true;
        Ok(())
    }

    /// The next time at which anything happens (completion, arrival, or
    /// quantum expiry), or `None` when the run is over.
    pub fn next_event_time(&mut self) -> Result<Option<Time>, SimError> {
        if self.finished {
            return Ok(None);
        }
        // Arrivals due exactly now (including the ones at t = 0 before the
        // first step) must be admitted before deciding the allocation.
        self.admit_due_arrivals()?;
        if !self.alloc_fresh {
            self.refresh_allocation()?;
        }
        let mut next: Option<Time> = None;
        let mut consider = |t: Time| {
            if next.is_none_or(|n| t < n) {
                next = Some(t);
            }
        };
        for (i, &idx) in self.alive.iter().enumerate() {
            if self.rates[i] > 0.0 {
                consider(self.now + self.jobs[idx].remaining / self.rates[i]);
            }
        }
        if let Some(t) = self.source.next_time() {
            consider(t.max(self.now));
        }
        if let Some(t) = self.quantum_deadline {
            consider(t.max(self.now));
        }
        match next {
            Some(t) => Ok(Some(t)),
            None => {
                if self.alive.is_empty() {
                    self.finished = true;
                    Ok(None)
                } else {
                    Err(SimError::Stalled {
                        at: self.now,
                        alive: self.alive.len(),
                    })
                }
            }
        }
    }

    /// Advances the clock to `t` (which must not exceed the next event
    /// time), integrating metrics and processing completions and arrivals
    /// that fall exactly at `t`.
    pub fn advance_to(&mut self, t: Time) -> Result<(), SimError> {
        debug_assert!(t >= self.now - EPS * self.now.max(1.0), "time went backwards");
        if !self.alloc_fresh {
            self.refresh_allocation()?;
        }
        let dt = (t - self.now).max(0.0);
        if dt > 0.0 {
            self.alive_integral += self.alive.len() as f64 * dt;
            for (i, &idx) in self.alive.iter().enumerate() {
                let rec = &mut self.jobs[idx];
                let drained = self.rates[i] * dt;
                // Fractional flow: ∫ p_j(τ)/p_j dτ over [now, t], exact for
                // the linear drain.
                self.frac_flow += (rec.remaining - drained / 2.0).max(0.0) * dt / rec.spec.size;
                rec.remaining = (rec.remaining - drained).max(0.0);
            }
            self.observer.on_advance(self.now, t);
            self.now = t;
        } else {
            self.now = self.now.max(t);
        }
        // Completions at the new time.
        let mut completed_any = false;
        let mut i = 0;
        while i < self.alive.len() {
            let idx = self.alive[i];
            let rec = &mut self.jobs[idx];
            if rec.remaining <= Self::snap_tolerance(rec.spec.size) {
                rec.remaining = 0.0;
                rec.done = true;
                let cj = CompletedJob {
                    id: rec.spec.id,
                    release: rec.spec.release,
                    size: rec.spec.size,
                    completion: self.now,
                    weight: rec.spec.weight,
                };
                self.total_flow += cj.flow();
                self.max_flow = self.max_flow.max(cj.flow());
                let spec = rec.spec.clone();
                self.completed.push(cj);
                self.observer.on_completion(self.now, &spec);
                self.alive.swap_remove(i);
                completed_any = true;
            } else {
                i += 1;
            }
        }
        if completed_any {
            self.alloc_fresh = false;
        }
        // Quantum expiry forces a re-decision.
        if let Some(q) = self.quantum_deadline {
            if self.now + EPS * self.now.max(1.0) >= q {
                self.alloc_fresh = false;
            }
        }
        // Arrivals due exactly now.
        self.admit_due_arrivals()?;
        Ok(())
    }

    /// Processes one event. Returns `false` when the run is complete.
    pub fn step(&mut self) -> Result<bool, SimError> {
        let Some(t) = self.next_event_time()? else {
            return Ok(false);
        };
        if t > self.cfg.max_time {
            return Err(SimError::TimeLimit {
                limit: self.cfg.max_time,
            });
        }
        self.events += 1;
        if self.events > self.cfg.max_events {
            return Err(SimError::EventLimit {
                limit: self.cfg.max_events,
            });
        }
        self.advance_to(t)?;
        Ok(true)
    }

    /// Runs to completion and returns the outcome.
    pub fn run(mut self) -> Result<RunOutcome, SimError> {
        while self.step()? {}
        self.into_outcome()
    }

    /// Finalizes the run into a [`RunOutcome`] (all jobs must be finished).
    pub fn into_outcome(self) -> Result<RunOutcome, SimError> {
        let n = self.completed.len();
        let total_stretch: f64 = self.completed.iter().map(|c| c.stretch()).sum();
        let total_weighted_flow: f64 = self.completed.iter().map(|c| c.weighted_flow()).sum();
        let max_stretch = self
            .completed
            .iter()
            .map(|c| c.stretch())
            .fold(0.0, f64::max);
        let metrics = RunMetrics {
            total_flow: self.total_flow,
            mean_flow: if n == 0 { 0.0 } else { self.total_flow / n as f64 },
            max_flow: self.max_flow,
            fractional_flow: self.frac_flow,
            makespan: self
                .completed
                .iter()
                .map(|c| c.completion)
                .fold(0.0, f64::max),
            num_jobs: n,
            events: self.events,
            alive_integral: self.alive_integral,
            total_stretch,
            max_stretch,
            total_weighted_flow,
        };
        Ok(RunOutcome {
            metrics,
            completed: self.completed,
            instance: Instance::new(self.emitted)?,
        })
    }
}

/// Simulates `policy` on `instance` with `m` processors using default
/// engine settings.
pub fn simulate(
    instance: &Instance,
    policy: &mut dyn Policy,
    m: f64,
) -> Result<RunOutcome, SimError> {
    let mut obs = NullObserver;
    simulate_with_observer(instance, policy, m, &mut obs)
}

/// Like [`simulate`], but with a custom [`Observer`].
pub fn simulate_with_observer(
    instance: &Instance,
    policy: &mut dyn Policy,
    m: f64,
    observer: &mut dyn Observer,
) -> Result<RunOutcome, SimError> {
    let mut source = StaticSource::new(instance);
    Engine::new(EngineConfig::new(m), policy, &mut source, observer).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::EquiSplit;
    use parsched_speedup::Curve;

    fn inst(jobs: &[(f64, f64)], curve: Curve) -> Instance {
        Instance::from_sizes(jobs, curve).unwrap()
    }

    #[test]
    fn single_sequential_job_cannot_be_sped_up() {
        // One sequential job of size 5 on 8 processors: flow = 5.
        let outcome = simulate(&inst(&[(0.0, 5.0)], Curve::Sequential), &mut EquiSplit, 8.0).unwrap();
        assert!((outcome.metrics.total_flow - 5.0).abs() < 1e-9);
        assert_eq!(outcome.metrics.num_jobs, 1);
    }

    #[test]
    fn single_parallel_job_uses_all_processors() {
        let outcome =
            simulate(&inst(&[(0.0, 8.0)], Curve::FullyParallel), &mut EquiSplit, 4.0).unwrap();
        assert!((outcome.metrics.total_flow - 2.0).abs() < 1e-9);
    }

    #[test]
    fn two_power_jobs_under_equi() {
        // 2 jobs, size 4, α = 0.5, m = 4 → each at rate √2, both finish at
        // 4/√2 = 2√2; total flow = 4√2.
        let outcome =
            simulate(&inst(&[(0.0, 4.0), (0.0, 4.0)], Curve::power(0.5)), &mut EquiSplit, 4.0)
                .unwrap();
        assert!((outcome.metrics.total_flow - 4.0 * 2f64.sqrt()).abs() < 1e-9);
        assert!((outcome.metrics.makespan - 2.0 * 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn mid_run_arrival_triggers_reallocation() {
        // m=2 fully parallel. Job0 size 4 at t=0 (rate 2); job1 size 2 at t=1.
        // t∈[0,1): job0 alone, rate 2, remaining 2 at t=1.
        // t≥1: each gets 1 processor, rate 1. Job1 (rem 2) and job0 (rem 2)
        // both finish at t=3. Flows: 3 and 2 → total 5.
        let outcome = simulate(
            &inst(&[(0.0, 4.0), (1.0, 2.0)], Curve::FullyParallel),
            &mut EquiSplit,
            2.0,
        )
        .unwrap();
        assert!((outcome.metrics.total_flow - 5.0).abs() < 1e-9);
        assert_eq!(outcome.flow_of(JobId(0)), Some(3.0));
        assert_eq!(outcome.flow_of(JobId(1)), Some(2.0));
    }

    #[test]
    fn alive_integral_equals_total_flow() {
        let outcome = simulate(
            &inst(&[(0.0, 3.0), (0.5, 1.0), (2.0, 2.5)], Curve::power(0.7)),
            &mut EquiSplit,
            3.0,
        )
        .unwrap();
        assert!(
            (outcome.metrics.alive_integral - outcome.metrics.total_flow).abs() < 1e-6,
            "∫|A| = {} vs Σflow = {}",
            outcome.metrics.alive_integral,
            outcome.metrics.total_flow
        );
    }

    #[test]
    fn fractional_flow_never_exceeds_integral_flow() {
        let outcome = simulate(
            &inst(&[(0.0, 3.0), (0.5, 1.0), (2.0, 2.5)], Curve::power(0.7)),
            &mut EquiSplit,
            3.0,
        )
        .unwrap();
        assert!(outcome.metrics.fractional_flow <= outcome.metrics.total_flow + 1e-9);
        assert!(outcome.metrics.fractional_flow > 0.0);
    }

    /// A policy that allocates nothing, to exercise the stall detector.
    struct Starver;
    impl Policy for Starver {
        fn name(&self) -> String {
            "starver".into()
        }
        fn assign(&mut self, _: Time, _: f64, _: &[AliveJob<'_>], shares: &mut [f64]) -> Option<f64> {
            shares.fill(0.0);
            None
        }
    }

    #[test]
    fn starvation_is_detected() {
        let err = simulate(&inst(&[(0.0, 1.0)], Curve::Sequential), &mut Starver, 1.0).unwrap_err();
        assert!(matches!(err, SimError::Stalled { alive: 1, .. }));
    }

    /// A policy that over-allocates.
    struct GreedyHog;
    impl Policy for GreedyHog {
        fn name(&self) -> String {
            "hog".into()
        }
        fn assign(&mut self, _: Time, m: f64, _: &[AliveJob<'_>], shares: &mut [f64]) -> Option<f64> {
            shares.fill(m); // every job demands all processors
            None
        }
    }

    #[test]
    fn infeasible_allocation_is_rejected() {
        let err = simulate(
            &inst(&[(0.0, 1.0), (0.0, 1.0)], Curve::Sequential),
            &mut GreedyHog,
            2.0,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InfeasibleAllocation { .. }));
    }

    #[test]
    fn event_limit_guards_runaway_quanta() {
        struct TinyQuantum;
        impl Policy for TinyQuantum {
            fn name(&self) -> String {
                "tiny".into()
            }
            fn assign(
                &mut self,
                _: Time,
                m: f64,
                jobs: &[AliveJob<'_>],
                shares: &mut [f64],
            ) -> Option<f64> {
                let each = m / jobs.len() as f64;
                shares.fill(each);
                Some(1e-7)
            }
        }
        let instance = inst(&[(0.0, 100.0)], Curve::Sequential);
        let mut p = TinyQuantum;
        let mut source = StaticSource::new(&instance);
        let mut obs = NullObserver;
        let engine = Engine::new(
            EngineConfig::new(1.0).with_max_events(1000),
            &mut p,
            &mut source,
            &mut obs,
        );
        let err = engine.run().unwrap_err();
        assert!(matches!(err, SimError::EventLimit { limit: 1000 }));
    }

    #[test]
    fn time_limit_is_enforced() {
        let instance = inst(&[(0.0, 100.0)], Curve::Sequential);
        let mut p = EquiSplit;
        let mut source = StaticSource::new(&instance);
        let mut obs = NullObserver;
        let engine = Engine::new(
            EngineConfig::new(1.0).with_max_time(10.0),
            &mut p,
            &mut source,
            &mut obs,
        );
        let err = engine.run().unwrap_err();
        assert!(matches!(err, SimError::TimeLimit { .. }), "{err:?}");
    }

    /// A source that emits a job whose release time lies in the past.
    struct StaleSource {
        fired: bool,
    }
    impl crate::source::ArrivalSource for StaleSource {
        fn next_time(&self) -> Option<Time> {
            (!self.fired).then_some(5.0)
        }
        fn emit(&mut self, _view: &crate::source::SystemView<'_>) -> Vec<JobSpec> {
            self.fired = true;
            vec![JobSpec::new(JobId(0), 1.0, 1.0, Curve::Sequential)]
        }
    }

    #[test]
    fn stale_arrivals_are_rejected() {
        let mut p = EquiSplit;
        let mut source = StaleSource { fired: false };
        let mut obs = NullObserver;
        let err = Engine::new(EngineConfig::new(1.0), &mut p, &mut source, &mut obs)
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::ArrivalInPast { .. }), "{err:?}");
    }

    /// A source that emits the same job id twice.
    struct DuplicatingSource {
        count: usize,
    }
    impl crate::source::ArrivalSource for DuplicatingSource {
        fn next_time(&self) -> Option<Time> {
            (self.count < 2).then_some(self.count as f64)
        }
        fn emit(&mut self, view: &crate::source::SystemView<'_>) -> Vec<JobSpec> {
            self.count += 1;
            vec![JobSpec::new(JobId(7), view.now, 10.0, Curve::Sequential)]
        }
    }

    #[test]
    fn duplicate_ids_from_sources_are_rejected() {
        let mut p = EquiSplit;
        let mut source = DuplicatingSource { count: 0 };
        let mut obs = NullObserver;
        let err = Engine::new(EngineConfig::new(1.0), &mut p, &mut source, &mut obs)
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::BadInstance { .. }), "{err:?}");
    }

    /// A source that wakes up but never advances its next_time.
    struct StuckSource;
    impl crate::source::ArrivalSource for StuckSource {
        fn next_time(&self) -> Option<Time> {
            Some(1.0)
        }
        fn emit(&mut self, _view: &crate::source::SystemView<'_>) -> Vec<JobSpec> {
            Vec::new()
        }
    }

    #[test]
    fn non_advancing_empty_sources_are_rejected() {
        let mut p = EquiSplit;
        let mut source = StuckSource;
        let mut obs = NullObserver;
        let err = Engine::new(EngineConfig::new(1.0), &mut p, &mut source, &mut obs)
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::BadInstance { .. }), "{err:?}");
    }

    #[test]
    fn speed_augmentation_scales_flow() {
        let instance = inst(&[(0.0, 4.0)], Curve::FullyParallel);
        let mut p = EquiSplit;
        let mut source = StaticSource::new(&instance);
        let mut obs = NullObserver;
        let outcome = Engine::new(
            EngineConfig::new(2.0).with_speed(2.0),
            &mut p,
            &mut source,
            &mut obs,
        )
        .run()
        .unwrap();
        // Rate 2 processors × speed 2 = 4 → size-4 job finishes at t = 1.
        assert!((outcome.metrics.total_flow - 1.0).abs() < 1e-9);
    }

    #[test]
    fn outcome_instance_matches_input() {
        let instance = inst(&[(0.0, 2.0), (1.0, 3.0)], Curve::power(0.5));
        let outcome = simulate(&instance, &mut EquiSplit, 2.0).unwrap();
        assert_eq!(outcome.instance, instance);
    }

    #[test]
    fn remaining_of_tracks_lifecycle() {
        let instance = inst(&[(0.0, 2.0), (5.0, 1.0)], Curve::Sequential);
        let mut p = EquiSplit;
        let mut source = StaticSource::new(&instance);
        let mut obs = NullObserver;
        let mut engine = Engine::new(EngineConfig::new(1.0), &mut p, &mut source, &mut obs);
        // Before any event, job 1 hasn't been emitted.
        assert_eq!(engine.remaining_of(JobId(1)), None);
        let t = engine.next_event_time().unwrap().unwrap();
        assert!((t - 2.0).abs() < 1e-9); // completion of job 0
        assert_eq!(engine.remaining_of(JobId(0)), Some(2.0));
        engine.advance_to(1.0).unwrap(); // partial advance is allowed
        assert_eq!(engine.remaining_of(JobId(0)), Some(1.0));
        engine.advance_to(2.0).unwrap();
        assert_eq!(engine.remaining_of(JobId(0)), Some(0.0)); // done
        assert_eq!(engine.num_alive(), 0);
        while engine.step().unwrap() {}
        assert!(engine.is_finished());
    }

    #[test]
    fn stretch_metrics_match_hand_computation() {
        // m = 1, sequential sizes 1 and 2: completions at 1, 3.
        // Stretches: 1/1 = 1 and 3/2 = 1.5.
        let outcome = simulate(
            &inst(&[(0.0, 1.0), (0.0, 2.0)], Curve::Sequential),
            &mut crate::policy::EquiSplit,
            1.0,
        )
        .unwrap();
        // EQUI on m=1: both share 0.5 → rates 0.5; size-1 done at 2
        // (stretch 2), then size-2 with 1 left at rate 1 → done at 3
        // (stretch 1.5).
        assert!((outcome.metrics.total_stretch - 3.5).abs() < 1e-9);
        assert!((outcome.metrics.max_stretch - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_instance_finishes_immediately() {
        let instance = Instance::new(vec![]).unwrap();
        let outcome = simulate(&instance, &mut EquiSplit, 4.0).unwrap();
        assert_eq!(outcome.metrics.num_jobs, 0);
        assert_eq!(outcome.metrics.total_flow, 0.0);
    }

    #[test]
    fn simultaneous_completions_handled_in_one_event() {
        // Two identical jobs complete at the same instant.
        let outcome = simulate(
            &inst(&[(0.0, 2.0), (0.0, 2.0)], Curve::Sequential),
            &mut EquiSplit,
            2.0,
        )
        .unwrap();
        assert_eq!(outcome.metrics.num_jobs, 2);
        assert!((outcome.metrics.makespan - 2.0).abs() < 1e-9);
        assert!((outcome.metrics.total_flow - 4.0).abs() < 1e-9);
    }
}
