//! The event-driven simulation engine.
//!
//! Between events (arrival, completion, quantum expiry) the allocation is
//! constant, so each job's remaining work decreases linearly and the next
//! completion time is computed in closed form. The engine therefore
//! processes `O(arrivals + completions + quanta)` events — no time
//! discretization, no drift.
//!
//! Per-event cost depends on the policy. The *exhaustive* path rebuilds the
//! full `(jobs, shares)` view and calls [`Policy::assign`] at every event:
//! `O(n)` per event, correct for arbitrary policies. Policies that declare
//! [`AllocationStability::SrptPrefix`] — the SRPT family and EQUI — instead
//! run on the *incremental* path: the engine maintains the alive set in
//! SRPT order itself ([`crate::srpt_set`]), applies the policy's
//! `(count, share)` prefix profile directly, and advances uniform-drain
//! intervals with an `O(1)` offset bump, for `O(log n)` per event overall.
//! [`EngineConfig::with_full_reassign`] forces the exhaustive path, which
//! keeps it available as a differential oracle (see `docs/PERF.md`).
//!
//! Orthogonally to the per-event strategy, [`EngineConfig::with_streaming`]
//! bounds *memory* by the alive set instead of the total job count:
//! completed `JobRecord` slots are retired to a free list and reused by
//! later arrivals, and no per-job completion list or outcome instance is
//! materialized — aggregates accumulate in a constant-size
//! [`StreamingMetrics`] sink instead (see [`Engine::run_streaming`] /
//! [`simulate_streaming`]). Both modes route completions through the same
//! sink in the same order, so the aggregate metrics of a streaming run are
//! bit-identical to the in-memory run of the same workload.

use parsched_speedup::{Curve, PowKernel, EPS};

use crate::calendar::EventQueue;
use crate::error::SimError;
use crate::invariant::{AuditFrame, AuditLevel, Auditor, EnginePath, FinalAccounting, FrameJob};
use crate::job::{Instance, JobId, JobSpec, Time, Work};
use crate::kahan::NeumaierSum;
use crate::metrics::{CompletedJob, RunMetrics, RunOutcome};
use crate::observer::{NullObserver, Observer};
use crate::policy::{AliveJob, AllocationStability, Policy, PrefixAllocation};
use crate::snapshot::{SnapCfg, SnapInterval, SnapJob, Snapshot};
use crate::source::{ArrivalSource, StaticSource, SystemView};
use crate::srpt_set::{Placement, SrptSet};
use crate::streaming::{StreamingMetrics, StreamingOutcome};

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Number of processors `m` (may be fractional in principle; the paper
    /// uses integers).
    pub m: f64,
    /// Resource-augmentation speed factor: every rate is multiplied by this
    /// (1.0 = the paper's plain competitive-analysis setting; `1 + ε` for
    /// speed-augmentation experiments).
    pub speed: f64,
    /// Hard cap on processed events, to catch runaway quantum loops.
    pub max_events: u64,
    /// Hard cap on simulated time.
    pub max_time: Time,
    /// Forces the exhaustive `O(n)`-per-event path (full view + `assign`
    /// call at every event) even for policies whose stability would allow
    /// the incremental path. This keeps the legacy engine available as a
    /// differential oracle for the incremental one.
    pub full_reassign: bool,
    /// Runtime invariant auditing (see [`crate::invariant`]): per-event
    /// conservation-law checks at [`AuditLevel::Strict`], on a sampled
    /// subset at [`AuditLevel::Sampled`], or end-of-run identities only at
    /// [`AuditLevel::Final`]. Off by default. A violation aborts the run
    /// with [`SimError::AuditFailed`].
    pub audit: AuditLevel,
    /// Bounds resident memory by the *alive* set instead of the total job
    /// count: completed job slots are retired to a free list and reused,
    /// the id map forgets completed ids, and no completion list or outcome
    /// instance is accumulated — finalize with [`Engine::run_streaming`]
    /// (a plain [`Engine::run`] is rejected, since its `RunOutcome` is
    /// inherently O(total jobs)). Two observable semantic differences:
    /// [`Engine::remaining_of`] returns `None` (not `Some(0.0)`) once a
    /// job retires, and a duplicate of an already-*retired* id is no
    /// longer detected.
    pub streaming: bool,
    /// Benchmark control: when `false`, power-family jobs are admitted
    /// with a [`PowKernel::powf_reference`] kernel so every Γ evaluation
    /// pays the per-call `powf` cost the classified kernel replaced.
    /// `bench-snapshot` runs the same fixture both ways to compute the
    /// `kernel_speedup_n1e5` field; everything else leaves this `true`.
    pub pow_kernel: bool,
    /// Which future-event ordering structure the incremental path uses
    /// (see [`crate::calendar`]): the calendar queue tuned to
    /// near-monotone event times (default), or the conventional binary
    /// heap kept as a differential control arm. Both arms observe the
    /// same generation-tagged candidates and pop in the same
    /// `(time, insertion)` order, so runs are bit-identical across the
    /// flag — which is exactly what the queue-differential tests check.
    pub event_queue: EventQueueKind,
    /// Whether the `run*` finalizers may use the monomorphized fast event
    /// loop ([`Engine::run_loop`]): a fused dispatch loop for the
    /// incremental path with the per-event `dyn` calls, admission
    /// re-validation, and event-queue bookkeeping hoisted out, plus a
    /// per-`n` memo of the policy's prefix profile. Bit-identical to the
    /// generic `step()` loop (the differential suite pins this); `false`
    /// keeps the generic loop as the control arm, like
    /// [`EngineConfig::with_full_reassign`] does for the exhaustive path.
    pub fast_loop: bool,
    /// Runtime switch for the per-phase hot-path profiler (only
    /// meaningful when the crate is built with the `hotpath` feature;
    /// inert otherwise). When on, the event loops accumulate wall-clock
    /// nanoseconds per phase (queue/refresh/metrics/dispatch) — see
    /// [`Engine::hotpath_report`]. Leave off for headline measurements:
    /// the timestamping itself costs tens of ns per event.
    pub hotpath_profile: bool,
}

/// Selector for the engine's future-event queue arm — see
/// [`EngineConfig::event_queue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventQueueKind {
    /// Calendar-queue arm (default): amortized `O(1)` insert/pop on the
    /// near-monotone event times a forward-running clock produces.
    Calendar,
    /// Binary-heap control arm: `O(log n)` per op, kept for
    /// differential runs.
    Heap,
}

impl EngineConfig {
    /// Default configuration for `m` processors.
    pub fn new(m: f64) -> Self {
        Self {
            m,
            speed: 1.0,
            max_events: 20_000_000,
            max_time: f64::INFINITY,
            full_reassign: false,
            audit: AuditLevel::Off,
            streaming: false,
            pow_kernel: true,
            event_queue: EventQueueKind::Calendar,
            fast_loop: true,
            hotpath_profile: false,
        }
    }

    /// Enables (or disables) the memory-bounded streaming mode — see
    /// [`EngineConfig::streaming`].
    pub fn with_streaming(mut self, streaming: bool) -> Self {
        self.streaming = streaming;
        self
    }

    /// Enables runtime invariant auditing at the given level.
    pub fn with_audit(mut self, audit: AuditLevel) -> Self {
        self.audit = audit;
        self
    }

    /// Forces (or un-forces) the exhaustive per-event reassignment path.
    pub fn with_full_reassign(mut self, full_reassign: bool) -> Self {
        self.full_reassign = full_reassign;
        self
    }

    /// Sets the speed-augmentation factor.
    pub fn with_speed(mut self, speed: f64) -> Self {
        self.speed = speed;
        self
    }

    /// Sets the event budget.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Sets the time horizon.
    pub fn with_max_time(mut self, max_time: Time) -> Self {
        self.max_time = max_time;
        self
    }

    /// Enables (or, for the benchmark baseline arm, disables) the
    /// classified power kernel — see [`EngineConfig::pow_kernel`].
    pub fn with_pow_kernel(mut self, pow_kernel: bool) -> Self {
        self.pow_kernel = pow_kernel;
        self
    }

    /// Selects the future-event queue arm — see
    /// [`EngineConfig::event_queue`].
    pub fn with_event_queue(mut self, event_queue: EventQueueKind) -> Self {
        self.event_queue = event_queue;
        self
    }

    /// Enables (or, for the differential control arm, disables) the
    /// monomorphized fast event loop — see [`EngineConfig::fast_loop`].
    pub fn with_fast_loop(mut self, fast_loop: bool) -> Self {
        self.fast_loop = fast_loop;
        self
    }

    /// Enables the per-phase hot-path profiler — see
    /// [`EngineConfig::hotpath_profile`].
    pub fn with_hotpath_profile(mut self, hotpath_profile: bool) -> Self {
        self.hotpath_profile = hotpath_profile;
        self
    }
}

// Phase accounting for the hot-path profiler: wraps one phase's work and
// charges its wall-clock duration to the named `PhaseTotals` slot when the
// feature is compiled in *and* the runtime flag is armed. Compiles to the
// bare body otherwise.
#[cfg(feature = "hotpath")]
macro_rules! hp_phase {
    ($self:ident, $slot:ident, $body:expr) => {{
        if $self.cfg.hotpath_profile {
            let __hp_t0 = crate::hotpath::stamp();
            let __hp_r = $body;
            $self.hotpath.$slot += crate::hotpath::ns_since(__hp_t0);
            __hp_r
        } else {
            $body
        }
    }};
}
#[cfg(not(feature = "hotpath"))]
macro_rules! hp_phase {
    ($self:ident, $slot:ident, $body:expr) => {{
        let _ = stringify!($slot);
        $body
    }};
}

// The event queue holds only the *arrival timeline*: wakeups whose times
// come straight from the source, so they are near-monotone and are never
// re-scheduled once queued (a superseded wakeup has time ≤ now and is
// discarded from the queue front on the next peek). Interval-completion
// candidates stay in a plain field — they are recomputed by every profile
// refresh, and queueing them would only pile up stale future-time entries.

/// An owned snapshot of one alive job (used by lockstep analyses that hold
/// snapshots of two engines simultaneously).
#[derive(Debug, Clone)]
pub struct AliveSnapshot {
    /// Job id.
    pub id: JobId,
    /// Release time.
    pub release: Time,
    /// Original size.
    pub size: Work,
    /// Remaining work.
    pub remaining: Work,
    /// Speed-up curve.
    pub curve: Curve,
}

/// Kernel-class sentinel: the job's curve is outside the power-law family
/// (Amdahl, piecewise) — evaluate through `specs[idx].curve.rate`.
const CLASS_CURVE: u32 = u32::MAX;
/// Kernel-class sentinel: power-law job that arrived after the class
/// registry filled — evaluate through its own `kern[idx]` kernel.
const CLASS_UNGROUPED: u32 = u32::MAX - 1;
/// Class-registry capacity. Real workloads draw α from a handful of
/// values; past this many *distinct* exponents the marginal job falls
/// back to per-job kernels (`CLASS_UNGROUPED`), trading the grouped-rate
/// cache for an O(1) registry scan bound.
const MAX_CLASSES: usize = 64;

/// The per-job arena, struct-of-arrays. Every vector is indexed by the
/// arena slot (`IdMap` value / `SrptSet` slot idx) and grows in lockstep:
/// `admit_due_arrivals` is the single site that pushes, `finish_job` only
/// retires slots. The event loop's hot walks — `refresh_profile`'s Scan
/// recompute, the exhaustive rate sweep, the integrators — touch exactly
/// the 8-byte lanes they need (`remaining`, `run_key`, `class`) instead of
/// striding over whole `JobSpec`-sized records, so a 64-byte cache line
/// serves 8 jobs rather than one (see `docs/PERF.md` §7).
#[derive(Debug, Default)]
struct JobArena {
    /// Immutable admission specs (identity, release, size, weight, curve).
    specs: Vec<JobSpec>,
    /// Authoritative remaining work while the job is *not* in the running
    /// prefix (always authoritative on the exhaustive path).
    remaining: Vec<Work>,
    /// Offset-space SRPT key while `in_running` (incremental path only);
    /// materialized remaining work is `run_key − drain_offset`.
    run_key: Vec<f64>,
    /// Power-law evaluation kernel, classified once at admission so the
    /// per-event rate computations skip both the curve-variant dispatch
    /// and `powf` (see [`PowKernel`]). A placeholder for curves outside
    /// the power-law family (`class == CLASS_CURVE`), which keep the
    /// generic path.
    // lint:allow(L009) kern lane is reconstructed bit-identically from each curve and the pow_kernel flag on restore (snapshot.rs module docs)
    kern: Vec<PowKernel>,
    /// Kernel-class registry index, or one of the sentinels above. Jobs
    /// of one class share bit-identical kernels, so a Scan interval needs
    /// one Γ evaluation per *class*, not per job.
    class: Vec<u32>,
    /// Whether the job currently sits in the incremental running prefix.
    in_running: Vec<bool>,
    done: Vec<bool>,
    /// Kernel-class registry: one representative kernel per distinct α
    /// seen this run (same α ⇒ bit-identical kernel, since construction
    /// is deterministic in α and the reference/classified choice is
    /// per-run constant).
    classes: Vec<PowKernel>,
    /// Per-class speed-adjusted rate `speed·Γ_c(share)` for the *current*
    /// Scan interval; refilled by [`JobArena::refresh_class_rates`] on
    /// every profile refresh that classifies a Scan interval, so it is
    /// valid whenever the engine's interval is `Scan`.
    // lint:allow(L009) per-class rate cache; re-derived from the class registry on the first interval after restore
    class_rates: Vec<f64>,
}

impl JobArena {
    fn len(&self) -> usize {
        self.specs.len()
    }

    fn clear(&mut self) {
        self.specs.clear();
        self.remaining.clear();
        self.run_key.clear();
        self.kern.clear();
        self.class.clear();
        self.in_running.clear();
        self.done.clear();
        self.classes.clear();
        self.class_rates.clear();
    }

    /// Registry lookup/insert for an admitted kernel. Returns the kernel
    /// value to store in the `kern` lane (a placeholder for non-power
    /// curves) and the class id. O(|classes|) linear scan on α bits —
    /// bounded by [`MAX_CLASSES`], and in practice a handful of entries.
    fn classify(&mut self, kernel: Option<PowKernel>) -> (PowKernel, u32) {
        match kernel {
            None => (PowKernel::new(1.0), CLASS_CURVE),
            Some(k) => {
                let bits = k.alpha().to_bits();
                let class = match self
                    .classes
                    .iter()
                    .position(|c| c.alpha().to_bits() == bits)
                {
                    Some(p) => p as u32,
                    None if self.classes.len() < MAX_CLASSES => {
                        self.classes.push(k);
                        self.class_rates.push(0.0);
                        (self.classes.len() - 1) as u32
                    }
                    None => CLASS_UNGROUPED,
                };
                (k, class)
            }
        }
    }

    /// Refills the per-class rate cache for a Scan interval at `share`:
    /// one grouped Γ evaluation per distinct class
    /// ([`parsched_speedup::gamma_by_class`]) instead of one per running
    /// job. Allocation-free after warm-up (the cache vector's capacity
    /// tracks the registry).
    fn refresh_class_rates(&mut self, speed: f64, share: f64) {
        parsched_speedup::gamma_by_class(&self.classes, share, &mut self.class_rates);
        for r in &mut self.class_rates {
            *r *= speed;
        }
    }

    /// Speed-adjusted drain rate of one job in the current Scan interval,
    /// via the per-class cache. Bit-identical to
    /// `speed * self.gamma(idx, share)`: cache entries are
    /// `speed·Γ_c(share)` computed from a kernel bit-identical to the
    /// job's own. Callers must have refreshed the cache for (`speed`,
    /// `share`) — the engine does so whenever it classifies a Scan
    /// interval.
    #[inline]
    fn rate_cached(&self, idx: usize, speed: f64, share: f64) -> f64 {
        match self.class[idx] {
            CLASS_CURVE => speed * self.specs[idx].curve.rate(share),
            CLASS_UNGROUPED => speed * self.kern[idx].gamma(share),
            c => self.class_rates[c as usize],
        }
    }

    /// `Γ(share)` for one job via its cached kernel when available.
    /// Identical arithmetic to `specs[idx].curve.rate(share)` — the kernel
    /// *is* the power-law implementation — minus the per-call
    /// classification. (Cold-path scalar form; hot loops go through the
    /// per-class rate cache instead.)
    #[inline]
    fn gamma(&self, idx: usize, share: f64) -> f64 {
        if self.class[idx] == CLASS_CURVE {
            self.specs[idx].curve.rate(share)
        } else {
            self.kern[idx].gamma(share)
        }
    }
}

/// Id → arena-index map tuned for the common case of small dense ids:
/// a direct-indexed vector (`O(1)`, no hashing) with a sorted-vec fallback
/// for sparse or huge ids. Replaces the seed engine's `HashMap<JobId,
/// usize>`, whose per-event hashing showed up in arrival-heavy profiles.
#[derive(Debug, Default)]
struct IdMap {
    /// `dense[id] = index + 1`; 0 marks a vacant slot.
    dense: Vec<u32>,
    /// Sorted `(id, index + 1)` pairs for ids too large to index directly.
    sparse: Vec<(JobId, u32)>,
    /// Currently mapped ids. In streaming mode completed ids are removed,
    /// so this tracks the *alive* population, not all insertions ever.
    live: usize,
}

impl IdMap {
    fn get(&self, id: JobId) -> Option<usize> {
        if let Ok(i) = usize::try_from(id.0) {
            if let Some(&slot) = self.dense.get(i) {
                if slot != 0 {
                    return Some(slot as usize - 1);
                }
            }
        }
        self.sparse
            .binary_search_by_key(&id, |e| e.0)
            .ok()
            .map(|p| self.sparse[p].1 as usize - 1)
    }

    /// Inserts a mapping; the id must not be present (callers check first).
    fn insert(&mut self, id: JobId, idx: usize) {
        // lint:allow(L005, L007) u32 slot capacity (4.29e9 concurrently-alive jobs) is far beyond the design envelope; overflow here is unrecoverable corruption, not an input error
        let slot = u32::try_from(idx + 1).expect("more than u32::MAX jobs");
        // Direct-index ids up to a small multiple of the live count so the
        // dense table stays linear in the mapped population even for id
        // schemes with gaps; everything else goes to the sorted fallback.
        // Keying the cap off the *live* count (not insertions ever) is what
        // keeps the dense table O(peak alive) on streaming runs whose
        // sequential ids grow without bound.
        let cap = 1024 + 2 * self.live;
        self.live += 1;
        match usize::try_from(id.0) {
            Ok(i) if i < cap => {
                if i >= self.dense.len() {
                    self.dense.resize(i + 1, 0);
                }
                self.dense[i] = slot;
            }
            _ => {
                if let Err(pos) = self.sparse.binary_search_by_key(&id, |e| e.0) {
                    self.sparse.insert(pos, (id, slot));
                }
            }
        }
    }

    /// Forgets every mapping while retaining both tables' capacity (the
    /// dense table is re-grown by `insert`'s `resize`, which reuses the
    /// existing allocation).
    fn reset(&mut self) {
        self.dense.clear();
        self.sparse.clear();
        self.live = 0;
    }

    /// Drops a mapping if present (streaming-mode retirement). Increasing
    /// arrival ids land at the *end* of the sorted fallback and retire
    /// from it in roughly SRPT order, so both sides stay O(alive).
    fn remove(&mut self, id: JobId) {
        if let Ok(i) = usize::try_from(id.0) {
            if let Some(slot) = self.dense.get_mut(i) {
                if *slot != 0 {
                    *slot = 0;
                    self.live -= 1;
                    return;
                }
            }
        }
        if let Ok(pos) = self.sparse.binary_search_by_key(&id, |e| e.0) {
            self.sparse.remove(pos);
            self.live -= 1;
        }
    }
}

/// Which per-event execution strategy this run uses (fixed at creation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecMode {
    /// Full view + `Policy::assign` at every event.
    Exhaustive,
    /// SRPT-ordered alive set + prefix profile; no `assign` calls.
    Incremental,
}

/// How the current constant-allocation interval drains (incremental path).
#[derive(Debug, Clone, Copy)]
enum IntervalKind {
    /// No alive jobs.
    Idle,
    /// Every running job drains at the same `rate`; the drain offset
    /// advances in `O(1)`.
    Uniform { rate: f64 },
    /// Heterogeneous per-job rates; drained by an `O(k log k)` scan.
    Scan,
}

/// One slot of the fast loop's per-`n` allocation memo. The
/// [`PrefixAllocation`] contract makes the policy's profile a pure
/// function of `(n_alive, m)` (see [`crate::policy`]), and `m` is fixed
/// per run, so the *validated* `(count, share)` pair for each alive count
/// can be computed once and replayed — the delta-allocation refresh. The
/// slot also memoizes the uniform-interval drain rate for one kernel
/// class at this `n`: same class ⇒ bit-identical kernel ⇒ bit-identical
/// `speed·Γ_c(share)`, so replaying it is exact, not approximate.
#[derive(Debug, Clone, Copy)]
struct CachedProfile {
    /// Validated prefix count, or `u32::MAX` while the slot is empty.
    count: u32,
    /// Kernel class whose uniform rate is memoized in `rate`, or
    /// `CLASS_CURVE` (which `rate_cached`-eligible classes can never
    /// equal) while no rate is memoized.
    rate_class: u32,
    /// Validated (clamped) prefix share.
    share: f64,
    /// Memoized `speed·Γ_{rate_class}(share)`.
    rate: f64,
}

impl CachedProfile {
    const EMPTY: Self = Self {
        count: u32::MAX,
        rate_class: CLASS_CURVE,
        share: 0.0,
        rate: 0.0,
    };
}

/// The simulation engine. See the crate docs for the architecture and
/// [`simulate`] for the one-call entry point.
pub struct Engine<'a> {
    cfg: EngineConfig,
    policy: &'a mut dyn Policy,
    // lint:allow(L009) borrowed collaborator, not engine state; restore re-attaches a caller-supplied source
    source: &'a mut dyn ArrivalSource,
    // lint:allow(L009) borrowed collaborator, not engine state; restore re-attaches a caller-supplied observer
    observer: &'a mut dyn Observer,
    jobs: JobArena,
    // lint:allow(L009) id map is rebuilt from the admitted specs during restore; rendering it would duplicate the spec lane
    ids: IdMap,
    mode: ExecMode,
    /// Exhaustive path: indices into `jobs` of unfinished, released jobs.
    alive: Vec<usize>,
    /// Allocation for `alive[i]` (valid when `alloc_fresh`).
    shares: Vec<f64>,
    /// Drain rate of `alive[i]` (speed-adjusted; valid when `alloc_fresh`).
    rates: Vec<f64>,
    /// Incremental path: the alive set in SRPT order.
    srpt: SrptSet,
    /// Incremental path: the active prefix profile (valid when
    /// `alloc_fresh`).
    profile: PrefixAllocation,
    /// Incremental path: drain shape of the current interval.
    interval: IntervalKind,
    /// Fast loop only: per-`n` memo of the validated prefix profile and
    /// uniform rate, indexed by alive count (slot 0 unused). O(peak
    /// alive) — same order as the SRPT set itself.
    // lint:allow(L009) pure memo of the policy's (n, m)-pure prefix profile; a cold cache re-derives every entry bit-identically
    profile_cache: Vec<CachedProfile>,
    /// Incremental path: the interval's precomputed next completion time.
    /// Absolute, so it stays valid across partial `advance_to` calls (for
    /// `Uniform` intervals the front's `now + rem/rate` is invariant under
    /// uniform drain).
    next_completion: Option<Time>,
    /// Cached `source.next_time()`, refreshed after every emission round.
    /// `next_time` takes `&self` and the engine holds the only borrow of
    /// the source, so the value can only change when the engine itself
    /// emits — caching it turns the three-per-event virtual source calls
    /// into plain float compares.
    next_arrival: Option<Time>,
    /// Incremental path: the arrival timeline as future-event wakeups,
    /// generation-tagged for lazy discard; see [`crate::calendar`].
    equeue: EventQueue,
    /// Generation of the live arrival wakeup (bumped whenever the
    /// cached `next_arrival` is refreshed; older queue entries are
    /// stale, have times ≤ `now`, and are popped at the queue front).
    arr_gen: u64,
    /// Steps that processed a completion *and* an arrival at one
    /// timestamp — the same-timestamp coalescing the event loop performs
    /// as a first-class step (see `docs/PERF.md` §4).
    coalesced: u64,
    /// Reusable buffer for placement updates (avoids per-event allocation).
    // lint:allow(L009) transient per-event scratch, empty between events; nothing to restore
    scratch_moves: Vec<(usize, Placement)>,
    /// Reusable arrival-batch buffer (avoids per-arrival allocation).
    // lint:allow(L009) transient per-event scratch, empty between events; nothing to restore
    scratch_batch: Vec<JobSpec>,
    now: Time,
    alloc_fresh: bool,
    quantum_deadline: Option<Time>,
    events: u64,
    finished: bool,
    /// Runtime invariant auditor (present iff `cfg.audit` is not `Off`).
    auditor: Option<Auditor>,
    /// Policy name cached at construction (frames are built per event).
    policy_name: String,
    /// Whether the policy claims SRPT-ordered allocations (see
    /// [`Policy::srpt_ordered`]); gates the `srpt-prefix` audit check.
    // lint:allow(L009) capability flag re-derived from the restored policy, not persisted state
    policy_srpt_ordered: bool,
    // Accumulators. The interval integrals are compensated sums: they fold
    // in millions of tiny terms on long runs, and the flow-identity audit
    // compares them against each other at a relative tolerance that naive
    // summation drift can exceed (see `crate::kahan`).
    frac_flow: NeumaierSum,
    alive_integral: NeumaierSum,
    /// Constant-size aggregate sink; fed one `record` per completion on
    /// *both* modes, which is what makes streaming metrics bit-identical
    /// to the in-memory path.
    sink: StreamingMetrics,
    /// Per-job completion list (in-memory mode only; empty when streaming).
    completed: Vec<CompletedJob>,
    /// Retired arena slots available for reuse (streaming mode only).
    free: Vec<usize>,
    /// Total jobs admitted from the source (the arena length is not this
    /// in streaming mode, where slots are recycled).
    admitted: usize,
    /// High-water mark of the alive set.
    peak_alive: usize,
    /// Per-phase wall-clock totals (see [`crate::hotpath`]); pure
    /// diagnostics, armed by [`EngineConfig::hotpath_profile`].
    #[cfg(feature = "hotpath")]
    // lint:allow(L009) profiler diagnostics, not run state; deliberately not captured (like the audit layer)
    hotpath: crate::hotpath::PhaseTotals,
}

/// The engine's heap-backed working state, detached from any run.
///
/// An [`Engine`] borrows its policy, source, and observer, so one engine
/// value cannot outlive a workload's source — but its *buffers* (job
/// arena, id map, SRPT heaps, share/rate vectors, scratch, metric sink)
/// can. Donating the buffers of a finished run to the next engine via
/// [`Engine::with_buffers`] / [`Engine::into_buffers`] makes repeated runs
/// on one thread allocation-free at steady state after warm-up: every
/// structure is cleared with capacity retained, never dropped. This is the
/// mechanism behind the sweep pool's per-worker engine reuse (see
/// `docs/PERF.md` §6 for the lifecycle and the allocation audit).
///
/// When the source itself can rewind (see [`ArrivalSource::rewind`]),
/// [`Engine::reset`] offers the same reuse without tearing the engine
/// down.
#[derive(Debug, Default)]
pub struct EngineBuffers {
    jobs: JobArena,
    ids: IdMap,
    alive: Vec<usize>,
    shares: Vec<f64>,
    rates: Vec<f64>,
    srpt: SrptSet,
    scratch_moves: Vec<(usize, Placement)>,
    scratch_batch: Vec<JobSpec>,
    completed: Vec<CompletedJob>,
    free: Vec<usize>,
    sink: StreamingMetrics,
    equeue: EventQueue,
    profile_cache: Vec<CachedProfile>,
}

impl EngineBuffers {
    /// Fresh, empty buffers (what [`Engine::new`] starts from).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all content in place, retaining every allocation.
    fn clear(&mut self) {
        self.jobs.clear();
        self.ids.reset();
        self.alive.clear();
        self.shares.clear();
        self.rates.clear();
        self.srpt.reset();
        self.scratch_moves.clear();
        self.scratch_batch.clear();
        self.completed.clear();
        self.free.clear();
        self.sink.reset();
        self.equeue.clear();
        self.profile_cache.clear();
    }
}

/// Applies a reported [`Placement`] to the per-job lanes.
fn apply_placement(jobs: &mut JobArena, idx: usize, p: Placement) {
    match p {
        Placement::Running { key } => {
            jobs.in_running[idx] = true;
            jobs.run_key[idx] = key;
        }
        Placement::Queued { remaining } => {
            jobs.in_running[idx] = false;
            jobs.remaining[idx] = remaining;
        }
    }
}

impl<'a> Engine<'a> {
    /// Creates an engine over the given policy, arrival source, and
    /// observer. The policy is `reset()` so engines can reuse policy values.
    ///
    /// The execution path is chosen here: the incremental `O(log n)` path
    /// requires the policy to declare [`AllocationStability::SrptPrefix`],
    /// the observer to not consume the allocation stream, and
    /// [`EngineConfig::full_reassign`] to be off; otherwise the exhaustive
    /// `O(n)` path runs.
    pub fn new(
        cfg: EngineConfig,
        policy: &'a mut dyn Policy,
        source: &'a mut dyn ArrivalSource,
        observer: &'a mut dyn Observer,
    ) -> Self {
        Self::with_buffers(cfg, policy, source, observer, EngineBuffers::new())
    }

    /// Like [`Engine::new`], but reusing the buffers of a previous run
    /// instead of allocating fresh ones. The buffers are cleared here
    /// (content discarded, capacity retained), so donating dirty buffers
    /// is fine. Recover them afterwards with [`Engine::into_buffers`] or
    /// one of the `run_*_reusing` finalizers.
    pub fn with_buffers(
        cfg: EngineConfig,
        policy: &'a mut dyn Policy,
        source: &'a mut dyn ArrivalSource,
        observer: &'a mut dyn Observer,
        mut bufs: EngineBuffers,
    ) -> Self {
        bufs.clear();
        policy.reset();
        let mode = if !cfg.full_reassign
            && policy.stability() == AllocationStability::SrptPrefix
            && !observer.needs_allocation_stream()
        {
            ExecMode::Incremental
        } else {
            ExecMode::Exhaustive
        };
        let auditor = (!cfg.audit.is_off()).then(|| Auditor::new(cfg.audit));
        let policy_name = policy.name();
        let policy_srpt_ordered = policy.srpt_ordered();
        // Prime the arrival cache and, on the incremental path, seed the
        // event queue with the first arrival wakeup. Donated buffers may
        // carry the other queue arm; swap only then (the donation
        // contract assumes a stable config, so this never reallocates at
        // steady state).
        let next_arrival = source.next_time();
        let mut equeue = bufs.equeue;
        let want_heap = cfg.event_queue == EventQueueKind::Heap;
        if want_heap != equeue.is_heap() {
            equeue = if want_heap {
                EventQueue::heap()
            } else {
                EventQueue::default()
            };
        }
        if mode == ExecMode::Incremental {
            if let Some(t) = next_arrival {
                equeue.insert(t, 0);
            }
        }
        Self {
            cfg,
            policy,
            source,
            observer,
            jobs: bufs.jobs,
            ids: bufs.ids,
            mode,
            alive: bufs.alive,
            shares: bufs.shares,
            rates: bufs.rates,
            srpt: bufs.srpt,
            profile: PrefixAllocation {
                count: 0,
                share: 0.0,
            },
            interval: IntervalKind::Idle,
            profile_cache: bufs.profile_cache,
            next_completion: None,
            next_arrival,
            equeue,
            arr_gen: 0,
            coalesced: 0,
            scratch_moves: bufs.scratch_moves,
            scratch_batch: bufs.scratch_batch,
            now: 0.0,
            alloc_fresh: false,
            quantum_deadline: None,
            events: 0,
            finished: false,
            auditor,
            policy_name,
            policy_srpt_ordered,
            frac_flow: NeumaierSum::new(),
            alive_integral: NeumaierSum::new(),
            sink: bufs.sink,
            completed: bufs.completed,
            free: bufs.free,
            admitted: 0,
            peak_alive: 0,
            #[cfg(feature = "hotpath")]
            hotpath: crate::hotpath::PhaseTotals::ZERO,
        }
    }

    /// Resets the engine in place for a fresh run of the *same* policy and
    /// source, retaining every buffer — the zero-allocation repeat-run
    /// path. Requires the source to rewind (see [`ArrivalSource::rewind`]);
    /// sources that cannot replay their history make this an error rather
    /// than a silent re-run of a different workload.
    pub fn reset(&mut self) -> Result<(), SimError> {
        if !self.source.rewind() {
            return Err(SimError::BadInstance {
                what: "arrival source cannot rewind; rebuild the engine with \
                       Engine::with_buffers to reuse buffers across sources"
                    .into(),
            });
        }
        self.policy.reset();
        self.clear_run_state();
        Ok(())
    }

    /// Clears all per-run state, retaining buffer capacity.
    fn clear_run_state(&mut self) {
        self.jobs.clear();
        self.ids.reset();
        self.alive.clear();
        self.shares.clear();
        self.rates.clear();
        self.srpt.reset();
        self.profile = PrefixAllocation {
            count: 0,
            share: 0.0,
        };
        self.interval = IntervalKind::Idle;
        self.profile_cache.clear();
        self.next_completion = None;
        self.equeue.clear();
        debug_assert_eq!(self.equeue.len(), 0);
        self.arr_gen = 0;
        self.coalesced = 0;
        self.next_arrival = self.source.next_time();
        if self.mode == ExecMode::Incremental {
            if let Some(t) = self.next_arrival {
                self.equeue.insert(t, 0);
            }
        }
        self.scratch_moves.clear();
        self.scratch_batch.clear();
        self.now = 0.0;
        self.alloc_fresh = false;
        self.quantum_deadline = None;
        self.events = 0;
        self.finished = false;
        self.auditor = (!self.cfg.audit.is_off()).then(|| Auditor::new(self.cfg.audit));
        self.frac_flow = NeumaierSum::new();
        self.alive_integral = NeumaierSum::new();
        self.sink.reset();
        self.completed.clear();
        self.free.clear();
        self.admitted = 0;
        self.peak_alive = 0;
        #[cfg(feature = "hotpath")]
        {
            self.hotpath = crate::hotpath::PhaseTotals::ZERO;
        }
    }

    /// Tears the engine down to its reusable buffers (cleared, capacity
    /// retained), releasing the policy/source/observer borrows.
    pub fn into_buffers(mut self) -> EngineBuffers {
        self.clear_run_state();
        EngineBuffers {
            jobs: std::mem::take(&mut self.jobs),
            ids: std::mem::take(&mut self.ids),
            alive: std::mem::take(&mut self.alive),
            shares: std::mem::take(&mut self.shares),
            rates: std::mem::take(&mut self.rates),
            srpt: std::mem::take(&mut self.srpt),
            scratch_moves: std::mem::take(&mut self.scratch_moves),
            scratch_batch: std::mem::take(&mut self.scratch_batch),
            completed: std::mem::take(&mut self.completed),
            free: std::mem::take(&mut self.free),
            sink: std::mem::take(&mut self.sink),
            equeue: std::mem::take(&mut self.equeue),
            profile_cache: std::mem::take(&mut self.profile_cache),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Whether this engine runs the incremental `O(log n)`-per-event path
    /// (as opposed to the exhaustive per-event reassignment path).
    pub fn uses_incremental_path(&self) -> bool {
        self.mode == ExecMode::Incremental
    }

    /// Number of unfinished released jobs `|A(t)|`.
    pub fn num_alive(&self) -> usize {
        match self.mode {
            ExecMode::Exhaustive => self.alive.len(),
            ExecMode::Incremental => self.srpt.len(),
        }
    }

    /// Whether the run has finished (no alive jobs, source exhausted).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Steps that processed a completion *and* an arrival at a single
    /// timestamp (same-timestamp coalescing): the step count stays one
    /// event short of `completions + arrivals` for each of these. The
    /// canonical case is Parallel-SRPT on a saturating release schedule,
    /// where every completion coincides with the next release (see
    /// `docs/PERF.md` §4).
    pub fn coalesced_steps(&self) -> u64 {
        self.coalesced
    }

    /// The hot-path profiler's accumulated per-phase totals (only under
    /// the `hotpath` feature; all-zero unless
    /// [`EngineConfig::hotpath_profile`] was armed). Read before
    /// finalizing — the finalizers consume the engine.
    #[cfg(feature = "hotpath")]
    pub fn hotpath_totals(&self) -> crate::hotpath::PhaseTotals {
        self.hotpath
    }

    /// Remaining work of a job: `Some(0.0)` once completed, `None` if the
    /// job has not been released (emitted) yet. In streaming mode a
    /// completed job's slot is retired, so `None` is also returned after
    /// completion (there is no per-job record to consult).
    pub fn remaining_of(&self, id: JobId) -> Option<Work> {
        self.ids.get(id).map(|i| {
            if self.jobs.done[i] {
                0.0
            } else if self.jobs.in_running[i] {
                (self.jobs.run_key[i] - self.srpt.drain_offset()).max(0.0)
            } else {
                self.jobs.remaining[i]
            }
        })
    }

    /// Owned snapshots of all alive jobs (in no contractual order).
    pub fn alive_snapshot(&self) -> Vec<AliveSnapshot> {
        let snap = |i: usize, remaining: Work| {
            let spec = &self.jobs.specs[i];
            AliveSnapshot {
                id: spec.id,
                release: spec.release,
                size: spec.size,
                remaining,
                curve: spec.curve.clone(),
            }
        };
        match self.mode {
            ExecMode::Exhaustive => self
                .alive
                .iter()
                .map(|&i| snap(i, self.jobs.remaining[i]))
                .collect(),
            ExecMode::Incremental => self
                .srpt
                .iter_alive()
                .map(|(i, remaining)| snap(i, remaining))
                .collect(),
        }
    }

    /// Total unfinished work `Σ_{j ∈ A(t)} p_j(t)` (the paper's volume
    /// `V(t)`). `O(1)` on the incremental path.
    pub fn total_remaining(&self) -> Work {
        match self.mode {
            ExecMode::Exhaustive => {
                NeumaierSum::total(self.alive.iter().map(|&i| self.jobs.remaining[i]))
            }
            ExecMode::Incremental => self.srpt.total_remaining(),
        }
    }

    /// Captures the engine's complete run state at the current event
    /// boundary as a [`Snapshot`]. Valid between [`Engine::step`] calls
    /// (including before the first and after the last); resuming via
    /// [`Engine::restore`] replays the remaining trajectory bit-for-bit —
    /// same completion order, same low-order float bits in every metric.
    ///
    /// Requires auditing off: audit state is a debugging aid, not run
    /// state, and is deliberately not captured.
    pub fn snapshot(&self) -> Result<Snapshot, SimError> {
        if self.auditor.is_some() {
            return Err(SimError::BadInstance {
                what: "snapshot requires AuditLevel::Off (audit state is not captured)".into(),
            });
        }
        let jobs = (0..self.jobs.len())
            .map(|i| SnapJob {
                spec: self.jobs.specs[i].clone(),
                remaining: self.jobs.remaining[i],
                run_key: self.jobs.run_key[i],
                class: self.jobs.class[i],
                in_running: self.jobs.in_running[i],
                done: self.jobs.done[i],
            })
            .collect();
        let (equeue_entries, equeue_next_seq) = self.equeue.snapshot_entries();
        Ok(Snapshot {
            cfg: SnapCfg {
                m: self.cfg.m,
                speed: self.cfg.speed,
                full_reassign: self.cfg.full_reassign,
                streaming: self.cfg.streaming,
                pow_kernel: self.cfg.pow_kernel,
                heap_queue: self.cfg.event_queue == EventQueueKind::Heap,
            },
            policy_name: self.policy_name.clone(),
            policy_state: self.policy.snapshot_state(),
            incremental: self.mode == ExecMode::Incremental,
            now: self.now,
            events: self.events,
            coalesced: self.coalesced,
            arr_gen: self.arr_gen,
            finished: self.finished,
            alloc_fresh: self.alloc_fresh,
            quantum_deadline: self.quantum_deadline,
            next_completion: self.next_completion,
            next_arrival: self.next_arrival,
            profile_count: self.profile.count,
            profile_share: self.profile.share,
            interval: match self.interval {
                IntervalKind::Idle => SnapInterval::Idle,
                IntervalKind::Uniform { rate } => SnapInterval::Uniform { rate },
                IntervalKind::Scan => SnapInterval::Scan,
            },
            frac_flow: self.frac_flow.parts(),
            alive_integral: self.alive_integral.parts(),
            admitted: self.admitted,
            peak_alive: self.peak_alive,
            sink: self.sink.snapshot_state(),
            jobs,
            class_alpha_bits: self
                .jobs
                .classes
                .iter()
                .map(|k| k.alpha().to_bits())
                .collect(),
            free: self.free.clone(),
            alive: self.alive.clone(),
            shares: self.shares.clone(),
            rates: self.rates.clone(),
            srpt: self.srpt.snapshot_state(),
            completed: self.completed.clone(),
            equeue_entries,
            equeue_next_seq,
        })
    }

    /// Rebuilds the engine's run state from a [`Snapshot`], so subsequent
    /// [`Engine::step`] calls continue the captured run bit-identically.
    ///
    /// The engine must have been constructed over the *same scenario*: a
    /// config whose semantic knobs (`m`, `speed`, paths, modes, queue arm)
    /// match the snapshot's, a policy with the same name, auditing off,
    /// and an arrival source that can [`ArrivalSource::fast_forward`] to
    /// the snapshot's admission count and then agrees on the next arrival
    /// time — anything else is a different trajectory, not a resume, and
    /// is refused.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SimError> {
        let bad = |what: String| SimError::BadInstance { what };
        if self.auditor.is_some() {
            return Err(bad(
                "restore requires AuditLevel::Off (audit state is not captured)".into(),
            ));
        }
        let have = SnapCfg {
            m: self.cfg.m,
            speed: self.cfg.speed,
            full_reassign: self.cfg.full_reassign,
            streaming: self.cfg.streaming,
            pow_kernel: self.cfg.pow_kernel,
            heap_queue: self.cfg.event_queue == EventQueueKind::Heap,
        };
        if have.m.to_bits() != snap.cfg.m.to_bits()
            || have.speed.to_bits() != snap.cfg.speed.to_bits()
            || have.full_reassign != snap.cfg.full_reassign
            || have.streaming != snap.cfg.streaming
            || have.pow_kernel != snap.cfg.pow_kernel
            || have.heap_queue != snap.cfg.heap_queue
        {
            return Err(bad(format!(
                "restore config mismatch: engine {have:?} vs snapshot {:?}",
                snap.cfg
            )));
        }
        if (self.mode == ExecMode::Incremental) != snap.incremental {
            return Err(bad(format!(
                "restore path mismatch: engine is {:?} but the snapshot was taken on the {} path \
                 (policy stability and observer must match the original run)",
                self.mode,
                if snap.incremental {
                    "incremental"
                } else {
                    "exhaustive"
                },
            )));
        }
        if self.policy_name != snap.policy_name {
            return Err(bad(format!(
                "restore policy mismatch: engine runs '{}', snapshot was taken under '{}'",
                self.policy_name, snap.policy_name
            )));
        }
        // Structural validation up front, so a corrupt document errors
        // instead of corrupting lanes mid-rebuild.
        let n = snap.jobs.len();
        let valid_class = |c: u32| {
            c == CLASS_CURVE || c == CLASS_UNGROUPED || (c as usize) < snap.class_alpha_bits.len()
        };
        if let Some(j) = snap.jobs.iter().find(|j| !valid_class(j.class)) {
            return Err(bad(format!(
                "snapshot job {} references unknown kernel class {}",
                j.spec.id, j.class
            )));
        }
        if snap.class_alpha_bits.len() > MAX_CLASSES {
            return Err(bad(format!(
                "snapshot carries {} kernel classes (registry capacity {MAX_CLASSES})",
                snap.class_alpha_bits.len()
            )));
        }
        if let Some(&bits) = snap
            .class_alpha_bits
            .iter()
            .find(|&&b| !(0.0..=1.0).contains(&f64::from_bits(b)))
        {
            return Err(bad(format!(
                "snapshot kernel class α = {} outside [0, 1]",
                f64::from_bits(bits)
            )));
        }
        // The share/rate lanes track `alive` only while the allocation is
        // fresh; after an admission they lag until the next lazy
        // `refresh_allocation` (which clears and resizes them), so a
        // stale-allocation snapshot may legitimately carry shorter lanes.
        if snap.shares.len() != snap.rates.len() {
            return Err(bad("snapshot share/rate lanes disagree in length".into()));
        }
        if snap.alloc_fresh && !snap.incremental && snap.shares.len() != snap.alive.len() {
            return Err(bad(
                "fresh-allocation snapshot share lane disagrees with alive set".into(),
            ));
        }
        if let Some(&idx) = snap
            .alive
            .iter()
            .chain(snap.free.iter())
            .chain(snap.srpt.running.iter().map(|e| &e.idx))
            .chain(snap.srpt.queued.iter().map(|e| &e.idx))
            .find(|&&idx| idx >= n)
        {
            return Err(bad(format!(
                "snapshot references arena slot {idx} (arena holds {n})"
            )));
        }
        if !self.source.fast_forward(snap.admitted) {
            return Err(bad(format!(
                "arrival source cannot fast-forward to {} admitted jobs; restore needs a \
                 replayable source positioned at the suspend point",
                snap.admitted
            )));
        }
        self.policy.reset();
        if !self.policy.restore_state(&snap.policy_state) {
            return Err(bad(format!(
                "policy '{}' rejected its captured state ({} words)",
                self.policy_name,
                snap.policy_state.len()
            )));
        }
        self.clear_run_state();
        // `clear_run_state` refreshed `next_arrival` from the
        // fast-forwarded source; it must agree with the capture bit-for-bit
        // or the source replays a different stream than the original run.
        let arrivals_agree = match (self.next_arrival, snap.next_arrival) {
            (None, None) => true,
            (Some(a), Some(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        };
        if !arrivals_agree {
            return Err(bad(format!(
                "arrival stream diverged at restore: source offers {:?}, snapshot expects {:?}",
                self.next_arrival, snap.next_arrival
            )));
        }
        // Arena lanes. The kernel lane is reconstructed from each curve
        // plus the per-run kernel flavour; this is bit-identical to the
        // admission-time kernels because construction is deterministic in α
        // (see the `JobArena::classes` invariant). The registry itself is
        // rebuilt from the captured α bit patterns in first-seen order —
        // replaying admissions cannot recover it under streaming slot
        // recycling, where retired slots may have carried classes no
        // resident job mentions.
        for j in &snap.jobs {
            let kernel = if self.cfg.pow_kernel {
                j.spec.curve.kernel()
            } else {
                j.spec.curve.alpha().map(PowKernel::powf_reference)
            };
            self.jobs
                .kern
                .push(kernel.unwrap_or_else(|| PowKernel::new(1.0)));
            self.jobs.specs.push(j.spec.clone());
            self.jobs.remaining.push(j.remaining);
            self.jobs.run_key.push(j.run_key);
            self.jobs.class.push(j.class);
            self.jobs.in_running.push(j.in_running);
            self.jobs.done.push(j.done);
        }
        for &bits in &snap.class_alpha_bits {
            let alpha = f64::from_bits(bits);
            let k = if self.cfg.pow_kernel {
                PowKernel::new(alpha)
            } else {
                PowKernel::powf_reference(alpha)
            };
            self.jobs.classes.push(k);
            self.jobs.class_rates.push(0.0);
        }
        // Id map: every resident slot except (in streaming mode) retired
        // ones, whose ids were forgotten by the original run too. Dense
        // vs. sparse placement may differ from the original insertion
        // history — that is a lookup-performance detail, not observable
        // state.
        for (idx, j) in snap.jobs.iter().enumerate() {
            if self.cfg.streaming && j.done {
                continue;
            }
            if self.ids.get(j.spec.id).is_some() {
                return Err(bad(format!("snapshot duplicates job id {}", j.spec.id)));
            }
            self.ids.insert(j.spec.id, idx);
        }
        self.free.extend_from_slice(&snap.free);
        self.alive.extend_from_slice(&snap.alive);
        self.shares.extend_from_slice(&snap.shares);
        self.rates.extend_from_slice(&snap.rates);
        self.srpt.restore_state(&snap.srpt);
        self.equeue
            .restore_entries(&snap.equeue_entries, snap.equeue_next_seq);
        self.profile = PrefixAllocation {
            count: snap.profile_count,
            share: snap.profile_share,
        };
        self.interval = match snap.interval {
            SnapInterval::Idle => IntervalKind::Idle,
            SnapInterval::Uniform { rate } => IntervalKind::Uniform { rate },
            SnapInterval::Scan => IntervalKind::Scan,
        };
        self.next_completion = snap.next_completion;
        self.arr_gen = snap.arr_gen;
        self.coalesced = snap.coalesced;
        self.now = snap.now;
        self.alloc_fresh = snap.alloc_fresh;
        self.quantum_deadline = snap.quantum_deadline;
        self.events = snap.events;
        self.finished = snap.finished;
        self.frac_flow = NeumaierSum::from_parts(snap.frac_flow.0, snap.frac_flow.1);
        self.alive_integral = NeumaierSum::from_parts(snap.alive_integral.0, snap.alive_integral.1);
        if !self.sink.restore_state(&snap.sink) {
            return Err(bad(
                "snapshot sketch bucket array has the wrong length".into()
            ));
        }
        self.completed.extend(snap.completed.iter().cloned());
        self.admitted = snap.admitted;
        self.peak_alive = snap.peak_alive;
        // The per-class rate cache is only contractually valid while the
        // interval is Scan; refill it for exactly that case (same call
        // site semantics as the profile refresh that classified it).
        if matches!(self.interval, IntervalKind::Scan) {
            self.jobs
                .refresh_class_rates(self.cfg.speed, self.profile.share);
        }
        Ok(())
    }

    fn snap_tolerance(size: Work) -> f64 {
        EPS * size.max(1.0)
    }

    /// Completion tolerance for a job that was draining at `rate` with the
    /// clock at `now`: the size-relative snap, widened by the largest work
    /// sliver whose drain time sits below the clock's float resolution.
    /// Such a sliver can never advance the clock (`now + rem/rate == now`
    /// in f64), so without this term the event loop would spin on
    /// zero-length events once `now` grows past ~`EPS / ulp` ≈ 4·10⁶ —
    /// multi-million-job streaming runs reach that within the first few
    /// million completions.
    fn completion_tolerance(size: Work, rate: f64, now: Time) -> f64 {
        let clock_ulp = now.abs().max(1.0) * f64::EPSILON;
        Self::snap_tolerance(size).max(rate * 4.0 * clock_ulp)
    }
    /// Releases all arrivals due at the current time. Returns whether any
    /// arrived.
    ///
    /// Specs are validated, announced to the observer, then *moved* into
    /// the job arena — the seed engine cloned each spec twice here, which
    /// dominated arrival cost for jobs with piecewise curves.
    fn admit_due_arrivals(&mut self) -> Result<bool, SimError> {
        self.admit_core::<true, true, true, true>()
    }

    /// Admission core, monomorphized per caller (see [`Engine::run_loop`]):
    /// `VALIDATE` gates the per-spec invariant checks (elided when the
    /// source [`ArrivalSource::pre_validated`]s its stream), `NOTIFY` the
    /// observer announcement (elided when [`Observer::is_noop`]), `EQUEUE`
    /// the event-queue bookkeeping (elided by the fast loop, which reads
    /// the cached `next_arrival` directly and never touches the queue),
    /// and `PHOOKS` the [`Policy::on_arrival`] notification (elided when
    /// [`Policy::event_hooks_are_noop`]). The `<true, true, true, true>`
    /// instantiation *is* the generic engine's admission path, unchanged.
    fn admit_core<
        const VALIDATE: bool,
        const NOTIFY: bool,
        const EQUEUE: bool,
        const PHOOKS: bool,
    >(
        &mut self,
    ) -> Result<bool, SimError> {
        let mut any = false;
        let mut rounds = 0u32;
        while let Some(t) = self.next_arrival {
            if t > self.now + crate::source::arrival_tolerance(self.now) {
                break;
            }
            rounds += 1;
            let mut batch = std::mem::take(&mut self.scratch_batch);
            batch.clear();
            {
                // Adaptive sources get the full alive view; replay sources
                // declare they don't read it, which keeps arrivals O(batch)
                // on the incremental path (and allocation-free via the
                // reused batch buffer).
                let views: Vec<AliveJob<'_>> = if self.source.needs_system_view() {
                    match self.mode {
                        ExecMode::Exhaustive => self
                            .alive
                            .iter()
                            .map(|&i| AliveJob {
                                spec: &self.jobs.specs[i],
                                remaining: self.jobs.remaining[i],
                            })
                            // lint:allow(L007) system-view materialization for view-needing adaptive sources; the audited StaticSource arm skips it entirely
                            .collect(),
                        ExecMode::Incremental => self
                            .srpt
                            .iter_alive()
                            .map(|(i, remaining)| AliveJob {
                                spec: &self.jobs.specs[i],
                                remaining,
                            })
                            // lint:allow(L007) system-view materialization for view-needing adaptive sources; the audited StaticSource arm skips it entirely
                            .collect(),
                    }
                } else {
                    Vec::new()
                };
                let view = SystemView {
                    now: self.now,
                    m: self.cfg.m,
                    alive: &views,
                };
                self.source.emit_into(&view, &mut batch);
            }
            // The emission is the only thing that can move the source's
            // clock; refresh the cache once per round, not per query.
            self.next_arrival = self.source.next_time();
            if batch.is_empty() {
                self.scratch_batch = batch;
                // An empty batch is a decision-only wakeup (used by
                // adaptive adversaries at phase midpoints); the
                // source must still make progress or we'd loop
                // forever.
                let stuck = self
                    .next_arrival
                    .is_some_and(|nt| nt <= t + EPS * t.abs().max(1.0));
                if stuck {
                    return Err(SimError::BadInstance {
                        // lint:allow(L007) error construction: a failed admission validation terminates the run
                        what: format!(
                            "source emitted nothing at its next_time {t} and did not advance"
                        ),
                    });
                }
                continue;
            }
            // Validate up front, mirroring `Instance::new`'s invariants —
            // admission is the single validation point, which lets the
            // outcome instance be rebuilt without a second O(n) pass.
            // (Skipped when the source pre-validates: its specs already
            // satisfy exactly these invariants, so the checks cannot fire.)
            for (i, spec) in batch.iter().enumerate().filter(|_| VALIDATE) {
                if !spec.release.is_finite() || spec.release < 0.0 {
                    return Err(SimError::BadInstance {
                        // lint:allow(L007) error construction: a failed admission validation terminates the run
                        what: format!("job {} has invalid release {}", spec.id, spec.release),
                    });
                }
                if spec.release < self.now - EPS * self.now.max(1.0) {
                    return Err(SimError::ArrivalInPast {
                        now: self.now,
                        release: spec.release,
                    });
                }
                if !spec.size.is_finite() || spec.size <= 0.0 {
                    return Err(SimError::BadInstance {
                        // lint:allow(L007) error construction: a failed admission validation terminates the run
                        what: format!("job {} has invalid size {}", spec.id, spec.size),
                    });
                }
                if !spec.weight.is_finite() || spec.weight <= 0.0 {
                    return Err(SimError::BadInstance {
                        // lint:allow(L007) error construction: a failed admission validation terminates the run
                        what: format!("job {} has invalid weight {}", spec.id, spec.weight),
                    });
                }
                if spec.curve.validate().is_err() {
                    return Err(SimError::BadInstance {
                        // lint:allow(L007) error construction: a failed admission validation terminates the run
                        what: format!("job {} has invalid curve {:?}", spec.id, spec.curve),
                    });
                }
                // lint:allow(L007) range slice bounded by the enumeration index i < batch.len()
                if self.ids.get(spec.id).is_some() || batch[..i].iter().any(|s| s.id == spec.id) {
                    return Err(SimError::BadInstance {
                        // lint:allow(L007) error construction: a failed admission validation terminates the run
                        what: format!("duplicate job id {}", spec.id),
                    });
                }
            }
            if NOTIFY {
                self.observer.on_arrivals(self.now, &batch);
            }
            for spec in batch.drain(..) {
                // Streaming mode recycles retired slots so the arena stays
                // O(peak alive). The arena index is *not* part of any
                // ordering key (SRPT orders by `(remaining, release, id)`),
                // so slot reuse cannot perturb the arithmetic relative to
                // an ever-growing arena.
                let idx = self.free.pop().unwrap_or(self.jobs.len());
                self.ids.insert(spec.id, idx);
                self.admitted += 1;
                let remaining = spec.size;
                let kernel = if self.cfg.pow_kernel {
                    spec.curve.kernel()
                } else {
                    spec.curve.alpha().map(PowKernel::powf_reference)
                };
                let (kern, class) = self.jobs.classify(kernel);
                let (run_key, in_running) = match self.mode {
                    ExecMode::Exhaustive => {
                        self.alive.push(idx);
                        (0.0, false)
                    }
                    ExecMode::Incremental => match self.srpt.insert(idx, &spec, remaining) {
                        Placement::Running { key } => (key, true),
                        Placement::Queued { .. } => (0.0, false),
                    },
                };
                if idx == self.jobs.len() {
                    self.jobs.specs.push(spec);
                    self.jobs.remaining.push(remaining);
                    self.jobs.run_key.push(run_key);
                    self.jobs.kern.push(kern);
                    self.jobs.class.push(class);
                    self.jobs.in_running.push(in_running);
                    self.jobs.done.push(false);
                } else {
                    self.jobs.specs[idx] = spec;
                    self.jobs.remaining[idx] = remaining;
                    self.jobs.run_key[idx] = run_key;
                    self.jobs.kern[idx] = kern;
                    self.jobs.class[idx] = class;
                    self.jobs.in_running[idx] = in_running;
                    self.jobs.done[idx] = false;
                }
            }
            self.scratch_batch = batch;
            if PHOOKS {
                self.policy.on_arrival(self.now, self.num_alive());
            }
            self.peak_alive = self.peak_alive.max(self.num_alive());
            any = true;
        }
        if rounds > 0 {
            // The cached next-arrival moved: retag the live arrival
            // candidate and queue the new wakeup (older entries go
            // stale and are lazily discarded at the queue front).
            self.arr_gen += 1;
            if EQUEUE && self.mode == ExecMode::Incremental {
                // The superseded wakeup is the queue minimum (its time
                // was just admitted, hence ≤ now): retire it eagerly so
                // the queue holds exactly the live arrival timeline. The
                // generation tags and the lazy discard in
                // `next_event_time` remain as a safety net, but after
                // this pop they never fire on the steady-state path.
                let _ = self.equeue.pop();
                if let Some(t) = self.next_arrival {
                    self.equeue.insert(t, self.arr_gen);
                }
            }
        }
        if any {
            self.alloc_fresh = false;
        }
        Ok(any)
    }

    /// Revalidates the allocation for the interval starting now, whichever
    /// path is active.
    fn ensure_fresh(&mut self) -> Result<(), SimError> {
        match self.mode {
            ExecMode::Exhaustive => self.refresh_allocation(),
            ExecMode::Incremental => self.refresh_profile(),
        }
    }

    /// Incremental-path allocation refresh: queries the policy's prefix
    /// profile, rebalances the running/queued partition, and classifies the
    /// upcoming interval's drain shape. `O(log n)` plus `O(moved)` for the
    /// partition moves (amortized `O(1)` moves per event for the θ = 1
    /// family; threshold crossings can move a batch, which the rebalance
    /// handles in bulk).
    fn refresh_profile(&mut self) -> Result<(), SimError> {
        self.quantum_deadline = None;
        self.next_completion = None;
        let n = self.srpt.len();
        if n == 0 {
            self.interval = IntervalKind::Idle;
            self.alloc_fresh = true;
            return Ok(());
        }
        let Some(profile) = self.policy.prefix_allocation(n, self.cfg.m) else {
            return Err(SimError::BadInstance {
                // lint:allow(L007) error construction: an infeasible profile terminates the run
                what: format!(
                    "policy {} declares SrptPrefix stability but returned no prefix profile for n = {n}",
                    self.policy.name()
                ),
            });
        };
        // Mirror the exhaustive path's feasibility checks (same error
        // taxonomy, O(1) instead of O(n)).
        if !profile.share.is_finite() || profile.share < -EPS {
            return Err(SimError::InvalidShare {
                at: self.now,
                share: profile.share,
                policy: self.policy.name(),
            });
        }
        let count = profile.count.clamp(1, n);
        let share = profile.share.max(0.0);
        let total = count as f64 * share;
        if total > self.cfg.m * (1.0 + 1e-9) + EPS {
            return Err(SimError::InfeasibleAllocation {
                at: self.now,
                requested: total,
                available: self.cfg.m,
                policy: self.policy.name(),
            });
        }
        self.profile = PrefixAllocation { count, share };
        let jobs = &mut self.jobs;
        self.srpt
            .maybe_rebase(|idx, p| apply_placement(jobs, idx, p));
        self.srpt
            .rebalance(count, |idx, p| apply_placement(jobs, idx, p));
        // Classify the interval. Uniform (O(1) drain) whenever every
        // running job provably drains at one common rate: a single runner,
        // identical curves, or share 1 with Γ(1) = 1 across the prefix.
        let share_is_unit = (share - 1.0).abs() <= 1e-12;
        let unit_rate = share_is_unit && self.srpt.unit_rate_at_one();
        let uniform = self.srpt.running_len() <= 1 || self.srpt.uniform_curves() || unit_rate;
        if uniform {
            let rate = match self.srpt.front_running() {
                // Γ(1) = 1 across the prefix ⇒ rate is the bare speed; skip
                // the (powf-backed) curve evaluation in the overload steady
                // state.
                Some((slot, rem)) => {
                    let rate = if unit_rate {
                        self.cfg.speed
                    } else {
                        self.cfg.speed * self.jobs.gamma(slot.idx, share)
                    };
                    if rate > 0.0 {
                        // Invariant under uniform drain, so it doubles as
                        // the completion candidate for this interval.
                        self.next_completion = Some(self.now + rem / rate);
                    }
                    rate
                }
                None => 0.0,
            };
            self.interval = IntervalKind::Uniform { rate };
        } else {
            // Scan interval: one Γ evaluation per kernel *class*, then a
            // contiguous walk over the prefix through the per-class rate
            // cache (no per-job pointer chase, no per-job powf).
            self.jobs.refresh_class_rates(self.cfg.speed, share);
            let mut next: Option<Time> = None;
            let jobs = &self.jobs;
            let now = self.now;
            let speed = self.cfg.speed;
            self.srpt.for_each_running_ordered(|slot, rem| {
                let rate = jobs.rate_cached(slot.idx, speed, share);
                if rate > 0.0 {
                    let t = now + rem / rate;
                    if next.is_none_or(|n| t < n) {
                        next = Some(t);
                    }
                }
            });
            self.interval = IntervalKind::Scan;
            self.next_completion = next;
        }
        self.alloc_fresh = true;
        Ok(())
    }

    /// Delta-allocation refresh for the fast loop: like
    /// [`Engine::refresh_profile`], but the validated `(count, share)`
    /// pair is replayed from the per-`n` memo instead of re-querying the
    /// policy through `dyn` dispatch and re-validating the answer on
    /// every event. The [`PrefixAllocation`] contract makes the profile a
    /// pure function of `(n_alive, m)` with `m` fixed per run, and the
    /// clamping/feasibility pipeline applied to it is deterministic, so
    /// caching the *validated* result is exact — a memo miss (first time
    /// this alive count is seen) runs the full query + validation and
    /// fills the slot. Uniform-interval rates are likewise memoized per
    /// `(n, kernel class)`: same class ⇒ bit-identical kernel ⇒
    /// bit-identical `speed·Γ_c(share)`. Everything downstream of the
    /// profile (rebase, rebalance, interval classification, next
    /// completion) is the same arithmetic in the same order as
    /// [`Engine::refresh_profile`].
    #[inline]
    fn refresh_profile_fast(&mut self) -> Result<(), SimError> {
        self.quantum_deadline = None;
        self.next_completion = None;
        let n = self.srpt.len();
        if n == 0 {
            self.interval = IntervalKind::Idle;
            self.alloc_fresh = true;
            return Ok(());
        }
        if self.profile_cache.len() <= n {
            self.profile_cache.resize(n + 1, CachedProfile::EMPTY);
        }
        let memo = self.profile_cache[n];
        let (count, share) = if memo.count != u32::MAX {
            (memo.count as usize, memo.share)
        } else {
            let Some(profile) = self.policy.prefix_allocation(n, self.cfg.m) else {
                return Err(SimError::BadInstance {
                    // lint:allow(L007) error construction: an infeasible profile terminates the run
                    what: format!(
                        "policy {} declares SrptPrefix stability but returned no prefix profile for n = {n}",
                        self.policy.name()
                    ),
                });
            };
            if !profile.share.is_finite() || profile.share < -EPS {
                return Err(SimError::InvalidShare {
                    at: self.now,
                    share: profile.share,
                    policy: self.policy.name(),
                });
            }
            let count = profile.count.clamp(1, n);
            let share = profile.share.max(0.0);
            let total = count as f64 * share;
            if total > self.cfg.m * (1.0 + 1e-9) + EPS {
                return Err(SimError::InfeasibleAllocation {
                    at: self.now,
                    requested: total,
                    available: self.cfg.m,
                    policy: self.policy.name(),
                });
            }
            // lint:allow(L005, L007) count ≤ n ≤ the u32 arena-slot envelope the IdMap already enforces
            let count_u32 = u32::try_from(count).expect("alive count exceeds u32");
            self.profile_cache[n] = CachedProfile {
                count: count_u32,
                rate_class: CLASS_CURVE,
                share,
                rate: 0.0,
            };
            (count, share)
        };
        self.profile = PrefixAllocation { count, share };
        let jobs = &mut self.jobs;
        self.srpt
            .maybe_rebase(|idx, p| apply_placement(jobs, idx, p));
        self.srpt
            .rebalance(count, |idx, p| apply_placement(jobs, idx, p));
        // Interval classification — same predicates as refresh_profile.
        let share_is_unit = (share - 1.0).abs() <= 1e-12;
        let unit_rate = share_is_unit && self.srpt.unit_rate_at_one();
        let uniform = self.srpt.running_len() <= 1 || self.srpt.uniform_curves() || unit_rate;
        if uniform {
            let rate = match self.srpt.front_running() {
                Some((slot, rem)) => {
                    let rate = if unit_rate {
                        self.cfg.speed
                    } else {
                        let class = self.jobs.class[slot.idx];
                        let memo = self.profile_cache[n];
                        if class < CLASS_UNGROUPED && memo.rate_class == class {
                            memo.rate
                        } else {
                            let r = self.cfg.speed * self.jobs.gamma(slot.idx, share);
                            if class < CLASS_UNGROUPED {
                                self.profile_cache[n].rate_class = class;
                                self.profile_cache[n].rate = r;
                            }
                            r
                        }
                    };
                    if rate > 0.0 {
                        self.next_completion = Some(self.now + rem / rate);
                    }
                    rate
                }
                None => 0.0,
            };
            self.interval = IntervalKind::Uniform { rate };
        } else {
            self.jobs.refresh_class_rates(self.cfg.speed, share);
            let mut next: Option<Time> = None;
            let jobs = &self.jobs;
            let now = self.now;
            let speed = self.cfg.speed;
            self.srpt.for_each_running_ordered(|slot, rem| {
                let rate = jobs.rate_cached(slot.idx, speed, share);
                if rate > 0.0 {
                    let t = now + rem / rate;
                    if next.is_none_or(|n| t < n) {
                        next = Some(t);
                    }
                }
            });
            self.interval = IntervalKind::Scan;
            self.next_completion = next;
        }
        self.alloc_fresh = true;
        Ok(())
    }

    /// Re-runs the policy and recomputes rates and the quantum deadline.
    fn refresh_allocation(&mut self) -> Result<(), SimError> {
        self.shares.clear();
        self.shares.resize(self.alive.len(), 0.0);
        self.rates.clear();
        self.rates.resize(self.alive.len(), 0.0);
        self.quantum_deadline = None;
        if self.alive.is_empty() {
            self.alloc_fresh = true;
            return Ok(());
        }
        let views: Vec<AliveJob<'_>> = self
            .alive
            .iter()
            .map(|&i| AliveJob {
                spec: &self.jobs.specs[i],
                remaining: self.jobs.remaining[i],
            })
            // lint:allow(L007) exhaustive-oracle arm only (ensure_fresh routes the audited incremental arm to refresh_profile)
            .collect();
        let quantum = self
            .policy
            .assign(self.now, self.cfg.m, &views, &mut self.shares);
        // Validate feasibility.
        let mut total = 0.0;
        for &s in &self.shares {
            if !s.is_finite() || s < -EPS {
                return Err(SimError::InvalidShare {
                    at: self.now,
                    share: s,
                    policy: self.policy.name(),
                });
            }
            total += s.max(0.0);
        }
        if total > self.cfg.m * (1.0 + 1e-9) + EPS {
            return Err(SimError::InfeasibleAllocation {
                at: self.now,
                requested: total,
                available: self.cfg.m,
                policy: self.policy.name(),
            });
        }
        for (i, &idx) in self.alive.iter().enumerate() {
            let share = self.shares[i].max(0.0);
            self.shares[i] = share;
            self.rates[i] = self.cfg.speed * self.jobs.gamma(idx, share);
        }
        if let Some(q) = quantum {
            if q.is_finite() && q > 0.0 {
                self.quantum_deadline = Some(self.now + q);
            }
        }
        self.observer.on_allocation(self.now, &views, &self.shares);
        self.alloc_fresh = true;
        Ok(())
    }

    /// The next time at which anything happens (completion, arrival, or
    /// quantum expiry), or `None` when the run is over.
    pub fn next_event_time(&mut self) -> Result<Option<Time>, SimError> {
        if self.finished {
            return Ok(None);
        }
        // Arrivals due exactly now (including the ones at t = 0 before the
        // first step) must be admitted before deciding the allocation.
        hp_phase!(self, queue_ns, self.admit_due_arrivals())?;
        if !self.alloc_fresh {
            hp_phase!(self, refresh_ns, self.ensure_fresh())?;
        }
        let next = hp_phase!(self, queue_ns, {
            let mut next: Option<Time> = None;
            let mut consider = |t: Time| {
                if next.is_none_or(|n| t < n) {
                    next = Some(t);
                }
            };
            match self.mode {
                ExecMode::Exhaustive => {
                    for (i, &idx) in self.alive.iter().enumerate() {
                        if self.rates[i] > 0.0 {
                            consider(self.now + self.jobs.remaining[idx] / self.rates[i]);
                        }
                    }
                    if let Some(t) = self.next_arrival {
                        consider(t.max(self.now));
                    }
                }
                // Incremental: the interval's completion candidate is a plain
                // field (recomputed by every refresh); the arrival wakeup is
                // peeked from the event queue, lazily discarding superseded
                // generations (their times are ≤ now, so they sit at the
                // front). Clamping to `now` after the min is identical to
                // clamping before it (max(·, now) is monotone).
                ExecMode::Incremental => {
                    if let Some(t) = self.next_completion {
                        consider(t.max(self.now));
                    }
                    while let Some((t, gen)) = self.equeue.peek() {
                        if gen == self.arr_gen {
                            consider(t.max(self.now));
                            break;
                        }
                        self.equeue.pop();
                    }
                }
            }
            if let Some(t) = self.quantum_deadline {
                consider(t.max(self.now));
            }
            next
        });
        match next {
            Some(t) => Ok(Some(t)),
            None => {
                if self.num_alive() == 0 {
                    self.finished = true;
                    Ok(None)
                } else {
                    Err(SimError::Stalled {
                        at: self.now,
                        alive: self.num_alive(),
                    })
                }
            }
        }
    }

    /// Advances the clock to `t` (which must not exceed the next event
    /// time), integrating metrics and processing completions and arrivals
    /// that fall exactly at `t`.
    pub fn advance_to(&mut self, t: Time) -> Result<(), SimError> {
        debug_assert!(
            t >= self.now - EPS * self.now.max(1.0),
            "time went backwards"
        );
        if !self.alloc_fresh {
            hp_phase!(self, refresh_ns, self.ensure_fresh())?;
        }
        let dt = (t - self.now).max(0.0);
        if dt > 0.0 {
            hp_phase!(
                self,
                metrics_ns,
                match self.mode {
                    ExecMode::Exhaustive => self.integrate_exhaustive(dt),
                    ExecMode::Incremental => self.integrate_incremental(dt),
                }
            );
            self.observer.on_advance(self.now, t);
            self.now = t;
        } else {
            self.now = self.now.max(t);
        }
        // Completions at the new time.
        let completed_any = hp_phase!(self, dispatch_ns, {
            let completed_any = match self.mode {
                ExecMode::Exhaustive => self.collect_completions_exhaustive(),
                ExecMode::Incremental => self.collect_completions_incremental(),
            };
            if completed_any {
                self.alloc_fresh = false;
                self.policy.on_completion(self.now, self.num_alive());
            }
            completed_any
        });
        // Quantum expiry forces a re-decision.
        if let Some(q) = self.quantum_deadline {
            if self.now + EPS * self.now.max(1.0) >= q {
                self.alloc_fresh = false;
            }
        }
        // Arrivals due exactly now. A completion and an arrival landing
        // on one timestamp are processed inside this single call — one
        // event, one step — which is the first-class same-timestamp
        // coalescing documented in `docs/PERF.md` §4; count it so tests
        // can pin the behavior instead of inferring it from event totals.
        let arrived = hp_phase!(self, queue_ns, self.admit_due_arrivals())?;
        if completed_any && arrived {
            self.coalesced += 1;
        }
        Ok(())
    }

    /// Exhaustive-path interval integration: per-job linear drain.
    fn integrate_exhaustive(&mut self, dt: f64) {
        self.alive_integral.add(self.alive.len() as f64 * dt);
        for (i, &idx) in self.alive.iter().enumerate() {
            let rem = self.jobs.remaining[idx];
            let drained = self.rates[i] * dt;
            // Fractional flow: ∫ p_j(τ)/p_j dτ over [now, t], exact for
            // the linear drain.
            self.frac_flow
                .add((rem - drained / 2.0).max(0.0) * dt / self.jobs.specs[idx].size);
            self.jobs.remaining[idx] = (rem - drained).max(0.0);
        }
    }

    /// Incremental-path interval integration. Uniform intervals are O(1):
    /// the drain offset bumps once and fractional flow comes from the
    /// set's maintained sums in closed form — with `D₀` the offset at the
    /// interval start and rate `r`,
    /// `∫ Σ p_j(τ)/p_j dτ = (Σkey_j/p_j − D₀·Σ1/p_j)·dt − (r·dt²/2)·Σ1/p_j`
    /// over the running prefix, plus `dt·Σ rem_j/p_j` over the (static)
    /// queue. Scan intervals fall back to per-job integration over the
    /// prefix only.
    #[inline]
    fn integrate_incremental(&mut self, dt: f64) {
        self.alive_integral.add(self.srpt.len() as f64 * dt);
        match self.interval {
            IntervalKind::Idle => {}
            IntervalKind::Uniform { rate } => {
                let s1 = self.srpt.running_inv_size_sum();
                let run = (self.srpt.running_key_frac_sum() - self.srpt.drain_offset() * s1) * dt
                    - rate * dt * dt / 2.0 * s1;
                self.frac_flow
                    .add(run.max(0.0) + self.srpt.queued_frac_sum() * dt);
                self.srpt.advance_uniform(rate * dt);
            }
            IntervalKind::Scan => {
                let share = self.profile.share;
                let speed = self.cfg.speed;
                // The per-class rate cache is valid for this (speed, share)
                // whenever the interval is Scan (refilled by the profile
                // refresh that classified it).
                let mut run = 0.0;
                {
                    let jobs = &self.jobs;
                    self.srpt.for_each_running_ordered(|slot, rem| {
                        let rate = jobs.rate_cached(slot.idx, speed, share);
                        run += (rem - rate * dt / 2.0).max(0.0) / slot.size;
                    });
                }
                self.frac_flow.add((run + self.srpt.queued_frac_sum()) * dt);
                let mut moves = std::mem::take(&mut self.scratch_moves);
                moves.clear();
                {
                    let jobs = &self.jobs;
                    self.srpt.drain_scan(
                        dt,
                        |idx| jobs.rate_cached(idx, speed, share),
                        // lint:allow(L007) pushes into scratch_moves taken via mem::take; donated capacity is retained across events
                        |idx, p| moves.push((idx, p)),
                    );
                }
                for &(idx, p) in &moves {
                    apply_placement(&mut self.jobs, idx, p);
                }
                self.scratch_moves = moves;
                // The scan may have reordered the prefix; re-classify
                // before the next interval.
                self.alloc_fresh = false;
            }
        }
    }

    /// Records a completion at the current time into the aggregate sink
    /// (both modes) and the completion list (in-memory mode), then retires
    /// the arena slot (streaming mode). Callers have already detached the
    /// job from their alive structure.
    fn finish_job(&mut self, idx: usize) {
        self.finish_job_core::<true>(idx)
    }

    /// Completion-recording core; `NOTIFY` gates the observer callback
    /// (elided by the fast loop, whose eligibility requires
    /// [`Observer::is_noop`]). `<true>` is the generic path, unchanged.
    fn finish_job_core<const NOTIFY: bool>(&mut self, idx: usize) {
        self.jobs.remaining[idx] = 0.0;
        self.jobs.in_running[idx] = false;
        self.jobs.done[idx] = true;
        let spec = &self.jobs.specs[idx];
        self.sink
            .record(spec.release, spec.size, self.now, spec.weight);
        if !self.cfg.streaming {
            self.completed.push(CompletedJob {
                id: spec.id,
                release: spec.release,
                size: spec.size,
                completion: self.now,
                weight: spec.weight,
            });
        }
        if NOTIFY {
            self.observer.on_completion(self.now, &self.jobs.specs[idx]);
        }
        if self.cfg.streaming {
            // Retire the slot: forget the id and hand the arena index to
            // the next arrival. The spec stays in place (inert) until
            // overwritten — nothing reads `done` slots.
            self.ids.remove(self.jobs.specs[idx].id);
            self.free.push(idx);
        }
    }

    /// Exhaustive-path completion sweep over the whole alive set.
    fn collect_completions_exhaustive(&mut self) -> bool {
        let mut completed_any = false;
        let mut i = 0;
        while i < self.alive.len() {
            let idx = self.alive[i];
            let rem = self.jobs.remaining[idx];
            let size = self.jobs.specs[idx].size;
            if rem <= Self::completion_tolerance(size, self.rates[i], self.now) {
                self.alive.swap_remove(i);
                // Keep the parallel share/rate vectors aligned with `alive`
                // for the rest of this sweep (they are rebuilt on the next
                // refresh either way).
                self.rates.swap_remove(i);
                self.shares.swap_remove(i);
                self.finish_job(idx);
                completed_any = true;
            } else {
                i += 1;
            }
        }
        completed_any
    }

    /// Incremental-path completions: only the *front* of the running prefix
    /// can finish (SRPT order), so this pops while the front is within
    /// tolerance — O(log n) per completion, no sweep.
    fn collect_completions_incremental(&mut self) -> bool {
        self.collect_completions_incremental_core::<true>()
    }

    /// Incremental completion core; `NOTIFY` as in
    /// [`Engine::finish_job_core`].
    #[inline]
    fn collect_completions_incremental_core<const NOTIFY: bool>(&mut self) -> bool {
        let mut completed_any = false;
        while let Some((slot, rem)) = self.srpt.front_running() {
            let rate = match self.interval {
                IntervalKind::Uniform { rate } => rate,
                IntervalKind::Scan => {
                    self.jobs
                        .rate_cached(slot.idx, self.cfg.speed, self.profile.share)
                }
                IntervalKind::Idle => 0.0,
            };
            if rem > Self::completion_tolerance(slot.size, rate, self.now) {
                break;
            }
            let idx = slot.idx;
            self.srpt.pop_front_running();
            self.finish_job_core::<NOTIFY>(idx);
            completed_any = true;
        }
        completed_any
    }

    /// Which [`EnginePath`] this run executes (for audit context).
    fn path(&self) -> EnginePath {
        match self.mode {
            ExecMode::Exhaustive => EnginePath::Exhaustive,
            ExecMode::Incremental => EnginePath::Incremental,
        }
    }

    /// Builds an audit snapshot of the alive set with the allocation
    /// decided for the interval starting now. Only valid while the
    /// allocation is fresh (callers capture right after
    /// [`Engine::next_event_time`]).
    fn build_audit_frame(&self) -> AuditFrame {
        let mut jobs = Vec::with_capacity(self.num_alive());
        match self.mode {
            ExecMode::Exhaustive => {
                for (i, &idx) in self.alive.iter().enumerate() {
                    let spec = &self.jobs.specs[idx];
                    jobs.push(FrameJob {
                        id: spec.id,
                        release: spec.release,
                        size: spec.size,
                        remaining: self.jobs.remaining[idx],
                        share: self.shares[i],
                        rate: self.rates[i],
                    });
                }
            }
            ExecMode::Incremental => {
                let share = self.profile.share;
                for (slot, remaining) in self.srpt.iter_running() {
                    let spec = &self.jobs.specs[slot.idx];
                    jobs.push(FrameJob {
                        id: spec.id,
                        release: spec.release,
                        size: spec.size,
                        remaining,
                        share,
                        rate: self.cfg.speed * self.jobs.gamma(slot.idx, share),
                    });
                }
                for (slot, remaining) in self.srpt.iter_queued() {
                    let spec = &self.jobs.specs[slot.idx];
                    jobs.push(FrameJob {
                        id: spec.id,
                        release: spec.release,
                        size: spec.size,
                        remaining,
                        share: 0.0,
                        rate: 0.0,
                    });
                }
            }
        }
        AuditFrame {
            event: self.events,
            t: self.now,
            m: self.cfg.m,
            path: self.path(),
            policy: self.policy_name.clone(),
            jobs,
            // The incremental path iterates its maintained SRPT order
            // (running prefix, then queue); the exhaustive alive vector is
            // reordered by swap_remove and promises nothing.
            srpt_ordered_iteration: self.mode == ExecMode::Incremental,
            srpt_ordered_policy: self.policy_srpt_ordered,
        }
    }

    /// Processes one event. Returns `false` when the run is complete.
    pub fn step(&mut self) -> Result<bool, SimError> {
        let Some(t) = self.next_event_time()? else {
            return Ok(false);
        };
        // Audit hook: at this point the allocation is fresh and constant
        // over `[now, t]`, so the frame captures exactly what the engine is
        // about to execute.
        if let Some(mut aud) = self.auditor.take() {
            let checked = if aud.wants_frame(self.events) {
                aud.check_frame(self.build_audit_frame())
            } else {
                Ok(())
            };
            self.auditor = Some(aud);
            checked?;
        }
        if t > self.cfg.max_time {
            return Err(SimError::TimeLimit {
                limit: self.cfg.max_time,
            });
        }
        self.events += 1;
        if self.events > self.cfg.max_events {
            return Err(SimError::EventLimit {
                limit: self.cfg.max_events,
            });
        }
        #[cfg(feature = "hotpath")]
        if self.cfg.hotpath_profile {
            self.hotpath.events += 1;
        }
        self.advance_to(t)?;
        Ok(true)
    }

    /// Drives the run to completion without finalizing: the monomorphized
    /// fast event loop when eligible, the generic [`Engine::step`] loop
    /// otherwise. All four `run*` finalizers route through here; it is
    /// public so external drivers (benchmarks, the allocation audit) can
    /// execute the exact finalizer loop and then inspect the engine
    /// before materializing an outcome.
    ///
    /// Fast-loop eligibility: [`EngineConfig::fast_loop`] on, the
    /// incremental path, auditing off, and a no-op observer
    /// ([`Observer::is_noop`]). The fast loop is bit-identical to the
    /// generic loop — same completion order, same metric bits, same
    /// error taxonomy — which `tests/engine_fastpath_differential.rs`
    /// pins policy by policy. What it removes is dispatch and
    /// bookkeeping, not arithmetic: the per-event `dyn` profile query is
    /// replayed from the per-`n` memo
    /// ([`Engine::refresh_profile_fast`]), admission re-validation is
    /// skipped for [`ArrivalSource::pre_validated`] sources, no-op
    /// observer and policy-hook calls are elided
    /// ([`Policy::event_hooks_are_noop`]), and the arrival wakeup is
    /// read from the cached `next_arrival` field instead of
    /// round-tripping the event queue.
    pub fn run_loop(&mut self) -> Result<(), SimError> {
        let fast = self.cfg.fast_loop
            && self.mode == ExecMode::Incremental
            && self.auditor.is_none()
            && self.observer.is_noop();
        if !fast {
            while self.step()? {}
            return Ok(());
        }
        let hooks = !self.policy.event_hooks_are_noop();
        match (self.source.pre_validated(), hooks) {
            (true, true) => self.run_fast_loop::<false, true>(),
            (true, false) => self.run_fast_loop::<false, false>(),
            (false, true) => self.run_fast_loop::<true, true>(),
            (false, false) => self.run_fast_loop::<true, false>(),
        }
    }

    /// The monomorphized fast event loop — see [`Engine::run_loop`] for
    /// eligibility and the equivalence contract. One iteration performs
    /// exactly one `step()`: leading admission, (delta-)refresh, event
    /// selection, budget checks, interval integration, completion
    /// collection, trailing admission — in the generic loop's order, with
    /// its tie-breaking (completion candidate considered before the
    /// arrival, strict `<` to replace) and its `max(now)` clamping.
    fn run_fast_loop<const VALIDATE: bool, const PHOOKS: bool>(&mut self) -> Result<(), SimError> {
        debug_assert!(
            self.quantum_deadline.is_none(),
            "the incremental path never schedules a quantum"
        );
        if self.finished {
            return Ok(());
        }
        // `step()` admits due arrivals at the top of every step, but inside
        // a closed loop that leading admission is provably a no-op after
        // the first iteration: the previous iteration's trailing admission
        // drained everything due at `now`, and nothing advances the clock
        // in between. One admission before the loop replaces it exactly.
        hp_phase!(
            self,
            queue_ns,
            self.admit_core::<VALIDATE, false, false, PHOOKS>()
        )?;
        loop {
            if !self.alloc_fresh {
                hp_phase!(self, refresh_ns, self.refresh_profile_fast())?;
            }
            let next = hp_phase!(self, queue_ns, {
                let mut next: Option<Time> = None;
                if let Some(t) = self.next_completion {
                    next = Some(t.max(self.now));
                }
                if let Some(t) = self.next_arrival {
                    let t = t.max(self.now);
                    if next.is_none_or(|n| t < n) {
                        next = Some(t);
                    }
                }
                next
            });
            let Some(t) = next else {
                if self.srpt.len() == 0 {
                    self.finished = true;
                    return Ok(());
                }
                return Err(SimError::Stalled {
                    at: self.now,
                    alive: self.srpt.len(),
                });
            };
            if t > self.cfg.max_time {
                return Err(SimError::TimeLimit {
                    limit: self.cfg.max_time,
                });
            }
            self.events += 1;
            if self.events > self.cfg.max_events {
                return Err(SimError::EventLimit {
                    limit: self.cfg.max_events,
                });
            }
            #[cfg(feature = "hotpath")]
            if self.cfg.hotpath_profile {
                self.hotpath.events += 1;
            }
            // `advance_to`, fused.
            debug_assert!(
                t >= self.now - EPS * self.now.max(1.0),
                "time went backwards"
            );
            let dt = (t - self.now).max(0.0);
            if dt > 0.0 {
                hp_phase!(self, metrics_ns, self.integrate_incremental(dt));
                self.now = t;
            } else {
                self.now = self.now.max(t);
            }
            let completed_any = hp_phase!(self, dispatch_ns, {
                let completed_any = self.collect_completions_incremental_core::<false>();
                if completed_any {
                    self.alloc_fresh = false;
                    if PHOOKS {
                        self.policy.on_completion(self.now, self.srpt.len());
                    }
                }
                completed_any
            });
            // Trailing admission, with `admit_core`'s own entry test
            // duplicated here so non-arrival events (half the steady
            // state) skip the call entirely. The test has no side effects
            // and uses the same float ops, so admission behavior is
            // unchanged.
            let due = self
                .next_arrival
                .is_some_and(|t| t <= self.now + crate::source::arrival_tolerance(self.now));
            let arrived = if due {
                hp_phase!(
                    self,
                    queue_ns,
                    self.admit_core::<VALIDATE, false, false, PHOOKS>()
                )?
            } else {
                false
            };
            if completed_any && arrived {
                self.coalesced += 1;
            }
        }
    }

    /// Runs to completion and returns the outcome. Streaming runs must use
    /// [`Engine::run_streaming`] instead — a `RunOutcome` materializes the
    /// full completion list and instance, defeating the memory bound.
    pub fn run(mut self) -> Result<RunOutcome, SimError> {
        if self.cfg.streaming {
            return Err(SimError::BadInstance {
                what: "streaming engines produce a StreamingOutcome; \
                       call run_streaming() instead of run()"
                    .into(),
            });
        }
        self.run_loop()?;
        self.into_outcome()
    }

    /// Like [`Engine::run`], additionally handing back the engine's
    /// buffers for the next run (see [`EngineBuffers`]). The outcome's
    /// completion list and instance are freshly owned by the caller —
    /// those allocations transfer with the outcome by design — but the
    /// arena, heaps, and scratch are all recycled.
    pub fn run_reusing(mut self) -> Result<(RunOutcome, EngineBuffers), SimError> {
        if self.cfg.streaming {
            return Err(SimError::BadInstance {
                what: "streaming engines produce a StreamingOutcome; \
                       call run_streaming_reusing() instead of run_reusing()"
                    .into(),
            });
        }
        self.run_loop()?;
        let outcome = self.take_outcome()?;
        // The completion log transferred to the outcome (it *is* the
        // outcome). Re-reserve its capacity now, at finalization, so the
        // next run on these buffers logs completions without regrowing —
        // the steady-state zero-allocation contract (docs/PERF.md §6)
        // covers the in-memory reuse path too.
        self.completed.reserve_exact(outcome.completed.len());
        Ok((outcome, self.into_buffers()))
    }

    /// Runs to completion and returns the constant-size
    /// [`StreamingOutcome`]. Works in either mode (a non-streaming engine
    /// simply doesn't recycle memory), so the same finalizer serves the
    /// differential tests on both sides.
    pub fn run_streaming(mut self) -> Result<StreamingOutcome, SimError> {
        self.run_loop()?;
        self.into_streaming_outcome()
    }

    /// Like [`Engine::run_streaming`], additionally handing back the
    /// engine's buffers for the next run. This is the fully
    /// allocation-free repeat-run shape: the streaming outcome is
    /// constant-size and nothing per-job survives the run.
    pub fn run_streaming_reusing(mut self) -> Result<(StreamingOutcome, EngineBuffers), SimError> {
        self.run_loop()?;
        let outcome = self.take_streaming_outcome()?;
        Ok((outcome, self.into_buffers()))
    }

    /// Runs the end-of-run audit identities, if auditing is on.
    fn check_final_audit(&mut self) -> Result<Option<crate::invariant::AuditReport>, SimError> {
        match self.auditor.take() {
            Some(mut aud) => {
                aud.check_final(&FinalAccounting {
                    total_flow: self.sink.total_flow(),
                    alive_integral: self.alive_integral.value(),
                    fractional_flow: self.frac_flow.value(),
                    completed: self.sink.count() as usize,
                    admitted: self.admitted,
                    alive_left: self.num_alive(),
                    at: self.now,
                    events: self.events,
                    policy: self.policy_name.clone(),
                    path: self.path(),
                })?;
                Ok(Some(aud.report()))
            }
            None => Ok(None),
        }
    }

    /// Aggregate metrics from the sink — the single construction site for
    /// both finalizers, so the streaming and in-memory paths cannot drift.
    fn final_metrics(&self) -> RunMetrics {
        self.sink.run_metrics(
            self.events,
            self.frac_flow.value(),
            self.alive_integral.value(),
        )
    }

    /// Non-consuming finalizer core: extracts the [`RunOutcome`], leaving
    /// the engine's buffers empty but with capacity intact. The completion
    /// list and the instance's spec vector transfer to the outcome (they
    /// are the outcome); the job arena's own allocation stays behind.
    fn take_outcome(&mut self) -> Result<RunOutcome, SimError> {
        let audit = self.check_final_audit()?;
        let metrics = self.final_metrics();
        Ok(RunOutcome {
            metrics,
            completed: std::mem::take(&mut self.completed),
            // The arena holds every spec ever emitted (done or not), in
            // admission order, already validated at admission; rebuilding
            // the instance from it avoids both the seed engine's duplicate
            // `emitted` clone stream and a second O(n) validation pass.
            instance: Instance::from_admitted(self.jobs.specs.drain(..).collect()),
            audit,
        })
    }

    /// Non-consuming finalizer core for the streaming outcome.
    fn take_streaming_outcome(&mut self) -> Result<StreamingOutcome, SimError> {
        let audit = self.check_final_audit()?;
        let metrics = self.final_metrics();
        Ok(StreamingOutcome {
            metrics,
            quantiles: self.sink.sketch().clone(),
            peak_alive: self.peak_alive,
            admitted: self.admitted,
            audit,
        })
    }

    /// Finalizes the run into a [`RunOutcome`] (all jobs must be finished).
    pub fn into_outcome(mut self) -> Result<RunOutcome, SimError> {
        if self.cfg.streaming {
            return Err(SimError::BadInstance {
                what: "streaming engines produce a StreamingOutcome; \
                       call into_streaming_outcome() instead"
                    .into(),
            });
        }
        self.take_outcome()
    }

    /// Finalizes the run into a constant-size [`StreamingOutcome`].
    pub fn into_streaming_outcome(mut self) -> Result<StreamingOutcome, SimError> {
        self.take_streaming_outcome()
    }
}

/// Simulates `policy` on `instance` with `m` processors using default
/// engine settings.
pub fn simulate(
    instance: &Instance,
    policy: &mut dyn Policy,
    m: f64,
) -> Result<RunOutcome, SimError> {
    let mut obs = NullObserver;
    simulate_with_observer(instance, policy, m, &mut obs)
}

/// Like [`simulate`], but with runtime invariant auditing enabled at the
/// given [`AuditLevel`]. A violation surfaces as
/// [`SimError::AuditFailed`]; on success the outcome carries the
/// [`crate::invariant::AuditReport`].
pub fn simulate_audited(
    instance: &Instance,
    policy: &mut dyn Policy,
    m: f64,
    audit: AuditLevel,
) -> Result<RunOutcome, SimError> {
    let mut source = StaticSource::new(instance);
    let mut obs = NullObserver;
    Engine::new(
        EngineConfig::new(m).with_audit(audit),
        policy,
        &mut source,
        &mut obs,
    )
    .run()
}

/// Like [`simulate`], but with a custom [`Observer`].
pub fn simulate_with_observer(
    instance: &Instance,
    policy: &mut dyn Policy,
    m: f64,
    observer: &mut dyn Observer,
) -> Result<RunOutcome, SimError> {
    let mut source = StaticSource::new(instance);
    Engine::new(EngineConfig::new(m), policy, &mut source, observer).run()
}

/// Simulates `policy` against a (possibly unbounded) [`ArrivalSource`] in
/// memory-bounded streaming mode: resident state is O(peak alive set), not
/// O(total jobs), and the result is the constant-size [`StreamingOutcome`]
/// whose aggregate metrics are bit-identical to [`simulate`] on workloads
/// small enough to run both. The event budget is raised to effectively
/// unlimited — the source, not the default cap sized for in-memory runs,
/// bounds a streaming run's length.
pub fn simulate_streaming(
    source: &mut dyn ArrivalSource,
    policy: &mut dyn Policy,
    m: f64,
) -> Result<StreamingOutcome, SimError> {
    simulate_streaming_audited(source, policy, m, AuditLevel::Off)
}

/// Like [`simulate_streaming`], with runtime invariant auditing at the
/// given [`AuditLevel`]. The audit layer works unchanged in streaming mode
/// (frames are built from the alive window only); prefer
/// [`AuditLevel::Sampled`] at large `n` — strict per-event frames cost
/// O(alive) each.
pub fn simulate_streaming_audited(
    source: &mut dyn ArrivalSource,
    policy: &mut dyn Policy,
    m: f64,
    audit: AuditLevel,
) -> Result<StreamingOutcome, SimError> {
    let mut obs = NullObserver;
    Engine::new(
        EngineConfig::new(m)
            .with_streaming(true)
            .with_audit(audit)
            .with_max_events(u64::MAX),
        policy,
        source,
        &mut obs,
    )
    .run_streaming()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::EquiSplit;
    use parsched_speedup::Curve;

    fn inst(jobs: &[(f64, f64)], curve: Curve) -> Instance {
        Instance::from_sizes(jobs, curve).unwrap()
    }

    #[test]
    fn single_sequential_job_cannot_be_sped_up() {
        // One sequential job of size 5 on 8 processors: flow = 5.
        let outcome =
            simulate(&inst(&[(0.0, 5.0)], Curve::Sequential), &mut EquiSplit, 8.0).unwrap();
        assert!((outcome.metrics.total_flow - 5.0).abs() < 1e-9);
        assert_eq!(outcome.metrics.num_jobs, 1);
    }

    #[test]
    fn single_parallel_job_uses_all_processors() {
        let outcome = simulate(
            &inst(&[(0.0, 8.0)], Curve::FullyParallel),
            &mut EquiSplit,
            4.0,
        )
        .unwrap();
        assert!((outcome.metrics.total_flow - 2.0).abs() < 1e-9);
    }

    #[test]
    fn two_power_jobs_under_equi() {
        // 2 jobs, size 4, α = 0.5, m = 4 → each at rate √2, both finish at
        // 4/√2 = 2√2; total flow = 4√2.
        let outcome = simulate(
            &inst(&[(0.0, 4.0), (0.0, 4.0)], Curve::power(0.5)),
            &mut EquiSplit,
            4.0,
        )
        .unwrap();
        assert!((outcome.metrics.total_flow - 4.0 * 2f64.sqrt()).abs() < 1e-9);
        assert!((outcome.metrics.makespan - 2.0 * 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn mid_run_arrival_triggers_reallocation() {
        // m=2 fully parallel. Job0 size 4 at t=0 (rate 2); job1 size 2 at t=1.
        // t∈[0,1): job0 alone, rate 2, remaining 2 at t=1.
        // t≥1: each gets 1 processor, rate 1. Job1 (rem 2) and job0 (rem 2)
        // both finish at t=3. Flows: 3 and 2 → total 5.
        let outcome = simulate(
            &inst(&[(0.0, 4.0), (1.0, 2.0)], Curve::FullyParallel),
            &mut EquiSplit,
            2.0,
        )
        .unwrap();
        assert!((outcome.metrics.total_flow - 5.0).abs() < 1e-9);
        assert_eq!(outcome.flow_of(JobId(0)), Some(3.0));
        assert_eq!(outcome.flow_of(JobId(1)), Some(2.0));
    }

    #[test]
    fn alive_integral_equals_total_flow() {
        let outcome = simulate(
            &inst(&[(0.0, 3.0), (0.5, 1.0), (2.0, 2.5)], Curve::power(0.7)),
            &mut EquiSplit,
            3.0,
        )
        .unwrap();
        assert!(
            (outcome.metrics.alive_integral - outcome.metrics.total_flow).abs() < 1e-6,
            "∫|A| = {} vs Σflow = {}",
            outcome.metrics.alive_integral,
            outcome.metrics.total_flow
        );
    }

    #[test]
    fn fractional_flow_never_exceeds_integral_flow() {
        let outcome = simulate(
            &inst(&[(0.0, 3.0), (0.5, 1.0), (2.0, 2.5)], Curve::power(0.7)),
            &mut EquiSplit,
            3.0,
        )
        .unwrap();
        assert!(outcome.metrics.fractional_flow <= outcome.metrics.total_flow + 1e-9);
        assert!(outcome.metrics.fractional_flow > 0.0);
    }

    /// A policy that allocates nothing, to exercise the stall detector.
    struct Starver;
    impl Policy for Starver {
        fn name(&self) -> String {
            "starver".into()
        }
        fn assign(
            &mut self,
            _: Time,
            _: f64,
            _: &[AliveJob<'_>],
            shares: &mut [f64],
        ) -> Option<f64> {
            shares.fill(0.0);
            None
        }
    }

    #[test]
    fn starvation_is_detected() {
        let err = simulate(&inst(&[(0.0, 1.0)], Curve::Sequential), &mut Starver, 1.0).unwrap_err();
        assert!(matches!(err, SimError::Stalled { alive: 1, .. }));
    }

    /// A policy that over-allocates.
    struct GreedyHog;
    impl Policy for GreedyHog {
        fn name(&self) -> String {
            "hog".into()
        }
        fn assign(
            &mut self,
            _: Time,
            m: f64,
            _: &[AliveJob<'_>],
            shares: &mut [f64],
        ) -> Option<f64> {
            shares.fill(m); // every job demands all processors
            None
        }
    }

    #[test]
    fn infeasible_allocation_is_rejected() {
        let err = simulate(
            &inst(&[(0.0, 1.0), (0.0, 1.0)], Curve::Sequential),
            &mut GreedyHog,
            2.0,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InfeasibleAllocation { .. }));
    }

    #[test]
    fn event_limit_guards_runaway_quanta() {
        struct TinyQuantum;
        impl Policy for TinyQuantum {
            fn name(&self) -> String {
                "tiny".into()
            }
            fn assign(
                &mut self,
                _: Time,
                m: f64,
                jobs: &[AliveJob<'_>],
                shares: &mut [f64],
            ) -> Option<f64> {
                let each = m / jobs.len() as f64;
                shares.fill(each);
                Some(1e-7)
            }
        }
        let instance = inst(&[(0.0, 100.0)], Curve::Sequential);
        let mut p = TinyQuantum;
        let mut source = StaticSource::new(&instance);
        let mut obs = NullObserver;
        let engine = Engine::new(
            EngineConfig::new(1.0).with_max_events(1000),
            &mut p,
            &mut source,
            &mut obs,
        );
        let err = engine.run().unwrap_err();
        assert!(matches!(err, SimError::EventLimit { limit: 1000 }));
    }

    #[test]
    fn time_limit_is_enforced() {
        let instance = inst(&[(0.0, 100.0)], Curve::Sequential);
        let mut p = EquiSplit;
        let mut source = StaticSource::new(&instance);
        let mut obs = NullObserver;
        let engine = Engine::new(
            EngineConfig::new(1.0).with_max_time(10.0),
            &mut p,
            &mut source,
            &mut obs,
        );
        let err = engine.run().unwrap_err();
        assert!(matches!(err, SimError::TimeLimit { .. }), "{err:?}");
    }

    /// A source that emits a job whose release time lies in the past.
    struct StaleSource {
        fired: bool,
    }
    impl crate::source::ArrivalSource for StaleSource {
        fn next_time(&self) -> Option<Time> {
            (!self.fired).then_some(5.0)
        }
        fn emit(&mut self, _view: &crate::source::SystemView<'_>) -> Vec<JobSpec> {
            self.fired = true;
            vec![JobSpec::new(JobId(0), 1.0, 1.0, Curve::Sequential)]
        }
    }

    #[test]
    fn stale_arrivals_are_rejected() {
        let mut p = EquiSplit;
        let mut source = StaleSource { fired: false };
        let mut obs = NullObserver;
        let err = Engine::new(EngineConfig::new(1.0), &mut p, &mut source, &mut obs)
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::ArrivalInPast { .. }), "{err:?}");
    }

    /// A source that emits the same job id twice.
    struct DuplicatingSource {
        count: usize,
    }
    impl crate::source::ArrivalSource for DuplicatingSource {
        fn next_time(&self) -> Option<Time> {
            (self.count < 2).then_some(self.count as f64)
        }
        fn emit(&mut self, view: &crate::source::SystemView<'_>) -> Vec<JobSpec> {
            self.count += 1;
            vec![JobSpec::new(JobId(7), view.now, 10.0, Curve::Sequential)]
        }
    }

    #[test]
    fn duplicate_ids_from_sources_are_rejected() {
        let mut p = EquiSplit;
        let mut source = DuplicatingSource { count: 0 };
        let mut obs = NullObserver;
        let err = Engine::new(EngineConfig::new(1.0), &mut p, &mut source, &mut obs)
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::BadInstance { .. }), "{err:?}");
    }

    /// A source that wakes up but never advances its next_time.
    struct StuckSource;
    impl crate::source::ArrivalSource for StuckSource {
        fn next_time(&self) -> Option<Time> {
            Some(1.0)
        }
        fn emit(&mut self, _view: &crate::source::SystemView<'_>) -> Vec<JobSpec> {
            Vec::new()
        }
    }

    #[test]
    fn non_advancing_empty_sources_are_rejected() {
        let mut p = EquiSplit;
        let mut source = StuckSource;
        let mut obs = NullObserver;
        let err = Engine::new(EngineConfig::new(1.0), &mut p, &mut source, &mut obs)
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::BadInstance { .. }), "{err:?}");
    }

    #[test]
    fn speed_augmentation_scales_flow() {
        let instance = inst(&[(0.0, 4.0)], Curve::FullyParallel);
        let mut p = EquiSplit;
        let mut source = StaticSource::new(&instance);
        let mut obs = NullObserver;
        let outcome = Engine::new(
            EngineConfig::new(2.0).with_speed(2.0),
            &mut p,
            &mut source,
            &mut obs,
        )
        .run()
        .unwrap();
        // Rate 2 processors × speed 2 = 4 → size-4 job finishes at t = 1.
        assert!((outcome.metrics.total_flow - 1.0).abs() < 1e-9);
    }

    #[test]
    fn outcome_instance_matches_input() {
        let instance = inst(&[(0.0, 2.0), (1.0, 3.0)], Curve::power(0.5));
        let outcome = simulate(&instance, &mut EquiSplit, 2.0).unwrap();
        assert_eq!(outcome.instance, instance);
    }

    #[test]
    fn remaining_of_tracks_lifecycle() {
        let instance = inst(&[(0.0, 2.0), (5.0, 1.0)], Curve::Sequential);
        let mut p = EquiSplit;
        let mut source = StaticSource::new(&instance);
        let mut obs = NullObserver;
        let mut engine = Engine::new(EngineConfig::new(1.0), &mut p, &mut source, &mut obs);
        // Before any event, job 1 hasn't been emitted.
        assert_eq!(engine.remaining_of(JobId(1)), None);
        let t = engine.next_event_time().unwrap().unwrap();
        assert!((t - 2.0).abs() < 1e-9); // completion of job 0
        assert_eq!(engine.remaining_of(JobId(0)), Some(2.0));
        engine.advance_to(1.0).unwrap(); // partial advance is allowed
        assert_eq!(engine.remaining_of(JobId(0)), Some(1.0));
        engine.advance_to(2.0).unwrap();
        assert_eq!(engine.remaining_of(JobId(0)), Some(0.0)); // done
        assert_eq!(engine.num_alive(), 0);
        while engine.step().unwrap() {}
        assert!(engine.is_finished());
    }

    #[test]
    fn stretch_metrics_match_hand_computation() {
        // m = 1, sequential sizes 1 and 2: completions at 1, 3.
        // Stretches: 1/1 = 1 and 3/2 = 1.5.
        let outcome = simulate(
            &inst(&[(0.0, 1.0), (0.0, 2.0)], Curve::Sequential),
            &mut crate::policy::EquiSplit,
            1.0,
        )
        .unwrap();
        // EQUI on m=1: both share 0.5 → rates 0.5; size-1 done at 2
        // (stretch 2), then size-2 with 1 left at rate 1 → done at 3
        // (stretch 1.5).
        assert!((outcome.metrics.total_stretch - 3.5).abs() < 1e-9);
        assert!((outcome.metrics.max_stretch - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_instance_finishes_immediately() {
        let instance = Instance::new(vec![]).unwrap();
        let outcome = simulate(&instance, &mut EquiSplit, 4.0).unwrap();
        assert_eq!(outcome.metrics.num_jobs, 0);
        assert_eq!(outcome.metrics.total_flow, 0.0);
    }

    #[test]
    fn path_selection_honours_policy_observer_and_config() {
        let instance = inst(&[(0.0, 1.0)], Curve::Sequential);
        let mut p = EquiSplit;
        // SrptPrefix policy + NullObserver → incremental.
        let mut source = StaticSource::new(&instance);
        let mut obs = NullObserver;
        let e = Engine::new(EngineConfig::new(1.0), &mut p, &mut source, &mut obs);
        assert!(e.uses_incremental_path());
        // full_reassign forces the exhaustive oracle.
        let mut source = StaticSource::new(&instance);
        let mut obs = NullObserver;
        let e = Engine::new(
            EngineConfig::new(1.0).with_full_reassign(true),
            &mut p,
            &mut source,
            &mut obs,
        );
        assert!(!e.uses_incremental_path());
        // An observer consuming the allocation stream forces it too.
        let mut source = StaticSource::new(&instance);
        let mut trace = crate::observer::AllocationTrace::new();
        let e = Engine::new(EngineConfig::new(1.0), &mut p, &mut source, &mut trace);
        assert!(!e.uses_incremental_path());
        // A General-stability policy never takes the incremental path.
        let mut source = StaticSource::new(&instance);
        let mut obs = NullObserver;
        let mut hog = GreedyHog;
        let e = Engine::new(EngineConfig::new(1.0), &mut hog, &mut source, &mut obs);
        assert!(!e.uses_incremental_path());
    }

    fn run_both_paths(instance: &Instance, m: f64) -> (RunOutcome, RunOutcome) {
        let run = |full_reassign: bool| {
            let mut p = EquiSplit;
            let mut source = StaticSource::new(instance);
            let mut obs = NullObserver;
            let engine = Engine::new(
                EngineConfig::new(m).with_full_reassign(full_reassign),
                &mut p,
                &mut source,
                &mut obs,
            );
            assert_eq!(engine.uses_incremental_path(), !full_reassign);
            engine.run().unwrap()
        };
        (run(false), run(true))
    }

    #[test]
    fn incremental_matches_exhaustive_oracle_on_equi() {
        let instance = inst(
            &[
                (0.0, 5.0),
                (0.0, 2.0),
                (1.0, 4.0),
                (1.5, 0.5),
                (3.0, 6.0),
                (3.0, 1.0),
            ],
            Curve::power(0.5),
        );
        let (inc, orc) = run_both_paths(&instance, 3.0);
        assert_eq!(inc.metrics.num_jobs, orc.metrics.num_jobs);
        for c in &orc.completed {
            let f = inc.flow_of(c.id).unwrap();
            assert!(
                (f - c.flow()).abs() < 1e-6 * c.flow().max(1.0),
                "job {} flow {} vs oracle {}",
                c.id,
                f,
                c.flow()
            );
        }
        for (a, b) in [
            (inc.metrics.total_flow, orc.metrics.total_flow),
            (inc.metrics.fractional_flow, orc.metrics.fractional_flow),
            (inc.metrics.alive_integral, orc.metrics.alive_integral),
            (inc.metrics.makespan, orc.metrics.makespan),
        ] {
            assert!((a - b).abs() < 1e-6 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn incremental_matches_oracle_with_mixed_curves() {
        // Heterogeneous curves force the scan interval classification.
        let instance = Instance::new(vec![
            JobSpec::new(JobId(0), 0.0, 4.0, Curve::Sequential),
            JobSpec::new(JobId(1), 0.0, 4.0, Curve::FullyParallel),
            JobSpec::new(JobId(2), 0.5, 3.0, Curve::power(0.5)),
            JobSpec::new(JobId(3), 2.0, 2.0, Curve::power(0.8)),
        ])
        .unwrap();
        let (inc, orc) = run_both_paths(&instance, 2.0);
        for c in &orc.completed {
            let f = inc.flow_of(c.id).unwrap();
            assert!(
                (f - c.flow()).abs() < 1e-6 * c.flow().max(1.0),
                "job {} flow {} vs oracle {}",
                c.id,
                f,
                c.flow()
            );
        }
        assert!(
            (inc.metrics.fractional_flow - orc.metrics.fractional_flow).abs()
                < 1e-6 * orc.metrics.fractional_flow.max(1.0)
        );
    }

    #[test]
    fn incremental_remaining_of_partial_advance() {
        // Same scenario as remaining_of_tracks_lifecycle but asserting the
        // incremental path is the one being exercised.
        let instance = inst(&[(0.0, 2.0), (5.0, 1.0)], Curve::Sequential);
        let mut p = EquiSplit;
        let mut source = StaticSource::new(&instance);
        let mut obs = NullObserver;
        let mut engine = Engine::new(EngineConfig::new(1.0), &mut p, &mut source, &mut obs);
        assert!(engine.uses_incremental_path());
        engine.next_event_time().unwrap();
        engine.advance_to(1.0).unwrap();
        assert_eq!(engine.remaining_of(JobId(0)), Some(1.0));
        assert!((engine.total_remaining() - 1.0).abs() < 1e-12);
        engine.advance_to(2.0).unwrap();
        assert_eq!(engine.remaining_of(JobId(0)), Some(0.0));
        assert_eq!(engine.num_alive(), 0);
    }

    #[test]
    fn id_map_handles_dense_and_sparse_ids() {
        let mut map = IdMap::default();
        map.insert(JobId(0), 10);
        map.insert(JobId(3), 11);
        map.insert(JobId(u64::MAX - 1), 12);
        map.insert(JobId(1 << 40), 13);
        assert_eq!(map.get(JobId(0)), Some(10));
        assert_eq!(map.get(JobId(3)), Some(11));
        assert_eq!(map.get(JobId(u64::MAX - 1)), Some(12));
        assert_eq!(map.get(JobId(1 << 40)), Some(13));
        assert_eq!(map.get(JobId(2)), None);
        assert_eq!(map.get(JobId(99)), None);
    }

    #[test]
    fn sparse_ids_work_end_to_end() {
        // Huge ids exercise the sorted-vec fallback inside a real run.
        let instance = Instance::new(vec![
            JobSpec::new(JobId(u64::MAX - 7), 0.0, 2.0, Curve::Sequential),
            JobSpec::new(JobId(5), 0.0, 1.0, Curve::Sequential),
        ])
        .unwrap();
        let outcome = simulate(&instance, &mut EquiSplit, 2.0).unwrap();
        assert_eq!(outcome.metrics.num_jobs, 2);
        assert_eq!(outcome.flow_of(JobId(u64::MAX - 7)), Some(2.0));
        assert_eq!(outcome.flow_of(JobId(5)), Some(1.0));
    }

    #[test]
    fn strict_audit_passes_on_both_paths() {
        let instance = inst(
            &[(0.0, 5.0), (0.0, 2.0), (1.0, 4.0), (1.5, 0.5), (3.0, 6.0)],
            Curve::power(0.5),
        );
        for full_reassign in [false, true] {
            let mut p = EquiSplit;
            let mut source = StaticSource::new(&instance);
            let mut obs = NullObserver;
            let engine = Engine::new(
                EngineConfig::new(3.0)
                    .with_full_reassign(full_reassign)
                    .with_audit(AuditLevel::Strict),
                &mut p,
                &mut source,
                &mut obs,
            );
            let outcome = engine.run().unwrap();
            let report = outcome.audit.expect("audited run carries a report");
            assert_eq!(report.level, AuditLevel::Strict);
            assert!(report.frames > 0);
            assert!(report.final_checked);
        }
    }

    #[test]
    fn unaudited_runs_carry_no_report() {
        let outcome =
            simulate(&inst(&[(0.0, 1.0)], Curve::Sequential), &mut EquiSplit, 1.0).unwrap();
        assert!(outcome.audit.is_none());
    }

    #[test]
    fn simulate_audited_runs_final_checks() {
        let outcome = simulate_audited(
            &inst(&[(0.0, 2.0), (0.0, 1.0)], Curve::Sequential),
            &mut EquiSplit,
            2.0,
            AuditLevel::Final,
        )
        .unwrap();
        let report = outcome.audit.unwrap();
        assert_eq!(report.frames, 0);
        assert!(report.final_checked);
    }

    #[test]
    fn simultaneous_completions_handled_in_one_event() {
        // Two identical jobs complete at the same instant.
        let outcome = simulate(
            &inst(&[(0.0, 2.0), (0.0, 2.0)], Curve::Sequential),
            &mut EquiSplit,
            2.0,
        )
        .unwrap();
        assert_eq!(outcome.metrics.num_jobs, 2);
        assert!((outcome.metrics.makespan - 2.0).abs() < 1e-9);
        assert!((outcome.metrics.total_flow - 4.0).abs() < 1e-9);
    }

    #[test]
    fn streaming_aggregates_are_bit_identical_to_in_memory() {
        let instance = inst(
            &[
                (0.0, 5.0),
                (0.0, 2.0),
                (1.0, 4.0),
                (1.5, 0.5),
                (3.0, 6.0),
                (3.0, 1.0),
            ],
            Curve::power(0.5),
        );
        for full_reassign in [false, true] {
            let mut p = EquiSplit;
            let mut source = StaticSource::new(&instance);
            let mut obs = NullObserver;
            let mem = Engine::new(
                EngineConfig::new(3.0).with_full_reassign(full_reassign),
                &mut p,
                &mut source,
                &mut obs,
            )
            .run()
            .unwrap();
            let mut p = EquiSplit;
            let mut source = StaticSource::new(&instance);
            let mut obs = NullObserver;
            let st = Engine::new(
                EngineConfig::new(3.0)
                    .with_full_reassign(full_reassign)
                    .with_streaming(true),
                &mut p,
                &mut source,
                &mut obs,
            )
            .run_streaming()
            .unwrap();
            // Exact equality, not a tolerance: both modes fold completions
            // through the same sink in the same order.
            assert_eq!(mem.metrics, st.metrics, "full_reassign={full_reassign}");
            assert_eq!(st.admitted, 6);
            assert!(st.peak_alive >= 2);
            assert_eq!(st.quantiles.count(), 6);
        }
    }

    #[test]
    fn streaming_arena_stays_bounded_by_alive_set() {
        // 16 sequential jobs with disjoint lifetimes: the free list must
        // recycle one arena slot throughout.
        let jobs: Vec<(f64, f64)> = (0..16).map(|i| (2.0 * f64::from(i), 1.0)).collect();
        let instance = inst(&jobs, Curve::Sequential);
        let mut p = EquiSplit;
        let mut source = StaticSource::new(&instance);
        let mut obs = NullObserver;
        let mut engine = Engine::new(
            EngineConfig::new(1.0).with_streaming(true),
            &mut p,
            &mut source,
            &mut obs,
        );
        while engine.step().unwrap() {}
        assert_eq!(engine.peak_alive, 1);
        assert_eq!(engine.jobs.len(), 1, "slots were not recycled");
        assert_eq!(engine.admitted, 16);
        let out = engine.into_streaming_outcome().unwrap();
        assert_eq!(out.metrics.num_jobs, 16);
        assert!((out.metrics.total_flow - 16.0).abs() < 1e-9);
    }

    #[test]
    fn streaming_retires_completed_ids() {
        let instance = inst(&[(0.0, 2.0), (5.0, 1.0)], Curve::Sequential);
        let mut p = EquiSplit;
        let mut source = StaticSource::new(&instance);
        let mut obs = NullObserver;
        let mut engine = Engine::new(
            EngineConfig::new(1.0).with_streaming(true),
            &mut p,
            &mut source,
            &mut obs,
        );
        engine.next_event_time().unwrap();
        assert_eq!(engine.remaining_of(JobId(0)), Some(2.0));
        engine.advance_to(2.0).unwrap();
        // Completed → retired: the record is gone, not zeroed.
        assert_eq!(engine.remaining_of(JobId(0)), None);
        while engine.step().unwrap() {}
        let out = engine.into_streaming_outcome().unwrap();
        assert_eq!(out.metrics.num_jobs, 2);
    }

    #[test]
    fn streaming_engine_rejects_in_memory_finalizers() {
        let instance = inst(&[(0.0, 1.0)], Curve::Sequential);
        let mut p = EquiSplit;
        let mut source = StaticSource::new(&instance);
        let mut obs = NullObserver;
        let err = Engine::new(
            EngineConfig::new(1.0).with_streaming(true),
            &mut p,
            &mut source,
            &mut obs,
        )
        .run()
        .unwrap_err();
        assert!(matches!(err, SimError::BadInstance { .. }), "{err:?}");
    }

    #[test]
    fn run_streaming_finalizer_works_in_memory_too() {
        // The streaming finalizer on a non-streaming engine reports the
        // same aggregates — it reads the same sink.
        let instance = inst(&[(0.0, 2.0), (1.0, 3.0)], Curve::power(0.5));
        let mem = simulate(&instance, &mut EquiSplit, 2.0).unwrap();
        let mut p = EquiSplit;
        let mut source = StaticSource::new(&instance);
        let mut obs = NullObserver;
        let st = Engine::new(EngineConfig::new(2.0), &mut p, &mut source, &mut obs)
            .run_streaming()
            .unwrap();
        assert_eq!(mem.metrics, st.metrics);
    }

    #[test]
    fn simulate_streaming_audits_and_bounds_memory() {
        let instance = inst(&[(0.0, 2.0), (0.5, 1.0), (4.0, 1.0)], Curve::power(0.5));
        let mut source = StaticSource::new(&instance);
        let out = simulate_streaming_audited(&mut source, &mut EquiSplit, 2.0, AuditLevel::Strict)
            .unwrap();
        assert_eq!(out.metrics.num_jobs, 3);
        let report = out.audit.expect("audited run carries a report");
        assert!(report.frames > 0);
        assert!(report.final_checked);
    }

    #[test]
    fn id_map_remove_frees_dense_and_sparse_slots() {
        let mut map = IdMap::default();
        map.insert(JobId(1), 0);
        map.insert(JobId(1 << 40), 1);
        map.remove(JobId(1));
        map.remove(JobId(1 << 40));
        assert_eq!(map.get(JobId(1)), None);
        assert_eq!(map.get(JobId(1 << 40)), None);
        assert_eq!(map.live, 0);
        map.insert(JobId(1), 5);
        assert_eq!(map.get(JobId(1)), Some(5));
        assert_eq!(map.live, 1);
        // Removing an absent id is a no-op.
        map.remove(JobId(999));
        assert_eq!(map.live, 1);
    }

    #[test]
    fn large_clock_values_cannot_spin_the_event_loop() {
        // Past t ≈ 4·10⁶, `ulp(now)` exceeds `EPS` and a unit-size job's
        // final work sliver can round to a drain time below the clock's
        // resolution: `now + rem/rate == now` in f64. Without the
        // clock-aware completion tolerance the loop then spins on
        // zero-length events forever (the bug surfaced on multi-million-job
        // streaming runs, whose makespans reach 10⁷). The event cap turns a
        // regression into an error instead of a hang.
        let t0 = 9_000_000.0;
        let jobs: Vec<(f64, f64)> = (0..200).map(|i| (t0 + f64::from(i) * 0.37, 1.0)).collect();
        let instance = inst(&jobs, Curve::power(0.5));
        let mut p = EquiSplit;
        let mut source = StaticSource::new(&instance);
        let mut obs = NullObserver;
        let out = Engine::new(
            EngineConfig::new(2.0).with_max_events(20_000),
            &mut p,
            &mut source,
            &mut obs,
        )
        .run()
        .expect("run must terminate at large clock values");
        assert_eq!(out.metrics.num_jobs, 200);
        // The identity the audit layer checks must also hold out here,
        // where the admission window is at its absolute cap.
        assert!(
            (out.metrics.total_flow - out.metrics.alive_integral).abs()
                < 1e-6 * out.metrics.total_flow.max(1.0),
            "flow {} vs alive integral {}",
            out.metrics.total_flow,
            out.metrics.alive_integral
        );
    }
}
