//! A minimal JSON reader/writer for the trace format.
//!
//! The offline dependency set has a `serde` shim that only type-checks
//! derives — there is no serde *format* crate — so, like the CSV dialect
//! in [`crate::csv`], traces round-trip through a small hand-rolled
//! codec. This module is deliberately tiny: a recursive-descent parser
//! into a [`Json`] value tree (objects, arrays, numbers kept as raw
//! lexemes for lossless `f64`/`u64` reads, strings with standard escapes,
//! booleans, null) and a string-escape helper for the writer side.

#![allow(dead_code)]

/// A parsed JSON value. Numbers keep their raw lexeme so integer ids
/// larger than 2^53 survive a round-trip.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw lexeme.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub(crate) fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field, with a path-ish error.
    pub(crate) fn req(&self, key: &str) -> Result<&Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field '{key}'"))
    }

    pub(crate) fn as_f64(&self) -> Result<f64, String> {
        match self {
            Json::Num(raw) => raw.parse().map_err(|e| format!("bad number '{raw}': {e}")),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    pub(crate) fn as_u64(&self) -> Result<u64, String> {
        match self {
            Json::Num(raw) => raw.parse().map_err(|e| format!("bad integer '{raw}': {e}")),
            other => Err(format!("expected integer, got {other:?}")),
        }
    }

    pub(crate) fn as_usize(&self) -> Result<usize, String> {
        self.as_u64().map(|v| v as usize)
    }

    pub(crate) fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    pub(crate) fn as_arr(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        // Validate eagerly so errors point at the lexeme, not a later read.
        raw.parse::<f64>()
            .map_err(|e| format!("bad number '{raw}' at byte {start}: {e}"))?;
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| "non-utf8 \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint {code:#x}"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 scalar. Validate at most
                    // 4 bytes — validating the whole remaining input here
                    // makes parsing quadratic in document size.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let head = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(head) {
                        Ok(s) => s.chars().next().unwrap(),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&head[..e.valid_up_to()])
                                .unwrap()
                                .chars()
                                .next()
                                .unwrap()
                        }
                        Err(_) => return Err("non-utf8 string".to_string()),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

/// Escapes a string for embedding in a JSON document (writer side).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e-2], "b": {"c": "x\ny"}, "d": true, "e": null}"#;
        let v = Json::parse(doc).unwrap();
        let a = v.req("a").unwrap().as_arr().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_u64().unwrap(), 1);
        assert!((a[1].as_f64().unwrap() - 2.5).abs() < 1e-15);
        assert!((a[2].as_f64().unwrap() + 0.03).abs() < 1e-15);
        assert_eq!(
            v.req("b").unwrap().req("c").unwrap().as_str().unwrap(),
            "x\ny"
        );
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e"), Some(&Json::Null));
        assert_eq!(v.get("zzz"), None);
    }

    #[test]
    fn huge_integers_survive() {
        let v = Json::parse("{\"id\": 18446744073709551615}").unwrap();
        assert_eq!(v.req("id").unwrap().as_u64().unwrap(), u64::MAX);
    }

    #[test]
    fn float_lexemes_round_trip_exactly() {
        let x = 0.1_f64 + 0.2_f64;
        let doc = format!("[{x:?}]");
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.as_arr().unwrap()[0].as_f64().unwrap(), x);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f→g";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(Json::parse(&doc).unwrap().as_str().unwrap(), nasty);
    }

    #[test]
    fn multibyte_scalars_parse_anywhere_in_the_string() {
        // Exercises the bounded (≤ 4-byte) scalar decode, including a
        // 4-byte scalar as the very last bytes of the document.
        let s = "α→𝛼";
        let doc = format!("\"{s}\"");
        assert_eq!(Json::parse(&doc).unwrap().as_str().unwrap(), s);
        assert!(Json::parse("\"\u{10348}").is_err()); // unterminated, 4-byte tail
    }

    #[test]
    fn large_documents_parse_in_linear_time() {
        // Regression: the string parser used to re-validate the entire
        // remaining input per character, making multi-MB traces take
        // minutes. Keep this generous (wall-clock CI noise) — the broken
        // behaviour was ~1000x over the bound, not 2x.
        let events: Vec<String> = (0..20_000)
            .map(|i| format!("{{\"kind\": \"alloc→{i}\", \"t\": {i}.5}}"))
            .collect();
        let doc = format!("[{}]", events.join(", "));
        let t0 = std::time::Instant::now();
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.as_arr().unwrap().len(), 20_000);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "parsing a {} KiB document took {:?}",
            doc.len() / 1024,
            t0.elapsed()
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("[1] x").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("[--1]").is_err());
    }

    #[test]
    fn whitespace_everywhere_is_fine() {
        let v = Json::parse(" \n{ \"a\" :\t[ ] , \"b\" : { } }\r\n").unwrap();
        assert_eq!(v.req("a").unwrap().as_arr().unwrap().len(), 0);
        assert!(matches!(v.req("b").unwrap(), Json::Obj(f) if f.is_empty()));
    }
}
