//! A minimal JSON reader/writer for the trace format.
//!
//! The offline dependency set has a `serde` shim that only type-checks
//! derives — there is no serde *format* crate — so, like the CSV dialect
//! in [`crate::csv`], traces round-trip through a small hand-rolled
//! codec. This module is deliberately tiny: a recursive-descent parser
//! into a [`Json`] value tree (objects, arrays, numbers kept as raw
//! lexemes for lossless `f64`/`u64` reads, strings with standard escapes,
//! booleans, null) and a string-escape helper for the writer side. It is
//! public because downstream crates (the adversary corpus codec in
//! `parsched-adversary`) reuse the same dialect for their own committed
//! JSON artifacts.

/// A parsed JSON value. Numbers keep their raw lexeme so integer ids
/// larger than 2^53 survive a round-trip.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw lexeme.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field, with a path-ish error.
    pub fn req(&self, key: &str) -> Result<&Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field '{key}'"))
    }

    /// The number as `f64` (error on non-numbers or bad lexemes).
    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            Json::Num(raw) => raw.parse().map_err(|e| format!("bad number '{raw}': {e}")),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    /// The number as `u64` (error on non-numbers or bad lexemes).
    pub fn as_u64(&self) -> Result<u64, String> {
        match self {
            Json::Num(raw) => raw.parse().map_err(|e| format!("bad integer '{raw}': {e}")),
            other => Err(format!("expected integer, got {other:?}")),
        }
    }

    /// The number as `usize` (error on non-numbers or bad lexemes).
    pub fn as_usize(&self) -> Result<usize, String> {
        self.as_u64().map(|v| v as usize)
    }

    /// The string contents (error on non-strings).
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    /// The array items (error on non-arrays).
    pub fn as_arr(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("expected array, got {other:?}")),
        }
    }

    /// Serializes the value back to JSON text (compact, no whitespace).
    ///
    /// `parse ∘ render` is the identity on `Json` values: numbers emit
    /// their stored raw lexeme verbatim and strings round-trip through
    /// [`escape`], so `parse → render → parse` is a fixed point on any
    /// valid document (the fuzz suite below locks this in).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        // Validate eagerly so errors point at the lexeme, not a later read.
        raw.parse::<f64>()
            .map_err(|e| format!("bad number '{raw}' at byte {start}: {e}"))?;
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| "non-utf8 \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint {code:#x}"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 scalar. Validate at most
                    // 4 bytes — validating the whole remaining input here
                    // makes parsing quadratic in document size.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let head = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(head) {
                        Ok(s) => s.chars().next().unwrap(),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&head[..e.valid_up_to()])
                                .unwrap()
                                .chars()
                                .next()
                                .unwrap()
                        }
                        Err(_) => return Err("non-utf8 string".to_string()),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

/// Escapes a string for embedding in a JSON document (writer side).
/// Escapes a string for embedding between JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e-2], "b": {"c": "x\ny"}, "d": true, "e": null}"#;
        let v = Json::parse(doc).unwrap();
        let a = v.req("a").unwrap().as_arr().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_u64().unwrap(), 1);
        assert!((a[1].as_f64().unwrap() - 2.5).abs() < 1e-15);
        assert!((a[2].as_f64().unwrap() + 0.03).abs() < 1e-15);
        assert_eq!(
            v.req("b").unwrap().req("c").unwrap().as_str().unwrap(),
            "x\ny"
        );
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e"), Some(&Json::Null));
        assert_eq!(v.get("zzz"), None);
    }

    #[test]
    fn huge_integers_survive() {
        let v = Json::parse("{\"id\": 18446744073709551615}").unwrap();
        assert_eq!(v.req("id").unwrap().as_u64().unwrap(), u64::MAX);
    }

    #[test]
    fn float_lexemes_round_trip_exactly() {
        let x = 0.1_f64 + 0.2_f64;
        let doc = format!("[{x:?}]");
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.as_arr().unwrap()[0].as_f64().unwrap(), x);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f→g";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(Json::parse(&doc).unwrap().as_str().unwrap(), nasty);
    }

    #[test]
    fn multibyte_scalars_parse_anywhere_in_the_string() {
        // Exercises the bounded (≤ 4-byte) scalar decode, including a
        // 4-byte scalar as the very last bytes of the document.
        let s = "α→𝛼";
        let doc = format!("\"{s}\"");
        assert_eq!(Json::parse(&doc).unwrap().as_str().unwrap(), s);
        assert!(Json::parse("\"\u{10348}").is_err()); // unterminated, 4-byte tail
    }

    #[test]
    fn large_documents_parse_in_linear_time() {
        // Regression: the string parser used to re-validate the entire
        // remaining input per character, making multi-MB traces take
        // minutes. Keep this generous (wall-clock CI noise) — the broken
        // behaviour was ~1000x over the bound, not 2x.
        let events: Vec<String> = (0..20_000)
            .map(|i| format!("{{\"kind\": \"alloc→{i}\", \"t\": {i}.5}}"))
            .collect();
        let doc = format!("[{}]", events.join(", "));
        let t0 = std::time::Instant::now();
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.as_arr().unwrap().len(), 20_000);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "parsing a {} KiB document took {:?}",
            doc.len() / 1024,
            t0.elapsed()
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("[1] x").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("[--1]").is_err());
    }

    #[test]
    fn whitespace_everywhere_is_fine() {
        let v = Json::parse(" \n{ \"a\" :\t[ ] , \"b\" : { } }\r\n").unwrap();
        assert_eq!(v.req("a").unwrap().as_arr().unwrap().len(), 0);
        assert!(matches!(v.req("b").unwrap(), Json::Obj(f) if f.is_empty()));
    }

    #[test]
    fn render_round_trips_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e-2], "b": {"c": "x\ny"}, "d": true, "e": null}"#;
        let v = Json::parse(doc).unwrap();
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Compact rendering is already a fixed point of itself.
        assert_eq!(Json::parse(&text).unwrap().render(), text);
    }
}

/// Byte-level fuzzing of the parser plus the parse→render→parse fixed
/// point, locking in the PR 2 linear-time string parsing fix (a quadratic
/// or panicking path would surface here first). Structure-aware cases
/// mutate the committed golden trace, so the fuzz corpus always contains a
/// realistic document of every node kind the codec emits.
#[cfg(test)]
mod fuzz {
    use super::*;
    use proptest::prelude::*;

    /// The committed golden trace (`tests/fixtures/golden_trace.json`).
    const GOLDEN: &str = include_str!("../../../tests/fixtures/golden_trace.json");

    /// Splitmix-style generator so the recursive builder below needs no
    /// strategy plumbing — one u64 seed per proptest case.
    fn next(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z ^ (z >> 27)
    }

    /// Builds an arbitrary valid [`Json`] value (bounded depth/width),
    /// covering every node kind plus nasty strings and extreme numbers.
    fn build_value(seed: &mut u64, depth: usize) -> Json {
        let kind = next(seed) % if depth >= 3 { 4 } else { 6 };
        match kind {
            0 => Json::Null,
            1 => Json::Bool(next(seed).is_multiple_of(2)),
            2 => {
                // Valid lexemes by construction: format a real number.
                let raw = match next(seed) % 4 {
                    0 => format!("{}", next(seed)),
                    1 => format!("-{}", next(seed) % 1_000_000),
                    2 => format!("{:?}", f64::from_bits(next(seed) % (1 << 62)).abs()),
                    _ => format!("{:e}", (next(seed) % 10_000) as f64 * 1e-3),
                };
                // Guard against the f64 formatting of non-finite bits.
                if raw.parse::<f64>().map(f64::is_finite).unwrap_or(false) {
                    Json::Num(raw)
                } else {
                    Json::Num("0".into())
                }
            }
            3 => {
                let pool = ['a', '"', '\\', '\n', '\t', '\u{1}', '→', '𝛼', '/', ' '];
                let len = (next(seed) % 12) as usize;
                Json::Str(
                    (0..len)
                        .map(|_| pool[next(seed) as usize % pool.len()])
                        .collect(),
                )
            }
            4 => {
                let len = (next(seed) % 4) as usize;
                Json::Arr((0..len).map(|_| build_value(seed, depth + 1)).collect())
            }
            _ => {
                let len = (next(seed) % 4) as usize;
                Json::Obj(
                    (0..len)
                        .map(|i| {
                            (
                                format!("k{i}\n\"{}", next(seed) % 10),
                                build_value(seed, depth + 1),
                            )
                        })
                        .collect(),
                )
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        #[test]
        fn parser_never_panics_on_random_bytes(
            bytes in proptest::collection::vec(0u8..=255, 0..512)
        ) {
            // Errors are fine; panics (or hangs) are the bug.
            let _ = Json::parse(&String::from_utf8_lossy(&bytes));
        }

        #[test]
        fn parser_never_panics_on_mutated_golden_trace(
            ops in proptest::collection::vec((0usize..4096, 0u8..=255, 0u8..4), 1..16)
        ) {
            let mut bytes = GOLDEN.as_bytes().to_vec();
            for (pos, byte, kind) in ops {
                if bytes.is_empty() {
                    break;
                }
                let pos = pos % bytes.len();
                match kind {
                    0 => bytes[pos] = byte,         // point corruption
                    1 => bytes.truncate(pos),       // truncation (split escapes/scalars)
                    2 => bytes.insert(pos, byte),   // insertion (stray structure)
                    _ => {
                        bytes.remove(pos);          // deletion (unbalanced brackets)
                    }
                }
            }
            let _ = Json::parse(&String::from_utf8_lossy(&bytes));
        }

        #[test]
        fn parse_render_parse_is_a_fixed_point(seed in 0u64..u64::MAX) {
            let mut s = seed;
            let v = build_value(&mut s, 0);
            let text = v.render();
            let back = Json::parse(&text).expect("rendered document must parse");
            prop_assert_eq!(&back, &v);
            prop_assert_eq!(back.render(), text);
        }

        #[test]
        fn mutated_golden_still_fixed_point_when_it_parses(
            mutation in (0usize..4096, 0u8..=255)
        ) {
            let (pos, byte) = mutation;
            let mut bytes = GOLDEN.as_bytes().to_vec();
            let pos = pos % bytes.len();
            bytes[pos] = byte;
            // Most mutations break the document; the interesting cases are
            // the ones that survive — their reparse must be stable.
            if let Ok(v) = Json::parse(&String::from_utf8_lossy(&bytes)) {
                let text = v.render();
                prop_assert_eq!(Json::parse(&text).expect("render must reparse"), v);
            }
        }
    }

    #[test]
    fn golden_trace_parse_render_parse_is_identity() {
        let v = Json::parse(GOLDEN).unwrap();
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(Json::parse(&text).unwrap().render(), text);
    }
}
