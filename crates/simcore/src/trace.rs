//! Deterministic run traces: a compact event log recorded through the
//! [`Observer`] hook, a JSON codec, and an offline [`replay`] that
//! re-drives a recorded run through the invariant-audit suite.
//!
//! A trace captures everything needed to re-derive a run from first
//! principles: the header (policy, `m`, speed, whether the policy claims
//! SRPT ordering), the full event stream (arrival batches, allocation
//! decisions, constant-allocation advances, completions), and optionally
//! the recorded [`RunMetrics`] of the original run. The [`replay`]
//! reconstructs every job's remaining work by integrating
//! `speed · Γ_j(x_j)` over the recorded intervals, feeds per-allocation
//! [`AuditFrame`]s through the same [`Auditor`] the engine uses online,
//! recomputes the run metrics independently, and cross-checks them against
//! the recorded ones — so a corrupted or hand-edited trace fails with a
//! structured [`Violation`] naming the exact event.
//!
//! Recording uses [`TraceRecorder`], an observer that consumes the
//! allocation stream (`needs_allocation_stream → true`), which forces the
//! engine onto the exhaustive differential-oracle path: the trace records
//! the allocations the engine *actually executed*, one record per event.
//!
//! The serialization is hand-rolled JSON (see [`crate::jsonlite`] for
//! why); curves reuse the compact field syntax of [`crate::csv`].

use std::collections::BTreeMap;

use crate::csv::{curve_from_field, curve_to_field};
use crate::engine::{Engine, EngineConfig};
use crate::error::SimError;
use crate::invariant::{
    AuditFrame, AuditLevel, AuditReport, Auditor, EnginePath, FinalAccounting, FrameJob, Violation,
};
use crate::job::{Instance, JobId, JobSpec, Time};
use crate::jsonlite::{escape, Json};
use crate::kahan::NeumaierSum;
use crate::metrics::{CompletedJob, RunMetrics, RunOutcome};
use crate::observer::Observer;
use crate::policy::{AliveJob, Policy};
use crate::source::StaticSource;

/// Relative tolerance for the replay's cross-checks (completion snap and
/// recorded-metrics agreement). Matches the audit layer's accumulated-sum
/// tolerance, not the per-operation [`parsched_speedup::EPS`].
const REL_TOL: f64 = 1e-6;

/// One record of a run's event log.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A batch of jobs released at `t`.
    Arrivals {
        /// Release instant.
        t: Time,
        /// The released specs.
        jobs: Vec<JobSpec>,
    },
    /// An allocation decision covering the interval starting at `t`.
    /// Only positive shares are recorded; an alive job without an entry
    /// holds zero processors.
    Allocation {
        /// Decision instant.
        t: Time,
        /// `(job, share)` pairs with `share > 0`.
        shares: Vec<(JobId, f64)>,
    },
    /// The clock advanced from `t0` to `t1` under a constant allocation.
    Advance {
        /// Interval start.
        t0: Time,
        /// Interval end.
        t1: Time,
    },
    /// A job completed at `t`.
    Completion {
        /// Completion instant.
        t: Time,
        /// The finished job.
        id: JobId,
    },
}

/// A recorded run: header + event log + (optionally) the metrics the
/// original run reported, for replay cross-checking.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Name of the policy that ran.
    pub policy: String,
    /// Machine capacity `m`.
    pub m: f64,
    /// Speed-augmentation factor.
    pub speed: f64,
    /// Whether the policy claims SRPT-ordered allocations
    /// ([`Policy::srpt_ordered`]); gates the `srpt-prefix` check on replay.
    pub srpt_ordered: bool,
    /// The event log, in engine order.
    pub events: Vec<TraceEvent>,
    /// Metrics of the original run, when recorded.
    pub recorded: Option<RunMetrics>,
}

/// An [`Observer`] that records the full event log of a run.
///
/// Consumes the allocation stream, so the engine runs its exhaustive
/// (differential-oracle) path while recording.
#[derive(Debug)]
pub struct TraceRecorder {
    policy: String,
    m: f64,
    speed: f64,
    srpt_ordered: bool,
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// Creates a recorder. The header fields are taken here because the
    /// [`Observer`] callbacks never see the policy or config.
    pub fn new(policy: String, m: f64, speed: f64, srpt_ordered: bool) -> Self {
        Self {
            policy,
            m,
            speed,
            srpt_ordered,
            events: Vec::new(),
        }
    }

    /// Number of recorded events so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finalizes into a [`Trace`], attaching the original run's metrics
    /// for replay cross-checking.
    pub fn into_trace(self, recorded: Option<RunMetrics>) -> Trace {
        Trace {
            policy: self.policy,
            m: self.m,
            speed: self.speed,
            srpt_ordered: self.srpt_ordered,
            events: self.events,
            recorded,
        }
    }
}

impl Observer for TraceRecorder {
    fn on_arrivals(&mut self, t: Time, jobs: &[JobSpec]) {
        self.events.push(TraceEvent::Arrivals {
            t,
            jobs: jobs.to_vec(),
        });
    }

    fn on_completion(&mut self, t: Time, job: &JobSpec) {
        self.events.push(TraceEvent::Completion { t, id: job.id });
    }

    fn on_allocation(&mut self, t: Time, jobs: &[AliveJob<'_>], shares: &[f64]) {
        self.events.push(TraceEvent::Allocation {
            t,
            shares: jobs
                .iter()
                .zip(shares)
                .filter(|&(_, &s)| s > 0.0)
                .map(|(j, &s)| (j.id(), s))
                .collect(),
        });
    }

    fn on_advance(&mut self, t0: Time, t1: Time) {
        self.events.push(TraceEvent::Advance { t0, t1 });
    }
}

/// Runs `policy` on `instance` with `m` processors while recording a
/// trace; returns the trace (with the run's metrics embedded) and the
/// outcome. The recording observer forces the exhaustive engine path.
pub fn record_run(
    instance: &Instance,
    policy: &mut dyn Policy,
    m: f64,
) -> Result<(Trace, RunOutcome), SimError> {
    record_run_with_config(instance, policy, EngineConfig::new(m))
}

/// Like [`record_run`], with full [`EngineConfig`] control (speed,
/// audit level, limits).
pub fn record_run_with_config(
    instance: &Instance,
    policy: &mut dyn Policy,
    cfg: EngineConfig,
) -> Result<(Trace, RunOutcome), SimError> {
    let mut recorder = TraceRecorder::new(policy.name(), cfg.m, cfg.speed, policy.srpt_ordered());
    let mut source = StaticSource::new(instance);
    let outcome = Engine::new(cfg, policy, &mut source, &mut recorder).run()?;
    let trace = recorder.into_trace(Some(outcome.metrics.clone()));
    Ok((trace, outcome))
}

fn num(x: f64) -> String {
    format!("{x:?}")
}

/// Serializes a trace to the `parsched-trace/v1` JSON format.
pub fn trace_to_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(64 * trace.events.len() + 256);
    out.push_str("{\n");
    out.push_str("  \"schema\": \"parsched-trace/v1\",\n");
    out.push_str(&format!("  \"policy\": \"{}\",\n", escape(&trace.policy)));
    out.push_str(&format!("  \"m\": {},\n", num(trace.m)));
    out.push_str(&format!("  \"speed\": {},\n", num(trace.speed)));
    out.push_str(&format!("  \"srpt_ordered\": {},\n", trace.srpt_ordered));
    match &trace.recorded {
        Some(r) => {
            out.push_str("  \"metrics\": {");
            let fields = [
                ("total_flow", num(r.total_flow)),
                ("mean_flow", num(r.mean_flow)),
                ("max_flow", num(r.max_flow)),
                ("fractional_flow", num(r.fractional_flow)),
                ("makespan", num(r.makespan)),
                ("num_jobs", r.num_jobs.to_string()),
                ("events", r.events.to_string()),
                ("alive_integral", num(r.alive_integral)),
                ("total_stretch", num(r.total_stretch)),
                ("max_stretch", num(r.max_stretch)),
                ("total_weighted_flow", num(r.total_weighted_flow)),
            ];
            let body: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("\"{k}\": {v}"))
                .collect();
            out.push_str(&body.join(", "));
            out.push_str("},\n");
        }
        None => out.push_str("  \"metrics\": null,\n"),
    }
    out.push_str("  \"events\": [\n");
    for (i, ev) in trace.events.iter().enumerate() {
        let line = match ev {
            TraceEvent::Arrivals { t, jobs } => {
                let specs: Vec<String> = jobs
                    .iter()
                    .map(|j| {
                        format!(
                            "{{\"id\": {}, \"release\": {}, \"size\": {}, \"curve\": \"{}\", \"weight\": {}}}",
                            j.id.0,
                            num(j.release),
                            num(j.size),
                            escape(&curve_to_field(&j.curve)),
                            num(j.weight)
                        )
                    })
                    .collect();
                format!(
                    "{{\"kind\": \"arrivals\", \"t\": {}, \"jobs\": [{}]}}",
                    num(*t),
                    specs.join(", ")
                )
            }
            TraceEvent::Allocation { t, shares } => {
                let pairs: Vec<String> = shares
                    .iter()
                    .map(|(id, s)| format!("[{}, {}]", id.0, num(*s)))
                    .collect();
                format!(
                    "{{\"kind\": \"alloc\", \"t\": {}, \"shares\": [{}]}}",
                    num(*t),
                    pairs.join(", ")
                )
            }
            TraceEvent::Advance { t0, t1 } => format!(
                "{{\"kind\": \"advance\", \"t0\": {}, \"t1\": {}}}",
                num(*t0),
                num(*t1)
            ),
            TraceEvent::Completion { t, id } => format!(
                "{{\"kind\": \"complete\", \"t\": {}, \"id\": {}}}",
                num(*t),
                id.0
            ),
        };
        out.push_str("    ");
        out.push_str(&line);
        out.push_str(if i + 1 < trace.events.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn bad(what: String) -> SimError {
    SimError::BadInstance {
        what: format!("trace: {what}"),
    }
}

/// Parses the `parsched-trace/v1` JSON format.
pub fn trace_from_json(text: &str) -> Result<Trace, SimError> {
    let doc = Json::parse(text).map_err(bad)?;
    let schema = doc.req("schema").and_then(Json::as_str).map_err(bad)?;
    if schema != "parsched-trace/v1" {
        return Err(bad(format!("unsupported schema '{schema}'")));
    }
    let policy = doc
        .req("policy")
        .and_then(Json::as_str)
        .map_err(bad)?
        .to_string();
    let m = doc.req("m").and_then(Json::as_f64).map_err(bad)?;
    let speed = doc.req("speed").and_then(Json::as_f64).map_err(bad)?;
    let srpt_ordered = match doc.req("srpt_ordered").map_err(bad)? {
        Json::Bool(b) => *b,
        other => return Err(bad(format!("srpt_ordered must be a bool, got {other:?}"))),
    };
    let recorded = match doc.get("metrics") {
        None | Some(Json::Null) => None,
        Some(mj) => Some(RunMetrics {
            total_flow: mj.req("total_flow").and_then(Json::as_f64).map_err(bad)?,
            mean_flow: mj.req("mean_flow").and_then(Json::as_f64).map_err(bad)?,
            max_flow: mj.req("max_flow").and_then(Json::as_f64).map_err(bad)?,
            fractional_flow: mj
                .req("fractional_flow")
                .and_then(Json::as_f64)
                .map_err(bad)?,
            makespan: mj.req("makespan").and_then(Json::as_f64).map_err(bad)?,
            num_jobs: mj.req("num_jobs").and_then(Json::as_usize).map_err(bad)?,
            events: mj.req("events").and_then(Json::as_u64).map_err(bad)?,
            alive_integral: mj
                .req("alive_integral")
                .and_then(Json::as_f64)
                .map_err(bad)?,
            total_stretch: mj
                .req("total_stretch")
                .and_then(Json::as_f64)
                .map_err(bad)?,
            max_stretch: mj.req("max_stretch").and_then(Json::as_f64).map_err(bad)?,
            total_weighted_flow: mj
                .req("total_weighted_flow")
                .and_then(Json::as_f64)
                .map_err(bad)?,
        }),
    };
    let mut events = Vec::new();
    for (i, ev) in doc
        .req("events")
        .and_then(Json::as_arr)
        .map_err(bad)?
        .iter()
        .enumerate()
    {
        let at = |what: String| bad(format!("event {i}: {what}"));
        let kind = ev.req("kind").and_then(Json::as_str).map_err(&at)?;
        events.push(match kind {
            "arrivals" => {
                let t = ev.req("t").and_then(Json::as_f64).map_err(&at)?;
                let mut jobs = Vec::new();
                for j in ev.req("jobs").and_then(Json::as_arr).map_err(&at)? {
                    let id = JobId(j.req("id").and_then(Json::as_u64).map_err(&at)?);
                    let release = j.req("release").and_then(Json::as_f64).map_err(&at)?;
                    let size = j.req("size").and_then(Json::as_f64).map_err(&at)?;
                    let curve =
                        curve_from_field(j.req("curve").and_then(Json::as_str).map_err(&at)?)?;
                    let weight = j.req("weight").and_then(Json::as_f64).map_err(&at)?;
                    jobs.push(JobSpec::new(id, release, size, curve).with_weight(weight));
                }
                TraceEvent::Arrivals { t, jobs }
            }
            "alloc" => {
                let t = ev.req("t").and_then(Json::as_f64).map_err(&at)?;
                let mut shares = Vec::new();
                for pair in ev.req("shares").and_then(Json::as_arr).map_err(&at)? {
                    let pair = pair.as_arr().map_err(&at)?;
                    if pair.len() != 2 {
                        return Err(at("share pair must be [id, share]".to_string()));
                    }
                    shares.push((
                        JobId(pair[0].as_u64().map_err(&at)?),
                        pair[1].as_f64().map_err(&at)?,
                    ));
                }
                TraceEvent::Allocation { t, shares }
            }
            "advance" => TraceEvent::Advance {
                t0: ev.req("t0").and_then(Json::as_f64).map_err(&at)?,
                t1: ev.req("t1").and_then(Json::as_f64).map_err(&at)?,
            },
            "complete" => TraceEvent::Completion {
                t: ev.req("t").and_then(Json::as_f64).map_err(&at)?,
                id: JobId(ev.req("id").and_then(Json::as_u64).map_err(&at)?),
            },
            other => return Err(at(format!("unknown event kind '{other}'"))),
        });
    }
    Ok(Trace {
        policy,
        m,
        speed,
        srpt_ordered,
        events,
        recorded,
    })
}

/// What a successful [`replay`] produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Metrics recomputed from the event log alone (independently of the
    /// recorded ones). The engine-internal `events` counter cannot be
    /// reconstructed from a trace, so it is adopted from the recorded
    /// metrics when present (trace-event count otherwise); every other
    /// field is re-derived and cross-checked.
    pub metrics: RunMetrics,
    /// Per-job completions, in completion order.
    pub completed: Vec<CompletedJob>,
    /// The audit report.
    pub report: AuditReport,
}

struct ReplayJob {
    spec: JobSpec,
    remaining: f64,
    done: bool,
}

/// Re-drives a recorded trace through the invariant-audit suite and
/// recomputes its metrics from first principles.
///
/// Structural defects (unknown ids, malformed ordering of records)
/// surface as [`SimError::BadInstance`]; conservation-law breaches —
/// including disagreement with the recorded metrics — surface as
/// [`SimError::AuditFailed`] with a structured [`Violation`].
pub fn replay(trace: &Trace, level: AuditLevel) -> Result<ReplayOutcome, SimError> {
    let mut auditor = Auditor::new(level);
    let mut jobs: Vec<ReplayJob> = Vec::new();
    let mut index: BTreeMap<JobId, usize> = BTreeMap::new();
    // Alive arena indices in admission order (replay frames iterate this).
    let mut alive: Vec<usize> = Vec::new();
    let mut shares: BTreeMap<JobId, f64> = BTreeMap::new();
    let mut now: Time = 0.0;
    let mut frames: u64 = 0;
    let mut total_flow = NeumaierSum::new();
    let mut max_flow = 0.0_f64;
    let mut frac_flow = NeumaierSum::new();
    let mut alive_integral = NeumaierSum::new();
    let mut completed: Vec<CompletedJob> = Vec::new();
    let violation = |invariant: &'static str, event: usize, at: Time| Violation {
        invariant,
        event: event as u64,
        at,
        job: None,
        expected: 0.0,
        actual: 0.0,
        policy: trace.policy.clone(),
        path: EnginePath::Replay,
        detail: String::new(),
    };
    let fail = |v: Violation| SimError::AuditFailed {
        violation: Box::new(v),
    };

    for (i, ev) in trace.events.iter().enumerate() {
        match ev {
            TraceEvent::Arrivals { t, jobs: batch } => {
                if *t < now - REL_TOL * now.abs().max(1.0) {
                    return Err(fail(Violation {
                        expected: now,
                        actual: *t,
                        detail: format!("arrival at {t} before the clock at {now}"),
                        ..violation("monotone-clock", i, *t)
                    }));
                }
                now = now.max(*t);
                for spec in batch {
                    if index.contains_key(&spec.id) {
                        return Err(bad(format!("event {i}: duplicate job id {}", spec.id)));
                    }
                    let idx = jobs.len();
                    index.insert(spec.id, idx);
                    alive.push(idx);
                    jobs.push(ReplayJob {
                        spec: spec.clone(),
                        remaining: spec.size,
                        done: false,
                    });
                }
            }
            TraceEvent::Allocation { t, shares: pairs } => {
                if *t < now - REL_TOL * now.abs().max(1.0) {
                    return Err(fail(Violation {
                        expected: now,
                        actual: *t,
                        detail: format!("allocation at {t} before the clock at {now}"),
                        ..violation("monotone-clock", i, *t)
                    }));
                }
                now = now.max(*t);
                shares.clear();
                for &(id, s) in pairs {
                    let Some(&idx) = index.get(&id) else {
                        return Err(bad(format!("event {i}: allocation to unknown job {id}")));
                    };
                    if jobs[idx].done {
                        return Err(bad(format!("event {i}: allocation to finished job {id}")));
                    }
                    shares.insert(id, s);
                }
                let event = frames;
                frames += 1;
                if auditor.wants_frame(event) {
                    let frame_jobs: Vec<FrameJob> = alive
                        .iter()
                        .map(|&idx| {
                            let j = &jobs[idx];
                            let share = shares.get(&j.spec.id).copied().unwrap_or(0.0);
                            let rate = if share > 0.0 {
                                trace.speed * j.spec.curve.rate(share)
                            } else {
                                0.0
                            };
                            FrameJob {
                                id: j.spec.id,
                                release: j.spec.release,
                                size: j.spec.size,
                                remaining: j.remaining,
                                share,
                                rate,
                            }
                        })
                        .collect();
                    auditor.check_frame(AuditFrame {
                        event,
                        t: now,
                        m: trace.m,
                        path: EnginePath::Replay,
                        policy: trace.policy.clone(),
                        jobs: frame_jobs,
                        // Replay iterates admission order, not SRPT order;
                        // the (order-independent) srpt-prefix check still
                        // applies when the policy claims it.
                        srpt_ordered_iteration: false,
                        srpt_ordered_policy: trace.srpt_ordered,
                    })?;
                }
            }
            TraceEvent::Advance { t0, t1 } => {
                if (*t0 - now).abs() > REL_TOL * now.abs().max(1.0) {
                    return Err(bad(format!(
                        "event {i}: advance starts at {t0} but the clock is at {now}"
                    )));
                }
                if *t1 < *t0 {
                    return Err(fail(Violation {
                        expected: *t0,
                        actual: *t1,
                        detail: format!("advance runs backwards: {t0} → {t1}"),
                        ..violation("monotone-clock", i, *t0)
                    }));
                }
                let dt = *t1 - *t0;
                alive_integral.add(alive.len() as f64 * dt);
                for &idx in &alive {
                    let j = &mut jobs[idx];
                    let share = shares.get(&j.spec.id).copied().unwrap_or(0.0);
                    let rate = if share > 0.0 {
                        trace.speed * j.spec.curve.rate(share)
                    } else {
                        0.0
                    };
                    let drained = rate * dt;
                    frac_flow.add((j.remaining - drained / 2.0).max(0.0) * dt / j.spec.size);
                    j.remaining = (j.remaining - drained).max(0.0);
                }
                now = *t1;
            }
            TraceEvent::Completion { t, id } => {
                if *t < now - REL_TOL * now.abs().max(1.0) {
                    return Err(fail(Violation {
                        expected: now,
                        actual: *t,
                        detail: format!("completion at {t} before the clock at {now}"),
                        ..violation("monotone-clock", i, *t)
                    }));
                }
                now = now.max(*t);
                let Some(&idx) = index.get(id) else {
                    return Err(bad(format!("event {i}: completion of unknown job {id}")));
                };
                if jobs[idx].done {
                    return Err(bad(format!("event {i}: job {id} completed twice")));
                }
                // The engine snaps a completion when remaining work is
                // within EPS·p_j of zero; a recorded completion whose
                // replayed drain leaves real work behind is a violation.
                let leftover = jobs[idx].remaining;
                let tol = REL_TOL * jobs[idx].spec.size.max(1.0);
                if leftover > tol {
                    return Err(fail(Violation {
                        job: Some(*id),
                        expected: 0.0,
                        actual: leftover,
                        detail: format!(
                            "job {id} completed with {leftover} work left: the recorded \
                             allocations do not drain it by t={t}"
                        ),
                        ..violation("completion", i, *t)
                    }));
                }
                jobs[idx].remaining = 0.0;
                jobs[idx].done = true;
                alive.retain(|&a| a != idx);
                shares.remove(id);
                let spec = &jobs[idx].spec;
                let cj = CompletedJob {
                    id: spec.id,
                    release: spec.release,
                    size: spec.size,
                    completion: now,
                    weight: spec.weight,
                };
                total_flow.add(cj.flow());
                max_flow = max_flow.max(cj.flow());
                completed.push(cj);
            }
        }
    }

    let n = completed.len();
    let total_flow = total_flow.value();
    let metrics = RunMetrics {
        total_flow,
        mean_flow: if n == 0 { 0.0 } else { total_flow / n as f64 },
        max_flow,
        fractional_flow: frac_flow.value(),
        makespan: completed.iter().map(|c| c.completion).fold(0.0, f64::max),
        num_jobs: n,
        events: trace
            .recorded
            .as_ref()
            .map(|r| r.events)
            .unwrap_or(trace.events.len() as u64),
        alive_integral: alive_integral.value(),
        total_stretch: NeumaierSum::total(completed.iter().map(|c| c.stretch())),
        max_stretch: completed.iter().map(|c| c.stretch()).fold(0.0, f64::max),
        total_weighted_flow: NeumaierSum::total(completed.iter().map(|c| c.weighted_flow())),
    };

    // Cross-check against the recorded metrics, when present: the replay
    // recomputed everything from the event log alone, so any disagreement
    // means the log and the summary tell different stories.
    if let Some(rec) = &trace.recorded {
        let last_event = trace.events.len().saturating_sub(1);
        if rec.num_jobs != metrics.num_jobs {
            return Err(fail(Violation {
                expected: rec.num_jobs as f64,
                actual: metrics.num_jobs as f64,
                detail: format!(
                    "recorded metrics claim {} completions but the log replays {}",
                    rec.num_jobs, metrics.num_jobs
                ),
                ..violation("recorded-metrics", last_event, now)
            }));
        }
        for (name, recorded, replayed) in [
            ("total_flow", rec.total_flow, metrics.total_flow),
            ("max_flow", rec.max_flow, metrics.max_flow),
            (
                "fractional_flow",
                rec.fractional_flow,
                metrics.fractional_flow,
            ),
            ("makespan", rec.makespan, metrics.makespan),
            ("alive_integral", rec.alive_integral, metrics.alive_integral),
            ("total_stretch", rec.total_stretch, metrics.total_stretch),
            (
                "total_weighted_flow",
                rec.total_weighted_flow,
                metrics.total_weighted_flow,
            ),
        ] {
            if (recorded - replayed).abs() > REL_TOL * recorded.abs().max(1.0) {
                return Err(fail(Violation {
                    expected: recorded,
                    actual: replayed,
                    detail: format!(
                        "recorded {name} = {recorded} but the log replays to {replayed}"
                    ),
                    ..violation("recorded-metrics", last_event, now)
                }));
            }
        }
    }

    auditor.check_final(&FinalAccounting {
        total_flow,
        alive_integral: alive_integral.value(),
        fractional_flow: frac_flow.value(),
        completed: n,
        admitted: jobs.len(),
        alive_left: alive.len(),
        at: now,
        events: trace.events.len() as u64,
        policy: trace.policy.clone(),
        path: EnginePath::Replay,
    })?;

    Ok(ReplayOutcome {
        metrics,
        completed,
        report: auditor.report(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::EquiSplit;
    use parsched_speedup::Curve;

    fn sample_instance() -> Instance {
        Instance::new(vec![
            JobSpec::new(JobId(0), 0.0, 4.0, Curve::power(0.5)),
            JobSpec::new(JobId(1), 0.5, 2.0, Curve::Sequential),
            JobSpec::new(JobId(2), 1.0, 3.0, Curve::FullyParallel),
        ])
        .unwrap()
    }

    #[test]
    fn record_replay_agrees_with_live_metrics() {
        let inst = sample_instance();
        let (trace, outcome) = record_run(&inst, &mut EquiSplit, 2.0).unwrap();
        let replayed = replay(&trace, AuditLevel::Strict).unwrap();
        assert_eq!(replayed.metrics, outcome.metrics);
        assert!(replayed.report.frames > 0);
        assert!(replayed.report.final_checked);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let inst = sample_instance();
        let (trace, _) = record_run(&inst, &mut EquiSplit, 2.0).unwrap();
        let json = trace_to_json(&trace);
        let back = trace_from_json(&json).unwrap();
        assert_eq!(back, trace);
        // And a second trip produces byte-identical text.
        assert_eq!(trace_to_json(&back), json);
    }

    #[test]
    fn corrupted_allocation_is_caught_with_context() {
        let inst = sample_instance();
        let (mut trace, _) = record_run(&inst, &mut EquiSplit, 2.0).unwrap();
        // Inflate one share beyond capacity.
        let target = trace
            .events
            .iter_mut()
            .find_map(|ev| match ev {
                TraceEvent::Allocation { shares, .. } if !shares.is_empty() => Some(shares),
                _ => None,
            })
            .expect("trace has allocations");
        target[0].1 *= 10.0;
        let err = replay(&trace, AuditLevel::Strict).unwrap_err();
        let SimError::AuditFailed { violation } = err else {
            panic!("expected audit failure")
        };
        assert_eq!(violation.invariant, "capacity");
        assert_eq!(violation.path, EnginePath::Replay);
        assert_eq!(violation.policy, "EQUI");
    }

    #[test]
    fn dropped_completion_breaks_recorded_metrics() {
        let inst = sample_instance();
        let (mut trace, _) = record_run(&inst, &mut EquiSplit, 2.0).unwrap();
        let last_completion = trace
            .events
            .iter()
            .rposition(|ev| matches!(ev, TraceEvent::Completion { .. }))
            .unwrap();
        trace.events.remove(last_completion);
        let err = replay(&trace, AuditLevel::Strict).unwrap_err();
        let SimError::AuditFailed { violation } = err else {
            panic!("expected audit failure")
        };
        assert_eq!(violation.invariant, "recorded-metrics");
    }

    #[test]
    fn starving_a_job_is_caught_at_its_completion() {
        let inst = sample_instance();
        let (mut trace, _) = record_run(&inst, &mut EquiSplit, 2.0).unwrap();
        // Zero out every share of job 0: its recorded completion becomes
        // impossible because no work drains.
        for ev in &mut trace.events {
            if let TraceEvent::Allocation { shares, .. } = ev {
                shares.retain(|&(id, _)| id != JobId(0));
            }
        }
        // Drop the recorded metrics so the leftover-work check (not the
        // summary cross-check) is what fires.
        trace.recorded = None;
        let err = replay(&trace, AuditLevel::Strict).unwrap_err();
        let SimError::AuditFailed { violation } = err else {
            panic!("expected audit failure")
        };
        assert_eq!(violation.invariant, "completion");
        assert_eq!(violation.job, Some(JobId(0)));
        assert!(violation.actual > 0.0);
    }

    #[test]
    fn structural_defects_are_not_violations() {
        let inst = sample_instance();
        let (mut trace, _) = record_run(&inst, &mut EquiSplit, 2.0).unwrap();
        if let Some(TraceEvent::Allocation { shares, .. }) = trace
            .events
            .iter_mut()
            .find(|ev| matches!(ev, TraceEvent::Allocation { .. }))
        {
            shares.push((JobId(999), 0.5));
        }
        let err = replay(&trace, AuditLevel::Strict).unwrap_err();
        assert!(matches!(err, SimError::BadInstance { .. }), "{err:?}");
    }

    #[test]
    fn unknown_schema_is_rejected() {
        assert!(trace_from_json("{\"schema\": \"nope\"}").is_err());
        assert!(trace_from_json("not json").is_err());
    }
}
