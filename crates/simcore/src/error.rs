//! Simulation error type.

use std::fmt;

use crate::job::Time;

/// Errors surfaced by the engine or by instance validation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An instance failed validation.
    BadInstance {
        /// Human-readable description of the defect.
        what: String,
    },
    /// A policy requested more processors than exist.
    InfeasibleAllocation {
        /// Time of the offending decision.
        at: Time,
        /// Total processors requested.
        requested: f64,
        /// Processors available.
        available: f64,
        /// Policy name.
        policy: String,
    },
    /// A policy returned a negative or non-finite share.
    InvalidShare {
        /// Time of the offending decision.
        at: Time,
        /// The offending share value.
        share: f64,
        /// Policy name.
        policy: String,
    },
    /// Jobs remain but nothing can make progress and no arrivals are pending.
    Stalled {
        /// Time at which the simulation stalled.
        at: Time,
        /// Number of starved jobs.
        alive: usize,
    },
    /// The configured event budget was exhausted (runaway quantum loop).
    EventLimit {
        /// The budget that was exhausted.
        limit: u64,
    },
    /// The configured time horizon was exceeded.
    TimeLimit {
        /// The horizon that was exceeded.
        limit: Time,
    },
    /// An arrival source emitted a job releasing in the past.
    ArrivalInPast {
        /// Current simulation time.
        now: Time,
        /// The stale release time.
        release: Time,
    },
    /// A runtime invariant audit detected a conservation-law violation.
    AuditFailed {
        /// The structured violation (invariant name, event, time, job,
        /// expected vs. actual, policy, path).
        violation: Box<crate::invariant::Violation>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadInstance { what } => write!(f, "invalid instance: {what}"),
            SimError::InfeasibleAllocation {
                at,
                requested,
                available,
                policy,
            } => write!(
                f,
                "policy {policy} requested {requested} of {available} processors at t={at}"
            ),
            SimError::InvalidShare { at, share, policy } => {
                write!(
                    f,
                    "policy {policy} returned invalid share {share} at t={at}"
                )
            }
            SimError::Stalled { at, alive } => {
                write!(f, "simulation stalled at t={at} with {alive} starved jobs")
            }
            SimError::EventLimit { limit } => write!(f, "event budget of {limit} exhausted"),
            SimError::TimeLimit { limit } => write!(f, "time horizon {limit} exceeded"),
            SimError::ArrivalInPast { now, release } => {
                write!(f, "source emitted release {release} in the past of t={now}")
            }
            SimError::AuditFailed { violation } => write!(f, "audit failed: {violation}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_numbers() {
        let e = SimError::InfeasibleAllocation {
            at: 3.0,
            requested: 5.0,
            available: 4.0,
            policy: "test".into(),
        };
        let s = e.to_string();
        assert!(s.contains('5') && s.contains('4') && s.contains("test"));
        assert!(SimError::EventLimit { limit: 10 }
            .to_string()
            .contains("10"));
    }
}
