//! The instance genome: a compact, mutable description of a workload.
//!
//! The search does not mutate raw job lists — it mutates this genome
//! (job count, size distribution, α mix, release pattern) and
//! *materializes* each candidate into a concrete [`Instance`] through a
//! deterministic function of the genome alone. That keeps candidates
//! cheap to store, mutation domain-aware (a "burst gap" tweak moves the
//! whole arrival structure coherently), and every discovered instance
//! replayable from a one-line provenance string.

use parsched_sim::{Instance, JobId, JobSpec, SimError};
use parsched_speedup::Curve;
use parsched_workloads::random::{AlphaDist, PoissonWorkload, SizeDist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the genome's jobs are spread over time.
///
/// These are the axes Theorem 2 of the source paper (and the Fox–Moseley
/// lower-bound constructions it builds on) suggest are adversarial:
/// synchronized bursts, starvation-probing trickles, trap-style ramps
/// that accelerate arrivals into a loaded system, and abrupt phase
/// transitions between those regimes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReleasePattern {
    /// Everything at `t = 0` — the regime where the heSRPT closed form
    /// gives an exact OPT reference, so measured ratios are tight.
    Batch,
    /// Poisson arrivals at the given offered load (work volume per unit
    /// of capacity; `1.0` is saturation).
    Poisson {
        /// Offered load `ρ`.
        load: f64,
    },
    /// `waves` synchronized batches, `gap` time units apart.
    Bursts {
        /// Number of waves (≥ 1).
        waves: usize,
        /// Time between consecutive waves.
        gap: f64,
    },
    /// One job every `spacing` time units — probes starvation of the
    /// backlog by a thin stream of fresh arrivals.
    Trickle {
        /// Inter-arrival spacing.
        spacing: f64,
    },
    /// Arrivals accelerating quadratically towards `horizon` — the
    /// trap-style ramp: the system fills slowly, then the adversary
    /// floods it just as the backlog peaks.
    Ramp {
        /// Time of the last (densest) arrival.
        horizon: f64,
    },
    /// Phase transition: the first `split` fraction arrives as a batch
    /// at `t = 0`, the rest trickles in every `spacing` units.
    Phases {
        /// Fraction of jobs in the opening batch (clamped to `[0, 1]`).
        split: f64,
        /// Spacing of the trailing trickle.
        spacing: f64,
    },
}

/// A candidate instance, described by its generative parameters.
///
/// Materialization is a pure function of the genome (sizes and α values
/// come from [`StdRng`] seeded with `seed`), so equal genomes produce
/// bit-identical instances on every thread, host, and run — the property
/// the byte-identical `--jobs N` guarantee rests on.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceGenome {
    /// Number of jobs.
    pub n: usize,
    /// Seed for the size/α draws.
    pub seed: u64,
    /// Job-size distribution.
    pub sizes: SizeDist,
    /// Parallelizability (α) distribution.
    pub alphas: AlphaDist,
    /// Arrival structure.
    pub release: ReleasePattern,
}

/// Bounds within which [`InstanceGenome::random`] and
/// [`InstanceGenome::mutate`] keep every axis, so candidate cost stays
/// predictable whatever the mutation path.
#[derive(Debug, Clone, Copy)]
pub struct GenomeBounds {
    /// Largest job count a candidate may reach.
    pub max_n: usize,
}

impl Default for GenomeBounds {
    fn default() -> Self {
        GenomeBounds { max_n: 64 }
    }
}

/// The α values mutation draws from: the paper's intermediate range plus
/// the near-sequential and near-parallel edges where regime boundaries
/// (and therefore policy mistakes) live.
const ALPHA_POOL: [f64; 6] = [0.1, 0.25, 0.37, 0.5, 0.75, 0.9];

impl InstanceGenome {
    /// A fresh random genome within `bounds`.
    pub fn random(rng: &mut StdRng, bounds: GenomeBounds) -> Self {
        let n = rng.gen_range(2..=bounds.max_n);
        let genome = InstanceGenome {
            n,
            seed: rng.gen_range(0..=u64::MAX / 2),
            sizes: random_sizes(rng),
            alphas: random_alphas(rng),
            release: random_release(rng),
        };
        debug_assert!(genome.n >= 2);
        genome
    }

    /// A mutated copy: one axis is re-drawn or perturbed, the rest kept.
    ///
    /// Mutation is the coordinate step of the search — by changing one
    /// axis at a time the elite pool climbs each dimension of instance
    /// space separately, like coordinate descent with random restarts.
    pub fn mutate(&self, rng: &mut StdRng, bounds: GenomeBounds) -> Self {
        let mut out = self.clone();
        match rng.gen_range(0u32..=5) {
            0 => {
                // Job count: geometric step up or down.
                out.n = if rng.gen::<f64>() < 0.5 {
                    (out.n / 2).max(2)
                } else {
                    (out.n * 2).min(bounds.max_n)
                };
            }
            1 => out.seed = rng.gen_range(0..=u64::MAX / 2),
            2 => out.sizes = random_sizes(rng),
            3 => out.alphas = random_alphas(rng),
            4 => out.release = random_release(rng),
            _ => {
                // In-place perturbation of the release pattern's scale —
                // the fine-grained half of the coordinate step.
                out.release = match out.release {
                    ReleasePattern::Batch => ReleasePattern::Batch,
                    ReleasePattern::Poisson { load } => ReleasePattern::Poisson {
                        load: (load * rng.gen_range(0.5..=1.5)).clamp(0.1, 2.0),
                    },
                    ReleasePattern::Bursts { waves, gap } => ReleasePattern::Bursts {
                        waves: (waves + 1).min(8),
                        gap: (gap * rng.gen_range(0.5..=1.5)).clamp(0.1, 64.0),
                    },
                    ReleasePattern::Trickle { spacing } => ReleasePattern::Trickle {
                        spacing: (spacing * rng.gen_range(0.5..=1.5)).clamp(0.01, 64.0),
                    },
                    ReleasePattern::Ramp { horizon } => ReleasePattern::Ramp {
                        horizon: (horizon * rng.gen_range(0.5..=1.5)).clamp(0.1, 256.0),
                    },
                    ReleasePattern::Phases { split, spacing } => ReleasePattern::Phases {
                        split: (split + rng.gen_range(-0.2..=0.2)).clamp(0.0, 1.0),
                        spacing: (spacing * rng.gen_range(0.5..=1.5)).clamp(0.01, 64.0),
                    },
                };
            }
        }
        out
    }

    /// Materializes the genome into a concrete instance.
    ///
    /// Release times are analytic functions of the pattern (except
    /// Poisson, which draws inter-arrivals from the seeded RNG); sizes
    /// and α values are drawn from `StdRng::seed_from_u64(self.seed)`.
    /// Equal genomes therefore always yield equal instances.
    pub fn materialize(&self, m: f64) -> Result<Instance, SimError> {
        if let ReleasePattern::Poisson { load } = self.release {
            // Reuse the workloads generator so Poisson genomes match the
            // experiment pipeline's instances exactly.
            return PoissonWorkload {
                n: self.n,
                rate: PoissonWorkload::rate_for_load(load, m, &self.sizes),
                sizes: self.sizes,
                alphas: self.alphas.clone(),
                seed: self.seed,
            }
            .generate();
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.n;
        let jobs: Vec<JobSpec> = (0..n)
            .map(|i| {
                let release = match self.release {
                    ReleasePattern::Batch => 0.0,
                    ReleasePattern::Poisson { .. } => unreachable!("handled above"),
                    ReleasePattern::Bursts { waves, gap } => {
                        (i % waves.max(1)) as f64 * gap.max(0.0)
                    }
                    ReleasePattern::Trickle { spacing } => i as f64 * spacing.max(0.0),
                    ReleasePattern::Ramp { horizon } => {
                        let u = i as f64 / n as f64;
                        horizon.max(0.0) * u * u
                    }
                    ReleasePattern::Phases { split, spacing } => {
                        let head = (split.clamp(0.0, 1.0) * n as f64) as usize;
                        if i < head {
                            0.0
                        } else {
                            (i - head + 1) as f64 * spacing.max(0.0)
                        }
                    }
                };
                let size = self.sizes.sample(&mut rng).max(1e-9);
                let alpha = self.alphas.sample(&mut rng).clamp(0.0, 1.0);
                JobSpec::new(JobId(i as u64), release, size, Curve::power(alpha))
            })
            .collect();
        // The engine requires releases in nondecreasing order of arrival;
        // Bursts interleaves waves, so sort (stably, by release then id).
        let mut jobs = jobs;
        jobs.sort_by(|a, b| {
            a.release
                .partial_cmp(&b.release)
                .expect("finite releases")
                .then(a.id.0.cmp(&b.id.0))
        });
        Instance::new(jobs)
    }

    /// One-line provenance string recorded in corpus entries.
    ///
    /// This is the debug rendering of the genome — stable enough for
    /// provenance (it is never parsed back; corpus replay uses the
    /// explicit job list).
    pub fn provenance(&self) -> String {
        format!("{self:?}")
    }
}

fn random_sizes(rng: &mut StdRng) -> SizeDist {
    match rng.gen_range(0u32..=3) {
        0 => SizeDist::Fixed(rng.gen_range(1.0..=32.0)),
        1 => SizeDist::LogUniform {
            p: rng.gen_range(2.0..=64.0),
        },
        2 => SizeDist::Pareto {
            p: rng.gen_range(2.0..=64.0),
            shape: rng.gen_range(0.8..=2.5),
        },
        _ => SizeDist::Bimodal {
            small: 1.0,
            large: rng.gen_range(8.0..=64.0),
            prob_large: rng.gen_range(0.05..=0.5),
        },
    }
}

fn random_alphas(rng: &mut StdRng) -> AlphaDist {
    match rng.gen_range(0u32..=2) {
        // Weighted towards Fixed: the heSRPT denominator (tight OPT) only
        // applies to common-α batches, so the search finds *provably*
        // hard instances fastest there.
        0 | 1 => AlphaDist::Fixed(ALPHA_POOL[rng.gen_range(0..ALPHA_POOL.len())]),
        _ => {
            let a = ALPHA_POOL[rng.gen_range(0..ALPHA_POOL.len())];
            let b = ALPHA_POOL[rng.gen_range(0..ALPHA_POOL.len())];
            AlphaDist::Choice(vec![(a, 1.0), (b, rng.gen_range(0.2..=2.0))])
        }
    }
}

fn random_release(rng: &mut StdRng) -> ReleasePattern {
    match rng.gen_range(0u32..=5) {
        0 => ReleasePattern::Batch,
        1 => ReleasePattern::Poisson {
            load: rng.gen_range(0.3..=1.5),
        },
        2 => ReleasePattern::Bursts {
            waves: rng.gen_range(2..=6),
            gap: rng.gen_range(0.5..=16.0),
        },
        3 => ReleasePattern::Trickle {
            spacing: rng.gen_range(0.05..=8.0),
        },
        4 => ReleasePattern::Ramp {
            horizon: rng.gen_range(1.0..=64.0),
        },
        _ => ReleasePattern::Phases {
            split: rng.gen_range(0.2..=0.8),
            spacing: rng.gen_range(0.05..=8.0),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn materialize_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let g = InstanceGenome::random(&mut rng, GenomeBounds::default());
            let a = g.materialize(4.0).expect("valid instance");
            let b = g.materialize(4.0).expect("valid instance");
            assert_eq!(a, b, "{g:?}");
        }
    }

    #[test]
    fn releases_are_sorted_and_finite() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let g = InstanceGenome::random(&mut rng, GenomeBounds::default());
            let inst = g.materialize(4.0).expect("valid instance");
            let jobs = inst.jobs();
            for w in jobs.windows(2) {
                assert!(w[0].release <= w[1].release, "{g:?}");
            }
            for j in jobs {
                assert!(j.release.is_finite() && j.release >= 0.0);
                assert!(j.size.is_finite() && j.size > 0.0);
            }
        }
    }

    #[test]
    fn mutation_stays_within_bounds() {
        let bounds = GenomeBounds { max_n: 32 };
        let mut rng = StdRng::seed_from_u64(13);
        let mut g = InstanceGenome::random(&mut rng, bounds);
        for _ in 0..500 {
            g = g.mutate(&mut rng, bounds);
            assert!(g.n >= 2 && g.n <= bounds.max_n, "{g:?}");
            assert!(g.materialize(4.0).is_ok(), "{g:?}");
        }
    }

    #[test]
    fn batch_genomes_are_batch_released() {
        let g = InstanceGenome {
            n: 8,
            seed: 5,
            sizes: SizeDist::LogUniform { p: 16.0 },
            alphas: AlphaDist::Fixed(0.5),
            release: ReleasePattern::Batch,
        };
        let inst = g.materialize(4.0).unwrap();
        assert!(inst.jobs().iter().all(|j| j.release == 0.0));
    }

    #[test]
    fn provenance_mentions_every_axis() {
        let g = InstanceGenome {
            n: 8,
            seed: 5,
            sizes: SizeDist::Fixed(2.0),
            alphas: AlphaDist::Fixed(0.5),
            release: ReleasePattern::Trickle { spacing: 0.25 },
        };
        let p = g.provenance();
        for needle in ["n: 8", "seed: 5", "Fixed", "Trickle"] {
            assert!(p.contains(needle), "{p}");
        }
    }
}
