//! The committed corpus codec: schema `parsched-adv/v1`.
//!
//! Every hard instance (or engine-failure reproducer) the search emits
//! is written as one JSON document under `tests/corpus/adversary/` and
//! replayed by `tests/adversary_corpus.rs` on every CI run. An entry
//! records the **explicit job list** — not just the genome — so replay
//! is independent of any future evolution of the generator or the RNG;
//! the genome provenance string and search parameters ride along for
//! archaeology only.
//!
//! Like the trace codec ([`parsched_sim::trace`]), documents round-trip
//! through [`parsched_sim::jsonlite`] with floats formatted by Rust's
//! shortest-round-trip `{:?}` — so a committed file re-renders to the
//! same bytes, which is what makes `--emit-corpus` output byte-stable
//! across worker counts and hosts.

use parsched_sim::jsonlite::{escape, Json};
use parsched_sim::{Instance, JobId, JobSpec, SimError};
use parsched_speedup::Curve;

/// Schema tag every entry must carry.
pub const SCHEMA: &str = "parsched-adv/v1";

/// Entry kind: a hard instance mined by the search.
pub const KIND_HARD: &str = "hard-instance";
/// Entry kind: a shrunk engine-failure reproducer.
pub const KIND_REPRODUCER: &str = "reproducer";

/// One corpus document.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// [`KIND_HARD`] or [`KIND_REPRODUCER`].
    pub kind: String,
    /// CLI-parsable policy token (`isrpt`, `equi`, `laps:0.5`, …).
    pub policy: String,
    /// Processor count the ratio was measured at.
    pub m: f64,
    /// Master seed of the search that found this entry.
    pub search_seed: u64,
    /// Evaluation budget of that search.
    pub budget: usize,
    /// Measured `flow / lb` (0 for reproducers).
    pub ratio: f64,
    /// Measured total flow time.
    pub flow: f64,
    /// The lower bound used as the denominator.
    pub lb: f64,
    /// Name of the bound ([`parsched_opt::LbKind::name`]).
    pub lb_kind: String,
    /// Git commit of the engine that measured the entry (provenance
    /// only; replay re-measures).
    pub engine_commit: String,
    /// Genome provenance string (not parsed back).
    pub genome: String,
    /// The explicit job list — the replayable part.
    pub jobs: Vec<JobSpec>,
}

/// The power-law exponent of a job's curve, for serialization.
///
/// The genome only emits `Curve::Power`; `Sequential` and
/// `FullyParallel` map to their exponent endpoints so a corpus entry
/// can always be written.
fn curve_alpha(curve: &Curve) -> Result<f64, String> {
    match curve {
        Curve::Power { alpha } => Ok(*alpha),
        Curve::Sequential => Ok(0.0),
        Curve::FullyParallel => Ok(1.0),
        other => Err(format!(
            "corpus entries require power-law curves, got {other:?}"
        )),
    }
}

/// Shortest-round-trip float lexeme, matching the trace codec.
fn num(x: f64) -> String {
    format!("{x:?}")
}

impl CorpusEntry {
    /// Renders the entry as a `parsched-adv/v1` document.
    ///
    /// One top-level field per line, one job per line: stable, diffable
    /// output for a committed corpus. Re-rendering a parsed entry
    /// reproduces the same bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", escape(SCHEMA)));
        out.push_str(&format!("  \"kind\": \"{}\",\n", escape(&self.kind)));
        out.push_str(&format!("  \"policy\": \"{}\",\n", escape(&self.policy)));
        out.push_str(&format!("  \"m\": {},\n", num(self.m)));
        out.push_str(&format!("  \"search_seed\": {},\n", self.search_seed));
        out.push_str(&format!("  \"budget\": {},\n", self.budget));
        out.push_str(&format!("  \"ratio\": {},\n", num(self.ratio)));
        out.push_str(&format!("  \"flow\": {},\n", num(self.flow)));
        out.push_str(&format!("  \"lb\": {},\n", num(self.lb)));
        out.push_str(&format!("  \"lb_kind\": \"{}\",\n", escape(&self.lb_kind)));
        out.push_str(&format!(
            "  \"engine_commit\": \"{}\",\n",
            escape(&self.engine_commit)
        ));
        out.push_str(&format!("  \"genome\": \"{}\",\n", escape(&self.genome)));
        out.push_str("  \"jobs\": [\n");
        for (i, j) in self.jobs.iter().enumerate() {
            let alpha = curve_alpha(&j.curve).expect("corpus jobs use power-law curves");
            out.push_str(&format!(
                "    {{\"id\": {}, \"release\": {}, \"size\": {}, \"alpha\": {}}}{}\n",
                j.id.0,
                num(j.release),
                num(j.size),
                num(alpha),
                if i + 1 < self.jobs.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Parses a `parsched-adv/v1` document.
    pub fn from_json(text: &str) -> Result<CorpusEntry, String> {
        let v = Json::parse(text)?;
        let schema = v.req("schema")?.as_str()?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema '{schema}' (want '{SCHEMA}')"));
        }
        let jobs = v
            .req("jobs")?
            .as_arr()?
            .iter()
            .map(|j| {
                let id = j.req("id")?.as_u64()?;
                let release = j.req("release")?.as_f64()?;
                let size = j.req("size")?.as_f64()?;
                let alpha = j.req("alpha")?.as_f64()?;
                let curve =
                    Curve::try_power(alpha).map_err(|e| format!("job {id}: bad alpha: {e:?}"))?;
                Ok(JobSpec::new(JobId(id), release, size, curve))
            })
            .collect::<Result<Vec<JobSpec>, String>>()?;
        Ok(CorpusEntry {
            kind: v.req("kind")?.as_str()?.to_string(),
            policy: v.req("policy")?.as_str()?.to_string(),
            m: v.req("m")?.as_f64()?,
            search_seed: v.req("search_seed")?.as_u64()?,
            budget: v.req("budget")?.as_usize()?,
            ratio: v.req("ratio")?.as_f64()?,
            flow: v.req("flow")?.as_f64()?,
            lb: v.req("lb")?.as_f64()?,
            lb_kind: v.req("lb_kind")?.as_str()?.to_string(),
            engine_commit: v.req("engine_commit")?.as_str()?.to_string(),
            genome: v.req("genome")?.as_str()?.to_string(),
            jobs,
        })
    }

    /// Reconstructs the instance for replay.
    pub fn instance(&self) -> Result<Instance, SimError> {
        Instance::new(self.jobs.clone())
    }

    /// Deterministic file name for this entry within a corpus directory.
    ///
    /// `<policy-slug>-s<seed>-<rank>.json`, with the policy token
    /// sanitized (`laps:0.5` → `laps_0.5`) so names stay portable.
    pub fn file_name(&self, rank: usize) -> String {
        let slug: String = self
            .policy
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        format!("{slug}-s{}-{rank:02}.json", self.search_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> CorpusEntry {
        CorpusEntry {
            kind: KIND_HARD.to_string(),
            policy: "equi".to_string(),
            m: 4.0,
            search_seed: 7,
            budget: 640,
            ratio: 1.0 + 0.1 + 0.2, // deliberately non-terminating binary
            flow: 17.25,
            lb: 12.5,
            lb_kind: "hesrpt-batch".to_string(),
            engine_commit: "abc1234".to_string(),
            genome: "InstanceGenome { n: 2, .. }".to_string(),
            jobs: vec![
                JobSpec::new(JobId(0), 0.0, 4.0, Curve::power(0.5)),
                JobSpec::new(JobId(1), 0.1 + 0.2, 1.0, Curve::power(0.5)),
            ],
        }
    }

    #[test]
    fn round_trips_exactly() {
        let e = entry();
        let text = e.to_json();
        let back = CorpusEntry::from_json(&text).unwrap();
        assert_eq!(back, e);
        // Bit-exact floats, including the 0.30000000000000004 lexemes.
        assert_eq!(back.ratio.to_bits(), e.ratio.to_bits());
        assert_eq!(back.jobs[1].release.to_bits(), e.jobs[1].release.to_bits());
        // Re-rendering reproduces the same bytes.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn instance_reconstruction_matches_jobs() {
        let e = entry();
        let inst = e.instance().unwrap();
        assert_eq!(inst.jobs(), &e.jobs[..]);
    }

    #[test]
    fn rejects_other_schemas_and_garbage() {
        assert!(CorpusEntry::from_json("{}").is_err());
        assert!(CorpusEntry::from_json("not json").is_err());
        let wrong = entry()
            .to_json()
            .replace("parsched-adv/v1", "parsched-adv/v0");
        assert!(CorpusEntry::from_json(&wrong).is_err());
    }

    #[test]
    fn file_names_are_sanitized() {
        let mut e = entry();
        e.policy = "laps:0.5".to_string();
        assert_eq!(e.file_name(3), "laps_0.5-s7-03.json");
    }

    #[test]
    fn endpoint_curves_serialize_as_alpha_endpoints() {
        assert_eq!(curve_alpha(&Curve::Sequential).unwrap(), 0.0);
        assert_eq!(curve_alpha(&Curve::FullyParallel).unwrap(), 1.0);
        assert_eq!(curve_alpha(&Curve::power(0.37)).unwrap(), 0.37);
    }
}
