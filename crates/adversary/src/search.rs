//! The seeded evolutionary hard-instance search.
//!
//! A (μ + λ) elite-selection loop over [`InstanceGenome`]s: each
//! generation evaluates a population of candidates **in parallel** on the
//! deterministic [`Pool`] (per-worker [`EngineBuffers`], results
//! committed in input order), scores each by measured flow time divided
//! by the best provable OPT lower bound for the target policy, and
//! breeds the next generation from the elites by single-axis mutation.
//!
//! # Determinism
//!
//! Every RNG draw happens in the serial main loop (candidate generation
//! and mutation); workers only evaluate pure functions of the genome.
//! Evaluation order is therefore irrelevant and the whole search — the
//! elite set, the best-ratio trajectory, any fuzz failures — is
//! byte-identical across `--jobs N` (locked in by
//! `crates/analysis/tests/sweep_pool_determinism.rs`).
//!
//! # Fuzzing
//!
//! Each generation's top candidates are re-run under
//! [`AuditLevel::Strict`] on **both** engine paths (in-memory
//! incremental and streaming) with bit-exact cross-path comparison of
//! the aggregate metrics, so the search doubles as a fuzzer pointed at
//! exactly the instances that stress the engine most. Failures are
//! minimized by the domain-aware shrinker ([`crate::shrink_jobs`]) and
//! reported as reproducers.

use parsched::PolicyKind;
use parsched_analysis::{simulate_audited_reusing, Pool};
use parsched_opt::{best_lower_bound, LbKind};
use parsched_sim::{
    simulate_audited, simulate_streaming_audited, AuditLevel, EngineBuffers, Instance, JobSpec,
    StaticSource,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

use crate::genome::{GenomeBounds, InstanceGenome, ReleasePattern};
use crate::shrink::shrink_jobs;

/// Search parameters. Everything that affects the outcome is explicit
/// here — two equal configs produce byte-identical [`SearchOutcome`]s
/// regardless of `jobs`.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// The policy under attack.
    pub policy: PolicyKind,
    /// Processor count for every evaluation.
    pub m: f64,
    /// Master seed for candidate generation and mutation.
    pub seed: u64,
    /// Total number of candidate evaluations.
    pub budget: usize,
    /// Pool worker count (`0` = automatic). Affects wall clock only,
    /// never results.
    pub jobs: usize,
    /// Candidates per generation.
    pub population: usize,
    /// Elite pool size (parents of the next generation, and the
    /// candidates reported back).
    pub elites: usize,
    /// Bounds every genome is kept within.
    pub bounds: GenomeBounds,
    /// Per generation, how many of its best candidates get the strict
    /// dual-path fuzz treatment.
    pub fuzz_top: usize,
}

impl SearchConfig {
    /// A config with the standard knobs: `m = 4`, population 16, elite
    /// pool 8, top-4 fuzzing, automatic worker count.
    pub fn new(policy: PolicyKind, seed: u64, budget: usize) -> Self {
        SearchConfig {
            policy,
            m: 4.0,
            seed,
            budget,
            jobs: 0,
            population: 16,
            elites: 8,
            bounds: GenomeBounds::default(),
            fuzz_top: 4,
        }
    }
}

/// One scored candidate.
#[derive(Debug, Clone)]
pub struct Evaluated {
    /// The genome that produced the instance.
    pub genome: InstanceGenome,
    /// Measured total flow under the target policy.
    pub flow: f64,
    /// The best applicable OPT lower bound.
    pub lb: f64,
    /// Which bound produced `lb`.
    pub lb_kind: LbKind,
    /// `flow / lb` — the fitness; an empirical competitive-ratio
    /// certificate when `lb_kind` is tight.
    pub ratio: f64,
}

/// A strict-audit or cross-path failure, minimized to a reproducer.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Provenance of the genome that first triggered the failure.
    pub provenance: String,
    /// The shrunk job list that still reproduces the failure.
    pub jobs: Vec<JobSpec>,
    /// What went wrong (audit violation or cross-path divergence).
    pub error: String,
}

/// Everything a search run produced.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The elite pool, best ratio first (deterministic order).
    pub elites: Vec<Evaluated>,
    /// Best ratio seen so far, recorded after every generation.
    pub trajectory: Vec<f64>,
    /// Number of candidate evaluations actually performed.
    pub evals: usize,
    /// Engine failures discovered (and shrunk) along the way. Empty on a
    /// healthy engine — any entry is a bug reproducer.
    pub failures: Vec<FuzzFailure>,
}

/// Hand-picked generation-0 genomes: batch/common-α instances where the
/// heSRPT denominator is exact, plus one ramp — so the search starts
/// from provably-tight territory instead of random noise.
fn seed_genomes(cfg: &SearchConfig) -> Vec<InstanceGenome> {
    use parsched_workloads::random::{AlphaDist, SizeDist};
    let mut out = Vec::new();
    for (n, alpha) in [(4usize, 0.5f64), (12, 0.5), (24, 0.25), (24, 0.75)] {
        out.push(InstanceGenome {
            n: n.min(cfg.bounds.max_n),
            seed: cfg.seed ^ ((n as u64) << 8) ^ alpha.to_bits(),
            sizes: SizeDist::LogUniform { p: 16.0 },
            alphas: AlphaDist::Fixed(alpha),
            release: ReleasePattern::Batch,
        });
    }
    out.push(InstanceGenome {
        n: 16.min(cfg.bounds.max_n),
        seed: cfg.seed ^ 0x52414d50, // "RAMP"
        sizes: SizeDist::Bimodal {
            small: 1.0,
            large: 32.0,
            prob_large: 0.2,
        },
        alphas: AlphaDist::Fixed(0.5),
        release: ReleasePattern::Ramp { horizon: 8.0 },
    });
    out
}

/// Evaluates one genome: materialize, simulate (audit off — elites get
/// the strict treatment separately), score against the best LB.
///
/// Pure function of `(genome, policy, m)` — must stay free of worker
/// state so the pool's ordering guarantee makes the search
/// jobs-invariant. Returns `None` when the genome fails to materialize
/// or simulate; the selection loop just skips it.
fn evaluate(
    bufs: &mut EngineBuffers,
    genome: InstanceGenome,
    policy: PolicyKind,
    m: f64,
) -> Option<Evaluated> {
    let instance = genome.materialize(m).ok()?;
    let mut p = policy.build();
    let owned = std::mem::take(bufs);
    let (result, returned) =
        simulate_audited_reusing(owned, &instance, p.as_mut(), m, AuditLevel::Off);
    *bufs = returned;
    let outcome = result.ok()?;
    let flow = outcome.metrics.total_flow;
    let (lb, lb_kind) = best_lower_bound(&instance, m);
    // Reject non-finite or non-positive denominators (NaN included: a
    // NaN lb fails `is_finite` before the sign check can miss it).
    if !lb.is_finite() || lb <= 0.0 || !flow.is_finite() {
        return None;
    }
    Some(Evaluated {
        genome,
        flow,
        lb,
        lb_kind,
        ratio: flow / lb,
    })
}

/// Strict dual-path check: in-memory incremental vs streaming, both
/// under [`AuditLevel::Strict`], aggregates compared bit-for-bit.
///
/// `Ok(())` means both paths ran clean and agreed. `Err` carries a
/// human-readable description of the audit violation or divergence.
pub fn strict_dual_path_check(
    instance: &Instance,
    policy: PolicyKind,
    m: f64,
) -> Result<(), String> {
    let mem = simulate_audited(instance, policy.build().as_mut(), m, AuditLevel::Strict)
        .map_err(|e| format!("in-memory strict audit: {e}"))?;
    let mut source = StaticSource::new(instance);
    let st =
        simulate_streaming_audited(&mut source, policy.build().as_mut(), m, AuditLevel::Strict)
            .map_err(|e| format!("streaming strict audit: {e}"))?;
    let a = &mem.metrics;
    let b = &st.metrics;
    if a.total_flow.to_bits() != b.total_flow.to_bits()
        || a.makespan.to_bits() != b.makespan.to_bits()
        || a.num_jobs != b.num_jobs
    {
        return Err(format!(
            "cross-path divergence: in-memory (flow {}, makespan {}, n {}) \
             vs streaming (flow {}, makespan {}, n {})",
            a.total_flow, a.makespan, a.num_jobs, b.total_flow, b.makespan, b.num_jobs
        ));
    }
    Ok(())
}

/// Runs the search to completion. See the module docs for the loop
/// structure and the determinism contract.
pub fn run_search(cfg: &SearchConfig) -> SearchOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let pool = Pool::new(cfg.jobs);
    let population = cfg.population.max(2);
    let mut elites: Vec<Evaluated> = Vec::new();
    let mut trajectory = Vec::new();
    let mut failures = Vec::new();
    let mut fuzzed: BTreeSet<String> = BTreeSet::new();
    let mut evals = 0usize;

    let mut generation: Vec<InstanceGenome> = seed_genomes(cfg);
    generation.truncate(population);
    while generation.len() < population {
        generation.push(InstanceGenome::random(&mut rng, cfg.bounds));
    }

    while evals < cfg.budget {
        if evals + generation.len() > cfg.budget {
            generation.truncate(cfg.budget - evals);
            if generation.is_empty() {
                break;
            }
        }
        evals += generation.len();
        let scored: Vec<Option<Evaluated>> =
            pool.map_with(EngineBuffers::new, generation.clone(), |bufs, genome| {
                evaluate(bufs, genome, cfg.policy, cfg.m)
            });
        let mut scored: Vec<Evaluated> = scored.into_iter().flatten().collect();
        sort_by_ratio(&mut scored);

        // Strict dual-path fuzz pass over this generation's best — the
        // instances most likely to stress the engine. Dedup by
        // provenance so repeated elites are checked once.
        for e in scored.iter().take(cfg.fuzz_top) {
            let prov = e.genome.provenance();
            if !fuzzed.insert(prov.clone()) {
                continue;
            }
            let Ok(instance) = e.genome.materialize(cfg.m) else {
                continue;
            };
            if let Err(error) = strict_dual_path_check(&instance, cfg.policy, cfg.m) {
                let jobs = shrink_jobs(instance.jobs().to_vec(), &|jobs| {
                    Instance::new(jobs.to_vec())
                        .ok()
                        .is_some_and(|i| strict_dual_path_check(&i, cfg.policy, cfg.m).is_err())
                });
                failures.push(FuzzFailure {
                    provenance: prov,
                    jobs,
                    error,
                });
            }
        }

        // Merge into the elite pool (dedup by provenance, keep best).
        elites.extend(scored);
        dedup_by_provenance(&mut elites);
        sort_by_ratio(&mut elites);
        elites.truncate(cfg.elites);
        trajectory.push(elites.first().map_or(0.0, |e| e.ratio));

        // Breed: elites survive implicitly; children are single-axis
        // mutants of the elites (round-robin) plus fresh randoms.
        let mut next = Vec::with_capacity(population);
        let n_fresh = population / 4;
        for i in 0..population.saturating_sub(n_fresh) {
            match elites.get(i % elites.len().max(1)) {
                Some(parent) => next.push(parent.genome.mutate(&mut rng, cfg.bounds)),
                None => next.push(InstanceGenome::random(&mut rng, cfg.bounds)),
            }
        }
        while next.len() < population {
            next.push(InstanceGenome::random(&mut rng, cfg.bounds));
        }
        generation = next;
    }

    SearchOutcome {
        elites,
        trajectory,
        evals,
        failures,
    }
}

/// Descending by ratio; ties broken by provenance so the order is total
/// and deterministic.
fn sort_by_ratio(items: &mut [Evaluated]) {
    items.sort_by(|a, b| {
        b.ratio
            .total_cmp(&a.ratio)
            .then_with(|| a.genome.provenance().cmp(&b.genome.provenance()))
    });
}

/// Keeps the first (i.e. best, after sorting) entry per provenance.
fn dedup_by_provenance(items: &mut Vec<Evaluated>) {
    let mut seen = BTreeSet::new();
    items.retain(|e| seen.insert(e.genome.provenance()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_finds_nontrivial_ratios_fast() {
        let cfg = SearchConfig::new(PolicyKind::Equi, 7, 32);
        let out = run_search(&cfg);
        assert_eq!(out.evals, 32);
        assert!(!out.elites.is_empty());
        assert!(
            out.elites[0].ratio > 1.0,
            "EQUI should beat the trivial 1.0 baseline immediately: {}",
            out.elites[0].ratio
        );
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    #[test]
    fn trajectory_is_monotone_and_matches_elites() {
        let cfg = SearchConfig::new(PolicyKind::IntermediateSrpt, 3, 48);
        let out = run_search(&cfg);
        for w in out.trajectory.windows(2) {
            assert!(w[1] >= w[0], "best-so-far must not regress: {w:?}");
        }
        assert_eq!(*out.trajectory.last().unwrap(), out.elites[0].ratio);
    }

    #[test]
    fn budget_is_respected_exactly() {
        let cfg = SearchConfig::new(PolicyKind::Equi, 1, 37);
        assert_eq!(run_search(&cfg).evals, 37);
    }

    #[test]
    fn same_seed_same_outcome() {
        let cfg = SearchConfig::new(PolicyKind::Greedy, 42, 40);
        let a = run_search(&cfg);
        let b = run_search(&cfg);
        assert_eq!(a.trajectory.len(), b.trajectory.len());
        for (x, y) in a.trajectory.iter().zip(&b.trajectory) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.elites.len(), b.elites.len());
        for (x, y) in a.elites.iter().zip(&b.elites) {
            assert_eq!(x.genome, y.genome);
            assert_eq!(x.ratio.to_bits(), y.ratio.to_bits());
        }
    }

    #[test]
    fn strict_dual_path_check_passes_on_a_healthy_engine() {
        let g = InstanceGenome {
            n: 10,
            seed: 2,
            sizes: parsched_workloads::random::SizeDist::LogUniform { p: 8.0 },
            alphas: parsched_workloads::random::AlphaDist::Fixed(0.5),
            release: ReleasePattern::Trickle { spacing: 0.5 },
        };
        let inst = g.materialize(4.0).unwrap();
        strict_dual_path_check(&inst, PolicyKind::IntermediateSrpt, 4.0).unwrap();
    }
}
