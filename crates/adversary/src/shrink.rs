//! Domain-aware instance shrinking for engine-failure reproducers.
//!
//! When the fuzz pass finds a failing instance (a strict-audit violation
//! or a cross-path divergence), a raw 64-job reproducer is nearly
//! useless for debugging. This module minimizes it the way proptest
//! shrinks — repeatedly trying smaller/simpler variants and keeping any
//! that still fail — but with *scheduling-domain* moves instead of
//! generic byte twiddling:
//!
//! 1. **Chunk removal** (ddmin-style): drop contiguous job runs, halving
//!    the chunk size while progress stalls. Fewer jobs = smaller event
//!    horizon.
//! 2. **Batch-ification**: pull each job's release to `0`, removing the
//!    arrival structure when it is not what triggers the failure.
//! 3. **Size halving**: shrink each job's size towards `1`, shortening
//!    the schedule (and any accumulated float drift) while preserving
//!    the job-count structure.
//!
//! The predicate is re-checked after every accepted move, so the result
//! always still fails; all moves strictly reduce a well-founded measure
//! (job count, Σ releases, Σ sizes), so termination needs no fuel
//! counter beyond the per-pass fixpoint loops.

use parsched_sim::JobSpec;

/// Minimizes `jobs` while `fails` keeps returning `true`.
///
/// `fails` receives candidate job lists (always subsequences with
/// possibly simplified fields, in the original order) and must return
/// whether the failure still reproduces. The input is assumed to fail;
/// if it does not, it is returned unchanged.
pub fn shrink_jobs(jobs: Vec<JobSpec>, fails: &dyn Fn(&[JobSpec]) -> bool) -> Vec<JobSpec> {
    if !fails(&jobs) {
        return jobs;
    }
    let mut cur = jobs;

    // Pass 1: ddmin-style chunk removal, chunk size n/2, n/4, …, 1.
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut start = 0;
        while start < cur.len() && cur.len() > 1 {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if !candidate.is_empty() && fails(&candidate) {
                cur = candidate;
                removed_any = true;
                // Same `start` now addresses the next chunk.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        if !removed_any {
            chunk = (chunk / 2).max(1);
        }
    }

    // Pass 2: batch-ify — zero each release (latest first, so earlier
    // zeroings never reorder the remaining arrivals).
    for i in (0..cur.len()).rev() {
        if cur[i].release > 0.0 {
            let mut candidate = cur.clone();
            candidate[i].release = 0.0;
            // Keep arrivals sorted for the engine.
            candidate.sort_by(|a, b| {
                a.release
                    .partial_cmp(&b.release)
                    .expect("finite releases")
                    .then(a.id.0.cmp(&b.id.0))
            });
            if fails(&candidate) {
                cur = candidate;
            }
        }
    }

    // Pass 3: halve sizes towards 1 until no halving reproduces.
    loop {
        let mut changed = false;
        for i in 0..cur.len() {
            if cur[i].size > 1.0 {
                let mut candidate = cur.clone();
                candidate[i].size = (candidate[i].size / 2.0).max(1.0);
                if fails(&candidate) {
                    cur = candidate;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_sim::JobId;
    use parsched_speedup::Curve;

    fn job(id: u64, release: f64, size: f64) -> JobSpec {
        JobSpec::new(JobId(id), release, size, Curve::power(0.5))
    }

    fn staircase(n: u64) -> Vec<JobSpec> {
        (0..n).map(|i| job(i, i as f64, 8.0)).collect()
    }

    #[test]
    fn shrinks_to_the_single_culprit_job() {
        // Failure: "job 13 is present".
        let fails = |jobs: &[JobSpec]| -> bool { jobs.iter().any(|j| j.id == JobId(13)) };
        let out = shrink_jobs(staircase(40), &fails);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, JobId(13));
        // Batch-ified and size-shrunk too.
        assert_eq!(out[0].release, 0.0);
        assert_eq!(out[0].size, 1.0);
    }

    #[test]
    fn shrinks_a_pair_dependency() {
        // Failure needs jobs 3 AND 17 together.
        let fails = |jobs: &[JobSpec]| -> bool {
            jobs.iter().any(|j| j.id == JobId(3)) && jobs.iter().any(|j| j.id == JobId(17))
        };
        let out = shrink_jobs(staircase(32), &fails);
        assert_eq!(out.len(), 2);
        assert!(fails(&out));
    }

    #[test]
    fn preserves_releases_and_sizes_the_failure_depends_on() {
        // Failure: some job released strictly after t = 4 with size > 4.
        let fails =
            |jobs: &[JobSpec]| -> bool { jobs.iter().any(|j| j.release > 4.0 && j.size > 4.0) };
        let out = shrink_jobs(staircase(20), &fails);
        assert_eq!(out.len(), 1);
        assert!(fails(&out));
        // Size halving stops at the last failing value, > 4.
        assert!(out[0].size > 4.0 && out[0].size <= 8.0);
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let jobs = staircase(5);
        let out = shrink_jobs(jobs.clone(), &|_| false);
        assert_eq!(out.len(), jobs.len());
    }

    #[test]
    fn always_failing_predicate_reaches_one_minimal_job() {
        let out = shrink_jobs(staircase(33), &|jobs| !jobs.is_empty());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].release, 0.0);
        assert_eq!(out[0].size, 1.0);
    }

    #[test]
    fn result_stays_sorted_by_release() {
        let fails = |jobs: &[JobSpec]| jobs.len() >= 3;
        let out = shrink_jobs(staircase(24), &fails);
        assert_eq!(out.len(), 3);
        for w in out.windows(2) {
            assert!(w[0].release <= w[1].release);
        }
    }
}
