//! Adversarial instance mining for the SPAA'14 scheduling model.
//!
//! Theorem 2 of the source paper hand-constructs *one* adversarial
//! instance family to lower-bound the competitive ratio of deterministic
//! online policies. This crate treats that construction as a single
//! point in instance space and **searches** the rest of it: a seeded,
//! fully deterministic evolutionary loop over instance genomes
//! ([`InstanceGenome`]: job count, size distribution, α mix, release
//! pattern) whose fitness is measured flow time divided by the best
//! provable OPT lower bound ([`parsched_opt::best_lower_bound`]) for a
//! chosen policy.
//!
//! Three outputs, one loop:
//!
//! * **Hard instances** — the elite pool, each an empirical
//!   competitive-ratio witness (exact where the heSRPT closed form is
//!   the denominator). Committed under `tests/corpus/adversary/` and
//!   replayed by `tests/adversary_corpus.rs` so ratios never silently
//!   regress.
//! * **Fuzzing** — every generation's best candidates re-run under
//!   [`parsched_sim::AuditLevel::Strict`] on both engine paths
//!   (in-memory incremental + streaming) with bit-exact cross-path
//!   comparison; the search optimizes *towards* numerically nasty
//!   schedules, which is exactly where engine bugs live.
//! * **Reproducers** — any failure is minimized by a domain-aware
//!   shrinker ([`shrink_jobs`]) before being reported, proptest-style.
//!
//! Entry points: [`run_search`] (library), `parsched adversary` (CLI),
//! [`summary_table`] (the `t5`-style per-policy worst-ratio table).
//!
//! # Determinism
//!
//! Candidate generation and selection happen serially from one
//! [`rand::rngs::StdRng`]; evaluation fans out on the deterministic
//! [`parsched_analysis::Pool`] with per-worker
//! [`parsched_sim::EngineBuffers`]. Results are committed in input
//! order, so the entire outcome — elites, trajectory, corpus bytes —
//! is invariant under `--jobs N`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod corpus;
mod genome;
mod search;
mod shrink;

pub use corpus::{CorpusEntry, KIND_HARD, KIND_REPRODUCER, SCHEMA};
pub use genome::{GenomeBounds, InstanceGenome, ReleasePattern};
pub use search::{
    run_search, strict_dual_path_check, Evaluated, FuzzFailure, SearchConfig, SearchOutcome,
};
pub use shrink::shrink_jobs;

use parsched_analysis::Table;

/// The `t5`-style summary: one row per searched policy, reporting the
/// worst (largest) flow/LB ratio found, which bound certified it, and
/// the instance shape that achieved it.
///
/// `results` pairs each policy's CLI token with its search outcome;
/// rows render in input order.
pub fn summary_table(results: &[(String, SearchOutcome)]) -> Table {
    let mut t = Table::new(
        "t5: adversary search — worst flow/LB ratio per policy",
        &[
            "policy",
            "worst ratio",
            "lb",
            "n",
            "release",
            "evals",
            "failures",
        ],
    );
    for (policy, out) in results {
        match out.elites.first() {
            Some(best) => t.push_row(vec![
                policy.clone(),
                format!("{:.4}", best.ratio),
                best.lb_kind.name().to_string(),
                best.genome.n.to_string(),
                release_label(&best.genome.release),
                out.evals.to_string(),
                out.failures.len().to_string(),
            ]),
            None => t.push_row(vec![
                policy.clone(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                out.evals.to_string(),
                out.failures.len().to_string(),
            ]),
        }
    }
    t
}

/// Short label for a release pattern, for table cells.
fn release_label(r: &ReleasePattern) -> String {
    match r {
        ReleasePattern::Batch => "batch".to_string(),
        ReleasePattern::Poisson { load } => format!("poisson(ρ={load:.2})"),
        ReleasePattern::Bursts { waves, gap } => format!("bursts({waves}×{gap:.2})"),
        ReleasePattern::Trickle { spacing } => format!("trickle({spacing:.2})"),
        ReleasePattern::Ramp { horizon } => format!("ramp({horizon:.2})"),
        ReleasePattern::Phases { split, spacing } => {
            format!("phases({split:.2}|{spacing:.2})")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched::PolicyKind;

    #[test]
    fn summary_table_renders_one_row_per_policy() {
        let cfg = SearchConfig::new(PolicyKind::Equi, 5, 20);
        let out = run_search(&cfg);
        let t = summary_table(&[("equi".to_string(), out)]);
        let text = t.render();
        assert!(text.contains("equi"), "{text}");
        assert!(text.contains("t5"), "{text}");
    }
}
