//! Differential tests: the incremental `O(log n)`-per-event engine path
//! must compute the *same schedule* as the legacy full-reassign path.
//!
//! The legacy path (`EngineConfig::with_full_reassign(true)`) calls the
//! policy's `prefix_allocation` at every event and rebuilds every share
//! from scratch — slow but obviously correct, which makes it the oracle.
//! The incremental path maintains the SRPT order and the allocation
//! profile across events and must agree on every per-job completion time
//! and every aggregate metric. Event *counts* may legitimately differ
//! (the incremental path coalesces some zero-length intervals), so they
//! are deliberately not compared; completion times may differ by float
//! ulps because the two paths evaluate algebraically-equal expressions in
//! different orders.

use parsched::PolicyKind;
use parsched_sim::{
    simulate, Engine, EngineConfig, Instance, JobId, JobSpec, NullObserver, RunOutcome,
    StaticSource,
};
use parsched_speedup::Curve;
use proptest::prelude::*;

/// Relative tolerance for comparing the two paths' float results.
///
/// Both paths are analytically exact; the differences are accumulated
/// rounding from differently-ordered arithmetic, far below 1e-6.
const RTOL: f64 = 1e-6;

fn close(a: f64, b: f64, scale: f64) -> bool {
    (a - b).abs() <= RTOL * scale.abs().max(1.0)
}

fn run(inst: &Instance, kind: PolicyKind, m: f64, full_reassign: bool) -> RunOutcome {
    let mut policy = kind.build();
    let mut source = StaticSource::new(inst);
    let mut obs = NullObserver;
    Engine::new(
        EngineConfig::new(m).with_full_reassign(full_reassign),
        policy.as_mut(),
        &mut source,
        &mut obs,
    )
    .run()
    .unwrap_or_else(|e| panic!("{} (full_reassign={full_reassign}): {e}", kind.name()))
}

/// Every registry policy the differential harness sweeps. Policies with
/// `General` stability run the exhaustive path in both configurations, so
/// for them this is a self-consistency check; the SRPT-prefix family
/// (Intermediate/Sequential/Parallel/Threshold-SRPT, EQUI) is where the
/// two paths genuinely diverge in implementation.
fn registry() -> Vec<PolicyKind> {
    let mut kinds = PolicyKind::all_standard();
    kinds.push(PolicyKind::Threshold(2.0));
    kinds
}

/// Asserts the two outcomes describe the same schedule.
fn assert_equivalent(kind: PolicyKind, inc: &RunOutcome, leg: &RunOutcome) {
    let name = kind.name();
    assert_eq!(
        inc.completed.len(),
        leg.completed.len(),
        "{name}: completion counts differ"
    );
    // Compare per-job by id: the two paths may order simultaneous
    // completions differently within one event.
    let mut a: Vec<_> = inc.completed.iter().collect();
    let mut b: Vec<_> = leg.completed.iter().collect();
    a.sort_by_key(|c| c.id);
    b.sort_by_key(|c| c.id);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.id, y.id, "{name}: completed job sets differ");
        assert!(
            close(x.completion, y.completion, y.completion),
            "{name}: job {} completes at {} (incremental) vs {} (legacy)",
            x.id,
            x.completion,
            y.completion
        );
    }
    let (mi, ml) = (&inc.metrics, &leg.metrics);
    for (what, u, v) in [
        ("total_flow", mi.total_flow, ml.total_flow),
        ("fractional_flow", mi.fractional_flow, ml.fractional_flow),
        ("alive_integral", mi.alive_integral, ml.alive_integral),
        ("makespan", mi.makespan, ml.makespan),
        ("max_flow", mi.max_flow, ml.max_flow),
    ] {
        assert!(
            close(u, v, v),
            "{name}: {what} = {u} (incremental) vs {v} (legacy)"
        );
    }
}

/// One generated job: `(release, size, curve selector, alpha)`.
fn job_from(id: u64, raw: (f64, f64, u8, f64)) -> JobSpec {
    let (release, size, which, alpha) = raw;
    let curve = match which % 4 {
        0 => Curve::Sequential,
        1 => Curve::FullyParallel,
        2 => Curve::power(alpha),
        _ => Curve::try_amdahl(alpha.min(0.9)).unwrap(),
    };
    JobSpec::new(JobId(id), release, size, curve)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: incremental ≡ legacy for every registry
    /// policy on random mixed-curve instances.
    #[test]
    fn incremental_matches_legacy_on_random_instances(
        raw in proptest::collection::vec(
            (0.0f64..12.0, 0.1f64..8.0, 0u8..4, 0.05f64..1.0),
            1..24,
        ),
        m_sel in 0u8..3,
    ) {
        let m = [1.0, 2.0, 8.0][m_sel as usize];
        let jobs: Vec<JobSpec> = raw
            .into_iter()
            .enumerate()
            .map(|(i, r)| job_from(i as u64, r))
            .collect();
        let inst = Instance::new(jobs).unwrap();
        for kind in registry() {
            let inc = run(&inst, kind, m, false);
            let leg = run(&inst, kind, m, true);
            assert_equivalent(kind, &inc, &leg);
        }
    }

    /// Arrival bursts landing *exactly* on completion instants, with size
    /// ties: the hardest case for the incremental sorted-insert (the new
    /// job keys collide with the completing front of the SRPT set).
    #[test]
    fn burst_at_completion_instant_matches(
        p in 0.5f64..4.0,
        burst in 2usize..6,
        m_sel in 0u8..2,
    ) {
        let m = [2.0, 4.0][m_sel as usize];
        // Seed jobs: `m` sequential jobs of size p, all released at 0 →
        // each runs at rate 1 and they complete simultaneously at t = p.
        let mut jobs: Vec<JobSpec> = (0..m as u64)
            .map(|i| JobSpec::new(JobId(i), 0.0, p, Curve::Sequential))
            .collect();
        // Burst at exactly t = p, with pairwise-equal sizes to force
        // tie-broken inserts at the boundary.
        for k in 0..burst as u64 {
            jobs.push(JobSpec::new(
                JobId(m as u64 + k),
                p,
                1.0 + (k / 2) as f64,
                if k % 2 == 0 { Curve::Sequential } else { Curve::power(0.5) },
            ));
        }
        let inst = Instance::new(jobs).unwrap();
        for kind in registry() {
            let inc = run(&inst, kind, m, false);
            let leg = run(&inst, kind, m, true);
            assert_equivalent(kind, &inc, &leg);
        }
    }
}

/// Deterministic regression for the sorted-insert boundary: a burst whose
/// members tie with each other *and* with a job completing at the same
/// instant. Simultaneous completions may drain in either order inside one
/// event, so equivalence is per-job by id, never by vector position.
#[test]
fn regression_burst_and_simultaneous_completion_ordering() {
    let m = 2.0;
    let jobs = vec![
        // Both complete at t = 2 simultaneously (rate 1 each).
        JobSpec::new(JobId(0), 0.0, 2.0, Curve::Sequential),
        JobSpec::new(JobId(1), 0.0, 2.0, Curve::Sequential),
        // Burst at exactly t = 2: equal remaining (tie on the sort key,
        // broken by id), one job matching the completing jobs' key space.
        JobSpec::new(JobId(2), 2.0, 1.0, Curve::Sequential),
        JobSpec::new(JobId(3), 2.0, 1.0, Curve::Sequential),
        JobSpec::new(JobId(4), 2.0, 2.0, Curve::power(0.5)),
        // A straggler arriving mid-drain of the burst.
        JobSpec::new(JobId(5), 2.5, 0.25, Curve::FullyParallel),
    ];
    let inst = Instance::new(jobs).unwrap();
    for kind in registry() {
        let inc = run(&inst, kind, m, false);
        let leg = run(&inst, kind, m, true);
        assert_equivalent(kind, &inc, &leg);
        assert_eq!(inc.completed.len(), 6, "{}: all jobs finish", kind.name());
    }
}

/// `simulate` (the convenience entry point) takes the incremental path for
/// SRPT-prefix policies; pin that it agrees with an explicit legacy run.
#[test]
fn simulate_entry_point_agrees_with_legacy() {
    let inst = Instance::from_sizes(
        &[(0.0, 4.0), (0.5, 1.0), (1.0, 2.0), (1.0, 2.0), (3.0, 0.5)],
        Curve::power(0.5),
    )
    .unwrap();
    let mut policy = PolicyKind::IntermediateSrpt.build();
    let inc = simulate(&inst, policy.as_mut(), 4.0).unwrap();
    let leg = run(&inst, PolicyKind::IntermediateSrpt, 4.0, true);
    assert_equivalent(PolicyKind::IntermediateSrpt, &inc, &leg);
}
