//! A seeded random (but always feasible) policy, for fuzzing.
//!
//! The paper's structural lemmas hold for Intermediate-SRPT against *any*
//! feasible reference schedule; this policy generates arbitrary feasible
//! references so the lemma checkers aren't only exercised against
//! well-behaved schedulers.

use parsched_sim::{AliveJob, AllocationStability, Policy, Time};

/// Allocates processors uniformly at random (Dirichlet-ish via normalized
/// exponential weights) among a random subset of alive jobs, re-rolling on
/// every decision point and after a fixed quantum.
///
/// Deterministic per seed (uses a splitmix-style internal generator so
/// `rand` isn't a dependency of the policy crate's runtime path).
#[derive(Debug, Clone, Copy)]
pub struct RandomAllocation {
    state: u64,
    seed: u64,
    quantum: f64,
}

impl RandomAllocation {
    /// Creates the policy from a seed, re-rolling every `quantum` time
    /// units.
    pub fn new(seed: u64, quantum: f64) -> Self {
        assert!(quantum > 0.0 && quantum.is_finite());
        Self {
            state: seed,
            seed,
            quantum,
        }
    }

    /// splitmix64 step.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Policy for RandomAllocation {
    fn name(&self) -> String {
        // lint:allow(L007) Policy::name runs at engine construction and in error reporting, never per event
        format!("Random({})", self.seed)
    }

    fn assign(
        &mut self,
        _now: Time,
        m: f64,
        jobs: &[AliveJob<'_>],
        shares: &mut [f64],
    ) -> Option<f64> {
        let n = jobs.len();
        if n == 0 {
            return None;
        }
        // Random positive weights; occasionally zero a job out entirely so
        // starvation paths are exercised (but never all of them).
        // lint:allow(L007) per-refresh policy scratch; the zero-alloc contract covers the engine's donated buffers, not policy-internal views (docs/PERF.md §6.2)
        let mut weights = vec![0.0f64; n];
        let mut total = 0.0;
        for w in weights.iter_mut() {
            let u = self.next_f64();
            *w = if u < 0.25 {
                0.0
            } else {
                -((1.0 - u).max(1e-12)).ln()
            };
            total += *w;
        }
        if total <= 0.0 {
            let pick = (self.next_u64() as usize) % n;
            // lint:allow(L007) pick is drawn modulo n and weights has length n; in bounds by construction
            weights[pick] = 1.0;
            total = 1.0;
        }
        for (s, w) in shares.iter_mut().zip(&weights) {
            *s = m * w / total;
        }
        Some(self.quantum)
    }

    fn reset(&mut self) {
        self.state = self.seed;
    }

    fn snapshot_state(&self) -> Vec<u64> {
        // The generator position is the policy's only run-mutable state;
        // re-running `assign` on restore (instead of restoring the word)
        // would advance the stream off-timeline and diverge the resume.
        vec![self.state]
    }

    fn restore_state(&mut self, state: &[u64]) -> bool {
        match state {
            [s] => {
                self.state = *s;
                true
            }
            _ => false,
        }
    }

    fn stability(&self) -> AllocationStability {
        // Shares are re-rolled at every decision point; nothing prefix-
        // shaped for the incremental path to maintain.
        AllocationStability::General
    }

    fn srpt_ordered(&self) -> bool {
        // Random weights ignore remaining work by construction.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_sim::{simulate, Instance};
    use parsched_speedup::Curve;

    fn instance() -> Instance {
        Instance::from_sizes(
            &[(0.0, 4.0), (0.5, 1.0), (1.0, 2.0), (1.5, 3.0)],
            Curve::power(0.5),
        )
        .unwrap()
    }

    #[test]
    fn is_feasible_and_completes() {
        // The engine validates Σ shares ≤ m on every decision; surviving a
        // full run is the feasibility proof.
        let out = simulate(&instance(), &mut RandomAllocation::new(7, 0.5), 4.0).unwrap();
        assert_eq!(out.metrics.num_jobs, 4);
    }

    #[test]
    fn deterministic_per_seed_and_resettable() {
        let mut p = RandomAllocation::new(9, 0.5);
        let a = simulate(&instance(), &mut p, 4.0).unwrap();
        let b = simulate(&instance(), &mut p, 4.0).unwrap(); // reset() re-seeds
        assert_eq!(a.completed, b.completed);
        let c = simulate(&instance(), &mut RandomAllocation::new(10, 0.5), 4.0).unwrap();
        assert_ne!(a.completed, c.completed);
    }

    #[test]
    fn different_seeds_visit_different_schedules() {
        let flows: Vec<f64> = (0..5)
            .map(|s| {
                simulate(&instance(), &mut RandomAllocation::new(s, 0.5), 4.0)
                    .unwrap()
                    .metrics
                    .total_flow
            })
            .collect();
        let mut uniq = flows.clone();
        uniq.sort_by(f64::total_cmp);
        uniq.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        assert!(uniq.len() >= 3, "{flows:?}");
    }
}
