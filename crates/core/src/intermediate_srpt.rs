//! The paper's algorithm: Intermediate-SRPT.

use parsched_sim::{AliveJob, AllocationStability, Policy, PrefixAllocation, Time};

use crate::util::{machine_count, srpt_order};

/// **Intermediate-SRPT** (SPAA'14, Theorem 1).
///
/// > *"If there are at least `m` tasks, the `m` tasks with the least
/// > unprocessed work are each allocated one processor (this is like
/// > Sequential-SRPT). If there are strictly fewer than `m` tasks, the
/// > processors are evenly partitioned among the tasks (this is essentially
/// > the Round Robin or Processor Sharing Algorithm)."*
///
/// For jobs with speed-up curves `Γ(x) = x` (`x ≤ 1`), `x^α` (`x ≥ 1`) and
/// sizes in `[1, P]`, this policy is `O(4^{1/(1-α)} · log P)`-competitive
/// for total flow time, matching the general `Ω(log P)` lower bound
/// (Theorem 2) up to the `α`-dependent constant.
///
/// Two properties make it exactly simulable event-to-event:
/// * **Overloaded** (`|A(t)| ≥ m`): every scheduled job drains at rate
///   `Γ(1) = 1` and unscheduled jobs don't move, so the SRPT order is
///   invariant until an arrival or completion.
/// * **Underloaded** (`|A(t)| < m`): every job's share `m/|A(t)|` is
///   constant until an arrival or completion.
///
/// Ties on remaining work break by `(release, id)`, which keeps runs
/// deterministic.
#[derive(Debug, Default, Clone, Copy)]
pub struct IntermediateSrpt;

impl IntermediateSrpt {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl Policy for IntermediateSrpt {
    fn name(&self) -> String {
        // lint:allow(L007) Policy::name runs at engine construction and in error reporting, never per event
        "Intermediate-SRPT".to_string()
    }

    fn assign(
        &mut self,
        _now: Time,
        m: f64,
        jobs: &[AliveJob<'_>],
        shares: &mut [f64],
    ) -> Option<f64> {
        let n = jobs.len();
        if n == 0 {
            return None;
        }
        let machines = machine_count(m);
        shares.fill(0.0);
        if n >= machines {
            // Sequential-SRPT regime: one processor to each of the m jobs
            // with least remaining work.
            let order = srpt_order(jobs);
            for &i in order.iter().take(machines) {
                shares[i] = 1.0;
            }
        } else {
            // EQUI regime: even split.
            let each = m / n as f64;
            shares.fill(each);
        }
        None
    }

    fn stability(&self) -> AllocationStability {
        AllocationStability::SrptPrefix
    }

    fn event_hooks_are_noop(&self) -> bool {
        // Stateless between decisions: both event hooks are the empty
        // defaults, so the fast loop may elide the per-event calls.
        true
    }

    fn srpt_ordered(&self) -> bool {
        true
    }

    fn prefix_allocation(&self, n_alive: usize, m: f64) -> Option<PrefixAllocation> {
        if n_alive == 0 {
            return None;
        }
        let machines = machine_count(m);
        Some(if n_alive >= machines {
            PrefixAllocation {
                count: machines.min(n_alive),
                share: 1.0,
            }
        } else {
            PrefixAllocation {
                count: n_alive,
                share: m / n_alive as f64,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_sim::{simulate, Instance, JobId, JobSpec};
    use parsched_speedup::Curve;

    fn jobs(specs: &[(u64, f64, f64, f64)]) -> Vec<JobSpec> {
        // (id, release, size, alpha)
        specs
            .iter()
            .map(|&(id, r, p, a)| JobSpec::new(JobId(id), r, p, Curve::power(a)))
            .collect()
    }

    fn assign_once(m: f64, specs: &[JobSpec], remaining: &[f64]) -> Vec<f64> {
        let views: Vec<AliveJob<'_>> = specs
            .iter()
            .zip(remaining)
            .map(|(s, &rem)| AliveJob {
                spec: s,
                remaining: rem,
            })
            .collect();
        let mut shares = vec![0.0; views.len()];
        IntermediateSrpt::new().assign(0.0, m, &views, &mut shares);
        shares
    }

    #[test]
    fn overloaded_schedules_m_shortest_one_each() {
        let specs = jobs(&[
            (0, 0.0, 5.0, 0.5),
            (1, 0.0, 1.0, 0.5),
            (2, 0.0, 3.0, 0.5),
            (3, 0.0, 2.0, 0.5),
        ]);
        let shares = assign_once(2.0, &specs, &[5.0, 1.0, 3.0, 2.0]);
        assert_eq!(shares, vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn overloaded_uses_remaining_not_original_size() {
        // Job 0 is originally huge but nearly done → it is "shortest".
        let specs = jobs(&[(0, 0.0, 100.0, 0.5), (1, 0.0, 2.0, 0.5), (2, 0.0, 3.0, 0.5)]);
        let shares = assign_once(1.0, &specs, &[0.5, 2.0, 3.0]);
        assert_eq!(shares, vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn underloaded_splits_evenly() {
        let specs = jobs(&[(0, 0.0, 5.0, 0.5), (1, 0.0, 1.0, 0.5)]);
        let shares = assign_once(8.0, &specs, &[5.0, 1.0]);
        assert_eq!(shares, vec![4.0, 4.0]);
    }

    #[test]
    fn boundary_n_equals_m_is_sequential_regime() {
        // n = m: "at least m tasks" → one each (which equals the even split).
        let specs = jobs(&[(0, 0.0, 5.0, 0.5), (1, 0.0, 1.0, 0.5)]);
        let shares = assign_once(2.0, &specs, &[5.0, 1.0]);
        assert_eq!(shares, vec![1.0, 1.0]);
    }

    #[test]
    fn ties_break_by_release_then_id() {
        let mut specs = jobs(&[(5, 0.0, 2.0, 0.5), (3, 0.0, 2.0, 0.5)]);
        specs[0].release = 1.0; // id 5 released later
        let shares = assign_once(1.0, &specs, &[2.0, 2.0]);
        // Equal remaining → earlier release (id 3) wins the processor.
        assert_eq!(shares, vec![0.0, 1.0]);
    }

    #[test]
    fn matches_srpt_on_sequential_singleton() {
        // One sequential job: gets everything but can only use rate 1.
        let inst = Instance::new(jobs(&[(0, 0.0, 4.0, 0.0)])).unwrap();
        let outcome = simulate(&inst, &mut IntermediateSrpt::new(), 8.0).unwrap();
        assert!((outcome.metrics.total_flow - 4.0).abs() < 1e-9);
    }

    #[test]
    fn underload_beats_sequential_srpt_on_parallel_work() {
        // 2 fully parallel jobs on m = 8: even split (4 each) finishes both
        // at 1.0; one-processor-each would take 4.0.
        let inst = Instance::new(jobs(&[(0, 0.0, 4.0, 1.0), (1, 0.0, 4.0, 1.0)])).unwrap();
        let outcome = simulate(&inst, &mut IntermediateSrpt::new(), 8.0).unwrap();
        assert!((outcome.metrics.total_flow - 2.0).abs() < 1e-9);
    }

    #[test]
    fn overload_drains_shortest_first() {
        // m = 1, jobs of size 1, 2, 4 (α irrelevant at share 1):
        // completes at 1, 3, 7 → total flow 11.
        let inst = Instance::new(jobs(&[
            (0, 0.0, 4.0, 0.5),
            (1, 0.0, 1.0, 0.5),
            (2, 0.0, 2.0, 0.5),
        ]))
        .unwrap();
        let outcome = simulate(&inst, &mut IntermediateSrpt::new(), 1.0).unwrap();
        assert_eq!(outcome.flow_of(JobId(1)), Some(1.0));
        assert_eq!(outcome.flow_of(JobId(2)), Some(3.0));
        assert_eq!(outcome.flow_of(JobId(0)), Some(7.0));
        assert!((outcome.metrics.total_flow - 11.0).abs() < 1e-9);
    }

    #[test]
    fn regime_switch_mid_run() {
        // m = 2. Three unit sequential jobs at t=0 (overload: 2 scheduled),
        // third starts at t=1, finishes t=2 in underload with share 2 but
        // sequential rate 1.
        let inst = Instance::new(jobs(&[
            (0, 0.0, 1.0, 0.0),
            (1, 0.0, 1.0, 0.0),
            (2, 0.0, 1.0, 0.0),
        ]))
        .unwrap();
        let outcome = simulate(&inst, &mut IntermediateSrpt::new(), 2.0).unwrap();
        assert!((outcome.metrics.total_flow - 4.0).abs() < 1e-9);
        assert!((outcome.metrics.makespan - 2.0).abs() < 1e-9);
    }
}
