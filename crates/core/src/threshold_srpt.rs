//! Threshold-SRPT: the ablation family around Intermediate-SRPT's regime
//! switch.

use parsched_sim::{AliveJob, AllocationStability, Policy, PrefixAllocation, Time};

use crate::util::{machine_count, srpt_order};

/// **Threshold-SRPT(θ)** — Intermediate-SRPT with the regime boundary
/// moved from `|A(t)| ≥ m` to `|A(t)| ≥ ⌈θ·m⌉`.
///
/// * Above the threshold: the `min(m, |A(t)|)` jobs with least remaining
///   work get one processor each (Sequential-SRPT style).
/// * Below it: the processors are split evenly (EQUI style).
///
/// `θ = 1` is exactly [`crate::IntermediateSrpt`]. The ablation
/// experiment (X3) shows why the paper's choice is the right one:
///
/// * `θ < 1` idles processors when `⌈θm⌉ ≤ |A| < m` (the Sequential-SRPT
///   mistake — wasted capacity on parallelizable work);
/// * `θ > 1` splits processors among more than `m` jobs when
///   `m ≤ |A| < ⌈θm⌉`, handing sub-unit shares to *long* jobs too —
///   breaking the SRPT ordering argument the overload analysis needs.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdSrpt {
    theta: f64,
}

impl ThresholdSrpt {
    /// Creates the policy with regime threshold `θ > 0`.
    pub fn new(theta: f64) -> Self {
        assert!(
            theta > 0.0 && theta.is_finite(),
            "threshold must be positive, got {theta}"
        );
        Self { theta }
    }

    /// The threshold multiplier θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

impl Policy for ThresholdSrpt {
    fn name(&self) -> String {
        // lint:allow(L007) Policy::name runs at engine construction and in error reporting, never per event
        format!("Threshold-SRPT({})", self.theta)
    }

    fn assign(
        &mut self,
        _now: Time,
        m: f64,
        jobs: &[AliveJob<'_>],
        shares: &mut [f64],
    ) -> Option<f64> {
        let n = jobs.len();
        if n == 0 {
            return None;
        }
        let machines = machine_count(m);
        let cutoff = ((self.theta * machines as f64).ceil() as usize).max(1);
        shares.fill(0.0);
        if n >= cutoff {
            let order = srpt_order(jobs);
            for &i in order.iter().take(machines.min(n)) {
                shares[i] = 1.0;
            }
        } else {
            let each = m / n as f64;
            shares.fill(each);
        }
        None
    }

    fn stability(&self) -> AllocationStability {
        AllocationStability::SrptPrefix
    }

    fn event_hooks_are_noop(&self) -> bool {
        // Stateless between decisions: both event hooks are the empty
        // defaults, so the fast loop may elide the per-event calls.
        true
    }

    fn srpt_ordered(&self) -> bool {
        true
    }

    fn prefix_allocation(&self, n_alive: usize, m: f64) -> Option<PrefixAllocation> {
        if n_alive == 0 {
            return None;
        }
        let machines = machine_count(m);
        let cutoff = ((self.theta * machines as f64).ceil() as usize).max(1);
        Some(if n_alive >= cutoff {
            PrefixAllocation {
                count: machines.min(n_alive),
                share: 1.0,
            }
        } else {
            PrefixAllocation {
                count: n_alive,
                share: m / n_alive as f64,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IntermediateSrpt;
    use parsched_sim::{simulate, Instance};
    use parsched_speedup::Curve;

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_theta() {
        let _ = ThresholdSrpt::new(0.0);
    }

    #[test]
    fn theta_one_is_intermediate_srpt() {
        let inst = Instance::from_sizes(
            &[
                (0.0, 4.0),
                (0.0, 1.0),
                (0.5, 2.0),
                (1.0, 8.0),
                (1.5, 1.0),
                (2.0, 3.0),
            ],
            Curve::power(0.5),
        )
        .unwrap();
        for m in [2.0, 4.0, 8.0] {
            let a = simulate(&inst, &mut ThresholdSrpt::new(1.0), m).unwrap();
            let b = simulate(&inst, &mut IntermediateSrpt::new(), m).unwrap();
            assert_eq!(a.completed, b.completed, "m={m}");
        }
    }

    #[test]
    fn small_theta_idles_processors() {
        // One parallel job, θ = 0.25 on m = 4 ⇒ cutoff 1 ⇒ "overload"
        // branch even for a single job ⇒ it gets 1 processor, not 4.
        let inst = Instance::from_sizes(&[(0.0, 4.0)], Curve::FullyParallel).unwrap();
        let out = simulate(&inst, &mut ThresholdSrpt::new(0.25), 4.0).unwrap();
        assert!((out.metrics.total_flow - 4.0).abs() < 1e-9);
        // θ = 1 uses the full machine.
        let best = simulate(&inst, &mut ThresholdSrpt::new(1.0), 4.0).unwrap();
        assert!((best.metrics.total_flow - 1.0).abs() < 1e-9);
    }

    #[test]
    fn large_theta_shares_in_overload() {
        // 4 jobs on m = 2 with θ = 4 ⇒ cutoff 8 ⇒ EQUI branch: everybody
        // gets 0.5 processors (rate 0.5 each).
        let inst = Instance::from_sizes(
            &[(0.0, 1.0), (0.0, 1.0), (0.0, 1.0), (0.0, 1.0)],
            Curve::power(0.5),
        )
        .unwrap();
        let out = simulate(&inst, &mut ThresholdSrpt::new(4.0), 2.0).unwrap();
        // All four drain at rate 0.5 → all complete at t = 2 → flow 8,
        // versus Intermediate-SRPT's SRPT order (1,1,2,2 → flow 6).
        assert!((out.metrics.total_flow - 8.0).abs() < 1e-9);
        let isrpt = simulate(&inst, &mut IntermediateSrpt::new(), 2.0).unwrap();
        assert!((isrpt.metrics.total_flow - 6.0).abs() < 1e-9);
    }

    #[test]
    fn overload_never_overcommits_when_n_below_m() {
        // θ = 0.5, m = 4, n = 3 ⇒ cutoff 2 ≤ n ⇒ sequential branch with
        // only 3 jobs: exactly 3 processors used (1 idle), none negative.
        let inst =
            Instance::from_sizes(&[(0.0, 2.0), (0.0, 2.0), (0.0, 2.0)], Curve::Sequential).unwrap();
        let out = simulate(&inst, &mut ThresholdSrpt::new(0.5), 4.0).unwrap();
        assert_eq!(out.metrics.num_jobs, 3);
        assert!((out.metrics.makespan - 2.0).abs() < 1e-9);
    }
}
