//! Closed-form quantities from the paper's statements and proofs.
//!
//! These are used by the workload generators (to size the adversarial
//! constructions exactly as the proofs do) and by the analysis crate's
//! lemma checkers (to evaluate the right-hand sides of the paper's
//! inequalities).

/// `4^{1/(1-α)}` — the α-dependent constant of Theorem 1. Returns `∞` as
/// `α → 1` (the bound degenerates exactly when jobs become fully
/// parallelizable, where the optimal ratio drops to 1).
pub fn four_power(alpha: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&alpha));
    if alpha >= 1.0 {
        f64::INFINITY
    } else {
        // lint:allow(L006) closed-form theorem constant, computed once per table row
        4f64.powf(1.0 / (1.0 - alpha))
    }
}

/// Theorem 1's upper bound *shape* `4^{1/(1-α)} · log₂ P` (the `O(1)`
/// factor normalized to 1). Our F1/F2 experiments check measured ratios
/// stay below a constant multiple of this.
pub fn theorem1_bound(alpha: f64, p: f64) -> f64 {
    debug_assert!(p >= 1.0);
    four_power(alpha) * p.log2().max(1.0)
}

/// `k_max = ⌊log₂ P⌋`: the largest job class (§2.2).
pub fn k_max(p: f64) -> i32 {
    debug_assert!(p >= 1.0);
    p.log2().floor() as i32
}

/// Lemma 1's right-hand side: `m(3 + log₂ P) + 2|OPT(t)|`.
pub fn lemma1_rhs(m: f64, p: f64, opt_alive: usize) -> f64 {
    m * (3.0 + p.log2().max(0.0)) + 2.0 * opt_alive as f64
}

/// Lemma 4's right-hand side: `m · 2^{k+1}`, the most volume (in classes
/// `≤ k`) by which the algorithm can trail any feasible schedule at an
/// overloaded time.
pub fn lemma4_rhs(m: f64, k: i32) -> f64 {
    // lint:allow(L006) lemma right-hand side, one-off theory math
    m * 2f64.powi(k + 1)
}

/// Lemma 5's right-hand side: `m(k_max + 2) + 2|OPT_{≤k_max}(t)|`.
pub fn lemma5_rhs(m: f64, p: f64, opt_alive: usize) -> f64 {
    m * (f64::from(k_max(p)) + 2.0) + 2.0 * opt_alive as f64
}

/// Theorem 2's length-reduction factor `r = ½(1 − 2^{-ε})` where
/// `ε = 1 − α`. Long-job lengths shrink by `r` each phase.
pub fn reduction_factor(alpha: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&alpha), "Theorem 2 needs α < 1");
    let eps = 1.0 - alpha;
    // lint:allow(L006) adversary construction constant, one-off theory math
    0.5 * (1.0 - 2f64.powf(-eps))
}

/// Theorem 2's phase count `L = ½ · log_{1/r} P`.
pub fn phase_count(alpha: f64, p: f64) -> f64 {
    let r = reduction_factor(alpha);
    0.5 * p.ln() / (1.0 / r).ln()
}

/// `log_{1/r} P` — the adversary's threshold unit (the online algorithm is
/// tested against `m · log_{1/r} P` remaining short-job work at each phase
/// midpoint).
pub fn log_inv_r(alpha: f64, p: f64) -> f64 {
    let r = reduction_factor(alpha);
    p.ln() / (1.0 / r).ln()
}

/// Theorem 2's per-phase surviving-long-job fraction
/// `½ · (2^ε − 1)/(2^ε + 1)`: at time `T`, at least this fraction of each
/// phase's `m/2` long jobs must remain unfinished.
pub fn survival_fraction(alpha: f64) -> f64 {
    let eps = 1.0 - alpha;
    // lint:allow(L006) adversary construction constant, one-off theory math
    let t = 2f64.powf(eps);
    0.5 * (t - 1.0) / (t + 1.0)
}

/// The potential function's constant prefactor (§2.3 defines
/// `Φ(t) = 16 Σ z_i(t) / Γ_i(m / rank(i, t))`).
pub const PHI_PREFACTOR: f64 = 16.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_power_extremes() {
        assert_eq!(four_power(0.0), 4.0);
        assert!((four_power(0.5) - 16.0).abs() < 1e-9);
        assert_eq!(four_power(1.0), f64::INFINITY);
        assert!((four_power(0.75) - 256.0).abs() < 1e-6);
    }

    #[test]
    fn theorem1_bound_grows_logarithmically() {
        let b1 = theorem1_bound(0.5, 16.0);
        let b2 = theorem1_bound(0.5, 256.0);
        assert!((b2 / b1 - 2.0).abs() < 1e-9); // log 256 / log 16 = 2
    }

    #[test]
    fn k_max_matches_class_definition() {
        assert_eq!(k_max(1.0), 0);
        assert_eq!(k_max(2.0), 1);
        assert_eq!(k_max(1023.0), 9);
        assert_eq!(k_max(1024.0), 10);
    }

    #[test]
    fn lemma_rhs_values() {
        // m = 4, P = 8, |OPT| = 3: 4·(3+3) + 6 = 30.
        assert!((lemma1_rhs(4.0, 8.0, 3) - 30.0).abs() < 1e-9);
        // m = 4, k = 2: 4·8 = 32.
        assert!((lemma4_rhs(4.0, 2) - 32.0).abs() < 1e-9);
        // m = 4, P = 8 (k_max = 3), |OPT| = 3: 4·5 + 6 = 26.
        assert!((lemma5_rhs(4.0, 8.0, 3) - 26.0).abs() < 1e-9);
    }

    #[test]
    fn reduction_factor_behaviour() {
        // ε = 1 (α = 0): r = ½(1 − ½) = ¼.
        assert!((reduction_factor(0.0) - 0.25).abs() < 1e-12);
        // As α → 1 (ε → 0), r → 0: phases shrink violently.
        assert!(reduction_factor(0.99) < 0.01);
        // r < ½ always, so lengths at least halve each phase.
        for a in [0.0, 0.3, 0.5, 0.9] {
            assert!(reduction_factor(a) < 0.5);
            assert!(reduction_factor(a) > 0.0);
        }
    }

    #[test]
    fn phase_count_is_half_log() {
        // α = 0 → r = ¼ → log_{4} P = log₂ P / 2; L = log₂ P / 4.
        let l = phase_count(0.0, 256.0);
        assert!((l - 2.0).abs() < 1e-9);
        assert!((log_inv_r(0.0, 256.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn survival_fraction_positive_below_one() {
        for a in [0.0, 0.25, 0.5, 0.75, 0.95] {
            let f = survival_fraction(a);
            assert!(f > 0.0 && f < 0.5, "α={a}: {f}");
        }
        // ε = 1: ½ · (2−1)/(2+1) = 1/6.
        assert!((survival_fraction(0.0) - 1.0 / 6.0).abs() < 1e-12);
    }
}
