//! A value-level registry of the policies, for sweeps and CLIs.

use parsched_sim::Policy;
use serde::{Deserialize, Serialize};

use crate::{
    Equi, GreedyHybrid, IntermediateSrpt, Laps, ParallelSrpt, RandomAllocation, SequentialSrpt,
    WeightedIntermediateSrpt,
};

/// Re-roll quantum for [`PolicyKind::Random`] references (the fuzzing
/// policy re-decides at least this often; see [`RandomAllocation::new`]).
const RANDOM_QUANTUM: f64 = 0.5;

/// A nameable, serializable policy descriptor that can build the
/// corresponding [`Policy`] value.
///
/// Experiments sweep over `PolicyKind`s (cheap to copy across threads,
/// stable names for tables) and call [`PolicyKind::build`] per run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// [`IntermediateSrpt`] — the paper's algorithm.
    IntermediateSrpt,
    /// [`ParallelSrpt`].
    ParallelSrpt,
    /// [`SequentialSrpt`].
    SequentialSrpt,
    /// [`GreedyHybrid`] with its default resolution.
    Greedy,
    /// [`Equi`].
    Equi,
    /// [`Laps`] with the given β.
    Laps(f64),
    /// [`crate::ThresholdSrpt`] with the given θ (ablation of
    /// Intermediate-SRPT's regime boundary; θ = 1 reproduces it exactly).
    Threshold(f64),
    /// [`crate::Setf`] — shortest elapsed time first.
    Setf,
    /// [`WeightedIntermediateSrpt`] — the weighted-flow extension.
    Weighted,
    /// [`RandomAllocation`] with the given seed — the seeded feasible
    /// fuzzing reference.
    Random(u64),
}

impl PolicyKind {
    /// All standard policies compared in the cross-policy experiments.
    ///
    /// Deliberately *narrower* than [`PolicyKind::all_registered`]: the
    /// experiment tables reproduce the paper's comparisons, which the
    /// weighted extension and the fuzzing reference are not part of.
    pub fn all_standard() -> Vec<PolicyKind> {
        vec![
            PolicyKind::IntermediateSrpt,
            PolicyKind::ParallelSrpt,
            PolicyKind::SequentialSrpt,
            PolicyKind::Greedy,
            PolicyKind::Equi,
            PolicyKind::Laps(0.5),
            PolicyKind::Setf,
        ]
    }

    /// One representative of *every* registered policy, for suites that
    /// must cover the whole catalog (differential oracles, invariant
    /// audits, metadata checks) rather than reproduce the paper's tables.
    pub fn all_registered() -> Vec<PolicyKind> {
        let mut kinds = Self::all_standard();
        kinds.push(PolicyKind::Threshold(2.0));
        kinds.push(PolicyKind::Weighted);
        kinds.push(PolicyKind::Random(7));
        kinds
    }

    /// Builds a boxed policy instance.
    pub fn build(&self) -> Box<dyn Policy> {
        match *self {
            PolicyKind::IntermediateSrpt => Box::new(IntermediateSrpt::new()),
            PolicyKind::ParallelSrpt => Box::new(ParallelSrpt::new()),
            PolicyKind::SequentialSrpt => Box::new(SequentialSrpt::new()),
            PolicyKind::Greedy => Box::new(GreedyHybrid::new()),
            PolicyKind::Equi => Box::new(Equi::new()),
            PolicyKind::Laps(beta) => Box::new(Laps::new(beta)),
            PolicyKind::Threshold(theta) => Box::new(crate::ThresholdSrpt::new(theta)),
            PolicyKind::Setf => Box::new(crate::Setf::new()),
            PolicyKind::Weighted => Box::new(WeightedIntermediateSrpt::new()),
            PolicyKind::Random(seed) => Box::new(RandomAllocation::new(seed, RANDOM_QUANTUM)),
        }
    }

    /// The policy's display name (matches `Policy::name` of the built
    /// value).
    pub fn name(&self) -> String {
        self.build().name()
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    /// Parses a CLI-friendly name: `isrpt`, `psrpt`, `ssrpt`, `greedy`,
    /// `equi`, `laps` or `laps:<beta>`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "isrpt" | "intermediate-srpt" | "intermediate" => Ok(PolicyKind::IntermediateSrpt),
            "psrpt" | "parallel-srpt" | "parallel" => Ok(PolicyKind::ParallelSrpt),
            "ssrpt" | "sequential-srpt" | "sequential" => Ok(PolicyKind::SequentialSrpt),
            "greedy" => Ok(PolicyKind::Greedy),
            "equi" => Ok(PolicyKind::Equi),
            "laps" => Ok(PolicyKind::Laps(0.5)),
            "setf" => Ok(PolicyKind::Setf),
            "weighted" | "wisrpt" => Ok(PolicyKind::Weighted),
            _ => {
                if let Some(beta) = lower.strip_prefix("laps:") {
                    let beta: f64 = beta.parse().map_err(|e| format!("bad LAPS β: {e}"))?;
                    if beta > 0.0 && beta <= 1.0 {
                        Ok(PolicyKind::Laps(beta))
                    } else {
                        Err(format!("LAPS β must lie in (0, 1], got {beta}"))
                    }
                } else if let Some(seed) = lower.strip_prefix("random:") {
                    let seed: u64 = seed.parse().map_err(|e| format!("bad random seed: {e}"))?;
                    Ok(PolicyKind::Random(seed))
                } else if let Some(theta) = lower.strip_prefix("threshold:") {
                    let theta: f64 = theta.parse().map_err(|e| format!("bad threshold θ: {e}"))?;
                    if theta > 0.0 && theta.is_finite() {
                        Ok(PolicyKind::Threshold(theta))
                    } else {
                        Err(format!("threshold θ must be positive, got {theta}"))
                    }
                } else {
                    Err(format!(
                        "unknown policy '{s}' (expected isrpt|psrpt|ssrpt|greedy|equi|laps[:beta]|threshold:<θ>|setf|weighted|random:<seed>)"
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_all_standard_policies() {
        for kind in PolicyKind::all_standard() {
            let p = kind.build();
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn all_registered_extends_all_standard() {
        let registered = PolicyKind::all_registered();
        for kind in PolicyKind::all_standard() {
            assert!(registered.contains(&kind), "{kind:?} missing");
        }
        assert!(registered.contains(&PolicyKind::Weighted));
        assert!(registered.contains(&PolicyKind::Random(7)));
        for kind in registered {
            assert!(!kind.build().name().is_empty());
        }
    }

    #[test]
    fn parses_cli_names() {
        assert_eq!(
            "isrpt".parse::<PolicyKind>().unwrap(),
            PolicyKind::IntermediateSrpt
        );
        assert_eq!("GREEDY".parse::<PolicyKind>().unwrap(), PolicyKind::Greedy);
        assert_eq!(
            "laps:0.25".parse::<PolicyKind>().unwrap(),
            PolicyKind::Laps(0.25)
        );
        assert!("laps:2.0".parse::<PolicyKind>().is_err());
        assert_eq!(
            "threshold:2.0".parse::<PolicyKind>().unwrap(),
            PolicyKind::Threshold(2.0)
        );
        assert!("threshold:-1".parse::<PolicyKind>().is_err());
        assert_eq!(
            "weighted".parse::<PolicyKind>().unwrap(),
            PolicyKind::Weighted
        );
        assert_eq!(
            "random:42".parse::<PolicyKind>().unwrap(),
            PolicyKind::Random(42)
        );
        assert!("random:x".parse::<PolicyKind>().is_err());
        assert!("nope".parse::<PolicyKind>().is_err());
    }

    #[test]
    fn srpt_ordered_metadata_matches_policy_family() {
        // The SRPT family claims SRPT-ordered allocations (audited by the
        // invariant layer); EQUI and the elapsed-time/latest-arrival
        // policies must not.
        for kind in PolicyKind::all_standard() {
            let p = kind.build();
            let expect = matches!(
                kind,
                PolicyKind::IntermediateSrpt
                    | PolicyKind::ParallelSrpt
                    | PolicyKind::SequentialSrpt
            );
            assert_eq!(p.srpt_ordered(), expect, "{}", p.name());
        }
        assert!(PolicyKind::Threshold(2.0).build().srpt_ordered());
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<String> = PolicyKind::all_standard()
            .iter()
            .map(|k| k.name())
            .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }
}
