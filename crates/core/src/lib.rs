//! # parsched — Intermediate-SRPT and friends
//!
//! Scheduling algorithms for tasks of *intermediate parallelizability*,
//! reproducing **"Competitively Scheduling Tasks with Intermediate
//! Parallelizability"** (Im, Moseley, Pruhs, Torng — SPAA 2014).
//!
//! The setting: `m` identical processors must be divided among online jobs
//! whose speed-up curves are `Γ(x) = x` for `x ≤ 1` and `Γ(x) = x^α` for
//! `x ≥ 1`, with `α ∈ (0, 1)` strictly between sequential (`α = 0`) and
//! fully parallelizable (`α = 1`). The objective is total flow (waiting)
//! time, judged by the competitive ratio against the offline optimum on
//! instances with job sizes in `[1, P]`.
//!
//! ## The algorithms
//!
//! * [`IntermediateSrpt`] — **the paper's algorithm (Theorem 1)**: when at
//!   least `m` jobs are alive, run Sequential-SRPT (the `m` jobs with least
//!   remaining work get one processor each); when fewer than `m` jobs are
//!   alive, split the processors evenly (EQUI). It is
//!   `O(4^{1/(1-α)} · log P)`-competitive, which is optimal up to the
//!   constant: Theorem 2 shows *every* algorithm is `Ω(log P)`-competitive
//!   the moment `α < 1`.
//! * [`ParallelSrpt`] — all `m` processors to the job with least remaining
//!   work; optimal for fully parallelizable jobs, terrible otherwise.
//! * [`SequentialSrpt`] — one processor each to the (up to `m`) jobs with
//!   least remaining work; `O(log P)`-competitive for sequential jobs
//!   (Leonardi–Raz).
//! * [`GreedyHybrid`] — the "natural" greedy of the paper's §3 that
//!   maximizes the instantaneous drain rate of the fractional number of
//!   unfinished jobs. Lemma 10 shows its competitive ratio is
//!   `Ω(max{P, n^{1/3}})` — the cautionary tale motivating
//!   Intermediate-SRPT.
//! * [`Equi`] — even split among all alive jobs (Edmonds),
//!   [`Laps`] — even split among the `⌈β·n⌉` latest-arriving jobs
//!   (Edmonds–Pruhs), and [`Setf`] — rate-equalized sharing among the
//!   least-processed jobs; the non-clairvoyant baselines from the related
//!   work.
//! * [`ThresholdSrpt`] — Intermediate-SRPT with the regime boundary moved
//!   to `⌈θ·m⌉` (the X3 ablation; `θ = 1` is the paper's algorithm), and
//!   [`RandomAllocation`] — a seeded feasible fuzzing policy used as an
//!   arbitrary reference schedule by the lemma checkers.
//!
//! All of them implement [`parsched_sim::Policy`] and run on the exact
//! continuous-time engine in `parsched-sim`.
//!
//! ## Quick example
//!
//! ```
//! use parsched::IntermediateSrpt;
//! use parsched_sim::{simulate, Instance};
//! use parsched_speedup::Curve;
//!
//! // Six jobs of intermediate parallelizability (α = 0.5) on 4 processors.
//! let inst = Instance::from_sizes(
//!     &[(0.0, 8.0), (0.0, 1.0), (0.0, 2.0), (1.0, 4.0), (2.0, 1.0), (3.0, 2.0)],
//!     Curve::power(0.5),
//! ).unwrap();
//! let outcome = simulate(&inst, &mut IntermediateSrpt::new(), 4.0).unwrap();
//! assert_eq!(outcome.metrics.num_jobs, 6);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod equi;
mod greedy;
mod intermediate_srpt;
mod laps;
mod parallel_srpt;
mod random_alloc;
mod registry;
mod sequential_srpt;
mod setf;
pub mod theory;
mod threshold_srpt;
mod weighted;

pub use equi::Equi;
pub use greedy::GreedyHybrid;
pub use intermediate_srpt::IntermediateSrpt;
pub use laps::Laps;
pub use parallel_srpt::ParallelSrpt;
pub use random_alloc::RandomAllocation;
pub use registry::PolicyKind;
pub use sequential_srpt::SequentialSrpt;
pub use setf::Setf;
pub use threshold_srpt::ThresholdSrpt;
pub use weighted::WeightedIntermediateSrpt;

pub(crate) mod util {
    use parsched_sim::AliveJob;

    /// Indices of `jobs` ordered by (remaining work, release, id) — the
    /// SRPT order with a deterministic tie-break.
    pub(crate) fn srpt_order(jobs: &[AliveJob<'_>]) -> Vec<usize> {
        // lint:allow(L007) per-refresh policy scratch; the zero-alloc contract covers the engine's donated buffers, not policy-internal views (docs/PERF.md §6.2)
        let mut idx: Vec<usize> = (0..jobs.len()).collect();
        idx.sort_by(|&a, &b| {
            jobs[a]
                .remaining
                .partial_cmp(&jobs[b].remaining)
                // lint:allow(L007) comparator on admission-validated finite remaining work; cannot fail at runtime
                .expect("remaining work is finite")
                .then(
                    jobs[a]
                        .release()
                        .partial_cmp(&jobs[b].release())
                        // lint:allow(L007) comparator on admission-validated finite releases; cannot fail at runtime
                        .expect("release times are finite"),
                )
                .then(jobs[a].id().cmp(&jobs[b].id()))
        });
        idx
    }

    /// The integral machine count used by policies that reason about "one
    /// job per machine" (the paper's `m` is an integer).
    pub(crate) fn machine_count(m: f64) -> usize {
        (m.round().max(1.0)) as usize
    }
}
