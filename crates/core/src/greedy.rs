//! The "natural" greedy hybrid of the paper's §3 — the cautionary tale.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use parsched_sim::{AliveJob, AllocationStability, Policy, Time};

use crate::util::machine_count;

/// **Greedy hybrid** (paper §3): at every moment, allocate processors to
/// maximize the instantaneous rate of decrease of the *fractional number of
/// unfinished jobs*, treating each job's remaining work as its original
/// work.
///
/// Concretely (the paper's exchange-argument implementation): number the
/// processors `1..m`; processor `i` is given to the job `j` maximizing the
/// marginal gain `(Γ_j(c_j + 1) − Γ_j(c_j)) / p_j(t)`, where `c_j` is the
/// number of processors already handed to `j`.
///
/// This policy coincides with Parallel-SRPT when all jobs are fully
/// parallelizable and with Sequential-SRPT when all jobs are sequential —
/// which is exactly why it looks like the "right" interpolation. The
/// paper's Lemma 10 shows it is nonetheless `Ω(max{P, n^{1/3}})`
/// competitive: on the greedy-trap family it pours all `m` processors into
/// each arriving unit job while `m − m^{1−ε}` size-`m` jobs starve.
///
/// # Simulation accuracy
///
/// Unlike the SRPT-family policies, greedy's argmax depends on the
/// *current* remaining works and can flip between discrete events, so the
/// policy requests a re-decision quantum: a fraction `resolution` of the
/// shortest completion horizon under the chosen allocation. Smaller values
/// track the continuous-time policy more faithfully at the cost of more
/// events (benchmarked in the X1 ablation).
#[derive(Debug, Clone, Copy)]
pub struct GreedyHybrid {
    resolution: f64,
}

/// Total-ordered f64 wrapper so marginal gains can live in a heap.
#[derive(PartialEq, PartialOrd)]
struct Gain(f64);

impl Eq for Gain {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Gain {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl GreedyHybrid {
    /// Default re-decision resolution (fraction of the shortest completion
    /// horizon).
    pub const DEFAULT_RESOLUTION: f64 = 0.1;

    /// Creates the policy with the default resolution.
    pub fn new() -> Self {
        Self::with_resolution(Self::DEFAULT_RESOLUTION)
    }

    /// Creates the policy with a custom re-decision resolution in
    /// `(0, 1]`. Panics outside that range.
    pub fn with_resolution(resolution: f64) -> Self {
        assert!(
            resolution > 0.0 && resolution <= 1.0 && resolution.is_finite(),
            "resolution must lie in (0, 1], got {resolution}"
        );
        Self { resolution }
    }
}

impl Default for GreedyHybrid {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for GreedyHybrid {
    fn name(&self) -> String {
        // lint:allow(L007) Policy::name runs at engine construction and in error reporting, never per event
        "Greedy".to_string()
    }

    fn assign(
        &mut self,
        _now: Time,
        m: f64,
        jobs: &[AliveJob<'_>],
        shares: &mut [f64],
    ) -> Option<f64> {
        let n = jobs.len();
        if n == 0 {
            return None;
        }
        shares.fill(0.0);
        let machines = machine_count(m);
        // lint:allow(L007) per-refresh policy scratch; the zero-alloc contract covers the engine's donated buffers, not policy-internal views (docs/PERF.md §6.2)
        let mut counts = vec![0u32; n];
        // Max-heap over (marginal gain, preferring smaller remaining then
        // smaller id on ties, encoded by Reverse keys).
        let mut heap: BinaryHeap<(Gain, Reverse<u64>, usize)> = (0..n)
            .map(|i| {
                (
                    Gain(jobs[i].curve().marginal(0) / jobs[i].remaining),
                    Reverse(jobs[i].id().0),
                    i,
                )
            })
            // lint:allow(L007) per-refresh policy scratch; the zero-alloc contract covers the engine's donated buffers, not policy-internal views (docs/PERF.md §6.2)
            .collect();
        for _ in 0..machines {
            let Some((_, _, i)) = heap.pop() else { break };
            counts[i] += 1;
            shares[i] += 1.0;
            heap.push((
                Gain(jobs[i].curve().marginal(counts[i]) / jobs[i].remaining),
                Reverse(jobs[i].id().0),
                i,
            ));
        }
        // Re-decide after a fraction of the shortest completion horizon so
        // the drifting argmax is tracked.
        let mut horizon = f64::INFINITY;
        for (i, job) in jobs.iter().enumerate() {
            let rate = job.curve().rate(shares[i]);
            if rate > 0.0 {
                horizon = horizon.min(job.remaining / rate);
            }
        }
        if horizon.is_finite() {
            Some((self.resolution * horizon).max(1e-9))
        } else {
            None
        }
    }

    fn stability(&self) -> AllocationStability {
        // The marginal-gain argmax drifts with remaining work and carries
        // no prefix structure: the engine must take the exhaustive path.
        AllocationStability::General
    }

    fn srpt_ordered(&self) -> bool {
        // Integer machine grants follow marginal gain, not the SRPT order.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_sim::{simulate, Instance, JobId, JobSpec};
    use parsched_speedup::Curve;

    fn assign_once(m: f64, specs: &[JobSpec]) -> Vec<f64> {
        let views: Vec<AliveJob<'_>> = specs
            .iter()
            .map(|s| AliveJob {
                spec: s,
                remaining: s.size,
            })
            .collect();
        let mut shares = vec![0.0; views.len()];
        GreedyHybrid::new().assign(0.0, m, &views, &mut shares);
        shares
    }

    #[test]
    #[should_panic(expected = "resolution must lie in (0, 1]")]
    fn rejects_zero_resolution() {
        let _ = GreedyHybrid::with_resolution(0.0);
    }

    #[test]
    fn matches_parallel_srpt_for_parallel_jobs() {
        // Fully parallel: marginal gain is 1/p_j for every processor →
        // everything goes to the shortest job.
        let specs = vec![
            JobSpec::new(JobId(0), 0.0, 4.0, Curve::FullyParallel),
            JobSpec::new(JobId(1), 0.0, 2.0, Curve::FullyParallel),
        ];
        assert_eq!(assign_once(4.0, &specs), vec![0.0, 4.0]);
    }

    #[test]
    fn matches_sequential_srpt_for_sequential_jobs() {
        // Sequential: only the first processor on a job has positive gain.
        let specs = vec![
            JobSpec::new(JobId(0), 0.0, 4.0, Curve::Sequential),
            JobSpec::new(JobId(1), 0.0, 2.0, Curve::Sequential),
            JobSpec::new(JobId(2), 0.0, 3.0, Curve::Sequential),
        ];
        let shares = assign_once(2.0, &specs);
        // Two processors, three jobs: shortest two get one each.
        assert_eq!(shares, vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn monopolizes_short_job_on_trap_shape() {
        // The Lemma 10 failure mode: one unit job vs size-m jobs, α < 1.
        // Marginal of processor k+1 on the unit job: (k+1)^α − k^α ≥
        // marginal-per-size of giving it to a size-m job (1/m), so greedy
        // gives *all* m processors to the unit job.
        let m = 16usize;
        let mut specs: Vec<JobSpec> = (0..4)
            .map(|i| JobSpec::new(JobId(i), 0.0, m as f64, Curve::power(0.9)))
            .collect();
        specs.push(JobSpec::new(JobId(99), 0.0, 1.0, Curve::power(0.9)));
        let shares = assign_once(m as f64, &specs);
        assert_eq!(
            shares[4], m as f64,
            "unit job should monopolize: {shares:?}"
        );
    }

    #[test]
    fn splits_between_equal_intermediate_jobs() {
        // Two identical α=0.5 jobs: marginal gains alternate, so the m
        // processors split evenly.
        let specs = vec![
            JobSpec::new(JobId(0), 0.0, 4.0, Curve::power(0.5)),
            JobSpec::new(JobId(1), 0.0, 4.0, Curve::power(0.5)),
        ];
        let shares = assign_once(6.0, &specs);
        assert_eq!(shares, vec![3.0, 3.0]);
    }

    #[test]
    fn end_to_end_simulation_completes() {
        let inst = Instance::from_sizes(
            &[(0.0, 4.0), (0.0, 1.0), (0.5, 2.0), (1.0, 3.0)],
            Curve::power(0.5),
        )
        .unwrap();
        let outcome = simulate(&inst, &mut GreedyHybrid::new(), 4.0).unwrap();
        assert_eq!(outcome.metrics.num_jobs, 4);
        // Sanity: all flows positive and finite.
        assert!(outcome
            .completed
            .iter()
            .all(|c| c.flow() > 0.0 && c.flow().is_finite()));
    }

    #[test]
    fn finer_resolution_changes_flow_only_slightly() {
        let inst = Instance::from_sizes(
            &[(0.0, 4.0), (0.0, 3.0), (0.0, 2.0), (1.0, 5.0)],
            Curve::power(0.7),
        )
        .unwrap();
        let coarse = simulate(&inst, &mut GreedyHybrid::with_resolution(0.5), 4.0)
            .unwrap()
            .metrics
            .total_flow;
        let fine = simulate(&inst, &mut GreedyHybrid::with_resolution(0.01), 4.0)
            .unwrap()
            .metrics
            .total_flow;
        let rel = (coarse - fine).abs() / fine;
        assert!(rel < 0.05, "resolution sensitivity too high: {rel}");
    }
}
