//! Weighted flow time: an extension beyond the paper.

use parsched_sim::{AliveJob, AllocationStability, Policy, Time};

use crate::util::machine_count;

/// **Weighted-Intermediate-SRPT** — the natural extension of the paper's
/// algorithm to the *weighted* flow objective `Σ_j w_j·F_j`:
///
/// * **Overloaded** (`|A(t)| ≥ m`): one processor each to the `m` jobs of
///   highest *density* `w_j / p_j(t)` (highest-density-first, the weighted
///   analogue of SRPT — identical to it when all weights are 1).
/// * **Underloaded** (`|A(t)| < m`): split the processors in proportion to
///   the weights (weighted processor sharing; plain EQUI at equal
///   weights).
///
/// With unit weights this is exactly [`crate::IntermediateSrpt`] (tested
/// below), so Theorem 1's guarantee applies to that slice. For general
/// weights no competitive guarantee is claimed — weighted flow is strictly
/// harder (no online algorithm is `O(1)`-competitive even on one machine)
/// — but the policy is the sensible practitioner's knob and the examples
/// use it to prioritize tenants.
#[derive(Debug, Default, Clone, Copy)]
pub struct WeightedIntermediateSrpt;

impl WeightedIntermediateSrpt {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl Policy for WeightedIntermediateSrpt {
    fn name(&self) -> String {
        // lint:allow(L007) Policy::name runs at engine construction and in error reporting, never per event
        "W-Intermediate-SRPT".to_string()
    }

    fn assign(
        &mut self,
        _now: Time,
        m: f64,
        jobs: &[AliveJob<'_>],
        shares: &mut [f64],
    ) -> Option<f64> {
        let n = jobs.len();
        if n == 0 {
            return None;
        }
        let machines = machine_count(m);
        shares.fill(0.0);
        if n >= machines {
            // Highest density w/p(t) first; ties by (remaining, id) so the
            // unit-weight case reproduces Intermediate-SRPT exactly.
            // lint:allow(L007) per-refresh policy scratch; the zero-alloc contract covers the engine's donated buffers, not policy-internal views (docs/PERF.md §6.2)
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by(|&a, &b| {
                let da = jobs[a].spec.weight / jobs[a].remaining;
                let db = jobs[b].spec.weight / jobs[b].remaining;
                db.partial_cmp(&da)
                    // lint:allow(L007) comparator on admission-validated finite densities; cannot fail at runtime
                    .expect("finite densities")
                    .then(
                        jobs[a]
                            .remaining
                            .partial_cmp(&jobs[b].remaining)
                            // lint:allow(L007) comparator on admission-validated finite remaining work; cannot fail at runtime
                            .expect("finite remaining"),
                    )
                    .then(jobs[a].id().cmp(&jobs[b].id()))
            });
            for &i in idx.iter().take(machines) {
                shares[i] = 1.0;
            }
        } else {
            let total_weight: f64 = jobs.iter().map(|j| j.spec.weight).sum();
            for (i, job) in jobs.iter().enumerate() {
                shares[i] = m * job.spec.weight / total_weight;
            }
        }
        None
    }

    fn stability(&self) -> AllocationStability {
        // Density order and weighted shares both depend on weights the
        // incremental SRPT-prefix path cannot see; run exhaustively (the
        // unit-weight equivalence test relies on this being General).
        AllocationStability::General
    }

    fn srpt_ordered(&self) -> bool {
        // Highest-density-first coincides with SRPT only at unit weights;
        // the claim must hold for every input, so it is not made.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IntermediateSrpt;
    use parsched_sim::{simulate, Instance, JobId, JobSpec};
    use parsched_speedup::Curve;

    fn weighted(id: u64, release: f64, size: f64, weight: f64) -> JobSpec {
        JobSpec::new(JobId(id), release, size, Curve::power(0.5)).with_weight(weight)
    }

    #[test]
    fn unit_weights_reproduce_intermediate_srpt() {
        let inst = Instance::from_sizes(
            &[
                (0.0, 4.0),
                (0.0, 1.0),
                (0.5, 2.0),
                (1.0, 8.0),
                (1.5, 1.0),
                (2.0, 3.0),
            ],
            Curve::power(0.5),
        )
        .unwrap();
        for m in [2.0, 4.0] {
            let a = simulate(&inst, &mut WeightedIntermediateSrpt::new(), m).unwrap();
            let b = simulate(&inst, &mut IntermediateSrpt::new(), m).unwrap();
            // Same schedule, but the two runs take different engine paths
            // (weighted is General-stability ⇒ exhaustive; plain is
            // SrptPrefix ⇒ incremental), whose float expressions differ by
            // ulps — compare completions with a tolerance.
            assert_eq!(a.completed.len(), b.completed.len(), "m={m}");
            for (x, y) in a.completed.iter().zip(&b.completed) {
                assert_eq!(x.id, y.id, "m={m}");
                assert!(
                    (x.completion - y.completion).abs() < 1e-9 * y.completion.max(1.0),
                    "m={m}: {} vs {}",
                    x.completion,
                    y.completion
                );
            }
        }
    }

    #[test]
    fn overload_prefers_high_density() {
        // m = 1: size-4 job with weight 8 (density 2) beats size-1 job
        // with weight 1 (density 1).
        let inst =
            Instance::new(vec![weighted(0, 0.0, 4.0, 8.0), weighted(1, 0.0, 1.0, 1.0)]).unwrap();
        let out = simulate(&inst, &mut WeightedIntermediateSrpt::new(), 1.0).unwrap();
        assert_eq!(out.completed[0].id, JobId(0));
        // Weighted flow: 8·4 + 1·5 = 37 (vs SRPT order: 1·1 + 8·5 = 41).
        assert!((out.metrics.total_weighted_flow - 37.0).abs() < 1e-9);
        let srpt = simulate(&inst, &mut IntermediateSrpt::new(), 1.0).unwrap();
        assert!((srpt.metrics.total_weighted_flow - 41.0).abs() < 1e-9);
    }

    #[test]
    fn underload_splits_proportionally_to_weight() {
        let specs = [weighted(0, 0.0, 4.0, 3.0), weighted(1, 0.0, 4.0, 1.0)];
        let views: Vec<AliveJob<'_>> = specs
            .iter()
            .map(|s| AliveJob {
                spec: s,
                remaining: s.size,
            })
            .collect();
        let mut shares = vec![0.0; 2];
        WeightedIntermediateSrpt::new().assign(0.0, 8.0, &views, &mut shares);
        assert_eq!(shares, vec![6.0, 2.0]);
    }

    #[test]
    fn weighted_metrics_accumulate() {
        let inst =
            Instance::new(vec![weighted(0, 0.0, 2.0, 5.0), weighted(1, 0.0, 1.0, 1.0)]).unwrap();
        let out = simulate(&inst, &mut WeightedIntermediateSrpt::new(), 2.0).unwrap();
        // n = m = 2 → overload branch: one processor each (rate 1). Job 1
        // (size 1) finishes at t = 1; then job 0 alone in underload gets
        // both processors (rate √2) for its last unit: C₀ = 1 + 1/√2.
        let c0 = 1.0 + 1.0 / 2f64.sqrt();
        assert!((out.metrics.total_weighted_flow - (5.0 * c0 + 1.0)).abs() < 1e-9);
        assert!((out.metrics.total_flow - (c0 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn instance_rejects_bad_weights() {
        assert!(Instance::new(vec![weighted(0, 0.0, 1.0, 0.0)]).is_err());
        assert!(Instance::new(vec![weighted(0, 0.0, 1.0, -1.0)]).is_err());
        assert!(Instance::new(vec![weighted(0, 0.0, 1.0, f64::NAN)]).is_err());
    }
}
