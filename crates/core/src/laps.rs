//! LAPS: Latest Arrival Processor Sharing.

use parsched_sim::{AliveJob, AllocationStability, Policy, Time};

/// **LAPS(β)** — Latest Arrival Processor Sharing (Edmonds–Pruhs,
/// TALG 2012): the `⌈β · |A(t)|⌉` *latest-arriving* alive jobs share the
/// `m` processors evenly; older jobs wait.
///
/// LAPS is non-clairvoyant and `(1+β+ε)`-speed `O(1)`-competitive for
/// arbitrary speed-up curves — the scalable baseline from the paper's
/// related-work section. Without speed augmentation (the paper's setting)
/// it has no constant guarantee, which our cross-policy table (experiment
/// T1) makes visible.
#[derive(Debug, Clone, Copy)]
pub struct Laps {
    beta: f64,
}

impl Laps {
    /// Creates LAPS with parameter `β ∈ (0, 1]`. Panics outside that range.
    pub fn new(beta: f64) -> Self {
        assert!(
            beta > 0.0 && beta <= 1.0 && beta.is_finite(),
            "LAPS β must lie in (0, 1], got {beta}"
        );
        Self { beta }
    }

    /// The sharing fraction β.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl Default for Laps {
    /// β = 1/2, a common choice in the literature's experiments.
    fn default() -> Self {
        Self::new(0.5)
    }
}

impl Policy for Laps {
    fn name(&self) -> String {
        // lint:allow(L007) Policy::name runs at engine construction and in error reporting, never per event
        format!("LAPS({})", self.beta)
    }

    fn assign(
        &mut self,
        _now: Time,
        m: f64,
        jobs: &[AliveJob<'_>],
        shares: &mut [f64],
    ) -> Option<f64> {
        let n = jobs.len();
        if n == 0 {
            return None;
        }
        shares.fill(0.0);
        let k = ((self.beta * n as f64).ceil() as usize).clamp(1, n);
        // Indices ordered by latest arrival first (ties: higher id first,
        // matching "without loss of generality each job arrives at a unique
        // time" — ids encode arrival order for equal stamps).
        // lint:allow(L007) per-refresh policy scratch; the zero-alloc contract covers the engine's donated buffers, not policy-internal views (docs/PERF.md §6.2)
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| {
            jobs[b]
                .release()
                .partial_cmp(&jobs[a].release())
                // lint:allow(L007) comparator on admission-validated finite releases; cannot fail at runtime
                .expect("finite releases")
                .then(jobs[b].id().cmp(&jobs[a].id()))
        });
        let each = m / k as f64;
        for &i in idx.iter().take(k) {
            shares[i] = each;
        }
        None
    }

    fn stability(&self) -> AllocationStability {
        // The served set is the ⌈βn⌉ *latest arrivals*, which changes with
        // every arrival/completion in a way the incremental SRPT-prefix
        // bookkeeping cannot express.
        AllocationStability::General
    }

    fn srpt_ordered(&self) -> bool {
        // Latest-arrival-first is the opposite of an SRPT prefix.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_sim::{simulate, Instance, JobId, JobSpec};
    use parsched_speedup::Curve;

    #[test]
    #[should_panic(expected = "must lie in (0, 1]")]
    fn rejects_zero_beta() {
        let _ = Laps::new(0.0);
    }

    #[test]
    fn beta_one_is_equi() {
        let inst = Instance::from_sizes(&[(0.0, 2.0), (0.0, 2.0)], Curve::FullyParallel).unwrap();
        let a = simulate(&inst, &mut Laps::new(1.0), 2.0).unwrap();
        let b = simulate(&inst, &mut crate::Equi::new(), 2.0).unwrap();
        assert!((a.metrics.total_flow - b.metrics.total_flow).abs() < 1e-9);
    }

    #[test]
    fn favors_latest_arrivals() {
        // β = 0.5, n = 2: only the latest job runs.
        let specs = [
            JobSpec::new(JobId(0), 0.0, 4.0, Curve::FullyParallel),
            JobSpec::new(JobId(1), 1.0, 1.0, Curve::FullyParallel),
        ];
        let inst = Instance::new(specs.to_vec()).unwrap();
        let outcome = simulate(&inst, &mut Laps::new(0.5), 2.0).unwrap();
        // Job 0 runs alone [0,1) at rate 2 → 2 left. Job 1 arrives and
        // monopolizes: done at 1.5. Job 0 resumes: done at 2.5.
        assert_eq!(outcome.flow_of(JobId(1)), Some(0.5));
        assert_eq!(outcome.flow_of(JobId(0)), Some(2.5));
    }

    #[test]
    fn share_count_rounds_up() {
        // β = 0.5 with n = 3 → k = 2 jobs share.
        let specs = [
            JobSpec::new(JobId(0), 0.0, 1.0, Curve::FullyParallel),
            JobSpec::new(JobId(1), 0.5, 1.0, Curve::FullyParallel),
            JobSpec::new(JobId(2), 1.0, 8.0, Curve::FullyParallel),
        ];
        let views: Vec<AliveJob<'_>> = specs
            .iter()
            .map(|s| AliveJob {
                spec: s,
                remaining: 1.0,
            })
            .collect();
        let mut shares = vec![0.0; 3];
        Laps::new(0.5).assign(1.0, 4.0, &views, &mut shares);
        assert_eq!(shares, vec![0.0, 2.0, 2.0]);
    }
}
