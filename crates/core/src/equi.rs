//! EQUI / processor sharing.

use parsched_sim::{AliveJob, AllocationStability, EquiSplit, Policy, PrefixAllocation, Time};

/// **EQUI** (equipartition / processor sharing): all alive jobs share the
/// `m` processors evenly.
///
/// Introduced into the speed-up-curve literature by Edmonds et al.: EQUI is
/// 2-competitive for total flow time when all jobs are released at time 0
/// (arbitrary speed-up curves), and `(2+ε)`-speed `O(1)`-competitive with
/// arbitrary release times. It is also exactly what Intermediate-SRPT does
/// during underloaded times, so it doubles as that policy's underload
/// regime in ablations.
///
/// This is a thin, documented wrapper over the engine-level
/// [`parsched_sim::EquiSplit`] so the policy crate presents one coherent
/// namespace.
#[derive(Debug, Default, Clone, Copy)]
pub struct Equi(EquiSplit);

impl Equi {
    /// Creates the policy.
    pub fn new() -> Self {
        Self(EquiSplit::new())
    }
}

impl Policy for Equi {
    fn name(&self) -> String {
        // lint:allow(L007) Policy::name runs at engine construction and in error reporting, never per event
        "EQUI".to_string()
    }

    fn assign(
        &mut self,
        now: Time,
        m: f64,
        jobs: &[AliveJob<'_>],
        shares: &mut [f64],
    ) -> Option<f64> {
        self.0.assign(now, m, jobs, shares)
    }

    fn stability(&self) -> AllocationStability {
        self.0.stability()
    }

    fn srpt_ordered(&self) -> bool {
        // Forwards the engine-level EquiSplit's answer: EQUI serves
        // every alive job evenly, so its allocation is *not* an SRPT
        // prefix and the audit layer must not hold it to that claim.
        self.0.srpt_ordered()
    }

    fn prefix_allocation(&self, n_alive: usize, m: f64) -> Option<PrefixAllocation> {
        self.0.prefix_allocation(n_alive, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_sim::{simulate, Instance};
    use parsched_speedup::Curve;

    #[test]
    fn splits_evenly_regardless_of_size() {
        // Batch of 4 parallel jobs, sizes 1..4, m = 4: each runs at rate 1
        // until the shortest finishes, then shares grow.
        // Completions: job size 1 at t=1 (4 alive, rate 1 each).
        // Then 3 alive, rate 4/3: size-2 job has 1 left → done at 1.75.
        let inst = Instance::from_sizes(
            &[(0.0, 1.0), (0.0, 2.0), (0.0, 3.0), (0.0, 4.0)],
            Curve::FullyParallel,
        )
        .unwrap();
        let outcome = simulate(&inst, &mut Equi::new(), 4.0).unwrap();
        assert_eq!(outcome.flow_of(parsched_sim::JobId(0)), Some(1.0));
        assert_eq!(outcome.flow_of(parsched_sim::JobId(1)), Some(1.75));
        assert_eq!(outcome.metrics.num_jobs, 4);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Equi::new().name(), "EQUI");
    }
}
