//! SETF: Shortest Elapsed Time First.

use parsched_sim::{AliveJob, AllocationStability, Policy, Time};

/// Relative tolerance for "tied" elapsed work (floats from prior merges).
const TIE_TOL: f64 = 1e-7;

/// **SETF** — serve the jobs that have received the *least processing so
/// far* (elapsed work `p_j − p_j(t)`).
///
/// The classic non-clairvoyant policy (a continuous multi-level feedback
/// queue), included because the speed-up-curve literature the paper builds
/// on (Edmonds; Edmonds–Pruhs) uses it as the canonical foil to EQUI/LAPS.
///
/// # Generalization to heterogeneous speed-up curves
///
/// SETF's defining invariant is that the least-processed jobs are served
/// so that they *stay tied*: on a single machine the tied group time-shares
/// and every member's elapsed work grows at the same rate. With speed-up
/// curves, equal *shares* would break the invariant instantly (different
/// `Γ_j` ⇒ different elapsed growth ⇒ the ordering churns at rate ∞ — a
/// Zeno simulation). The faithful generalization served here gives the
/// tied group **rate-equalizing shares**: find the common rate `ρ` with
/// `Σ_j Γ_j⁻¹(ρ) = m` (bisection; capped at the group's saturation rate,
/// idling leftover processors exactly like SETF on sequential jobs would)
/// and allocate `x_j = Γ_j⁻¹(ρ)`.
///
/// With that choice the group's membership and `ρ` are constant between
/// events, so the policy requests one exact re-decision when the group's
/// elapsed work catches up to the next-least-processed job — the
/// simulation is event-exact, like the SRPT family.
#[derive(Debug, Default, Clone, Copy)]
pub struct Setf;

impl Setf {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }

    /// Rate-equalizing shares for the group `jobs[i]` for `i ∈ group`:
    /// returns `(ρ, shares for the group in group order)`.
    fn equalize(m: f64, jobs: &[AliveJob<'_>], group: &[usize]) -> (f64, Vec<f64>) {
        // The group's achievable common rate is capped by each member's
        // saturation at full machine.
        let rho_max = group
            .iter()
            .map(|&i| jobs[i].curve().rate(m))
            .fold(f64::INFINITY, f64::min);
        let demand = |rho: f64| -> f64 {
            group
                .iter()
                .map(|&i| jobs[i].curve().inverse_rate(rho).unwrap_or(f64::INFINITY))
                .sum()
        };
        // If even the saturation rate under-uses the machine, run saturated
        // (the leftover processors cannot speed up the least-processed
        // jobs; SETF does not look ahead).
        let rho = if demand(rho_max) <= m {
            rho_max
        } else {
            let (mut lo, mut hi) = (0.0f64, rho_max);
            for _ in 0..64 {
                let mid = 0.5 * (lo + hi);
                if demand(mid) <= m {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            lo
        };
        let shares = group
            .iter()
            .map(|&i| jobs[i].curve().inverse_rate(rho).unwrap_or(m))
            // lint:allow(L007) per-refresh policy scratch; the zero-alloc contract covers the engine's donated buffers, not policy-internal views (docs/PERF.md §6.2)
            .collect();
        (rho, shares)
    }
}

impl Policy for Setf {
    fn name(&self) -> String {
        // lint:allow(L007) Policy::name runs at engine construction and in error reporting, never per event
        "SETF".to_string()
    }

    fn assign(
        &mut self,
        _now: Time,
        m: f64,
        jobs: &[AliveJob<'_>],
        shares: &mut [f64],
    ) -> Option<f64> {
        let n = jobs.len();
        if n == 0 {
            return None;
        }
        shares.fill(0.0);
        let elapsed = |j: &AliveJob<'_>| (j.size() - j.remaining).max(0.0);
        let min_elapsed = jobs.iter().map(elapsed).fold(f64::INFINITY, f64::min);
        let tol = TIE_TOL * min_elapsed.max(1.0);
        let group: Vec<usize> = (0..n)
            .filter(|&i| elapsed(&jobs[i]) <= min_elapsed + tol)
            // lint:allow(L007) per-refresh policy scratch; the zero-alloc contract covers the engine's donated buffers, not policy-internal views (docs/PERF.md §6.2)
            .collect();
        let (rho, group_shares) = Self::equalize(m, jobs, &group);
        for (&i, &s) in group.iter().zip(&group_shares) {
            shares[i] = s.min(m);
        }
        if rho <= 0.0 {
            // Degenerate (cannot happen for valid curves with m > 0), but
            // never divide by zero below.
            return None;
        }
        // Exact next membership change: the group catches the closest
        // outsider at gap/ρ.
        let next_gap = jobs
            .iter()
            .map(elapsed)
            .filter(|&e| e > min_elapsed + tol)
            .map(|e| e - min_elapsed)
            .fold(f64::INFINITY, f64::min);
        if next_gap.is_finite() {
            Some((next_gap / rho).max(1e-9))
        } else {
            None
        }
    }

    fn stability(&self) -> AllocationStability {
        // The least-elapsed group shifts continuously as jobs accrue
        // service; rate equalization has no SRPT-prefix structure.
        AllocationStability::General
    }

    fn srpt_ordered(&self) -> bool {
        // Elapsed time orders the served set, not remaining work.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_sim::{simulate, Instance, JobId, JobSpec};
    use parsched_speedup::Curve;

    #[test]
    fn fresh_identical_jobs_share_equally() {
        let specs = [
            JobSpec::new(JobId(0), 0.0, 5.0, Curve::FullyParallel),
            JobSpec::new(JobId(1), 0.0, 2.0, Curve::FullyParallel),
        ];
        let views: Vec<AliveJob<'_>> = specs
            .iter()
            .map(|s| AliveJob {
                spec: s,
                remaining: s.size,
            })
            .collect();
        let mut shares = vec![0.0; 2];
        Setf::new().assign(0.0, 4.0, &views, &mut shares);
        assert_eq!(shares, vec![2.0, 2.0]);
    }

    #[test]
    fn heterogeneous_group_gets_rate_equalizing_shares() {
        // One fully parallel and one α=0.5 job, both fresh, m = 6.
        // Equal rate ρ: x_par = ρ, x_pow = ρ² (for ρ ≥ 1); ρ + ρ² = 6 → ρ = 2.
        let specs = [
            JobSpec::new(JobId(0), 0.0, 5.0, Curve::FullyParallel),
            JobSpec::new(JobId(1), 0.0, 5.0, Curve::power(0.5)),
        ];
        let views: Vec<AliveJob<'_>> = specs
            .iter()
            .map(|s| AliveJob {
                spec: s,
                remaining: s.size,
            })
            .collect();
        let mut shares = vec![0.0; 2];
        Setf::new().assign(0.0, 6.0, &views, &mut shares);
        assert!((shares[0] - 2.0).abs() < 1e-6, "{shares:?}");
        assert!((shares[1] - 4.0).abs() < 1e-6, "{shares:?}");
    }

    #[test]
    fn sequential_group_idles_leftover_processors() {
        // Three sequential jobs on m = 8: each saturates at rate 1 with 1
        // processor; 5 processors idle — exactly SETF's behavior.
        let specs: Vec<JobSpec> = (0..3)
            .map(|i| JobSpec::new(JobId(i), 0.0, 4.0, Curve::Sequential))
            .collect();
        let views: Vec<AliveJob<'_>> = specs
            .iter()
            .map(|s| AliveJob {
                spec: s,
                remaining: s.size,
            })
            .collect();
        let mut shares = vec![0.0; 3];
        Setf::new().assign(0.0, 8.0, &views, &mut shares);
        assert!(shares.iter().all(|&s| (s - 1.0).abs() < 1e-6), "{shares:?}");
    }

    #[test]
    fn least_processed_job_monopolizes() {
        let specs = [
            JobSpec::new(JobId(0), 0.0, 5.0, Curve::FullyParallel),
            JobSpec::new(JobId(1), 0.0, 5.0, Curve::FullyParallel),
        ];
        let views = vec![
            AliveJob {
                spec: &specs[0],
                remaining: 3.0,
            }, // elapsed 2
            AliveJob {
                spec: &specs[1],
                remaining: 4.5,
            }, // elapsed 0.5
        ];
        let mut shares = vec![0.0; 2];
        let quantum = Setf::new().assign(0.0, 4.0, &views, &mut shares);
        assert_eq!(shares, vec![0.0, 4.0]);
        // Catch-up in exactly gap/ρ = 1.5/4.
        assert!((quantum.expect("gap exists") - 1.5 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn late_arrival_preempts() {
        // Fully parallel, m = 2: job 0 (size 4) runs alone on [0,1)
        // (elapsed 2). Job 1 (size 1, elapsed 0) arrives at 1 and
        // monopolizes; it finishes (at 1.5) before catching up.
        let inst = Instance::new(vec![
            JobSpec::new(JobId(0), 0.0, 4.0, Curve::FullyParallel),
            JobSpec::new(JobId(1), 1.0, 1.0, Curve::FullyParallel),
        ])
        .unwrap();
        let out = simulate(&inst, &mut Setf::new(), 2.0).unwrap();
        assert_eq!(out.flow_of(JobId(1)), Some(0.5));
        assert_eq!(out.flow_of(JobId(0)), Some(2.5));
    }

    #[test]
    fn catch_up_merges_service_groups_without_zeno() {
        // Job 0 gets a 1-unit head start; job 1 catches up and they finish
        // together. The run must complete in a handful of events (the old
        // equal-share formulation leapfrogged with ~1e-6 quanta).
        let inst = Instance::new(vec![
            JobSpec::new(JobId(0), 0.0, 3.0, Curve::FullyParallel),
            JobSpec::new(JobId(1), 0.5, 3.0, Curve::FullyParallel),
        ])
        .unwrap();
        let out = simulate(&inst, &mut Setf::new(), 2.0).unwrap();
        assert!(
            out.metrics.events < 20,
            "Zeno: {} events",
            out.metrics.events
        );
        let c0 = out
            .completed
            .iter()
            .find(|c| c.id == JobId(0))
            .unwrap()
            .completion;
        let c1 = out
            .completed
            .iter()
            .find(|c| c.id == JobId(1))
            .unwrap()
            .completion;
        assert!((c0 - c1).abs() < 1e-3, "{c0} vs {c1}");
        assert!((out.metrics.makespan - 3.0).abs() < 1e-3);
    }

    #[test]
    fn long_mixed_run_terminates_quickly() {
        // Regression for the Zeno bug: a mixed-α Poisson-ish workload must
        // finish with an event count polynomial in n.
        let jobs: Vec<JobSpec> = (0..40)
            .map(|i| {
                JobSpec::new(
                    JobId(i),
                    i as f64 * 0.7,
                    1.0 + (i as f64 * 2.3) % 9.0,
                    Curve::power(0.2 + 0.6 * ((i % 7) as f64 / 6.0)),
                )
            })
            .collect();
        let inst = Instance::new(jobs).unwrap();
        let out = simulate(&inst, &mut Setf::new(), 4.0).unwrap();
        assert_eq!(out.metrics.num_jobs, 40);
        assert!(out.metrics.events < 4000, "{} events", out.metrics.events);
    }
}
