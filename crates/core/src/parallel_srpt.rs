//! Parallel-SRPT: the optimal policy for fully parallelizable jobs.

use parsched_sim::{AliveJob, AllocationStability, Policy, PrefixAllocation, Time};

use crate::util::srpt_order;

/// **Parallel-SRPT**: allocate *all* `m` processors to the single job with
/// the least unprocessed work.
///
/// For fully parallelizable jobs (`Γ(x) = x`) this is exactly SRPT on one
/// speed-`m` processor, which is optimal for total flow time (competitive
/// ratio 1). The paper's starting observation is that the moment `α < 1`
/// this "give everything to the shortest" strategy wastes capacity —
/// `Γ(m) = m^α ≪ m` — and its competitive ratio explodes (it degenerates to
/// a special case of the §3 greedy's failure mode).
#[derive(Debug, Default, Clone, Copy)]
pub struct ParallelSrpt;

impl ParallelSrpt {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl Policy for ParallelSrpt {
    fn name(&self) -> String {
        // lint:allow(L007) Policy::name runs at engine construction and in error reporting, never per event
        "Parallel-SRPT".to_string()
    }

    fn assign(
        &mut self,
        _now: Time,
        m: f64,
        jobs: &[AliveJob<'_>],
        shares: &mut [f64],
    ) -> Option<f64> {
        if jobs.is_empty() {
            return None;
        }
        shares.fill(0.0);
        let order = srpt_order(jobs);
        // lint:allow(L007) order is a permutation of 0..n and shares has length n; in bounds by construction
        shares[order[0]] = m;
        None
    }

    fn stability(&self) -> AllocationStability {
        AllocationStability::SrptPrefix
    }

    fn event_hooks_are_noop(&self) -> bool {
        // Stateless between decisions: both event hooks are the empty
        // defaults, so the fast loop may elide the per-event calls.
        true
    }

    fn srpt_ordered(&self) -> bool {
        true
    }

    fn prefix_allocation(&self, n_alive: usize, m: f64) -> Option<PrefixAllocation> {
        (n_alive > 0).then_some(PrefixAllocation { count: 1, share: m })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_sim::{simulate, Instance, JobId};
    use parsched_speedup::Curve;

    #[test]
    fn is_optimal_for_parallel_jobs() {
        // SRPT on a speed-4 machine: sizes 4, 8 at t=0.
        // Job of size 4 first: done at t=1; then size 8: done at t=3.
        let inst = Instance::from_sizes(&[(0.0, 8.0), (0.0, 4.0)], Curve::FullyParallel).unwrap();
        let outcome = simulate(&inst, &mut ParallelSrpt::new(), 4.0).unwrap();
        assert_eq!(outcome.flow_of(JobId(1)), Some(1.0));
        assert_eq!(outcome.flow_of(JobId(0)), Some(3.0));
    }

    #[test]
    fn preempts_on_shorter_arrival() {
        // Size 4 at t=0 (rate 2, m=2), size 1 arrives at t=1 with remaining
        // 1 < 2 → preempts; finishes at 1.5; then job 0 finishes at 2.5.
        let inst = Instance::from_sizes(&[(0.0, 4.0), (1.0, 1.0)], Curve::FullyParallel).unwrap();
        let outcome = simulate(&inst, &mut ParallelSrpt::new(), 2.0).unwrap();
        assert_eq!(outcome.flow_of(JobId(1)), Some(0.5));
        assert_eq!(outcome.flow_of(JobId(0)), Some(2.5));
    }

    #[test]
    fn wastes_capacity_on_intermediate_jobs() {
        // Two α=0.5 jobs of size 4 on m=4. Parallel-SRPT: first at rate
        // 4^0.5 = 2 → done t=2; second done t=4. Total flow 6.
        // (EQUI would finish both at 2√2 ≈ 2.83 for total ≈ 5.66.)
        let inst = Instance::from_sizes(&[(0.0, 4.0), (0.0, 4.0)], Curve::power(0.5)).unwrap();
        let outcome = simulate(&inst, &mut ParallelSrpt::new(), 4.0).unwrap();
        assert!((outcome.metrics.total_flow - 6.0).abs() < 1e-9);
    }
}
