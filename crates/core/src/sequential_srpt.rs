//! Sequential-SRPT: the optimally competitive policy for sequential jobs.

use parsched_sim::{AliveJob, AllocationStability, Policy, PrefixAllocation, Time};

use crate::util::{machine_count, srpt_order};

/// **Sequential-SRPT**: the up to `m` jobs with the least unprocessed work
/// each get exactly one processor; everything else (including leftover
/// processors) idles.
///
/// For sequential jobs (`Γ(x) = min(x, 1)`) extra processors are useless,
/// and Leonardi–Raz show this policy is `Θ(log P)`-competitive for total
/// flow time on parallel machines — the best possible. The paper's
/// Intermediate-SRPT coincides with it whenever the system is overloaded
/// (`|A(t)| ≥ m`) but, unlike it, refuses to idle processors when
/// underloaded.
#[derive(Debug, Default, Clone, Copy)]
pub struct SequentialSrpt;

impl SequentialSrpt {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl Policy for SequentialSrpt {
    fn name(&self) -> String {
        // lint:allow(L007) Policy::name runs at engine construction and in error reporting, never per event
        "Sequential-SRPT".to_string()
    }

    fn assign(
        &mut self,
        _now: Time,
        m: f64,
        jobs: &[AliveJob<'_>],
        shares: &mut [f64],
    ) -> Option<f64> {
        if jobs.is_empty() {
            return None;
        }
        shares.fill(0.0);
        let machines = machine_count(m);
        let order = srpt_order(jobs);
        for &i in order.iter().take(machines) {
            shares[i] = 1.0;
        }
        None
    }

    fn stability(&self) -> AllocationStability {
        AllocationStability::SrptPrefix
    }

    fn event_hooks_are_noop(&self) -> bool {
        // Stateless between decisions: both event hooks are the empty
        // defaults, so the fast loop may elide the per-event calls.
        true
    }

    fn srpt_ordered(&self) -> bool {
        true
    }

    fn prefix_allocation(&self, n_alive: usize, m: f64) -> Option<PrefixAllocation> {
        if n_alive == 0 {
            return None;
        }
        Some(PrefixAllocation {
            count: machine_count(m).min(n_alive),
            share: 1.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_sim::{simulate, Instance, JobId};
    use parsched_speedup::Curve;

    #[test]
    fn leaves_processors_idle_in_underload() {
        // One fully parallel job of size 4 on m = 4: Sequential-SRPT still
        // gives it only 1 processor → flow 4 (vs 1 for an even split).
        let inst = Instance::from_sizes(&[(0.0, 4.0)], Curve::FullyParallel).unwrap();
        let outcome = simulate(&inst, &mut SequentialSrpt::new(), 4.0).unwrap();
        assert!((outcome.metrics.total_flow - 4.0).abs() < 1e-9);
    }

    #[test]
    fn schedules_shortest_m_jobs() {
        // m = 2, sequential sizes 1, 2, 3 at t = 0.
        // t∈[0,1): jobs 1&2 run. Job(1) done at 1; then job(3) starts.
        // Job(2) done at 2; job(3) done at 1 + 3 = 4.
        let inst =
            Instance::from_sizes(&[(0.0, 3.0), (0.0, 1.0), (0.0, 2.0)], Curve::Sequential).unwrap();
        let outcome = simulate(&inst, &mut SequentialSrpt::new(), 2.0).unwrap();
        assert_eq!(outcome.flow_of(JobId(1)), Some(1.0));
        assert_eq!(outcome.flow_of(JobId(2)), Some(2.0));
        assert_eq!(outcome.flow_of(JobId(0)), Some(4.0));
    }

    #[test]
    fn agrees_with_intermediate_srpt_in_overload() {
        use crate::IntermediateSrpt;
        // 5 jobs, m = 2: always overloaded → identical flows.
        let inst = Instance::from_sizes(
            &[(0.0, 3.0), (0.0, 1.0), (0.5, 2.0), (1.0, 4.0), (1.5, 1.5)],
            Curve::power(0.5),
        )
        .unwrap();
        let a = simulate(&inst, &mut SequentialSrpt::new(), 2.0).unwrap();
        let b = simulate(&inst, &mut IntermediateSrpt::new(), 2.0).unwrap();
        // Identical until the alive count drops below m; from then on
        // Intermediate-SRPT can only do better.
        assert!(b.metrics.total_flow <= a.metrics.total_flow + 1e-9);
    }
}
