//! Per-policy scheduling overhead, and the X1 ablation: the greedy
//! hybrid's re-decision resolution (accuracy knob) vs simulation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parsched::{GreedyHybrid, PolicyKind};
use parsched_bench::poisson_fixture;
use parsched_sim::simulate;

fn policy_overhead(c: &mut Criterion) {
    let inst = poisson_fixture(2_000, 1.0, 8.0);
    let mut g = c.benchmark_group("policies/overhead");
    g.sample_size(20);
    for kind in PolicyKind::all_standard() {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, kind| {
                b.iter(|| {
                    let out = simulate(black_box(&inst), &mut kind.build(), 8.0).unwrap();
                    black_box(out.metrics.total_flow)
                })
            },
        );
    }
    g.finish();
}

/// X1 ablation: the greedy quantum. Finer resolution tracks the
/// continuous-time policy better but multiplies events. The companion
/// accuracy numbers (flow drift per resolution) are printed by this bench
/// once at startup so the trade-off is visible next to the timings.
fn greedy_resolution_ablation(c: &mut Criterion) {
    let inst = poisson_fixture(500, 1.0, 8.0);
    let baseline = simulate(&inst, &mut GreedyHybrid::with_resolution(0.005), 8.0)
        .unwrap()
        .metrics
        .total_flow;
    eprintln!("greedy resolution ablation (flow vs resolution=0.005 baseline {baseline:.2}):");
    for &res in &[0.5f64, 0.2, 0.1, 0.05, 0.02] {
        let flow = simulate(&inst, &mut GreedyHybrid::with_resolution(res), 8.0)
            .unwrap()
            .metrics;
        eprintln!(
            "  resolution {res:>5}: flow {:.2} ({:+.3}%), events {}",
            flow.total_flow,
            100.0 * (flow.total_flow - baseline) / baseline,
            flow.events
        );
    }
    let mut g = c.benchmark_group("policies/greedy_resolution");
    g.sample_size(10);
    for &res in &[0.5f64, 0.1, 0.02] {
        g.bench_with_input(BenchmarkId::from_parameter(res), &res, |b, &res| {
            b.iter(|| {
                let out = simulate(
                    black_box(&inst),
                    &mut GreedyHybrid::with_resolution(res),
                    8.0,
                )
                .unwrap();
                black_box(out.metrics.total_flow)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, policy_overhead, greedy_resolution_ablation);
criterion_main!(benches);
