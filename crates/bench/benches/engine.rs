//! Engine throughput: events per second as the instance, machine count,
//! and schedule representation scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use parsched::IntermediateSrpt;
use parsched_bench::{
    mixed_alpha_fixture, overload_fixture, poisson_fixture, poisson_stream_fixture,
    timed_audited_run, timed_run, timed_run_cfg, timed_streaming_run,
};
use parsched_sim::{simulate, AuditLevel, EngineConfig, EventQueueKind, PlannedPolicy};
use parsched_workloads::GreedyTrap;

fn engine_scaling_n(c: &mut Criterion) {
    // The incremental path across instance sizes, plus the legacy
    // full-reassign oracle at n = 10_000 on the same fixtures in the same
    // run, so the speed-up ratio is directly readable from one report.
    //
    // Two fixtures, two regimes (see docs/PERF.md):
    // * load 0.9 keeps the alive set at ~9 jobs independent of n, so the
    //   legacy O(|A|)-per-event path is not asymptotically handicapped and
    //   the gap is the constant-factor win (~2.5–3×);
    // * the overload fixture (load 1.5) grows |A(t)| linearly in n — the
    //   O(n) vs O(log n) separation, where the gap is >100×.
    let mut g = c.benchmark_group("engine/jobs");
    g.sample_size(20);
    for &n in &[100usize, 1_000, 10_000, 100_000] {
        let inst = poisson_fixture(n, 0.9, 8.0);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| {
                let out = simulate(black_box(inst), &mut IntermediateSrpt::new(), 8.0).unwrap();
                black_box(out.metrics.total_flow)
            })
        });
    }
    let n = 10_000usize;
    g.throughput(Throughput::Elements(n as u64));
    let inst = poisson_fixture(n, 0.9, 8.0);
    g.bench_with_input(BenchmarkId::new("legacy", n), &inst, |b, inst| {
        b.iter(|| {
            black_box(
                timed_run(black_box(inst), &mut IntermediateSrpt::new(), 8.0, true).total_flow,
            )
        })
    });
    let over = overload_fixture(n, 8.0);
    g.bench_with_input(BenchmarkId::new("overload", n), &over, |b, inst| {
        b.iter(|| {
            black_box(
                timed_run(black_box(inst), &mut IntermediateSrpt::new(), 8.0, false).total_flow,
            )
        })
    });
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("overload-legacy", n), &over, |b, inst| {
        b.iter(|| {
            black_box(
                timed_run(black_box(inst), &mut IntermediateSrpt::new(), 8.0, true).total_flow,
            )
        })
    });
    g.finish();
}

fn engine_overload_scaling(c: &mut Criterion) {
    // Offered load 1.5: the alive set grows ~linearly in n, so every
    // event works against a large SRPT set — the regime the incremental
    // engine is built for (n = 100_000 here is minutes on the legacy
    // path, seconds here).
    let mut g = c.benchmark_group("engine/overload");
    g.sample_size(10);
    for &n in &[10_000usize, 100_000] {
        let inst = overload_fixture(n, 8.0);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| {
                let out = simulate(black_box(inst), &mut IntermediateSrpt::new(), 8.0).unwrap();
                black_box(out.metrics.total_flow)
            })
        });
    }
    g.finish();
}

fn engine_mixed_alpha(c: &mut Criterion) {
    // Per-job mixed α ({0.25, 0.5, 0.75} fast classes + a general 0.37):
    // every refresh walks jobs on *different* speed-up curves, so this is
    // the group that exercises the class registry, the per-class Γ rate
    // cache, and the grouped `gamma_by_class` driver. The single-α groups
    // above collapse to one kernel class and cannot catch a regression
    // there. The legacy arm at n = 10_000 gives the same-run ratio.
    let mut g = c.benchmark_group("engine/mixed_alpha");
    g.sample_size(20);
    for &n in &[1_000usize, 10_000] {
        let inst = mixed_alpha_fixture(n, 0.9, 8.0);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| {
                let out = simulate(black_box(inst), &mut IntermediateSrpt::new(), 8.0).unwrap();
                black_box(out.metrics.total_flow)
            })
        });
    }
    let n = 10_000usize;
    let inst = mixed_alpha_fixture(n, 0.9, 8.0);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_with_input(BenchmarkId::new("legacy", n), &inst, |b, inst| {
        b.iter(|| {
            black_box(
                timed_run(black_box(inst), &mut IntermediateSrpt::new(), 8.0, true).total_flow,
            )
        })
    });
    g.finish();
}

fn engine_event_queue_arms(c: &mut Criterion) {
    // Calendar queue vs binary-heap control arm on the overload fixture
    // (the densest event stream we have). Both arms must produce
    // bit-identical runs (tests/engine_event_queue.rs); this group keeps
    // the *cost* comparison honest: the calendar arm must not lag the
    // heap it replaces as the default.
    let mut g = c.benchmark_group("engine/event_queue");
    g.sample_size(10);
    let n = 10_000usize;
    let inst = overload_fixture(n, 8.0);
    g.throughput(Throughput::Elements(n as u64));
    for (label, kind) in [
        ("calendar", EventQueueKind::Calendar),
        ("heap", EventQueueKind::Heap),
    ] {
        g.bench_with_input(BenchmarkId::new(label, n), &inst, |b, inst| {
            b.iter(|| {
                let cfg = EngineConfig::new(8.0).with_event_queue(kind);
                black_box(
                    timed_run_cfg(black_box(inst), &mut IntermediateSrpt::new(), cfg).total_flow,
                )
            })
        });
    }
    g.finish();
}

fn engine_audit_overhead(c: &mut Criterion) {
    // Cost of the runtime invariant auditor on the incremental path:
    // `off` is the baseline, `sampled` (stride 64) is the always-on
    // production setting and must stay within 2× of it, `strict` audits
    // every event (frame construction is O(|A|), so this one is the
    // price of full conservation-law coverage).
    let mut g = c.benchmark_group("engine/audit");
    g.sample_size(20);
    let n = 10_000usize;
    let inst = poisson_fixture(n, 0.9, 8.0);
    g.throughput(Throughput::Elements(n as u64));
    for (label, level) in [
        ("off", AuditLevel::Off),
        ("sampled", AuditLevel::Sampled(64)),
        ("strict", AuditLevel::Strict),
    ] {
        g.bench_with_input(BenchmarkId::new(label, n), &inst, |b, inst| {
            b.iter(|| {
                black_box(
                    timed_audited_run(black_box(inst), &mut IntermediateSrpt::new(), 8.0, level)
                        .total_flow,
                )
            })
        });
    }
    g.finish();
}

fn engine_streaming_path(c: &mut Criterion) {
    // The memory-bounded streaming path against the in-memory path on the
    // same Poisson fixture: per-event overhead of the free-list arena and
    // constant-size metric sink should be in the noise (both paths run
    // the identical event loop and arithmetic), so this group is a
    // regression alarm for accidental O(n) state sneaking back in.
    let mut g = c.benchmark_group("engine/streaming");
    g.sample_size(20);
    for &n in &[10_000usize, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("stream", n), &n, |b, &n| {
            b.iter(|| {
                let mut src = poisson_stream_fixture(n, 0.9, 8.0);
                black_box(
                    timed_streaming_run(
                        &mut src,
                        &mut IntermediateSrpt::new(),
                        8.0,
                        AuditLevel::Off,
                    )
                    .total_flow,
                )
            })
        });
        let inst = poisson_fixture(n, 0.9, 8.0);
        g.bench_with_input(BenchmarkId::new("in-memory", n), &inst, |b, inst| {
            b.iter(|| {
                black_box(
                    timed_run(black_box(inst), &mut IntermediateSrpt::new(), 8.0, false).total_flow,
                )
            })
        });
    }
    g.finish();
}

fn engine_scaling_m(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/machines");
    g.sample_size(20);
    for &m in &[2.0f64, 8.0, 32.0, 128.0] {
        let inst = poisson_fixture(2_000, 0.9, m);
        g.bench_with_input(BenchmarkId::from_parameter(m as u64), &inst, |b, inst| {
            b.iter(|| {
                let out = simulate(black_box(inst), &mut IntermediateSrpt::new(), m).unwrap();
                black_box(out.metrics.total_flow)
            })
        });
    }
    g.finish();
}

fn planned_schedule_replay(c: &mut Criterion) {
    // Executing a large piecewise-constant plan (the OPT-certificate
    // path): dominated by per-segment share lookups.
    let trap = GreedyTrap::new(16, 0.5).with_stream_duration(64.0);
    let inst = trap.instance().unwrap();
    let plan = trap.alternative_plan().unwrap();
    c.bench_function("engine/planned_replay_trap_m16", |b| {
        b.iter(|| {
            let out = simulate(
                black_box(&inst),
                &mut PlannedPolicy::new(plan.clone()),
                16.0,
            )
            .unwrap();
            black_box(out.metrics.total_flow)
        })
    });
}

fn plan_from_tracks(c: &mut Criterion) {
    // The sweep-merge that turns per-job tracks into a plan.
    let trap = GreedyTrap::new(36, 0.5).with_stream_duration(128.0);
    c.bench_function("engine/plan_from_tracks_m36", |b| {
        b.iter(|| black_box(trap.alternative_plan().unwrap()))
    });
}

fn engine_sweep_pool(c: &mut Criterion) {
    // The work-stealing sweep pool at 1/2/4/8 workers over a fixed
    // 16-run Intermediate-SRPT grid, each worker recycling one set of
    // engine buffers. On a single-core host the >1-worker rows measure
    // the pool's overhead rather than any speed-up; the snapshot's
    // `sweep_scaling_8c` field records the same ratio next to
    // `host_cores` so the two are read together.
    use parsched_analysis::{simulate_audited_reusing, Pool};
    use parsched_bench::poisson_workload;
    use parsched_sim::{AuditLevel, EngineBuffers};

    let m = 8.0;
    let instances: Vec<_> = (0..16u64)
        .map(|seed| {
            let mut w = poisson_workload(1_000, 0.9, m);
            w.seed = w.seed.wrapping_add(seed);
            w.generate().expect("sweep fixture")
        })
        .collect();
    let mut g = c.benchmark_group("engine/sweep_pool");
    g.sample_size(10);
    g.throughput(Throughput::Elements(instances.len() as u64));
    for &jobs in &[1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let flows = Pool::new(jobs).map_with(
                    EngineBuffers::new,
                    instances.iter().collect(),
                    |bufs, inst| {
                        let mut policy = IntermediateSrpt::new();
                        let (out, next) = simulate_audited_reusing(
                            std::mem::take(bufs),
                            inst,
                            &mut policy,
                            m,
                            AuditLevel::Off,
                        );
                        *bufs = next;
                        out.expect("sweep run").metrics.total_flow
                    },
                );
                black_box(flows)
            })
        });
    }
    g.finish();
}

fn engine_hotpath(c: &mut Criterion) {
    // Monomorphized fast loop vs the generic `step()` control arm, same
    // binary and fixtures: the specialized-vs-generic ratio is readable
    // from one report (docs/PERF.md §8). The two arms compute
    // bit-identical results (tests/engine_fastpath_differential.rs), so
    // any gap is pure dispatch/bookkeeping.
    let m = 8.0;
    let mut g = c.benchmark_group("engine/hotpath");
    g.sample_size(20);
    for (label, inst) in [
        ("stable-1e4", poisson_fixture(10_000, 0.9, m)),
        ("stable-1e5", poisson_fixture(100_000, 0.9, m)),
        ("overload-1e4", overload_fixture(10_000, m)),
        ("mixed-1e4", mixed_alpha_fixture(10_000, 0.9, m)),
    ] {
        g.throughput(Throughput::Elements(inst.jobs().len() as u64));
        for (arm, fast) in [("fast", true), ("generic", false)] {
            g.bench_with_input(BenchmarkId::new(arm, label), &inst, |b, inst| {
                b.iter(|| {
                    let cfg = EngineConfig::new(m).with_fast_loop(fast);
                    black_box(
                        timed_run_cfg(black_box(inst), &mut IntermediateSrpt::new(), cfg)
                            .total_flow,
                    )
                })
            });
        }
        // With the `hotpath` feature, append the per-phase breakdown for
        // both arms — the microbench view of where the event loop spends
        // its time. Stamping adds clock reads per phase, so these numbers
        // compare phases between arms; the criterion rows above are the
        // wall-clock of record.
        #[cfg(feature = "hotpath")]
        for (arm, fast) in [("fast", true), ("generic", false)] {
            use parsched_sim::{Engine, NullObserver, StaticSource};
            let cfg = EngineConfig::new(m)
                .with_fast_loop(fast)
                .with_hotpath_profile(true);
            let mut policy = IntermediateSrpt::new();
            let mut src = StaticSource::new(&inst);
            let mut obs = NullObserver;
            let mut eng = Engine::new(cfg, &mut policy, &mut src, &mut obs);
            eng.run_loop().expect("profiled run");
            let hp = eng.hotpath_totals();
            let (queue, refresh, metrics, dispatch) = hp.per_event();
            eprintln!(
                "engine/hotpath/{arm}/{label} phases (ns/event): queue {queue:.1}, \
                 refresh {refresh:.1}, metrics {metrics:.1}, dispatch {dispatch:.1}"
            );
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    engine_scaling_n,
    engine_overload_scaling,
    engine_mixed_alpha,
    engine_event_queue_arms,
    engine_audit_overhead,
    engine_streaming_path,
    engine_scaling_m,
    planned_schedule_replay,
    plan_from_tracks,
    engine_sweep_pool,
    engine_hotpath
);
criterion_main!(benches);
