//! `speedup/kernel`: per-α Γ-evaluation cost through [`PowKernel`].
//!
//! One benchmark per classified exponent class — the endpoints (α = 0, 1),
//! the sqrt chains (1/2, 1/4, 3/4), the table+`exp` general path (α = 0.37),
//! and the `powf_reference` control arm the snapshot's `kernel_speedup_n1e5`
//! field is measured against. The kernel value itself is `black_box`ed:
//! in the engine α arrives as runtime data from the job record, so letting
//! LLVM constant-fold `powf(x, 0.5)` into `sqrt` would benchmark a code
//! path the engine never executes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use parsched_speedup::PowKernel;

/// Evaluation points spanning the supra-knee domain (1, m] the engine
/// actually queries — below the knee `Γ(x) = x` and no power is evaluated.
fn eval_points() -> Vec<f64> {
    let m = 32.0;
    (0..4096)
        .map(|i| 1.0 + (f64::from(i) + 0.5) * (m - 1.0) / 4096.0)
        .collect()
}

fn sum_evals(k: PowKernel, xs: &[f64]) -> f64 {
    let k = black_box(k);
    let mut acc = 0.0;
    for &x in xs {
        acc += k.eval(black_box(x));
    }
    acc
}

fn kernel_per_alpha(c: &mut Criterion) {
    let xs = eval_points();
    let mut g = c.benchmark_group("speedup/kernel");
    g.throughput(Throughput::Elements(xs.len() as u64));
    for &alpha in &[0.0, 0.25, 0.37, 0.5, 0.75, 1.0] {
        g.bench_with_input(
            BenchmarkId::from_parameter(alpha),
            &PowKernel::new(alpha),
            |b, &k| b.iter(|| black_box(sum_evals(k, &xs))),
        );
    }
    // The control arm: identical dispatch, but every eval is f64::powf.
    g.bench_with_input(
        BenchmarkId::new("powf_reference", 0.5),
        &PowKernel::powf_reference(0.5),
        |b, &k| b.iter(|| black_box(sum_evals(k, &xs))),
    );
    g.finish();
}

fn kernel_invert(c: &mut Criterion) {
    // `invert` is the admission-time counterpart (rate → share); it runs
    // once per job rather than once per event, but the round-trip cost
    // still matters for the optimizer's bisection loops.
    let xs = eval_points();
    let mut g = c.benchmark_group("speedup/kernel_invert");
    g.throughput(Throughput::Elements(xs.len() as u64));
    for &alpha in &[0.25, 0.37, 0.5] {
        g.bench_with_input(
            BenchmarkId::from_parameter(alpha),
            &PowKernel::new(alpha),
            |b, &k| {
                let k = black_box(k);
                b.iter(|| {
                    let mut acc = 0.0;
                    for &x in &xs {
                        acc += k.invert(black_box(k.eval(x)));
                    }
                    black_box(acc)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, kernel_per_alpha, kernel_invert);
criterion_main!(benches);
