//! Fleet-level determinism and cross-check contracts:
//!
//! * a fleet of N tenants produces **byte-identical** per-tenant results
//!   whatever the shard count (`Pool::new(1)` vs `Pool::new(4)`) and
//!   whether or not every suspension is forced through a cross-shard
//!   migration (the `parsched-snap/v1` text codec);
//! * batched projection queries agree with the heSRPT closed form
//!   (`parsched_opt::hesrpt_batch_lb`) on batch-release pure-power
//!   tenants — the one family where an exact external answer exists.

use parsched::PolicyKind;
use parsched_analysis::Pool;
use parsched_fleet::{
    FleetConfig, FleetOutcome, FleetQuery, FleetSession, QueryAnswer, TenantSpec, TenantStatus,
};
use parsched_opt::hesrpt_batch_lb;
use parsched_sim::{Instance, JobId, JobSpec};
use parsched_speedup::Curve;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn mixed_instance(n: usize, seed: u64) -> Instance {
    let mut state = seed;
    let alphas = [0.25, 0.5, 0.75, 1.0];
    let mut release = 0.0;
    let jobs = (0..n)
        .map(|i| {
            let u = splitmix(&mut state);
            release += (u % 5) as f64 * 0.5;
            let size = 1.0 + (u % 7) as f64;
            let alpha = alphas[(u as usize >> 8) % alphas.len()];
            JobSpec::new(JobId(i as u64), release, size, Curve::power(alpha))
        })
        .collect();
    Instance::new(jobs).expect("mixed instance")
}

fn fleet(n: usize) -> Vec<TenantSpec> {
    let policies = PolicyKind::all_registered();
    (0..n)
        .map(|i| {
            TenantSpec::new(
                format!("tenant-{i:04}"),
                mixed_instance(5 + i % 9, 0xfee1 + i as u64),
                policies[i % policies.len()],
                if i % 2 == 0 { 4.0 } else { 8.0 },
            )
            .with_streaming(i % 3 == 0)
        })
        .collect()
}

/// Canonical byte rendering of a fleet outcome: every float as its exact
/// bit pattern, so "byte-identical" below really means bit-identical.
fn render(out: &FleetOutcome) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for r in &out.reports {
        let _ = write!(s, "{}|{}|{}|{}|", r.name, r.policy, r.streaming, r.jobs);
        match &r.status {
            TenantStatus::Done { metrics, rounds } => {
                let _ = writeln!(
                    s,
                    "done|{}|{}|{}|{}|{}",
                    rounds,
                    metrics.events,
                    metrics.total_flow.to_bits(),
                    metrics.fractional_flow.to_bits(),
                    metrics.makespan.to_bits()
                );
            }
            TenantStatus::Shed { reason } => {
                let _ = writeln!(s, "shed|{reason}");
            }
            TenantStatus::Failed { error } => {
                let _ = writeln!(s, "failed|{error}");
            }
        }
    }
    s
}

fn run_fleet(jobs: usize, migrate: bool) -> String {
    let cfg = FleetConfig {
        max_in_flight: 8,
        max_pending: 64,
        slice_events: 5,
        migrate,
    };
    let mut session = FleetSession::new(cfg, fleet(24)).expect("session");
    let out = session.run(&Pool::new(jobs));
    assert_eq!(out.done, 24, "all tenants must complete:\n{}", render(&out));
    render(&out)
}

#[test]
fn fleet_results_are_byte_identical_across_shard_counts_and_migration() {
    let serial = run_fleet(1, false);
    let parallel = run_fleet(4, false);
    assert_eq!(serial, parallel, "shard count leaked into results");
    // Forcing every suspension through the text codec — a migration to
    // another shard/host each round — must change nothing.
    let migrated_serial = run_fleet(1, true);
    let migrated_parallel = run_fleet(4, true);
    assert_eq!(serial, migrated_serial, "migration changed results");
    assert_eq!(serial, migrated_parallel, "migrated parallel run diverged");
}

/// Batch-release pure-power tenants under Intermediate-SRPT: the
/// projected total flow answered from a mid-run snapshot must dominate
/// the heSRPT closed-form lower bound, and on single-job tenants (where
/// the policy's one-job allocation of all `m` processors is exactly the
/// heSRPT schedule and the repo's kneed curve is degenerate at `x ≤ m`
/// only when sized to stay fully parallel) the projection equals the
/// closed form up to float tolerance.
#[test]
fn batched_queries_cross_check_against_the_hesrpt_closed_form() {
    // Multi-job batch tenants: α = 0.5, all released at t = 0.
    let batch = |sizes: &[f64], id0: u64| {
        let jobs = sizes
            .iter()
            .enumerate()
            .map(|(i, &p)| JobSpec::new(JobId(id0 + i as u64), 0.0, p, Curve::power(0.5)))
            .collect();
        Instance::new(jobs).expect("batch instance")
    };
    let m = 4.0;
    let tenants = vec![
        TenantSpec::new(
            "batch-a",
            batch(&[1.0, 2.0, 3.0, 5.0], 0),
            PolicyKind::IntermediateSrpt,
            m,
        ),
        TenantSpec::new(
            "batch-b",
            batch(&[2.0, 2.0, 2.0], 100),
            PolicyKind::IntermediateSrpt,
            m,
        ),
        // Single job of size 2 on m = 4 with Γ(x) = min(x, x^0.5·…) kneed
        // at 1: allocated all 4 processors, rate 4^0.5 = 2 — but the pure
        // power law gives the same rate only when the curve is pure; the
        // kneed curve caps Γ(x) ≤ x. Both give Γ(4) = 2 here, so the LB
        // is tight.
        TenantSpec::new("solo", batch(&[2.0], 200), PolicyKind::IntermediateSrpt, m),
    ];
    let cfg = FleetConfig {
        max_in_flight: 3,
        max_pending: 0,
        slice_events: 2,
        migrate: true,
    };
    let mut session = FleetSession::new(cfg, tenants.clone()).expect("session");
    let pool = Pool::new(2);
    // Suspend everyone mid-run, then ask for the projected final flow.
    session.round(&pool);
    let queries: Vec<FleetQuery> = tenants
        .iter()
        .map(|t| FleetQuery::ProjectedFlow {
            tenant: t.name.clone(),
        })
        .collect();
    let answers = session.query_batch(&pool, &queries);
    for (t, answer) in tenants.iter().zip(&answers) {
        let lb = hesrpt_batch_lb(&t.instance, m).expect("closed form applies");
        let projected = match answer.as_ref().expect("projected flow") {
            QueryAnswer::Flow(f) => *f,
            other => panic!("{}: {other:?}", t.name),
        };
        assert!(
            projected >= lb - 1e-9,
            "{}: projected flow {projected} below the heSRPT lower bound {lb}",
            t.name
        );
        if t.instance.len() == 1 {
            assert!(
                (projected - lb).abs() < 1e-9,
                "{}: single-job projection {projected} != closed form {lb}",
                t.name
            );
        }
    }
    // The projections must also be what actually happens: run the fleet
    // out and compare the final flows.
    let out = session.run(&pool);
    for (report, answer) in out.reports.iter().zip(&answers) {
        let projected = match answer.as_ref().expect("projected flow") {
            QueryAnswer::Flow(f) => *f,
            other => panic!("{other:?}"),
        };
        match &report.status {
            TenantStatus::Done { metrics, .. } => assert_eq!(
                metrics.total_flow.to_bits(),
                projected.to_bits(),
                "{}: projection was not exact",
                report.name
            ),
            other => panic!("{}: {other:?}", report.name),
        }
    }
}
