//! Multi-tenant serving layer over the scheduling engine.
//!
//! A *tenant* is an independent scheduling scenario — an [`Instance`], a
//! policy from the registry, a machine count, and an engine mode
//! (in-memory or streaming). The fleet runs many tenants concurrently on
//! the shared work-stealing shard pool ([`Pool`]): each round, every
//! in-flight tenant advances by at most [`FleetConfig::slice_events`]
//! engine events on whichever shard claims it, then is either finalized
//! (ran out of events) or suspended into a [`Snapshot`].
//!
//! # Determinism and migration
//!
//! Between rounds a tenant exists only as its snapshot, so which shard
//! resumes it next round is irrelevant: restore is bit-exact, and
//! [`Pool::map_with`] commits results by input index. The fleet therefore
//! produces **byte-identical** per-tenant results for any worker count.
//! With [`FleetConfig::migrate`] set, every suspension is additionally
//! forced through the `parsched-snap/v1` text codec
//! ([`Snapshot::to_json`] → [`Snapshot::from_json`]) — the exact document
//! a real cross-host migration would ship — and the decoded snapshot must
//! reproduce the original bit-for-bit or the tenant is failed.
//!
//! # Admission and backpressure
//!
//! Capacity is bounded: at most [`FleetConfig::max_in_flight`] tenants
//! hold engine state at once, at most [`FleetConfig::max_pending`] wait
//! in a FIFO overflow queue, and submissions beyond both are *shed* with
//! a recorded reason. Shedding is decided at submission time, purely from
//! the submission order — never from execution timing — so the shed set
//! is deterministic too.
//!
//! # Queries
//!
//! [`FleetSession::query_batch`] answers projection queries from live
//! engine state: a scratch engine restores the tenant's snapshot on a
//! pool shard and runs it forward (the run is deterministic, so the
//! projection is exact, not an estimate). See [`FleetQuery`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::VecDeque;

use parsched::PolicyKind;
use parsched_analysis::Pool;
use parsched_sim::{
    Engine, EngineBuffers, EngineConfig, Instance, JobId, JobSpec, NullObserver, Observer,
    RunMetrics, SimError, Snapshot, StaticSource, Time,
};

/// One tenant: an independent scheduling scenario.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name (used to address queries; need not be unique, the
    /// first match wins).
    pub name: String,
    /// The workload.
    pub instance: Instance,
    /// The scheduling policy driving this tenant.
    pub policy: PolicyKind,
    /// Number of processors in the tenant's scenario.
    pub m: f64,
    /// Run the engine in memory-bounded streaming mode.
    pub streaming: bool,
}

impl TenantSpec {
    /// A tenant with the common defaults (in-memory engine).
    pub fn new(name: impl Into<String>, instance: Instance, policy: PolicyKind, m: f64) -> Self {
        Self {
            name: name.into(),
            instance,
            policy,
            m,
            streaming: false,
        }
    }

    /// Switches the tenant to the streaming engine path.
    pub fn with_streaming(mut self, streaming: bool) -> Self {
        self.streaming = streaming;
        self
    }
}

/// Fleet-wide capacity and scheduling knobs.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Maximum tenants holding engine state at once.
    pub max_in_flight: usize,
    /// Maximum tenants waiting in the FIFO overflow queue; submissions
    /// beyond `max_in_flight + max_pending` are shed.
    pub max_pending: usize,
    /// Engine events a tenant may advance per round (≥ 1).
    pub slice_events: u64,
    /// Force every suspension through the text codec, as a cross-host
    /// migration would (and fail the tenant on any codec divergence).
    pub migrate: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            max_in_flight: 64,
            max_pending: 1024,
            slice_events: 256,
            migrate: false,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShedReason(pub String);

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Final disposition of a tenant.
#[derive(Debug, Clone)]
pub enum TenantStatus {
    /// Ran to completion.
    Done {
        /// Final run metrics — bit-identical to a dedicated
        /// uninterrupted run of the same scenario.
        metrics: RunMetrics,
        /// Rounds the tenant was scheduled for (including the finishing
        /// one).
        rounds: u64,
    },
    /// Refused admission at submission time.
    Shed {
        /// Why.
        reason: ShedReason,
    },
    /// The engine (or the migration codec) reported an error mid-run.
    Failed {
        /// The error description.
        error: String,
    },
}

/// Per-tenant result, in submission order.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Policy name (from the registry).
    pub policy: String,
    /// Whether the tenant ran on the streaming path.
    pub streaming: bool,
    /// Number of jobs in the tenant's instance.
    pub jobs: usize,
    /// Final disposition.
    pub status: TenantStatus,
}

/// Whole-fleet result.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Per-tenant reports, in submission order.
    pub reports: Vec<TenantReport>,
    /// Rounds executed.
    pub rounds: u64,
    /// Tenants that completed.
    pub done: usize,
    /// Tenants shed at admission.
    pub shed: usize,
    /// Tenants that failed mid-run.
    pub failed: usize,
}

/// A projection query against a tenant's live state. Projections are
/// answered by restoring the tenant's snapshot into a scratch engine on a
/// pool shard and running it forward — the engine is deterministic, so
/// the answer is the exact future of the tenant's remaining trajectory,
/// not an estimate.
#[derive(Debug, Clone)]
pub enum FleetQuery {
    /// When will `job` complete under the tenant's policy?
    ProjectedCompletion {
        /// Tenant name.
        tenant: String,
        /// Job to watch.
        job: JobId,
    },
    /// Final total flow time of the tenant if left to run out.
    ProjectedFlow {
        /// Tenant name.
        tenant: String,
    },
    /// Flow time accumulated by completions so far.
    FlowSoFar {
        /// Tenant name.
        tenant: String,
    },
    /// Clock, event count, and completion progress so far.
    Progress {
        /// Tenant name.
        tenant: String,
    },
}

impl FleetQuery {
    fn tenant(&self) -> &str {
        match self {
            FleetQuery::ProjectedCompletion { tenant, .. }
            | FleetQuery::ProjectedFlow { tenant }
            | FleetQuery::FlowSoFar { tenant }
            | FleetQuery::Progress { tenant } => tenant,
        }
    }
}

/// Answer to a [`FleetQuery`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryAnswer {
    /// Completion time of the watched job.
    Completion(Time),
    /// A flow-time total.
    Flow(f64),
    /// Progress counters at the tenant's current suspend point.
    Progress {
        /// Simulation clock.
        now: Time,
        /// Engine events processed.
        events: u64,
        /// Jobs completed.
        completed: u64,
        /// Jobs admitted from the source.
        admitted: usize,
    },
}

enum TenantState {
    /// Waiting in the overflow queue.
    Pending,
    /// Holding an in-flight slot; `snap` is `None` until the first round
    /// runs.
    Running {
        snap: Option<Box<Snapshot>>,
    },
    Done {
        metrics: Box<RunMetrics>,
    },
    Shed {
        reason: ShedReason,
    },
    Failed {
        error: String,
    },
}

struct TenantSlot {
    spec: TenantSpec,
    state: TenantState,
    rounds: u64,
}

enum SliceResult {
    Done(Box<RunMetrics>),
    Suspended(Box<Snapshot>),
    Failed(String),
}

/// Advance one tenant by at most `slice` events on the current shard,
/// reusing the shard's warm buffers.
fn run_slice(
    bufs: &mut EngineBuffers,
    spec: &TenantSpec,
    snap: Option<Box<Snapshot>>,
    slice: u64,
    migrate: bool,
) -> SliceResult {
    let mut policy = spec.policy.build();
    let mut source = StaticSource::new(&spec.instance);
    let mut obs = NullObserver;
    let cfg = EngineConfig::new(spec.m).with_streaming(spec.streaming);
    let taken = std::mem::replace(bufs, EngineBuffers::new());
    let mut engine = Engine::with_buffers(cfg, policy.as_mut(), &mut source, &mut obs, taken);
    if let Some(s) = &snap {
        if let Err(e) = engine.restore(s) {
            *bufs = engine.into_buffers();
            return SliceResult::Failed(format!("restore: {e}"));
        }
    }
    let mut stepped = 0u64;
    let mut live = true;
    while stepped < slice {
        match engine.step() {
            Ok(true) => stepped += 1,
            Ok(false) => {
                live = false;
                break;
            }
            Err(e) => {
                *bufs = engine.into_buffers();
                return SliceResult::Failed(format!("step: {e}"));
            }
        }
    }
    if !live {
        // Finished inside the slice: finalize. The streaming finalizer is
        // valid in either mode and its metrics are bit-identical to the
        // in-memory path's.
        return match engine.run_streaming_reusing() {
            Ok((out, b)) => {
                *bufs = b;
                SliceResult::Done(Box::new(out.metrics))
            }
            Err(e) => SliceResult::Failed(format!("finalize: {e}")),
        };
    }
    let snap = match engine.snapshot() {
        Ok(s) => s,
        Err(e) => {
            *bufs = engine.into_buffers();
            return SliceResult::Failed(format!("snapshot: {e}"));
        }
    };
    *bufs = engine.into_buffers();
    if migrate {
        // Ship the suspension through the text codec, exactly as a
        // cross-host migration would, and require the decoded snapshot to
        // reproduce the captured one bit-for-bit.
        let doc = snap.to_json();
        return match Snapshot::from_json(&doc) {
            Ok(decoded) if decoded == snap => SliceResult::Suspended(Box::new(decoded)),
            Ok(_) => SliceResult::Failed("migration codec divergence".to_string()),
            Err(e) => SliceResult::Failed(format!("migration decode: {e}")),
        };
    }
    SliceResult::Suspended(Box::new(snap))
}

/// A fleet of tenants being served round-by-round.
pub struct FleetSession {
    cfg: FleetConfig,
    slots: Vec<TenantSlot>,
    /// Indices of in-flight tenants, in admission order.
    active: Vec<usize>,
    /// FIFO overflow queue of admitted-but-waiting tenants.
    pending: VecDeque<usize>,
    rounds: u64,
}

impl FleetSession {
    /// Submits `tenants` in order under `cfg`. Admission is decided here,
    /// from the submission order alone: the first
    /// [`FleetConfig::max_in_flight`] tenants go in-flight, the next
    /// [`FleetConfig::max_pending`] queue FIFO, the rest are shed.
    pub fn new(cfg: FleetConfig, tenants: Vec<TenantSpec>) -> Result<Self, SimError> {
        if cfg.slice_events == 0 {
            return Err(SimError::BadInstance {
                what: "fleet slice_events must be >= 1".to_string(),
            });
        }
        if cfg.max_in_flight == 0 {
            return Err(SimError::BadInstance {
                what: "fleet max_in_flight must be >= 1".to_string(),
            });
        }
        let mut session = Self {
            cfg,
            slots: Vec::with_capacity(tenants.len()),
            active: Vec::new(),
            pending: VecDeque::new(),
            rounds: 0,
        };
        for spec in tenants {
            let idx = session.slots.len();
            let state = if session.active.len() < cfg.max_in_flight {
                session.active.push(idx);
                TenantState::Running { snap: None }
            } else if session.pending.len() < cfg.max_pending {
                session.pending.push_back(idx);
                TenantState::Pending
            } else {
                TenantState::Shed {
                    reason: ShedReason(format!(
                        "admission queue full ({} in-flight + {} pending)",
                        cfg.max_in_flight, cfg.max_pending
                    )),
                }
            };
            session.slots.push(TenantSlot {
                spec,
                state,
                rounds: 0,
            });
        }
        Ok(session)
    }

    /// Tenants currently holding engine state.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    /// Tenants waiting in the overflow queue.
    pub fn queued(&self) -> usize {
        self.pending.len()
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Runs one round: every in-flight tenant advances by at most
    /// [`FleetConfig::slice_events`] events on the pool, then freed slots
    /// are refilled from the overflow queue. Returns the number of
    /// tenants still in flight.
    pub fn round(&mut self, pool: &Pool) -> usize {
        if self.active.is_empty() {
            return 0;
        }
        self.rounds += 1;
        // Detach each in-flight tenant's snapshot so the shard that
        // claims it owns the state for the duration of the slice.
        let mut items: Vec<(usize, Option<Box<Snapshot>>)> = Vec::with_capacity(self.active.len());
        for &idx in &self.active {
            let snap = match &mut self.slots[idx].state {
                TenantState::Running { snap } => snap.take(),
                // In-flight list only ever holds Running slots.
                _ => None,
            };
            self.slots[idx].rounds += 1;
            items.push((idx, snap));
        }
        let slice = self.cfg.slice_events;
        let migrate = self.cfg.migrate;
        let slots = &self.slots;
        let results = pool.map_with(EngineBuffers::new, items, |bufs, (idx, snap)| {
            (idx, run_slice(bufs, &slots[idx].spec, snap, slice, migrate))
        });
        // Commit serially, in item order — deterministic whatever the
        // shard interleaving was.
        let mut freed = Vec::new();
        for (idx, res) in results {
            match res {
                SliceResult::Suspended(s) => {
                    self.slots[idx].state = TenantState::Running { snap: Some(s) };
                }
                SliceResult::Done(metrics) => {
                    self.slots[idx].state = TenantState::Done { metrics };
                    freed.push(idx);
                }
                SliceResult::Failed(error) => {
                    self.slots[idx].state = TenantState::Failed { error };
                    freed.push(idx);
                }
            }
        }
        if !freed.is_empty() {
            self.active.retain(|idx| !freed.contains(idx));
            while self.active.len() < self.cfg.max_in_flight {
                let Some(next) = self.pending.pop_front() else {
                    break;
                };
                self.slots[next].state = TenantState::Running { snap: None };
                self.active.push(next);
            }
        }
        self.active.len()
    }

    /// Runs rounds until every admitted tenant is done or failed, then
    /// returns the per-tenant reports in submission order.
    pub fn run(&mut self, pool: &Pool) -> FleetOutcome {
        while self.round(pool) > 0 {}
        self.outcome()
    }

    /// The current per-tenant reports in submission order. Tenants still
    /// in flight or queued report as failed-with-reason only after
    /// [`FleetSession::run`]; call this after `run` for final results.
    pub fn outcome(&self) -> FleetOutcome {
        let mut done = 0;
        let mut shed = 0;
        let mut failed = 0;
        let reports = self
            .slots
            .iter()
            .map(|slot| {
                let status = match &slot.state {
                    TenantState::Done { metrics } => {
                        done += 1;
                        TenantStatus::Done {
                            metrics: (**metrics).clone(),
                            rounds: slot.rounds,
                        }
                    }
                    TenantState::Shed { reason } => {
                        shed += 1;
                        TenantStatus::Shed {
                            reason: reason.clone(),
                        }
                    }
                    TenantState::Failed { error } => {
                        failed += 1;
                        TenantStatus::Failed {
                            error: error.clone(),
                        }
                    }
                    TenantState::Pending => TenantStatus::Failed {
                        error: "still pending (fleet not run to completion)".to_string(),
                    },
                    TenantState::Running { .. } => TenantStatus::Failed {
                        error: "still in flight (fleet not run to completion)".to_string(),
                    },
                };
                TenantReport {
                    name: slot.spec.name.clone(),
                    policy: slot.spec.policy.name(),
                    streaming: slot.spec.streaming,
                    jobs: slot.spec.instance.len(),
                    status,
                }
            })
            .collect();
        FleetOutcome {
            reports,
            rounds: self.rounds,
            done,
            shed,
            failed,
        }
    }

    /// Answers a batch of projection queries on the pool. Answers are
    /// returned in query order; each is independent (a scratch engine per
    /// query), so a failed query never poisons its neighbours.
    pub fn query_batch(
        &self,
        pool: &Pool,
        queries: &[FleetQuery],
    ) -> Vec<Result<QueryAnswer, String>> {
        let items: Vec<FleetQuery> = queries.to_vec();
        pool.map_with(EngineBuffers::new, items, |bufs, query| {
            self.answer(bufs, &query)
        })
    }

    fn find(&self, name: &str) -> Result<&TenantSlot, String> {
        self.slots
            .iter()
            .find(|s| s.spec.name == name)
            .ok_or_else(|| format!("unknown tenant {name:?}"))
    }

    fn answer(&self, bufs: &mut EngineBuffers, query: &FleetQuery) -> Result<QueryAnswer, String> {
        let slot = self.find(query.tenant())?;
        match &slot.state {
            TenantState::Shed { reason } => return Err(format!("tenant shed: {reason}")),
            TenantState::Failed { error } => return Err(format!("tenant failed: {error}")),
            _ => {}
        }
        let snap = match &slot.state {
            TenantState::Running { snap } => snap.as_deref(),
            _ => None,
        };
        match query {
            FleetQuery::ProjectedCompletion { job, .. } => {
                // Pre-suspend completions are recorded in the snapshot on
                // the in-memory path; otherwise watch the remaining run.
                if let Some(s) = snap {
                    if let Some(t) = s.completion_of(*job) {
                        return Ok(QueryAnswer::Completion(t));
                    }
                }
                let at = match &slot.state {
                    // Completed tenants retain aggregates only; re-run the
                    // whole deterministic scenario from scratch.
                    TenantState::Done { .. } => project_completion(bufs, &slot.spec, None, *job)?,
                    _ => project_completion(bufs, &slot.spec, snap, *job)?,
                };
                match at {
                    Some(t) => Ok(QueryAnswer::Completion(t)),
                    None => {
                        if slot.spec.instance.jobs().iter().any(|j| j.id == *job) {
                            Err(format!(
                                "job {:?} completed before the suspend point and the \
                                 streaming path retains no completion records",
                                job
                            ))
                        } else {
                            Err(format!("job {:?} is not in the tenant's instance", job))
                        }
                    }
                }
            }
            FleetQuery::ProjectedFlow { .. } => match &slot.state {
                TenantState::Done { metrics } => Ok(QueryAnswer::Flow(metrics.total_flow)),
                _ => project_flow(bufs, &slot.spec, snap).map(QueryAnswer::Flow),
            },
            FleetQuery::FlowSoFar { .. } => match &slot.state {
                TenantState::Done { metrics } => Ok(QueryAnswer::Flow(metrics.total_flow)),
                TenantState::Running { .. } => Ok(QueryAnswer::Flow(
                    snap.map_or(0.0, Snapshot::total_flow_so_far),
                )),
                _ => Ok(QueryAnswer::Flow(0.0)),
            },
            FleetQuery::Progress { .. } => match &slot.state {
                TenantState::Done { metrics } => Ok(QueryAnswer::Progress {
                    now: metrics.makespan,
                    events: metrics.events,
                    completed: metrics.num_jobs as u64,
                    admitted: metrics.num_jobs,
                }),
                TenantState::Running { .. } => match snap {
                    Some(s) => Ok(QueryAnswer::Progress {
                        now: s.now(),
                        events: s.events(),
                        completed: s.completed_count(),
                        admitted: s.admitted(),
                    }),
                    None => Ok(QueryAnswer::Progress {
                        now: 0.0,
                        events: 0,
                        completed: 0,
                        admitted: 0,
                    }),
                },
                _ => Ok(QueryAnswer::Progress {
                    now: 0.0,
                    events: 0,
                    completed: 0,
                    admitted: 0,
                }),
            },
        }
    }
}

/// Records the first completion of one job id.
struct CompletionWatcher {
    target: JobId,
    at: Option<Time>,
}

impl Observer for CompletionWatcher {
    fn on_completion(&mut self, t: Time, job: &JobSpec) {
        if job.id == self.target && self.at.is_none() {
            self.at = Some(t);
        }
    }

    fn needs_allocation_stream(&self) -> bool {
        // Watching completions only; keep the incremental path (and with
        // it the exec-mode match required by `Engine::restore`).
        false
    }
}

/// Scratch engine for a query: build the tenant's scenario on the warm
/// buffers, restore `snap` if given, and return the finalized engine's
/// observer + metrics via `finish`.
fn scratch_run<R>(
    bufs: &mut EngineBuffers,
    spec: &TenantSpec,
    snap: Option<&Snapshot>,
    obs: &mut dyn Observer,
    finish: impl FnOnce(RunMetrics) -> R,
) -> Result<R, String> {
    let mut policy = spec.policy.build();
    let mut source = StaticSource::new(&spec.instance);
    let cfg = EngineConfig::new(spec.m).with_streaming(spec.streaming);
    let taken = std::mem::replace(bufs, EngineBuffers::new());
    let mut engine = Engine::with_buffers(cfg, policy.as_mut(), &mut source, obs, taken);
    if let Some(s) = snap {
        if let Err(e) = engine.restore(s) {
            *bufs = engine.into_buffers();
            return Err(format!("restore: {e}"));
        }
    }
    match engine.run_streaming_reusing() {
        Ok((out, b)) => {
            *bufs = b;
            Ok(finish(out.metrics))
        }
        Err(e) => Err(format!("projection run: {e}")),
    }
}

fn project_completion(
    bufs: &mut EngineBuffers,
    spec: &TenantSpec,
    snap: Option<&Snapshot>,
    job: JobId,
) -> Result<Option<Time>, String> {
    let mut watcher = CompletionWatcher {
        target: job,
        at: None,
    };
    scratch_run(bufs, spec, snap, &mut watcher, |_| ())?;
    Ok(watcher.at)
}

fn project_flow(
    bufs: &mut EngineBuffers,
    spec: &TenantSpec,
    snap: Option<&Snapshot>,
) -> Result<f64, String> {
    let mut obs = NullObserver;
    scratch_run(bufs, spec, snap, &mut obs, |m| m.total_flow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_sim::{simulate, Instance, JobSpec};
    use parsched_speedup::Curve;

    fn tiny_instance(n: usize, seed: u64) -> Instance {
        // Deterministic splitmix-derived mix of sizes/releases/alphas.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let alphas = [0.25, 0.5, 0.75, 1.0];
        let mut release = 0.0;
        let jobs = (0..n)
            .map(|i| {
                let u = next();
                release += (u % 7) as f64 * 0.25;
                let size = 1.0 + (u % 5) as f64;
                let alpha = alphas[(u as usize >> 8) % alphas.len()];
                JobSpec::new(JobId(i as u64), release, size, Curve::power(alpha))
            })
            .collect();
        Instance::new(jobs).expect("tiny instance")
    }

    fn fleet_of(n: usize) -> Vec<TenantSpec> {
        let policies = PolicyKind::all_registered();
        (0..n)
            .map(|i| {
                TenantSpec::new(
                    format!("t{i:03}"),
                    tiny_instance(4 + i % 5, i as u64),
                    policies[i % policies.len()],
                    4.0,
                )
                .with_streaming(i % 3 == 0)
            })
            .collect()
    }

    #[test]
    fn admission_cap_is_honored_and_overflow_is_fifo() {
        let cfg = FleetConfig {
            max_in_flight: 2,
            max_pending: 3,
            slice_events: 4,
            migrate: false,
        };
        let mut session = FleetSession::new(cfg, fleet_of(7)).expect("session");
        assert_eq!(session.in_flight(), 2);
        assert_eq!(session.queued(), 3);
        let out = session.outcome();
        // Submissions 5 and 6 are beyond 2 + 3 and must be shed, with the
        // reason recorded; earlier submissions are never shed.
        for (i, report) in out.reports.iter().enumerate() {
            let is_shed = matches!(report.status, TenantStatus::Shed { .. });
            assert_eq!(is_shed, i >= 5, "tenant {i}");
        }
        match &out.reports[5].status {
            TenantStatus::Shed { reason } => {
                assert!(reason.0.contains("2 in-flight + 3 pending"), "{reason}")
            }
            other => panic!("expected shed, got {other:?}"),
        }
        // Run out: every admitted tenant completes, in-flight never
        // exceeds the cap, and the queue drains FIFO.
        let pool = Pool::new(2);
        loop {
            let in_flight = session.round(&pool);
            assert!(in_flight <= 2);
            if in_flight == 0 {
                break;
            }
        }
        let out = session.outcome();
        assert_eq!(out.done, 5);
        assert_eq!(out.shed, 2);
        assert_eq!(out.failed, 0);
    }

    #[test]
    fn fleet_metrics_match_dedicated_runs_bit_for_bit() {
        let tenants = fleet_of(9);
        let dedicated: Vec<RunMetrics> = tenants
            .iter()
            .map(|t| {
                let mut policy = t.policy.build();
                simulate(&t.instance, policy.as_mut(), t.m)
                    .expect("dedicated run")
                    .metrics
            })
            .collect();
        let cfg = FleetConfig {
            max_in_flight: 4,
            max_pending: 16,
            slice_events: 3,
            migrate: true,
        };
        let mut session = FleetSession::new(cfg, tenants).expect("session");
        let out = session.run(&Pool::new(3));
        assert_eq!(out.done, 9, "{:?}", out.reports);
        for (report, want) in out.reports.iter().zip(&dedicated) {
            match &report.status {
                TenantStatus::Done { metrics, .. } => {
                    assert_eq!(
                        metrics.total_flow.to_bits(),
                        want.total_flow.to_bits(),
                        "{}",
                        report.name
                    );
                    assert_eq!(metrics.events, want.events, "{}", report.name);
                    assert_eq!(
                        metrics.makespan.to_bits(),
                        want.makespan.to_bits(),
                        "{}",
                        report.name
                    );
                }
                other => panic!("{}: {other:?}", report.name),
            }
        }
    }

    #[test]
    fn rejects_degenerate_configs() {
        let cfg = FleetConfig {
            slice_events: 0,
            ..FleetConfig::default()
        };
        assert!(FleetSession::new(cfg, Vec::new()).is_err());
        let cfg = FleetConfig {
            max_in_flight: 0,
            ..FleetConfig::default()
        };
        assert!(FleetSession::new(cfg, Vec::new()).is_err());
    }

    #[test]
    fn queries_answer_from_suspended_state() {
        let tenants = fleet_of(3);
        let cfg = FleetConfig {
            max_in_flight: 3,
            max_pending: 0,
            slice_events: 2,
            migrate: false,
        };
        let mut session = FleetSession::new(cfg, tenants.clone()).expect("session");
        let pool = Pool::new(2);
        session.round(&pool); // suspend everyone mid-run
        let queries = vec![
            FleetQuery::ProjectedFlow {
                tenant: "t001".to_string(),
            },
            FleetQuery::ProjectedCompletion {
                tenant: "t001".to_string(),
                job: JobId(0),
            },
            FleetQuery::FlowSoFar {
                tenant: "t001".to_string(),
            },
            FleetQuery::Progress {
                tenant: "t001".to_string(),
            },
            FleetQuery::ProjectedFlow {
                tenant: "nope".to_string(),
            },
        ];
        let answers = session.query_batch(&pool, &queries);
        // The projection must equal the dedicated uninterrupted run.
        let t = &tenants[1];
        let mut policy = t.policy.build();
        let dedicated = simulate(&t.instance, policy.as_mut(), t.m).expect("dedicated");
        match answers[0].as_ref().expect("projected flow") {
            QueryAnswer::Flow(f) => {
                assert_eq!(f.to_bits(), dedicated.metrics.total_flow.to_bits())
            }
            other => panic!("{other:?}"),
        }
        let want_c0 = dedicated
            .completed
            .iter()
            .find(|c| c.id == JobId(0))
            .expect("job 0 completes")
            .completion;
        match answers[1].as_ref().expect("projected completion") {
            QueryAnswer::Completion(t) => assert_eq!(t.to_bits(), want_c0.to_bits()),
            other => panic!("{other:?}"),
        }
        match answers[2].as_ref().expect("flow so far") {
            QueryAnswer::Flow(f) => assert!(f.is_finite() && *f >= 0.0),
            other => panic!("{other:?}"),
        }
        match answers[3].as_ref().expect("progress") {
            QueryAnswer::Progress { events, .. } => assert_eq!(*events, 2),
            other => panic!("{other:?}"),
        }
        assert!(answers[4].is_err(), "unknown tenant must be an error");
    }
}
