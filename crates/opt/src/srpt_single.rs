//! Classic preemptive SRPT on a single machine — the exact optimum of the
//! fluid relaxation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use parsched_sim::Instance;

/// An exact, heap-based simulator of preemptive **SRPT on one machine of
/// speed `s`** (Shortest Remaining Processing Time), which is the optimal
/// policy for total flow time in that model.
///
/// Used as the fluid relaxation of the malleable problem: summing
/// `Γ_j(x_j) ≤ x_j` over jobs shows no feasible schedule drains more than
/// `m` volume per unit time, so SRPT at speed `m` lower-bounds every
/// feasible malleable schedule's total flow.
///
/// Runs in `O(n log n)` — independent of the engine, so it doubles as an
/// oracle in the engine's own differential tests.
#[derive(Debug, Clone, Copy)]
pub struct SrptSingleMachine {
    /// Machine speed.
    pub speed: f64,
}

/// Total-ordered f64 for the heap.
#[derive(PartialEq, PartialOrd)]
struct Rem(f64);
impl Eq for Rem {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Rem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl SrptSingleMachine {
    /// Creates the simulator with the given machine speed.
    pub fn new(speed: f64) -> Self {
        assert!(speed > 0.0 && speed.is_finite());
        Self { speed }
    }

    /// Total flow time of SRPT on the instance's `(release, size)` pairs
    /// (speed-up curves are ignored: this is the fluid relaxation).
    pub fn total_flow(&self, instance: &Instance) -> f64 {
        let jobs = instance.jobs();
        if jobs.is_empty() {
            return 0.0;
        }
        // Jobs are sorted by release already.
        let mut heap: BinaryHeap<Reverse<(Rem, u64)>> = BinaryHeap::new();
        let mut total = 0.0;
        let mut now = 0.0f64;
        let mut alive = 0usize;
        let mut i = 0;
        loop {
            // Advance to the next arrival if nothing is queued.
            if heap.is_empty() {
                if i >= jobs.len() {
                    break;
                }
                now = now.max(jobs[i].release);
            }
            // Admit everything due.
            while i < jobs.len() && jobs[i].release <= now + 1e-12 {
                heap.push(Reverse((Rem(jobs[i].size), jobs[i].id.0)));
                alive += 1;
                i += 1;
            }
            let Some(Reverse((Rem(rem), id))) = heap.pop() else {
                continue;
            };
            let finish_at = now + rem / self.speed;
            let next_arrival = jobs.get(i).map(|j| j.release);
            match next_arrival {
                Some(t) if t < finish_at - 1e-12 => {
                    // Preempt at the arrival.
                    let worked = (t - now) * self.speed;
                    total += (t - now) * alive as f64;
                    heap.push(Reverse((Rem(rem - worked), id)));
                    now = t;
                }
                _ => {
                    total += (finish_at - now) * alive as f64;
                    alive -= 1;
                    now = finish_at;
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_speedup::Curve;

    fn inst(jobs: &[(f64, f64)]) -> Instance {
        Instance::from_sizes(jobs, Curve::FullyParallel).unwrap()
    }

    #[test]
    fn single_job() {
        let srpt = SrptSingleMachine::new(2.0);
        assert!((srpt.total_flow(&inst(&[(0.0, 4.0)])) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn batch_runs_shortest_first() {
        // Speed 1, sizes 1, 2, 3 at t=0 → completions 1, 3, 6 → flow 10.
        let srpt = SrptSingleMachine::new(1.0);
        assert!(
            (srpt.total_flow(&inst(&[(0.0, 3.0), (0.0, 1.0), (0.0, 2.0)])) - 10.0).abs() < 1e-9
        );
    }

    #[test]
    fn preemption_on_shorter_arrival() {
        // Speed 1: size 4 at t=0; size 1 at t=1.
        // [0,1): job0. t=1: job1 (rem 1 < 3) preempts, done at 2 (flow 1).
        // job0 done at 5 (flow 5). Total 6.
        let srpt = SrptSingleMachine::new(1.0);
        assert!((srpt.total_flow(&inst(&[(0.0, 4.0), (1.0, 1.0)])) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn no_preemption_on_longer_arrival() {
        // Speed 1: size 2 at t=0; size 5 at t=1 → job0 finishes at 2
        // (flow 2), job1 at 7 (flow 6). Total 8.
        let srpt = SrptSingleMachine::new(1.0);
        assert!((srpt.total_flow(&inst(&[(0.0, 2.0), (1.0, 5.0)])) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn idle_gap_between_jobs() {
        let srpt = SrptSingleMachine::new(1.0);
        // Job at t=0 size 1; job at t=10 size 1 → flows 1 + 1.
        assert!((srpt.total_flow(&inst(&[(0.0, 1.0), (10.0, 1.0)])) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_instance() {
        let srpt = SrptSingleMachine::new(1.0);
        assert_eq!(srpt.total_flow(&inst(&[])), 0.0);
    }

    #[test]
    fn matches_engine_parallel_srpt() {
        // Differential test: the engine running Parallel-SRPT on fully
        // parallelizable jobs must equal analytic SRPT at speed m.
        use parsched::ParallelSrpt;
        use parsched_sim::simulate;
        let jobs = [
            (0.0, 5.0),
            (0.3, 1.0),
            (1.1, 2.5),
            (2.0, 0.7),
            (2.0, 4.0),
            (6.0, 1.0),
        ];
        let instance = inst(&jobs);
        let m = 3.0;
        let engine_flow = simulate(&instance, &mut ParallelSrpt::new(), m)
            .unwrap()
            .metrics
            .total_flow;
        let analytic = SrptSingleMachine::new(m).total_flow(&instance);
        assert!(
            (engine_flow - analytic).abs() < 1e-6,
            "engine {engine_flow} vs analytic {analytic}"
        );
    }
}
