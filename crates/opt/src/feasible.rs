//! Feasible-schedule upper bounds on OPT.

use parsched::PolicyKind;
use parsched_sim::{simulate, AllocationPlan, Instance, PlannedPolicy, SimError};

/// The best feasible schedule found for an instance.
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibleResult {
    /// Its total flow time (an upper bound on OPT).
    pub flow: f64,
    /// Which schedule achieved it.
    pub witness: String,
    /// Flow of every schedule that ran successfully, by name.
    pub all: Vec<(String, f64)>,
}

/// Runs every policy in `kinds` plus every named plan in `extra_plans` on
/// `instance` and returns the best total flow.
///
/// Individual schedules may fail (e.g. a hand plan that stalls on an
/// instance it wasn't built for) — failures are skipped, but at least one
/// schedule must succeed.
pub fn best_feasible(
    instance: &Instance,
    m: f64,
    kinds: &[PolicyKind],
    extra_plans: &[(String, AllocationPlan)],
) -> Result<FeasibleResult, SimError> {
    let mut all = Vec::new();
    for kind in kinds {
        if let Ok(outcome) = simulate(instance, &mut kind.build(), m) {
            all.push((kind.name(), outcome.metrics.total_flow));
        }
    }
    for (name, plan) in extra_plans {
        if let Ok(outcome) = simulate(instance, &mut PlannedPolicy::named(plan.clone(), name), m) {
            all.push((name.clone(), outcome.metrics.total_flow));
        }
    }
    let best = all
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .cloned()
        .ok_or_else(|| SimError::BadInstance {
            what: "no feasible schedule succeeded".to_string(),
        })?;
    Ok(FeasibleResult {
        flow: best.1,
        witness: best.0,
        all,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_speedup::Curve;

    #[test]
    fn picks_the_best_policy() {
        // Underloaded parallel work: Parallel-SRPT/EQUI beat
        // Sequential-SRPT; the winner must not be Sequential-SRPT's value.
        let inst = Instance::from_sizes(&[(0.0, 8.0)], Curve::FullyParallel).unwrap();
        let res = best_feasible(&inst, 4.0, &PolicyKind::all_standard(), &[]).unwrap();
        assert!((res.flow - 2.0).abs() < 1e-6, "{res:?}");
        assert!(res.all.len() >= 5);
        // Every recorded flow is ≥ the winner.
        assert!(res.all.iter().all(|&(_, f)| f >= res.flow - 1e-9));
    }

    #[test]
    fn includes_extra_plans() {
        use parsched_sim::{JobId, PlanSegment};
        // A hand plan that happens to be optimal for one sequential job.
        let inst = Instance::from_sizes(&[(0.0, 2.0)], Curve::Sequential).unwrap();
        let plan = AllocationPlan::new(
            vec![PlanSegment {
                start: 0.0,
                end: 2.0,
                shares: vec![(JobId(0), 1.0)],
            }],
            1.0,
        )
        .unwrap();
        let res = best_feasible(&inst, 1.0, &[], &[("hand".to_string(), plan)]).unwrap();
        assert_eq!(res.witness, "hand");
        assert!((res.flow - 2.0).abs() < 1e-9);
    }

    #[test]
    fn errors_when_nothing_succeeds() {
        let inst = Instance::from_sizes(&[(0.0, 2.0)], Curve::Sequential).unwrap();
        // An empty plan stalls → no successful schedule.
        let plan = AllocationPlan::new(vec![], 1.0).unwrap();
        let err = best_feasible(&inst, 1.0, &[], &[("empty".to_string(), plan)]).unwrap_err();
        assert!(matches!(err, SimError::BadInstance { .. }));
    }
}
