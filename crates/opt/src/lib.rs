//! Bracketing the offline optimum.
//!
//! Computing the true optimal total flow time for malleable jobs with
//! speed-up curves is intractable at experiment scale, and the paper never
//! needs it exactly: its upper-bound proof charges against *any* feasible
//! schedule, and its lower-bound proofs exhibit explicit feasible
//! schedules. This crate follows the same discipline and produces a
//! rigorous **bracket** `LB ≤ OPT ≤ UB`:
//!
//! * **Lower bounds** ([`bounds`]) — quantities provably `≤ OPT`:
//!   * [`bounds::processing_lb`]: `Σ_j p_j / Γ_j(m)` — no schedule can run
//!     a job faster than `Γ_j(m)`.
//!   * [`bounds::srpt_fluid_lb`]: drop the per-job rate cap; because
//!     `Γ(x) ≤ x`, any real schedule drains at most `m` total volume per
//!     unit time, so the relaxation is a single speed-`m` processor with
//!     preemption — whose exact optimum is classic SRPT
//!     ([`SrptSingleMachine`]).
//!   * [`bounds::lower_bound`]: the max of the above.
//! * **Upper bounds** ([`feasible`]) — the best flow among feasible
//!   schedules actually executed on the simulator: every policy in
//!   [`parsched::PolicyKind`] plus any hand-constructed
//!   [`parsched_sim::AllocationPlan`] (e.g. the paper's standard/alternative
//!   schedules from `parsched-workloads`).
//!
//! Every competitive ratio this repository reports is then an interval:
//! `flow_A / UB ≤ ratio ≤ flow_A / LB`, with the conservative end chosen
//! per claim direction (see `parsched-analysis`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod feasible;
mod srpt_single;

pub use bounds::{
    best_lower_bound, hesrpt_batch_lb, lower_bound, processing_lb, srpt_fluid_lb, LbKind,
};
pub use feasible::{best_feasible, FeasibleResult};
pub use srpt_single::SrptSingleMachine;

use parsched_sim::{Instance, SimError};
use serde::{Deserialize, Serialize};

/// A rigorous bracket on the optimal total flow time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptEstimate {
    /// Provable lower bound on OPT.
    pub lower: f64,
    /// Flow of the best feasible schedule found (an upper bound on OPT).
    pub upper: f64,
    /// Name of the schedule achieving `upper`.
    pub upper_witness: String,
}

impl OptEstimate {
    /// Brackets OPT for `instance` on `m` processors using the standard
    /// policy set as feasible witnesses.
    ///
    /// ```
    /// use parsched_opt::OptEstimate;
    /// use parsched_sim::Instance;
    /// use parsched_speedup::Curve;
    ///
    /// let inst = Instance::from_sizes(&[(0.0, 8.0)], Curve::power(0.5)).unwrap();
    /// let est = OptEstimate::bracket(&inst, 4.0).unwrap();
    /// // One job: OPT = 8 / Γ(4) = 4, and the bracket pins it.
    /// assert!((est.lower - 4.0).abs() < 1e-6 && (est.upper - 4.0).abs() < 1e-6);
    /// ```
    pub fn bracket(instance: &Instance, m: f64) -> Result<Self, SimError> {
        Self::bracket_with(instance, m, &parsched::PolicyKind::all_standard(), &[])
    }

    /// Brackets OPT with a custom policy set and extra planned schedules.
    pub fn bracket_with(
        instance: &Instance,
        m: f64,
        kinds: &[parsched::PolicyKind],
        extra_plans: &[(String, parsched_sim::AllocationPlan)],
    ) -> Result<Self, SimError> {
        let lower = bounds::lower_bound(instance, m);
        let best = best_feasible(instance, m, kinds, extra_plans)?;
        Ok(Self {
            lower,
            upper: best.flow,
            upper_witness: best.witness,
        })
    }

    /// Interval for the competitive ratio of a schedule with total flow
    /// `alg_flow`: `[alg/upper, alg/lower]`.
    pub fn ratio_interval(&self, alg_flow: f64) -> (f64, f64) {
        (alg_flow / self.upper, alg_flow / self.lower)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_speedup::Curve;

    #[test]
    fn bracket_is_ordered_and_tight_on_singleton() {
        // One α=0.5 job of size 8 on m = 4: OPT gives it everything →
        // flow 8/Γ(4) = 4. processing_lb = 4 exactly; Intermediate-SRPT
        // achieves it.
        let inst = Instance::from_sizes(&[(0.0, 8.0)], Curve::power(0.5)).unwrap();
        let est = OptEstimate::bracket(&inst, 4.0).unwrap();
        assert!(est.lower <= est.upper * (1.0 + 1e-6));
        assert!((est.lower - 4.0).abs() < 1e-6);
        assert!((est.upper - 4.0).abs() < 1e-6);
        let (lo, hi) = est.ratio_interval(8.0);
        assert!((lo - 2.0).abs() < 1e-6 && (hi - 2.0).abs() < 1e-6);
    }

    #[test]
    fn bracket_orders_on_random_instance() {
        let inst = Instance::from_sizes(
            &[(0.0, 4.0), (0.5, 1.0), (1.0, 2.0), (1.5, 8.0), (2.0, 1.0)],
            Curve::power(0.5),
        )
        .unwrap();
        let est = OptEstimate::bracket(&inst, 2.0).unwrap();
        assert!(est.lower > 0.0);
        assert!(est.lower <= est.upper + 1e-9, "{est:?}");
        assert!(!est.upper_witness.is_empty());
    }
}
