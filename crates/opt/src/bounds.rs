//! Provable lower bounds on the optimal total flow time.

use parsched_sim::Instance;

use crate::srpt_single::SrptSingleMachine;

/// `Σ_j p_j / Γ_j(m)`: every job's flow is at least its size divided by the
/// fastest rate any schedule can ever give it.
///
/// Tight when the system is underloaded and jobs poorly parallelizable;
/// weak under queueing.
pub fn processing_lb(instance: &Instance, m: f64) -> f64 {
    instance
        .jobs()
        .iter()
        .map(|j| j.curve.time_to_finish(j.size, m))
        .sum()
}

/// The fluid relaxation: exact SRPT on a single speed-`m` machine.
///
/// Valid because `Γ(x) ≤ x` for every curve in the model, so any feasible
/// malleable schedule drains at most `m` volume per unit time — i.e. it is
/// feasible on the fluid machine — and preemptive SRPT is the exact
/// optimum there. Tight under heavy queueing of parallel work; weak when
/// jobs are sequential (the fluid machine pretends one job can absorb all
/// `m` processors at full efficiency).
pub fn srpt_fluid_lb(instance: &Instance, m: f64) -> f64 {
    SrptSingleMachine::new(m).total_flow(instance)
}

/// The best (largest) of the implemented lower bounds.
pub fn lower_bound(instance: &Instance, m: f64) -> f64 {
    processing_lb(instance, m).max(srpt_fluid_lb(instance, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_speedup::Curve;

    #[test]
    fn processing_lb_uses_curves() {
        // α = 0.5, m = 4: Γ(4) = 2 → size 8 job needs ≥ 4.
        let inst = Instance::from_sizes(&[(0.0, 8.0)], Curve::power(0.5)).unwrap();
        assert!((processing_lb(&inst, 4.0) - 4.0).abs() < 1e-9);
        // Sequential: Γ(m) = 1 → LB is the size itself.
        let seq = Instance::from_sizes(&[(0.0, 8.0)], Curve::Sequential).unwrap();
        assert!((processing_lb(&seq, 4.0) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn fluid_lb_is_the_srpt_value() {
        let inst = Instance::from_sizes(&[(0.0, 3.0), (0.0, 1.0)], Curve::power(0.5)).unwrap();
        // Speed 2 fluid: size-1 done at 0.5 (flow .5), size-3 at 2 (flow 2).
        assert!((srpt_fluid_lb(&inst, 2.0) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn combined_takes_the_max() {
        // Sequential jobs: processing LB dominates fluid.
        let seq = Instance::from_sizes(&[(0.0, 8.0)], Curve::Sequential).unwrap();
        assert!((lower_bound(&seq, 4.0) - 8.0).abs() < 1e-9);
        // Many parallel jobs: fluid (with queueing) dominates.
        let par = Instance::from_sizes(
            &[(0.0, 4.0), (0.0, 4.0), (0.0, 4.0), (0.0, 4.0)],
            Curve::FullyParallel,
        )
        .unwrap();
        // processing LB = 4 × 1 = 4; fluid: completions at 1,2,3,4 → 10.
        assert!((lower_bound(&par, 4.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn lower_bounds_never_exceed_any_policy() {
        // Property-style check over the standard policy set on a mixed
        // instance: each bound must lower-bound every feasible schedule.
        use parsched::PolicyKind;
        use parsched_sim::simulate;
        let inst = Instance::from_sizes(
            &[
                (0.0, 4.0),
                (0.2, 1.0),
                (0.9, 6.0),
                (1.0, 2.0),
                (3.0, 1.5),
                (3.0, 3.0),
            ],
            Curve::power(0.6),
        )
        .unwrap();
        let m = 3.0;
        let lb = lower_bound(&inst, m);
        for kind in PolicyKind::all_standard() {
            let flow = simulate(&inst, &mut kind.build(), m)
                .unwrap()
                .metrics
                .total_flow;
            assert!(
                lb <= flow + 1e-6,
                "{}: LB {lb} exceeds feasible flow {flow}",
                kind.name()
            );
        }
    }
}
