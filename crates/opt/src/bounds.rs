//! Provable lower bounds on the optimal total flow time.
//!
//! Three bounds with disjoint strengths, plus a selection API
//! ([`best_lower_bound`]) that reports *which* bound won so downstream
//! consumers (the adversary search's ratio denominators, corpus entries)
//! can record their provenance:
//!
//! * [`processing_lb`] — tight when underloaded / poorly parallelizable;
//! * [`srpt_fluid_lb`] — tight under heavy queueing of parallel work;
//! * [`hesrpt_batch_lb`] — the heSRPT closed form (Berg–Vesilo–
//!   Harchol-Balter, arXiv 1903.09346): the *exact* optimum of the pure
//!   power-law relaxation, applicable to batch-release instances whose
//!   jobs all share one `Γ(x) = x^α` curve. Where its optimal allocations
//!   stay ≥ 1 processor it equals OPT of this repository's model exactly
//!   (see the tightness property suite in `crates/opt/tests`).

use parsched_sim::Instance;
use parsched_speedup::Curve;

use crate::srpt_single::SrptSingleMachine;

/// `Σ_j p_j / Γ_j(m)`: every job's flow is at least its size divided by the
/// fastest rate any schedule can ever give it.
///
/// Tight when the system is underloaded and jobs poorly parallelizable;
/// weak under queueing.
pub fn processing_lb(instance: &Instance, m: f64) -> f64 {
    instance
        .jobs()
        .iter()
        .map(|j| j.curve.time_to_finish(j.size, m))
        .sum()
}

/// The fluid relaxation: exact SRPT on a single speed-`m` machine.
///
/// Valid because `Γ(x) ≤ x` for every curve in the model, so any feasible
/// malleable schedule drains at most `m` volume per unit time — i.e. it is
/// feasible on the fluid machine — and preemptive SRPT is the exact
/// optimum there. Tight under heavy queueing of parallel work; weak when
/// jobs are sequential (the fluid machine pretends one job can absorb all
/// `m` processors at full efficiency).
pub fn srpt_fluid_lb(instance: &Instance, m: f64) -> f64 {
    SrptSingleMachine::new(m).total_flow(instance)
}

/// Which lower bound produced a value — recorded alongside every ratio
/// the adversary search reports, so a corpus entry names the denominator
/// it was measured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LbKind {
    /// [`processing_lb`].
    Processing,
    /// [`srpt_fluid_lb`].
    SrptFluid,
    /// [`hesrpt_batch_lb`].
    HesrptBatch,
}

impl LbKind {
    /// Stable identifier used in corpus files and experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            LbKind::Processing => "processing",
            LbKind::SrptFluid => "srpt-fluid",
            LbKind::HesrptBatch => "hesrpt-batch",
        }
    }
}

impl std::str::FromStr for LbKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "processing" => Ok(LbKind::Processing),
            "srpt-fluid" => Ok(LbKind::SrptFluid),
            "hesrpt-batch" => Ok(LbKind::HesrptBatch),
            other => Err(format!("unknown lower-bound kind '{other}'")),
        }
    }
}

/// The shared power-law exponent of a batch-release instance, if the
/// heSRPT closed form applies: every job released at the same instant,
/// every curve `Curve::Power { alpha }` with one common `α ∈ [0, 1)`.
fn hesrpt_alpha(instance: &Instance) -> Option<f64> {
    let jobs = instance.jobs();
    let first = jobs.first()?;
    let alpha = match first.curve {
        Curve::Power { alpha } if alpha < 1.0 => alpha,
        _ => return None,
    };
    let release = first.release;
    for j in jobs {
        if j.release.to_bits() != release.to_bits() {
            return None;
        }
        match j.curve {
            Curve::Power { alpha: a } if a.to_bits() == alpha.to_bits() => {}
            _ => return None,
        }
    }
    Some(alpha)
}

/// The heSRPT closed form: exact optimal total flow time for batch-release
/// jobs under the *pure* power law `Γ(x) = x^α` (no efficiency knee at
/// `x = 1`), which dominates this repository's kneed curves pointwise —
/// so the value is a rigorous lower bound on OPT here, and is OPT exactly
/// whenever the optimal allocations never dip below one processor.
///
/// With sizes sorted ascending `p_1 ≤ … ≤ p_n`, `β = 1/(1−α)` and rank
/// weights `w_r = r^β − (r−1)^β` (rank 1 = largest alive job), the
/// optimum completes jobs smallest-first with job `j` allocated the share
/// `m·w_{n−j+1}/(n−i+1)^β` while `{i..n}` are alive, giving
///
/// ```text
/// OPT = m^{−α} Σ_j (n−j+1)^β (q_j − q_{j−1}),   q_j = p_j / w_{n−j+1}^α
/// ```
///
/// (`q` is nondecreasing, so every term is nonnegative). Returns `None`
/// when the closed form does not apply — staggered releases, mixed α,
/// non-power curves, or `α = 1` (where `β` diverges; the fluid bound is
/// exact there anyway).
pub fn hesrpt_batch_lb(instance: &Instance, m: f64) -> Option<f64> {
    let alpha = hesrpt_alpha(instance)?;
    let mut sizes: Vec<f64> = instance.jobs().iter().map(|j| j.size).collect();
    sizes.sort_by(|a, b| a.partial_cmp(b).expect("finite job sizes"));
    let n = sizes.len();
    let beta = 1.0 / (1.0 - alpha);
    // ranks[r] = r^β for r = 0..=n, so w_r = ranks[r] − ranks[r−1].
    let ranks: Vec<f64> = (0..=n).map(|r| (r as f64).powf(beta)).collect();
    let mut total = parsched_sim::NeumaierSum::new();
    let mut q_prev = 0.0;
    for (j, &p) in sizes.iter().enumerate() {
        // Job j (0-based ascending) has rank n − j from the largest.
        let r = n - j;
        let w = ranks[r] - ranks[r - 1];
        let q = p / w.powf(alpha);
        total.add(ranks[r] * (q - q_prev));
        q_prev = q;
    }
    Some(total.value() / m.powf(alpha))
}

/// The best (largest) of the implemented lower bounds.
///
/// Equivalent to `best_lower_bound(..).0`; kept as the simple entry point
/// for callers that do not care which bound won.
pub fn lower_bound(instance: &Instance, m: f64) -> f64 {
    best_lower_bound(instance, m).0
}

/// The largest applicable lower bound together with its provenance — the
/// selection API behind every adversary-search ratio denominator.
pub fn best_lower_bound(instance: &Instance, m: f64) -> (f64, LbKind) {
    let mut best = (processing_lb(instance, m), LbKind::Processing);
    let fluid = srpt_fluid_lb(instance, m);
    if fluid > best.0 {
        best = (fluid, LbKind::SrptFluid);
    }
    if let Some(hesrpt) = hesrpt_batch_lb(instance, m) {
        if hesrpt > best.0 {
            best = (hesrpt, LbKind::HesrptBatch);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_speedup::Curve;

    #[test]
    fn processing_lb_uses_curves() {
        // α = 0.5, m = 4: Γ(4) = 2 → size 8 job needs ≥ 4.
        let inst = Instance::from_sizes(&[(0.0, 8.0)], Curve::power(0.5)).unwrap();
        assert!((processing_lb(&inst, 4.0) - 4.0).abs() < 1e-9);
        // Sequential: Γ(m) = 1 → LB is the size itself.
        let seq = Instance::from_sizes(&[(0.0, 8.0)], Curve::Sequential).unwrap();
        assert!((processing_lb(&seq, 4.0) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn fluid_lb_is_the_srpt_value() {
        let inst = Instance::from_sizes(&[(0.0, 3.0), (0.0, 1.0)], Curve::power(0.5)).unwrap();
        // Speed 2 fluid: size-1 done at 0.5 (flow .5), size-3 at 2 (flow 2).
        assert!((srpt_fluid_lb(&inst, 2.0) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn combined_takes_the_max() {
        // Sequential jobs: processing LB dominates fluid.
        let seq = Instance::from_sizes(&[(0.0, 8.0)], Curve::Sequential).unwrap();
        assert!((lower_bound(&seq, 4.0) - 8.0).abs() < 1e-9);
        // Many parallel jobs: fluid (with queueing) dominates.
        let par = Instance::from_sizes(
            &[(0.0, 4.0), (0.0, 4.0), (0.0, 4.0), (0.0, 4.0)],
            Curve::FullyParallel,
        )
        .unwrap();
        // processing LB = 4 × 1 = 4; fluid: completions at 1,2,3,4 → 10.
        assert!((lower_bound(&par, 4.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn lower_bounds_never_exceed_any_policy() {
        // Property-style check over the standard policy set on a mixed
        // instance: each bound must lower-bound every feasible schedule.
        use parsched::PolicyKind;
        use parsched_sim::simulate;
        let inst = Instance::from_sizes(
            &[
                (0.0, 4.0),
                (0.2, 1.0),
                (0.9, 6.0),
                (1.0, 2.0),
                (3.0, 1.5),
                (3.0, 3.0),
            ],
            Curve::power(0.6),
        )
        .unwrap();
        let m = 3.0;
        let lb = lower_bound(&inst, m);
        for kind in PolicyKind::all_standard() {
            let flow = simulate(&inst, &mut kind.build(), m)
                .unwrap()
                .metrics
                .total_flow;
            assert!(
                lb <= flow + 1e-6,
                "{}: LB {lb} exceeds feasible flow {flow}",
                kind.name()
            );
        }
    }
}
