//! Property suite for the lower-bound stack (`crates/opt/src/bounds.rs`).
//!
//! Soundness: a lower bound that ever exceeds the flow of *any* feasible
//! schedule is not a lower bound, so every bound is checked against every
//! standard policy on randomized batch instances. Tightness: where the
//! heSRPT closed form applies and its optimal allocations stay ≥ 1
//! processor, the closed-form value is *achieved* by a feasible schedule
//! in this repository's kneed model — realized here as an explicit
//! `AllocationPlan` and replayed through the simulator.

use parsched::PolicyKind;
use parsched_opt::{
    best_lower_bound, hesrpt_batch_lb, lower_bound, processing_lb, srpt_fluid_lb, LbKind,
};
use parsched_sim::{simulate, AllocationPlan, Instance, JobId, PlanSegment, PlannedPolicy};
use parsched_speedup::Curve;
use proptest::prelude::*;

/// Slack for LB-vs-flow comparisons: the engine's event arithmetic and the
/// closed forms accumulate error independently.
const RTOL: f64 = 1e-6;

/// Batch-release pure-power instance from proptest-drawn sizes.
fn batch_instance(sizes: &[f64], alpha: f64) -> Instance {
    let specs: Vec<(f64, f64)> = sizes.iter().map(|&p| (0.0, p)).collect();
    Instance::from_sizes(&specs, Curve::power(alpha)).expect("positive sizes")
}

/// Builds the heSRPT-optimal allocation plan for ascending `sizes` under
/// `Γ(x) = x^α` with `m` processors, phase by phase: while jobs `i..n`
/// (0-based, ascending) are alive, job `j` holds the constant share
/// `m · w_{n−j} / (n−i)^β` with rank weights `w_r = r^β − (r−1)^β`
/// (`β = 1/(1−α)`), and jobs complete smallest-first.
///
/// Returns the plan and the completion times it induces.
fn hesrpt_plan(sizes: &[f64], alpha: f64, m: f64) -> (AllocationPlan, Vec<f64>) {
    let n = sizes.len();
    let beta = 1.0 / (1.0 - alpha);
    let w = |r: usize| (r as f64).powf(beta) - ((r - 1) as f64).powf(beta);
    let mut remaining = sizes.to_vec();
    let mut segments = Vec::new();
    let mut completions = Vec::new();
    let mut now = 0.0;
    for i in 0..n {
        let alive = n - i;
        let denom = (alive as f64).powf(beta);
        // shares[j − i] is job j's allocation during this phase.
        let shares: Vec<f64> = (i..n).map(|j| m * w(n - j) / denom).collect();
        // Smallest alive job (index i) finishes first under heSRPT.
        let dt = remaining[i] / shares[0].powf(alpha);
        for (k, j) in (i..n).enumerate() {
            remaining[j] -= dt * shares[k].powf(alpha);
        }
        segments.push(PlanSegment {
            start: now,
            end: now + dt,
            shares: (i..n).map(|j| (JobId(j as u64), shares[j - i])).collect(),
        });
        now += dt;
        completions.push(now);
    }
    let plan = AllocationPlan::new(segments, m).expect("well-formed heSRPT plan");
    (plan, completions)
}

#[test]
fn hesrpt_closed_form_matches_hand_computed_two_job_value() {
    // n = 2 equal sizes p, α = 1/2, m = 1: β = 2, w = [1, 3], so
    // OPT = p·(1 + √3) — a value you can check on paper.
    let p = 5.0;
    let inst = batch_instance(&[p, p], 0.5);
    let lb = hesrpt_batch_lb(&inst, 1.0).expect("closed form applies");
    let expected = p * (1.0 + 3.0f64.sqrt());
    assert!(
        (lb - expected).abs() <= expected * RTOL,
        "heSRPT value {lb} != hand-computed {expected}"
    );
}

#[test]
fn hesrpt_bound_is_achieved_by_its_own_schedule_when_allocations_stay_whole() {
    // α = 1/2 ⇒ β = 2, weights w = [1, 3, 5]. With m = 9 and three alive
    // jobs the smallest share in any phase is 9·1/9 = 1 processor, so the
    // pure power law and the kneed model agree along the whole schedule
    // and the closed form is exactly OPT — witnessed by simulating the
    // plan it describes.
    let sizes = [2.0, 5.0, 11.0];
    let (alpha, m) = (0.5, 9.0);
    let inst = batch_instance(&sizes, alpha);
    let lb = hesrpt_batch_lb(&inst, m).expect("closed form applies");

    let (plan, completions) = hesrpt_plan(&sizes, alpha, m);
    let outcome = simulate(&inst, &mut PlannedPolicy::named(plan, "hesrpt"), m)
        .expect("heSRPT plan simulates cleanly");
    let flow = outcome.metrics.total_flow;
    let closed: f64 = completions.iter().sum();
    assert!(
        (flow - lb).abs() <= lb * RTOL,
        "simulated heSRPT flow {flow} is not tight against the closed form {lb}"
    );
    assert!(
        (closed - lb).abs() <= lb * RTOL,
        "phase-by-phase completion sum {closed} disagrees with closed form {lb}"
    );
}

#[test]
fn hesrpt_gates_reject_everything_outside_the_closed_form() {
    // Staggered releases.
    let staggered = Instance::from_sizes(&[(0.0, 2.0), (1.0, 3.0)], Curve::power(0.5)).unwrap();
    assert_eq!(hesrpt_batch_lb(&staggered, 4.0), None);
    // Mixed α across jobs.
    let mixed = Instance::new(vec![
        parsched_sim::JobSpec::new(JobId(0), 0.0, 2.0, Curve::power(0.5)),
        parsched_sim::JobSpec::new(JobId(1), 0.0, 3.0, Curve::power(0.25)),
    ])
    .unwrap();
    assert_eq!(hesrpt_batch_lb(&mixed, 4.0), None);
    // Non-power curves.
    let seq = Instance::from_sizes(&[(0.0, 2.0)], Curve::Sequential).unwrap();
    assert_eq!(hesrpt_batch_lb(&seq, 4.0), None);
    let par = Instance::from_sizes(&[(0.0, 2.0)], Curve::FullyParallel).unwrap();
    assert_eq!(hesrpt_batch_lb(&par, 4.0), None);
    // α = 1 (β diverges; the fluid bound is exact there anyway).
    let linear = Instance::from_sizes(&[(0.0, 2.0)], Curve::power(1.0)).unwrap();
    assert_eq!(hesrpt_batch_lb(&linear, 4.0), None);
}

#[test]
fn lb_kind_names_round_trip() {
    for kind in [LbKind::Processing, LbKind::SrptFluid, LbKind::HesrptBatch] {
        assert_eq!(kind.name().parse::<LbKind>().unwrap(), kind);
    }
    assert!("not-a-bound".parse::<LbKind>().is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness: on batch pure-power instances, *every* implemented bound
    /// (not just the selected max) stays at or below the measured flow of
    /// every standard policy — each policy is a feasible schedule, so any
    /// violation is a broken bound or a broken simulator.
    #[test]
    fn every_bound_is_below_every_standard_policy(
        sizes in proptest::collection::vec(0.5f64..20.0, 1..9),
        alpha in prop_oneof![Just(0.25f64), Just(0.5), Just(0.75)],
        m in prop_oneof![Just(1.0f64), Just(2.0), Just(4.0), Just(9.0)],
    ) {
        let inst = batch_instance(&sizes, alpha);
        let mut bounds = vec![
            ("processing", processing_lb(&inst, m)),
            ("srpt-fluid", srpt_fluid_lb(&inst, m)),
        ];
        if let Some(h) = hesrpt_batch_lb(&inst, m) {
            bounds.push(("hesrpt-batch", h));
        }
        for kind in PolicyKind::all_standard() {
            let flow = simulate(&inst, kind.build().as_mut(), m)
                .expect("batch instance simulates")
                .metrics
                .total_flow;
            for &(name, lb) in &bounds {
                prop_assert!(
                    lb <= flow * (1.0 + RTOL),
                    "{name} bound {lb} exceeds {}'s feasible flow {flow}",
                    kind.name()
                );
            }
        }
    }

    /// Dominance and selection: heSRPT (when applicable) is at least the
    /// processing bound — every job's completion needs at least
    /// `p_j / m^α` even alone on the machine — and `best_lower_bound`
    /// returns the max of the applicable bounds with matching provenance.
    #[test]
    fn best_lower_bound_selects_the_max_with_correct_provenance(
        sizes in proptest::collection::vec(0.5f64..20.0, 1..9),
        alpha in prop_oneof![Just(0.25f64), Just(0.5), Just(0.75)],
        m in prop_oneof![Just(1.0f64), Just(2.0), Just(4.0), Just(9.0)],
    ) {
        let inst = batch_instance(&sizes, alpha);
        let proc = processing_lb(&inst, m);
        let fluid = srpt_fluid_lb(&inst, m);
        let hesrpt = hesrpt_batch_lb(&inst, m).expect("batch pure-power applies");
        prop_assert!(
            hesrpt >= proc * (1.0 - RTOL),
            "heSRPT {hesrpt} below the processing bound {proc}"
        );
        let (best, kind) = best_lower_bound(&inst, m);
        let max = proc.max(fluid).max(hesrpt);
        prop_assert!((best - max).abs() <= max * RTOL);
        let named = match kind {
            LbKind::Processing => proc,
            LbKind::SrptFluid => fluid,
            LbKind::HesrptBatch => hesrpt,
        };
        prop_assert!((best - named).abs() <= max * RTOL, "provenance {kind:?} mismatch");
        prop_assert_eq!(lower_bound(&inst, m), best);
    }
}
