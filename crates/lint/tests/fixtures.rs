//! Per-rule fixture pairs: each violating tree under `tests/fixtures/<rule>/`
//! trips exactly its rule, and the `clean/` tree is silent. CI runs the same
//! trees through the `parsched lint --root …` CLI and asserts the exit codes.

use std::path::PathBuf;

use parsched_lint::{lint_root, LintOutcome};

fn fixture(name: &str) -> LintOutcome {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    lint_root(&root, &[]).expect("fixture tree readable")
}

/// Distinct rule ids among a fixture's violations.
fn rules_hit(out: &LintOutcome) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = out.violations.iter().map(|d| d.rule).collect();
    rules.sort();
    rules.dedup();
    rules
}

#[test]
fn l001_fixture_trips_only_l001() {
    let out = fixture("l001");
    assert_eq!(rules_hit(&out), vec!["L001"], "{:?}", out.violations);
    // Both forms: the named-accumulator `+=` and the un-annotated `.sum()`.
    assert_eq!(out.violations.len(), 2);
}

#[test]
fn l002_fixture_trips_only_l002() {
    let out = fixture("l002");
    assert_eq!(rules_hit(&out), vec!["L002"], "{:?}", out.violations);
    let msgs: Vec<&str> = out.violations.iter().map(|d| d.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("HashMap")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("Instant")), "{msgs:?}");
}

#[test]
fn l003_fixture_trips_only_l003() {
    let out = fixture("l003");
    assert_eq!(rules_hit(&out), vec!["L003"], "{:?}", out.violations);
    // `speed == 1.0` and `x != f64::INFINITY`.
    assert_eq!(out.violations.len(), 2);
}

#[test]
fn l004_fixture_trips_only_l004() {
    let out = fixture("l004");
    assert_eq!(rules_hit(&out), vec!["L004"], "{:?}", out.violations);
    // Unregistered + missing stability() + missing srpt_ordered().
    assert_eq!(out.violations.len(), 3);
}

#[test]
fn l005_fixture_trips_only_l005() {
    let out = fixture("l005");
    assert_eq!(rules_hit(&out), vec!["L005"], "{:?}", out.violations);
    let msgs: Vec<&str> = out.violations.iter().map(|d| d.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("forbid(unsafe_code)")),
        "{msgs:?}"
    );
    assert!(msgs.iter().any(|m| m.contains("unwrap")), "{msgs:?}");
}

#[test]
fn l006_fixture_trips_only_l006() {
    let out = fixture("l006");
    assert_eq!(rules_hit(&out), vec!["L006"], "{:?}", out.violations);
    // One `.powf(` and one `.powi(` on the hot path.
    assert_eq!(out.violations.len(), 2);
    let msgs: Vec<&str> = out.violations.iter().map(|d| d.message.as_str()).collect();
    assert!(msgs.iter().all(|m| m.contains("PowKernel")), "{msgs:?}");
}

#[test]
fn l007_fixture_trips_only_l007() {
    let out = fixture("l007");
    assert_eq!(rules_hit(&out), vec!["L007"], "{:?}", out.violations);
    // Non-donated push, local-buffer push, panic!, unchecked indexing,
    // and the assert reached only via `run_fast_loop`'s turbofish call —
    // and NOT the EngineBuffers-donated `completed.push`.
    assert_eq!(out.violations.len(), 5, "{:?}", out.violations);
    let msgs: Vec<&str> = out.violations.iter().map(|d| d.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("panic!")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("indexing")), "{msgs:?}");
    assert!(
        out.violations
            .iter()
            .any(|d| d.message.contains("assert!") && d.message.contains("run_fast_loop")),
        "turbofish-only root path not resolved: {msgs:?}"
    );
    assert!(
        msgs.iter().all(|m| m.contains("event-loop root")),
        "{msgs:?}"
    );
}

#[test]
fn l008_fixture_trips_only_l008() {
    let out = fixture("l008");
    assert_eq!(rules_hit(&out), vec!["L008"], "{:?}", out.violations);
    // `Instant` and `HashMap` in the reached helpers; the unreached
    // `SystemTime` stays silent.
    assert_eq!(out.violations.len(), 2, "{:?}", out.violations);
    for d in &out.violations {
        assert_eq!(d.path, "crates/analysis/src/util.rs", "{d}");
        assert!(d.message.contains("simulation path"), "{d}");
    }
}

#[test]
fn l009_fixture_trips_only_l009() {
    let out = fixture("l009");
    assert_eq!(rules_hit(&out), vec!["L009"], "{:?}", out.violations);
    // `Engine.peak` off both codec paths + `Srpt` snapshotting without
    // restoring.
    assert_eq!(out.violations.len(), 2, "{:?}", out.violations);
    let msgs: Vec<&str> = out.violations.iter().map(|d| d.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("`Engine.peak`")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("restore_state")), "{msgs:?}");
}

#[test]
fn clean_fixture_is_clean() {
    let out = fixture("clean");
    assert!(out.is_clean(), "{:?}", out.violations);
    assert!(out.files > 0, "clean fixture loaded no files");
}

#[test]
fn diagnostics_carry_real_positions() {
    let out = fixture("l001");
    for d in &out.violations {
        assert!(d.path.starts_with("crates/simcore/src/"), "{d}");
        assert!(d.line > 1, "{d}"); // below the doc comment
        assert!(d.col >= 1, "{d}");
    }
}
