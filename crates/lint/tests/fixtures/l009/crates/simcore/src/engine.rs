//! L009 fixture: `Engine.peak` never reaches the codec (one diagnostic),
//! and `Srpt` snapshots its state without restoring it (one diagnostic).

pub struct Engine {
    now: f64,
    peak: u64, // flags: on neither the render nor the parse path
}

pub struct Snapshot {
    now: f64,
}

impl Engine {
    pub fn snapshot(&self) -> Snapshot {
        Snapshot { now: self.now }
    }

    pub fn restore(&mut self, s: &Snapshot) {
        self.now = s.now;
    }
}

pub trait Policy {
    fn rank(&self) -> u64;
}

pub struct Srpt {
    cursor: u64,
}

impl Policy for Srpt {
    fn rank(&self) -> u64 {
        self.cursor
    }

    fn snapshot_state(&self) -> u64 {
        self.cursor // flags: no paired restore_state
    }
}
