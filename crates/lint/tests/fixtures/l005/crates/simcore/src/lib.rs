//! L005 fixture crate root: missing `#![forbid(unsafe_code)]`.

pub mod engine;
