//! L005 fixture: panicking shortcut in the event loop.

/// Pops the next event time, panicking on an empty queue.
pub fn next_event(queue: &[f64]) -> f64 {
    *queue.first().unwrap()
}
