//! L008 fixture, sim side: the simulation path itself is clean — the
//! nondeterminism hides in a helper crate outside L002's scope.

#![forbid(unsafe_code)]

pub fn simulate(seed: u64) -> u64 {
    shuffle(jitter(seed))
}
