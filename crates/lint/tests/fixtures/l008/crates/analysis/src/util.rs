//! L008 fixture, helper side: `crates/analysis` is outside L002's scope,
//! so these sinks pass the token-local scan — only the call-graph taint
//! pass sees that `simulate` reaches them. Two diagnostics.

pub fn jitter(seed: u64) -> u64 {
    let _t = Instant::now(); // flags: wall clock on a simulation path
    seed ^ 0x9e3779b97f4a7c15
}

pub fn shuffle(seed: u64) -> u64 {
    let mut m = HashMap::new(); // flags: default hasher is randomly seeded
    m.insert(seed, 1u64);
    seed.rotate_left(7)
}

pub fn unreached_clock() -> u64 {
    let _t = SystemTime::now(); // never called from a sim path: silent
    0
}
