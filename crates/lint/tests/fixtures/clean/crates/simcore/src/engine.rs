//! Clean fixture, event-loop half: the loop mutates only
//! EngineBuffers-donated state (L007), the snapshot codec references every
//! participating field on both the render and parse paths (L009), and the
//! policy round-trips its state in a snapshot/restore pair.

pub struct JobArena {
    remaining: Vec<f64>,
}

pub struct EngineBuffers {
    jobs: JobArena,
    completed: Vec<u64>,
}

pub struct Engine {
    jobs: JobArena,
    completed: Vec<u64>,
    now: f64,
}

pub struct Snapshot {
    now: f64,
    done: u64,
    work: Vec<f64>,
}

impl Engine {
    pub fn run(&mut self) {
        self.step();
    }

    pub fn step(&mut self) {
        self.completed.push(7);
        self.now = next_time(&self.jobs.remaining, self.now);
    }

    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            now: self.now,
            done: self.completed.len() as u64,
            work: self.jobs.remaining.clone(),
        }
    }

    pub fn restore(&mut self, s: &Snapshot) {
        self.now = s.now;
        self.completed.clear();
        self.completed.resize(s.done as usize, 0);
        self.jobs.remaining.clear();
        self.jobs.remaining.extend_from_slice(&s.work);
    }
}

fn next_time(xs: &[f64], now: f64) -> f64 {
    match xs.first() {
        Some(head) => now.max(*head),
        None => now,
    }
}

pub trait Policy {
    fn rank(&self) -> u64;
}

pub struct Fifo {
    cursor: u64,
}

impl Policy for Fifo {
    fn rank(&self) -> u64 {
        self.cursor
    }

    fn snapshot_state(&self) -> u64 {
        self.cursor
    }

    fn restore_state(&mut self, v: u64) {
        self.cursor = v;
    }
}
