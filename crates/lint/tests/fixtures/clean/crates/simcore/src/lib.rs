//! Clean fixture: satisfies every rule (the passing half of each pair).

#![forbid(unsafe_code)]

/// Counts jobs exactly — an annotated integer fold is allowed by L001.
pub fn count(sizes: &[u64]) -> u64 {
    sizes.iter().copied().sum::<u64>()
}
