//! Clean fixture: satisfies every rule (the passing half of each pair).

#![forbid(unsafe_code)]

/// Counts jobs exactly — an annotated integer fold is allowed by L001.
pub fn count(sizes: &[u64]) -> u64 {
    sizes.iter().copied().sum::<u64>()
}

/// A simulation path that leaves the L002-scoped crates through a
/// deterministic helper — the passing half of L008.
pub fn simulate(seed: u64) -> u64 {
    smooth(seed)
}
