//! Clean fixture, taint half: reached from the simulation path but fully
//! deterministic — the passing half of L008.

pub fn smooth(seed: u64) -> u64 {
    seed.rotate_left(7) ^ 0x9e3779b97f4a7c15
}
