//! L003 fixture: exact float equality against literals and constants.

/// Compares a computed speed to a literal exactly.
pub fn is_default_speed(speed: f64) -> bool {
    speed == 1.0
}

/// Compares against an associated constant exactly.
pub fn is_unbounded(x: f64) -> bool {
    x != f64::INFINITY
}
