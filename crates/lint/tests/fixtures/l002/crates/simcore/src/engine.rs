//! L002 fixture: nondeterminism in a simulation path.

use std::collections::HashMap;
use std::time::Instant;

/// Decides from a hash map and a wall clock — both banned.
pub fn decide(order: &HashMap<u64, f64>) -> f64 {
    let _started = Instant::now();
    order.values().copied().fold(0.0, f64::max)
}
