//! L004 fixture: a `Policy` impl the registry cannot build, which also
//! inherits both metadata defaults.

/// A minimal stand-in for the real trait.
pub trait Policy {
    /// Display name.
    fn name(&self) -> String;
    /// Execution-path contract (defaulted — impls must override).
    fn stability(&self) -> u8 {
        0
    }
    /// Audit metadata (defaulted — impls must override).
    fn srpt_ordered(&self) -> bool {
        false
    }
}

/// The rogue policy.
pub struct UnregisteredPolicy;

impl Policy for UnregisteredPolicy {
    fn name(&self) -> String {
        "rogue".to_string()
    }
}
