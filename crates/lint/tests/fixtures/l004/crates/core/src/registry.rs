//! L004 fixture registry: knows nothing about `UnregisteredPolicy`.

/// The fixture's registry enum — deliberately missing a variant for the
/// policy implemented in `unregistered.rs`.
pub enum PolicyKind {
    /// The only policy this registry can build.
    Known,
}
