//! L006 fixture: per-call power evaluation on the event-loop hot path.

/// Evaluates the power-law curve the slow way on every event.
pub fn drain_rate(alpha: f64, share: f64) -> f64 {
    if share <= 1.0 {
        share
    } else {
        share.powf(alpha)
    }
}

/// Integer-exponent variant, equally banned on the hot path.
pub fn quadratic_rate(share: f64) -> f64 {
    share.powi(2)
}
