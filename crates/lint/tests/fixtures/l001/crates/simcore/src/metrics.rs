//! L001 fixture: raw f64 accumulation in a metrics path.

/// Total flow, accumulated two forbidden ways.
pub fn total(flows: &[f64]) -> f64 {
    let mut total_flow = 0.0;
    for f in flows {
        total_flow += f;
    }
    let naive: f64 = flows.iter().sum();
    total_flow + naive
}
