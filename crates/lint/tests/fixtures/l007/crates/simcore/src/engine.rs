//! L007 fixture: panic and allocation sinks reachable from `Engine::run`
//! and from the monomorphized `Engine::run_fast_loop` root (reached only
//! through a const-generic turbofish call, which the parser must record).
//! `completed.push` is exempt (EngineBuffers-donated state); the other
//! five sites must each produce one diagnostic.

pub struct JobArena {
    remaining: Vec<f64>,
}

pub struct EngineBuffers {
    jobs: JobArena,
    completed: Vec<u64>,
}

pub struct Engine {
    jobs: JobArena,
    completed: Vec<u64>,
    trace: Vec<u64>,
}

impl Engine {
    pub fn run(&mut self) {
        self.step();
    }

    pub fn run_loop(&mut self) {
        self.run_fast_loop::<true>();
    }

    fn run_fast_loop<const V: bool>(&mut self) {
        guard_capacity::<u64>(self.trace.len());
    }

    pub fn step(&mut self) {
        self.completed.push(1); // donated: exempt
        self.trace.push(2); // not an EngineBuffers field: flags
        grow();
    }
}

fn grow() {
    let mut log = Vec::new();
    log.push(9u64); // local buffer: flags
    if first(&log) == 0 {
        panic!("empty event log"); // flags
    }
}

fn first(xs: &[u64]) -> u64 {
    xs[0] // unchecked indexing, not a donated lane: flags
}

fn guard_capacity<T>(n: usize) {
    // Reachable only via `run_fast_loop`'s turbofish call: flags.
    assert!(n < 1_000_000, "arena overflow");
}
