//! Byte-level robustness for the lint front end, mirroring the jsonlite
//! fuzz suite: the lexer and item parser consume arbitrary (often
//! invalid) byte soup and must return — errors and nonsense items are
//! fine, panics or hangs are the bug. The call-graph layers above only
//! ever see `FileItems`, so front-end totality is what makes the whole
//! pipeline safe to run on any tree the CLI is pointed at.

use parsched_lint::parse::parse_items;
use parsched_lint::SourceFile;
use proptest::prelude::*;

/// A real, representative workspace source: the lint's own lexer. Mutating
/// genuine Rust exercises the interesting paths (raw strings, lifetimes,
/// nested generics, char literals) far more often than uniform bytes do.
const SEED_SOURCE: &str = include_str!("../src/lex.rs");

/// Lex + parse and touch the results so nothing is optimized away.
fn front_end_total(text: &str) -> usize {
    let file = SourceFile::new("fuzz.rs", text);
    let items = parse_items(&file);
    items.fns.len() + items.structs.len() + file.tokens.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn lexer_and_parser_never_panic_on_random_bytes(
        bytes in proptest::collection::vec(0u8..=255, 0..512)
    ) {
        front_end_total(&String::from_utf8_lossy(&bytes));
    }

    #[test]
    fn lexer_and_parser_never_panic_on_mutated_rust_source(
        ops in proptest::collection::vec((0usize..16384, 0u8..=255, 0u8..4), 1..16)
    ) {
        let mut bytes = SEED_SOURCE.as_bytes().to_vec();
        for (pos, byte, kind) in ops {
            if bytes.is_empty() {
                break;
            }
            let pos = pos % bytes.len();
            match kind {
                0 => bytes[pos] = byte,       // point corruption (split keywords, break escapes)
                1 => bytes.truncate(pos),     // truncation (unterminated strings/blocks)
                2 => bytes.insert(pos, byte), // insertion (stray delimiters)
                _ => {
                    bytes.remove(pos); // deletion (unbalanced braces)
                }
            }
        }
        front_end_total(&String::from_utf8_lossy(&bytes));
    }
}
