//! The committed workspace must be lint-clean — the same gate CI enforces
//! with `parsched lint`. A failure here means a change introduced a
//! determinism/float-hygiene/registry violation (or left a waiver stale);
//! fix it or waive it inline with a reason.

use std::path::PathBuf;

use parsched_lint::{lint_root, report::render_human};

#[test]
fn workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = lint_root(&root, &[]).expect("workspace readable");
    assert!(out.files >= 50, "suspiciously few files: {}", out.files);
    assert!(
        out.is_clean(),
        "workspace lint failures:\n{}",
        render_human(&out)
    );
}
