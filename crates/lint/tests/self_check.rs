//! The committed workspace must be lint-clean — the same gate CI enforces
//! with `parsched lint`. A failure here means a change introduced a
//! determinism/float-hygiene/registry violation (or left a waiver stale);
//! fix it or waive it inline with a reason.

use std::path::PathBuf;

use parsched_lint::rules::event_loop_roots;
use parsched_lint::{lint_root, report::render_human, Workspace};

#[test]
fn workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = lint_root(&root, &[]).expect("workspace readable");
    assert!(out.files >= 50, "suspiciously few files: {}", out.files);
    assert!(
        out.is_clean(),
        "workspace lint failures:\n{}",
        render_human(&out)
    );
}

/// L007's proof is only as good as its root set: if a rename or refactor
/// drops an `Engine::run*` entry point out of the symbol index, the rule
/// silently proves nothing about it. Resolve the roots over the real
/// workspace and pin the coverage.
#[test]
fn l007_roots_cover_every_engine_entry_point() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root, &[]).expect("workspace readable");
    let graph = ws.graph();
    let roots: Vec<String> = event_loop_roots(graph)
        .into_iter()
        .map(|id| graph.fns[id].qual_name())
        .collect();
    for required in [
        "Engine::run",
        "Engine::run_reusing",
        "Engine::run_streaming",
        "Engine::run_streaming_reusing",
        "Engine::run_loop",
        "Engine::run_fast_loop",
        "Engine::step",
    ] {
        assert!(
            roots.iter().any(|r| r == required),
            "`{required}` missing from the L007 root set; roots resolved: {roots:?}"
        );
    }
    // The queue and SRPT-set mutation surface is part of the proof too.
    assert!(
        roots.iter().any(|r| r.starts_with("SrptSet::")),
        "no SrptSet mutation roots resolved: {roots:?}"
    );
    assert!(
        roots.iter().any(|r| r.starts_with("CalendarQueue::")),
        "no CalendarQueue roots resolved: {roots:?}"
    );
}
