//! The waiver protocol, end to end: suppression, mandatory reasons, and
//! stale-waiver detection, driven through in-memory workspaces.

use parsched_lint::{run, Workspace};

fn outcome(files: &[(&str, &str)]) -> parsched_lint::LintOutcome {
    run(&Workspace::from_memory(files.iter().map(|&(p, t)| (p, t))))
}

#[test]
fn trailing_waiver_suppresses_its_own_line() {
    let out = outcome(&[(
        "crates/core/src/x.rs",
        "pub fn f(s: f64) -> bool {\n    s == 1.0 // lint:allow(L003) parsed sentinel, never computed\n}\n",
    )]);
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    assert_eq!(out.waived.len(), 1);
    assert_eq!(out.waived[0].0.rule, "L003");
    assert_eq!(out.waived[0].1, "parsed sentinel, never computed");
    assert!(out.waiver_problems.is_empty(), "{:?}", out.waiver_problems);
}

#[test]
fn standalone_waiver_targets_the_next_code_line() {
    let out = outcome(&[(
        "crates/core/src/x.rs",
        "pub fn f(s: f64) -> bool {\n    // lint:allow(L003) parsed sentinel, never computed\n    s == 1.0\n}\n",
    )]);
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    assert_eq!(out.waived.len(), 1);
}

#[test]
fn reasonless_waiver_does_not_waive() {
    let out = outcome(&[(
        "crates/core/src/x.rs",
        "pub fn f(s: f64) -> bool {\n    s == 1.0 // lint:allow(L003)\n}\n",
    )]);
    // The violation stands AND the bare waiver is itself reported.
    assert_eq!(out.violations.len(), 1);
    assert_eq!(out.waiver_problems.len(), 1);
    assert!(out.waiver_problems[0].detail.contains("no reason"));
}

#[test]
fn stale_waiver_is_reported() {
    let out = outcome(&[(
        "crates/core/src/x.rs",
        "// lint:allow(L003) nothing on the next line violates anything\npub fn f() {}\n",
    )]);
    assert!(out.violations.is_empty());
    assert_eq!(out.waiver_problems.len(), 1);
    assert!(out.waiver_problems[0].detail.contains("stale"));
}

#[test]
fn unknown_rule_in_waiver_is_reported() {
    let out = outcome(&[(
        "crates/core/src/x.rs",
        "// lint:allow(L999) no such rule\npub fn f() {}\n",
    )]);
    assert_eq!(out.waiver_problems.len(), 1);
    assert!(out.waiver_problems[0].detail.contains("L999"));
}

#[test]
fn waiver_for_a_different_rule_does_not_suppress() {
    let out = outcome(&[(
        "crates/core/src/x.rs",
        "pub fn f(s: f64) -> bool {\n    s == 1.0 // lint:allow(L001) wrong rule entirely\n}\n",
    )]);
    assert_eq!(out.violations.len(), 1, "{:?}", out.violations);
    assert_eq!(out.violations[0].rule, "L003");
    // And the mismatched waiver is stale.
    assert_eq!(out.waiver_problems.len(), 1);
}

#[test]
fn one_waiver_may_name_several_rules() {
    let out = outcome(&[(
        "crates/simcore/src/metrics.rs",
        "pub fn f(xs: &[f64]) -> f64 {\n    let mut total_flow = 0.0;\n    total_flow += xs[0] == 1.0 as u8 as f64; // lint:allow(L001, L003) fixture exercising multi-rule waivers\n    total_flow\n}\n",
    )]);
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    assert_eq!(out.waived.len(), 2, "{:?}", out.waived);
}
