//! Lexed source files, waiver extraction, and the workspace file walker.

use std::path::{Path, PathBuf};

use crate::lex::{lex, Token};

/// An inline waiver: `// lint:allow(L001) reason` or
/// `// lint:allow(L001, L003) reason`.
///
/// A waiver on a line of code waives matching diagnostics on **that
/// line**; a waiver on a line of its own waives them on the **next line
/// that contains code**. The reason is mandatory — a waiver without one is
/// itself reported.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule ids this waiver covers (uppercased, e.g. `L001`).
    pub rules: Vec<String>,
    /// The justification following the rule list.
    pub reason: String,
    /// Line the comment sits on.
    pub line: u32,
    /// Line whose diagnostics it waives.
    pub target_line: u32,
}

/// One lexed file of the workspace under analysis.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (stable across OSes,
    /// and what rule scopes match against).
    pub rel: String,
    /// Full text.
    pub text: String,
    /// Token stream (comments included).
    pub tokens: Vec<Token>,
    /// Parsed waivers.
    pub waivers: Vec<Waiver>,
    /// Half-open token-index ranges lying inside `#[cfg(test)] mod … { }`
    /// blocks. Most rules skip these: test code deliberately does exact
    /// float math and uses wall clocks.
    pub test_ranges: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes `text` under the given workspace-relative path.
    pub fn new(rel: impl Into<String>, text: impl Into<String>) -> Self {
        let rel = rel.into();
        let text = text.into();
        let tokens = lex(&text);
        let waivers = extract_waivers(&text, &tokens);
        let test_ranges = find_test_ranges(&text, &tokens);
        Self {
            rel,
            text,
            tokens,
            waivers,
            test_ranges,
        }
    }

    /// The text of token `i`.
    pub fn tok(&self, i: usize) -> &str {
        self.tokens[i].text(&self.text)
    }

    /// Whether token index `i` lies inside a `#[cfg(test)]` module.
    pub fn in_test_code(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| a <= i && i < b)
    }

    /// Index of the previous non-comment token before `i`, if any.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| !self.tokens[j].is_comment())
    }

    /// Index of the next non-comment token after `i`, if any.
    pub fn next_code(&self, i: usize) -> Option<usize> {
        (i + 1..self.tokens.len()).find(|&j| !self.tokens[j].is_comment())
    }
}

/// Pulls `lint:allow(...)` waivers out of the comment tokens.
fn extract_waivers(text: &str, tokens: &[Token]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_comment() {
            continue;
        }
        let body = t.text(text);
        // Doc comments *describe* the waiver syntax (this crate's own
        // docs do); only plain `//` / `/* */` comments carry directives.
        if body.starts_with("///")
            || body.starts_with("//!")
            || body.starts_with("/**")
            || body.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = body.find("lint:allow(") else {
            continue;
        };
        let after = &body[at + "lint:allow(".len()..];
        let Some(close) = after.find(')') else {
            continue;
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_ascii_uppercase())
            .filter(|r| !r.is_empty())
            .collect();
        let reason = after[close + 1..]
            .trim()
            .trim_end_matches("*/")
            .trim()
            .to_string();
        // Trailing comment (code precedes it on the same line) waives its
        // own line; a standalone comment line waives the next code line.
        let has_code_before = tokens[..i]
            .iter()
            .rev()
            .take_while(|p| p.line == t.line)
            .any(|p| !p.is_comment());
        let target_line = if has_code_before {
            t.line
        } else {
            tokens[i + 1..]
                .iter()
                .find(|n| !n.is_comment())
                .map(|n| n.line)
                .unwrap_or(t.line + 1)
        };
        out.push(Waiver {
            rules,
            reason,
            line: t.line,
            target_line,
        });
    }
    out
}

/// Finds `#[cfg(test)] mod … { }` token ranges (the body, inclusive of the
/// braces) so rules can skip test code.
fn find_test_ranges(text: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 4 < tokens.len() {
        // Match `# [ cfg ( test` allowing no interleaved comments (attrs
        // are written tightly in practice).
        let is_cfg_test = tokens[i].text(text) == "#"
            && tokens[i + 1].text(text) == "["
            && tokens[i + 2].text(text) == "cfg"
            && tokens[i + 3].text(text) == "("
            && tokens[i + 4].text(text) == "test";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip to the closing `]` of the attribute, then over any further
        // attributes, doc comments, and visibility, looking for `mod`.
        let mut j = i + 5;
        let mut depth = 1; // inside `[`
        while j < tokens.len() && depth > 0 {
            match tokens[j].text(text) {
                "[" => depth += 1,
                "]" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        // Allow `#[cfg(test)] #[other] pub mod name {` shapes.
        let mut k = j;
        loop {
            if k >= tokens.len() {
                break;
            }
            if tokens[k].is_comment() {
                k += 1;
                continue;
            }
            match tokens[k].text(text) {
                "#" => {
                    // Skip a whole attribute.
                    k += 1;
                    if k < tokens.len() && tokens[k].text(text) == "[" {
                        let mut d = 1;
                        k += 1;
                        while k < tokens.len() && d > 0 {
                            match tokens[k].text(text) {
                                "[" => d += 1,
                                "]" => d -= 1,
                                _ => {}
                            }
                            k += 1;
                        }
                    }
                }
                "pub" => k += 1,
                "(" => {
                    // pub(crate) etc.
                    let mut d = 1;
                    k += 1;
                    while k < tokens.len() && d > 0 {
                        match tokens[k].text(text) {
                            "(" => d += 1,
                            ")" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                "mod" => break,
                _ => break,
            }
        }
        if k < tokens.len() && tokens[k].text(text) == "mod" {
            // Find the opening brace, then its match.
            let mut b = k + 1;
            while b < tokens.len() && tokens[b].text(text) != "{" {
                b += 1;
            }
            if b < tokens.len() {
                let mut d = 1;
                let mut e = b + 1;
                while e < tokens.len() && d > 0 {
                    match tokens[e].text(text) {
                        "{" => d += 1,
                        "}" => d -= 1,
                        _ => {}
                    }
                    e += 1;
                }
                out.push((i, e));
                i = e;
                continue;
            }
        }
        i = j;
    }
    out
}

/// Directory names never descended into: build output, vendored shims,
/// test/bench/example code, and lint fixtures (which violate on purpose).
const SKIP_DIRS: &[&str] = &[
    "target",
    "shims",
    "tests",
    "benches",
    "examples",
    "fixtures",
    "docs",
    "proptest-regressions",
    ".git",
    ".github",
];

/// Recursively collects `.rs` files under `dir`, returning paths relative
/// to `root`, sorted for deterministic diagnostic order.
pub fn collect_rs_files(root: &Path, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        if d.is_file() {
            if d.extension().is_some_and(|e| e == "rs") {
                out.push(d);
            }
            continue;
        }
        for entry in std::fs::read_dir(&d)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    let mut rels: Vec<PathBuf> = out
        .into_iter()
        .map(|p| p.strip_prefix(root).map(|r| r.to_path_buf()).unwrap_or(p))
        .collect();
    rels.sort();
    Ok(rels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::TokenKind;

    #[test]
    fn trailing_waiver_targets_its_own_line() {
        let f = SourceFile::new(
            "x.rs",
            "fn f() {\n    let a = 1.0 == b; // lint:allow(L003) sentinel compare\n}\n",
        );
        assert_eq!(f.waivers.len(), 1);
        let w = &f.waivers[0];
        assert_eq!(w.rules, vec!["L003".to_string()]);
        assert_eq!(w.target_line, 2);
        assert_eq!(w.reason, "sentinel compare");
    }

    #[test]
    fn standalone_waiver_targets_next_code_line() {
        let f = SourceFile::new(
            "x.rs",
            "fn f() {\n    // lint:allow(L001, L003) both rules, one reason\n    t += 1.0;\n}\n",
        );
        let w = &f.waivers[0];
        assert_eq!(w.rules, vec!["L001".to_string(), "L003".to_string()]);
        assert_eq!((w.line, w.target_line), (2, 3));
        assert_eq!(w.reason, "both rules, one reason");
    }

    #[test]
    fn block_comment_waiver_strips_terminator() {
        let f = SourceFile::new("x.rs", "/* lint:allow(L002) keyed lookup */ use std::x;\n");
        assert_eq!(f.waivers[0].reason, "keyed lookup");
        assert_eq!(f.waivers[0].target_line, 1);
    }

    #[test]
    fn cfg_test_module_ranges_cover_their_tokens() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let x = 1.0; }\n}\nfn live2() {}\n";
        let f = SourceFile::new("x.rs", src);
        let float_idx = f
            .tokens
            .iter()
            .position(|t| t.kind == TokenKind::Float)
            .unwrap();
        assert!(f.in_test_code(float_idx));
        let live2 = f
            .tokens
            .iter()
            .position(|t| t.text(&f.text) == "live2")
            .unwrap();
        assert!(!f.in_test_code(live2));
    }

    #[test]
    fn cfg_test_with_extra_attribute_and_visibility() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\npub(crate) mod tests { fn t() {} }\nfn after() {}\n";
        let f = SourceFile::new("x.rs", src);
        let t = f
            .tokens
            .iter()
            .position(|tok| tok.text(&f.text) == "t")
            .unwrap();
        assert!(f.in_test_code(t));
        let after = f
            .tokens
            .iter()
            .position(|tok| tok.text(&f.text) == "after")
            .unwrap();
        assert!(!f.in_test_code(after));
    }
}
