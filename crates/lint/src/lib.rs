//! # parsched-lint — domain-specific static analysis for this workspace
//!
//! The repo's correctness rests on contracts the compiler cannot see:
//! trace replay and the four-way differential oracle assume the
//! simulation crates are **deterministic**; the flow-identity audit
//! assumes every metric accumulation is **Neumaier-compensated**
//! (`kahan::NeumaierSum`); the SRPT-order invariants are only audited for
//! policies that **declare their metadata in the registry**. A single raw
//! `a += b` fold or default-hasher iteration compiles clean and corrupts
//! results at n = 10⁷, where no reviewer will spot it.
//!
//! This crate machine-enforces those contracts offline, with no external
//! dependencies: a span-tracking Rust lexer ([`lex`]), a lightweight item
//! parser ([`parse`]) feeding a workspace symbol index and conservative
//! call graph ([`callgraph`]) with reachability queries ([`reach`]), a
//! rule framework ([`rules`]) with deny-by-default diagnostics, inline
//! waivers (`// lint:allow(L001) reason` — reasons are mandatory, stale
//! waivers are themselves errors), and human/JSON/SARIF reporting
//! ([`report`]). The CLI front-end is `parsched lint`; the full catalog
//! is documented in `docs/LINTS.md`.
//!
//! | rule | contract |
//! |------|----------|
//! | L001 | flow/metric accumulation goes through `kahan::NeumaierSum` |
//! | L002 | no wall clocks, entropy RNGs, or hash-order iteration in sim paths |
//! | L003 | no `==`/`!=` against float values outside the tolerance helpers |
//! | L004 | every `Policy` impl is registry-buildable and declares its metadata |
//! | L005 | crate roots forbid unsafe; the event loop never `unwrap()`s |
//! | L006 | hot-path powers route through the `PowKernel` dispatch |
//! | L007 | no panic or allocation reachable from the event-loop roots |
//! | L008 | the L002 forbidden set is unreachable from any sim path |
//! | L009 | every snapshot-participant field round-trips through `parsched-snap/v1` |
//!
//! L001–L006 are *token-local*: they see shapes in one file. L007–L009
//! are *reachability* rules over the whole-workspace call graph. The
//! graph is conservative in the safe direction — method calls link every
//! same-named workspace function, and calls that resolve to nothing
//! become named **open edges** that rules still match sinks against, so
//! leaving the workspace never hides a forbidden call. Both layers are
//! still *lexical* by design (the same offline discipline as
//! `simcore::jsonlite`): no types, no inference; anything the
//! over-approximation flags intentionally is waived inline where a
//! reviewer will see the reason.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod callgraph;
pub mod engine;
pub mod lex;
pub mod parse;
pub mod reach;
pub mod report;
pub mod rules;
pub mod source;

pub use engine::{explain, lint_root, run, LintOutcome, Workspace};
pub use source::SourceFile;

/// One finding: a rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule id (`L001` …).
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}
