//! # parsched-lint — domain-specific static analysis for this workspace
//!
//! The repo's correctness rests on contracts the compiler cannot see:
//! trace replay and the four-way differential oracle assume the
//! simulation crates are **deterministic**; the flow-identity audit
//! assumes every metric accumulation is **Neumaier-compensated**
//! (`kahan::NeumaierSum`); the SRPT-order invariants are only audited for
//! policies that **declare their metadata in the registry**. A single raw
//! `a += b` fold or default-hasher iteration compiles clean and corrupts
//! results at n = 10⁷, where no reviewer will spot it.
//!
//! This crate machine-enforces those contracts offline, with no external
//! dependencies: a span-tracking Rust lexer ([`lex`]), a token-pattern
//! rule framework ([`rules`]) with deny-by-default diagnostics, inline
//! waivers (`// lint:allow(L001) reason` — reasons are mandatory, stale
//! waivers are themselves errors), and human/JSON reporting ([`report`]).
//! The CLI front-end is `parsched lint`; the full catalog is documented
//! in `docs/LINTS.md`.
//!
//! | rule | contract |
//! |------|----------|
//! | L001 | flow/metric accumulation goes through `kahan::NeumaierSum` |
//! | L002 | no wall clocks, entropy RNGs, or hash-order iteration in sim paths |
//! | L003 | no `==`/`!=` against float values outside the tolerance helpers |
//! | L004 | every `Policy` impl is registry-buildable and declares its metadata |
//! | L005 | crate roots forbid unsafe; the event loop never `unwrap()`s |
//!
//! This is a *lexical* analyzer by design (the same offline discipline as
//! `simcore::jsonlite`): it sees token shapes, not types. The rules are
//! therefore scoped to the paths where the shape *is* the contract, and
//! anything intentional is waived inline where a reviewer will see the
//! reason.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod lex;
pub mod report;
pub mod rules;
pub mod source;

pub use engine::{lint_root, run, LintOutcome, Workspace};
pub use source::SourceFile;

/// One finding: a rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule id (`L001` …).
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}
