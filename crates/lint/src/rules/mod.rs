//! The rule catalog.
//!
//! Each rule is a token-pattern check over a [`Workspace`], scoped to the
//! paths where its contract applies. Rules are **deny by default**: every
//! hit is a violation unless an inline waiver with a reason covers it
//! (see [`crate::source::Waiver`]).

use crate::engine::Workspace;
use crate::source::SourceFile;
use crate::Diagnostic;

pub(crate) mod event_loop;
mod float_eq;
mod float_sum;
mod hygiene;
mod nondeterminism;
mod pow_kernel;
mod registry;
pub(crate) mod snapshot_complete;
pub(crate) mod taint;

pub use event_loop::{event_loop_roots, EventLoopReachability};
pub use float_eq::FloatEq;
pub use float_sum::FloatSum;
pub use hygiene::CrateHygiene;
pub use nondeterminism::Nondeterminism;
pub use pow_kernel::PowKernelRouting;
pub use registry::RegistryComplete;
pub use snapshot_complete::SnapshotComplete;
pub use taint::DeterminismTaint;

/// One static-analysis rule.
pub trait Rule {
    /// Stable id (`L001` … `L009`), the name waivers use.
    fn id(&self) -> &'static str;
    /// One-line description for `--format json` and docs.
    fn summary(&self) -> &'static str;
    /// Runs the rule over the workspace.
    fn check(&self, ws: &Workspace) -> Vec<Diagnostic>;
}

/// Every shipped rule, in id order.
pub fn catalog() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(FloatSum),
        Box::new(Nondeterminism),
        Box::new(FloatEq),
        Box::new(RegistryComplete),
        Box::new(CrateHygiene),
        Box::new(PowKernelRouting),
        Box::new(EventLoopReachability),
        Box::new(DeterminismTaint),
        Box::new(SnapshotComplete),
    ]
}

/// Whether `rel` lives under any of the given path prefixes.
pub(crate) fn in_scope(rel: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p))
}

/// Builds a diagnostic anchored at token `i` of `file`.
pub(crate) fn diag_at(
    file: &SourceFile,
    i: usize,
    rule: &'static str,
    message: String,
) -> Diagnostic {
    let t = &file.tokens[i];
    Diagnostic {
        rule,
        path: file.rel.clone(),
        line: t.line,
        col: t.col,
        message,
    }
}
