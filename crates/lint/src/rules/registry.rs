//! L004 — policy-registry completeness.
//!
//! The differential oracles, the invariant audits, and the CLI all reach
//! policies through `crates/core/src/registry.rs` (`PolicyKind`). A
//! `Policy` impl that never lands in the registry is invisible to every
//! one of those safety nets — its SRPT-order metadata is never audited and
//! the four-way differential suite never exercises it. Likewise, an impl
//! that *inherits* the default `stability()`/`srpt_ordered()` instead of
//! declaring them leaves the execution-path contract implicit; a later
//! heSRPT-style variant could silently run un-audited.

use crate::engine::Workspace;
use crate::lex::TokenKind;
use crate::rules::{diag_at, Rule};
use crate::source::SourceFile;
use crate::Diagnostic;

/// Where the policy implementations live.
const SCOPE: &str = "crates/core/src/";
/// The registry every impl must appear in.
const REGISTRY: &str = "crates/core/src/registry.rs";

/// The L004 rule value.
pub struct RegistryComplete;

impl Rule for RegistryComplete {
    fn id(&self) -> &'static str {
        "L004"
    }

    fn summary(&self) -> &'static str {
        "every `impl Policy for` in crates/core must be buildable from the PolicyKind \
         registry and must declare stability() and srpt_ordered() explicitly"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let registry_idents: Option<Vec<String>> =
            ws.files.iter().find(|f| f.rel == REGISTRY).map(|reg| {
                (0..reg.tokens.len())
                    .filter(|&i| reg.tokens[i].kind == TokenKind::Ident)
                    .map(|i| reg.tok(i).to_string())
                    .collect()
            });
        let mut out = Vec::new();
        for file in &ws.files {
            if !file.rel.starts_with(SCOPE) {
                continue;
            }
            for (name, at, block) in policy_impls(file) {
                if let Some(reg) = &registry_idents {
                    if !reg.iter().any(|r| r == &name) {
                        out.push(diag_at(
                            file,
                            at,
                            self.id(),
                            format!(
                                "`impl Policy for {name}` is not registered in {REGISTRY}: \
                                 add a PolicyKind variant that builds it so the differential \
                                 and audit suites cover it"
                            ),
                        ));
                    }
                }
                for method in ["stability", "srpt_ordered"] {
                    if !block_declares(file, block, method) {
                        out.push(diag_at(
                            file,
                            at,
                            self.id(),
                            format!(
                                "`impl Policy for {name}` inherits the default `{method}()`; \
                                 declare it explicitly — the engine path and the invariant \
                                 audit both key on this metadata"
                            ),
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Finds `impl Policy for <Name>` outside test code, returning the name,
/// the anchoring token index, and the impl block's token range.
fn policy_impls(file: &SourceFile) -> Vec<(String, usize, (usize, usize))> {
    let mut out = Vec::new();
    for i in 0..file.tokens.len() {
        if file.tokens[i].kind != TokenKind::Ident || file.tok(i) != "impl" || file.in_test_code(i)
        {
            continue;
        }
        let Some(a) = file.next_code(i) else { continue };
        if file.tok(a) != "Policy" {
            continue;
        }
        let Some(b) = file.next_code(a) else { continue };
        if file.tok(b) != "for" {
            continue;
        }
        let Some(c) = file.next_code(b) else { continue };
        if file.tokens[c].kind != TokenKind::Ident {
            continue;
        }
        let name = file.tok(c).to_string();
        // Find the `{ … }` block (skipping any generics/where clause).
        let mut k = c;
        while k < file.tokens.len() && file.tok(k) != "{" {
            k += 1;
        }
        let open = k;
        let mut depth = 0usize;
        while k < file.tokens.len() {
            match file.tok(k) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        out.push((name, i, (open, k)));
    }
    out
}

/// Whether the impl block declares `fn <method>` at its top level.
fn block_declares(file: &SourceFile, (open, close): (usize, usize), method: &str) -> bool {
    (open..close.min(file.tokens.len()))
        .any(|i| file.tok(i) == "fn" && file.next_code(i).is_some_and(|n| file.tok(n) == method))
}
