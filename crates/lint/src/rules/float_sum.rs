//! L001 — raw f64 accumulation in metrics/flow paths.
//!
//! Flow-time metrics add up millions of small terms; naive left-to-right
//! `f64` summation silently drops terms once the running sum dwarfs them
//! (see `crates/simcore/src/kahan.rs` for the worked failure at n = 10⁶).
//! Every named metric accumulator and every iterator fold to `f64` in the
//! simulation/analysis crates must therefore go through
//! `kahan::NeumaierSum`; integer folds must say so with a turbofish.

use crate::engine::Workspace;
use crate::lex::TokenKind;
use crate::rules::{diag_at, in_scope, Rule};
use crate::source::SourceFile;
use crate::Diagnostic;

/// Paths whose accumulations are flow/metric arithmetic.
const SCOPE: &[&str] = &[
    "crates/simcore/src/",
    "crates/analysis/src/",
    "crates/fleet/src/",
];

/// The compensated-summation helpers themselves (and their tests) are the
/// one place raw accumulation is the point.
const EXEMPT: &[&str] = &["crates/simcore/src/kahan.rs"];

/// `+=` targets whose names mark them as flow/metric accumulators.
const ACCUMULATOR_NAMES: &[&str] = &["flow", "stretch", "integral", "weighted", "volume", "area"];

/// Turbofish element types for which `.sum::<T>()` is exact.
const EXACT_SUM_TYPES: &[&str] = &[
    "usize",
    "u8",
    "u16",
    "u32",
    "u64",
    "u128",
    "isize",
    "i8",
    "i16",
    "i32",
    "i64",
    "i128",
    "NeumaierSum",
    "Duration",
];

/// The L001 rule value.
pub struct FloatSum;

impl Rule for FloatSum {
    fn id(&self) -> &'static str {
        "L001"
    }

    fn summary(&self) -> &'static str {
        "raw f64 accumulation (`+=` on a metric accumulator, un-annotated `.sum()`) in a \
         flow/metric path; use kahan::NeumaierSum, or `.sum::<usize>()` for integer folds"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &ws.files {
            if !in_scope(&file.rel, SCOPE) || EXEMPT.contains(&file.rel.as_str()) {
                continue;
            }
            for i in 0..file.tokens.len() {
                if file.tokens[i].is_comment() || file.in_test_code(i) {
                    continue;
                }
                if file.tokens[i].kind == TokenKind::Op && file.tok(i) == "+=" {
                    if let Some(name) = accumulator_target(file, i) {
                        out.push(diag_at(
                            file,
                            i,
                            self.id(),
                            format!(
                                "raw f64 accumulation `{name} += …` in a flow/metric path; \
                                 make `{name}` a kahan::NeumaierSum and call `.add(…)`"
                            ),
                        ));
                    }
                }
                if file.tokens[i].kind == TokenKind::Ident
                    && file.tok(i) == "sum"
                    && file.prev_code(i).is_some_and(|p| file.tok(p) == ".")
                {
                    if let Some(msg) = check_sum_call(file, i) {
                        out.push(diag_at(file, i, self.id(), msg));
                    }
                }
            }
        }
        out
    }
}

/// Walks back over the assignment target of a `+=` at token `i` and
/// returns its dotted name if any component is a known accumulator.
fn accumulator_target(file: &SourceFile, i: usize) -> Option<String> {
    let mut names: Vec<&str> = Vec::new();
    let mut j = i;
    while let Some(p) = file.prev_code(j) {
        let t = &file.tokens[p];
        let text = file.tok(p);
        let part_of_target = matches!(t.kind, TokenKind::Ident | TokenKind::Int)
            || text == "."
            || text == "["
            || text == "]";
        if !part_of_target {
            break;
        }
        if t.kind == TokenKind::Ident {
            names.push(text);
        }
        j = p;
    }
    let hit = names.iter().any(|n| {
        let lower = n.to_ascii_lowercase();
        ACCUMULATOR_NAMES.iter().any(|a| lower.contains(a))
    });
    if hit {
        names.reverse();
        Some(names.join("."))
    } else {
        None
    }
}

/// Inspects a `.sum` call at token `i` (`sum` ident). Returns a message if
/// it is an un-annotated or floating-point fold.
fn check_sum_call(file: &SourceFile, i: usize) -> Option<String> {
    let j = file.next_code(i)?;
    match file.tok(j) {
        "(" => Some(
            "un-annotated iterator `.sum()` in a flow/metric path; use \
             kahan::NeumaierSum::total(…) for f64 terms or annotate an exact fold \
             (e.g. `.sum::<usize>()`)"
                .to_string(),
        ),
        "::" => {
            // `.sum::<T>()` — extract the idents of T.
            let mut k = file.next_code(j)?;
            if file.tok(k) != "<" {
                return None;
            }
            let mut ty: Vec<String> = Vec::new();
            loop {
                k = file.next_code(k)?;
                let text = file.tok(k);
                if text == ">" || text == ">>" {
                    break;
                }
                if file.tokens[k].kind == TokenKind::Ident {
                    ty.push(text.to_string());
                }
            }
            let exact = ty.iter().any(|t| EXACT_SUM_TYPES.contains(&t.as_str()));
            if exact {
                None
            } else {
                Some(format!(
                    "iterator `.sum::<{}>()` folds floats naively in a flow/metric path; \
                     use kahan::NeumaierSum::total(…)",
                    ty.join("::")
                ))
            }
        }
        _ => None,
    }
}
