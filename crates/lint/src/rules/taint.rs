//! L008 — transitive determinism taint.
//!
//! L002 forbids wall clocks, entropy RNGs, and default-hasher collections
//! *inside* the simulation crates, token-locally. That scan cannot see a
//! helper in another crate that a sim path calls into: `simcore → analysis
//! helper → Instant::now()` compiles clean, passes L002, and breaks trace
//! replay. This rule closes the gap over the call graph: every function in
//! an L002-scoped file is a root; every function reachable from those
//! roots — wherever it lives — is scanned for the same forbidden set.
//!
//! Inside L002 scope the sink scan is skipped (L002 already reports there;
//! one diagnostic per site, not two). The graph is conservative: method
//! calls link every same-named workspace function, so a name collision can
//! pull an unrelated function into the reachable set — such
//! over-approximations carry inline waivers with the reason.

use crate::engine::Workspace;
use crate::lex::TokenKind;
use crate::reach::Reach;
use crate::rules::nondeterminism::{BANNED, SCOPE};
use crate::rules::{diag_at, in_scope, Rule};
use crate::Diagnostic;

/// The L008 root set: every non-test function defined in an L002-scoped
/// file (shared with `--explain`).
pub(crate) fn sim_roots(ws: &Workspace) -> Vec<usize> {
    let graph = ws.graph();
    graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.def.is_test && in_scope(&ws.files[f.file].rel, SCOPE))
        .map(|(id, _)| id)
        .collect()
}

/// The L008 rule value.
pub struct DeterminismTaint;

impl Rule for DeterminismTaint {
    fn id(&self) -> &'static str {
        "L008"
    }

    fn summary(&self) -> &'static str {
        "nondeterminism (wall clock, entropy RNG, default-hasher map/set) reachable from a \
         simulation path through calls that leave the L002-scoped crates"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let graph = ws.graph();
        let roots = sim_roots(ws);
        if roots.is_empty() {
            return Vec::new();
        }
        let reach = Reach::compute(graph, &roots, |_| false);
        let mut out = Vec::new();
        for (id, f) in graph.fns.iter().enumerate() {
            if !reach.contains(id) || f.def.is_test {
                continue;
            }
            let file = &ws.files[f.file];
            if in_scope(&file.rel, SCOPE) {
                continue; // L002's territory — don't double-report.
            }
            let Some((start, end)) = f.def.body else {
                continue;
            };
            let root = reach
                .path_to(id)
                .and_then(|p| p.first().map(|&r| graph.fns[r].qual_name()))
                .unwrap_or_default();
            for i in start..end.min(file.tokens.len()) {
                if file.tokens[i].kind != TokenKind::Ident {
                    continue;
                }
                let text = file.tok(i);
                if let Some((_, why)) = BANNED.iter().find(|(name, _)| *name == text) {
                    out.push(diag_at(
                        file,
                        i,
                        self.id(),
                        format!(
                            "`{text}` in `{}` is reachable from simulation path `{root}` \
                             (path: `parsched lint --explain L008 {}`): {why}",
                            f.def.name, f.def.name
                        ),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{run, Workspace};
    use crate::Diagnostic;

    fn l008(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace::from_memory(files.iter().map(|(a, b)| (*a, *b)));
        run(&ws)
            .violations
            .into_iter()
            .filter(|d| d.rule == "L008")
            .collect()
    }

    #[test]
    fn taint_crosses_crate_boundaries() {
        let v = l008(&[
            (
                "crates/simcore/src/lib.rs",
                "pub fn simulate(seed: u64) -> u64 { jitter(seed) }\n",
            ),
            (
                "crates/analysis/src/util.rs",
                "pub fn jitter(seed: u64) -> u64 { let _t = Instant::now(); seed }\n\
                 pub fn unreached() { let _t = SystemTime::now(); }\n",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert!(v[0].message.contains("Instant"), "{}", v[0].message);
        assert!(v[0].message.contains("simulate"), "{}", v[0].message);
        assert_eq!(v[0].path, "crates/analysis/src/util.rs");
    }

    #[test]
    fn sinks_inside_l002_scope_are_not_double_reported() {
        // One `Instant` in a sim crate: exactly one L002 diagnostic and
        // zero L008 diagnostics.
        let ws = Workspace::from_memory([(
            "crates/simcore/src/lib.rs",
            "pub fn bad() { let _t = Instant::now(); }\n",
        )]);
        let out = run(&ws);
        let l2 = out.violations.iter().filter(|d| d.rule == "L002").count();
        let l8 = out.violations.iter().filter(|d| d.rule == "L008").count();
        assert_eq!((l2, l8), (1, 0), "{:#?}", out.violations);
    }

    #[test]
    fn use_statements_outside_bodies_do_not_fire() {
        let v = l008(&[
            (
                "crates/simcore/src/lib.rs",
                "pub fn simulate() -> u64 { clean_helper() }\n",
            ),
            (
                "crates/analysis/src/util.rs",
                "use std::time::Instant;\npub fn clean_helper() -> u64 { 7 }\n\
                 pub fn timed_elsewhere() -> Instant { Instant::now() }\n",
            ),
        ]);
        assert!(v.is_empty(), "{v:#?}");
    }
}
