//! L005 — crate hygiene.
//!
//! Two checks:
//!
//! 1. Every crate root carries `#![forbid(unsafe_code)]`. The workspace's
//!    correctness story (replayable traces, differential oracles) assumes
//!    no aliasing or uninitialized-memory surprises anywhere.
//! 2. No `unwrap()`/`expect()` in the engine event-loop sources. The
//!    engine returns structured `SimError`s; a panic mid-run loses the
//!    audit context that makes failures diagnosable at n = 10⁷.

use crate::engine::Workspace;
use crate::rules::{diag_at, Rule};
use crate::Diagnostic;

/// Files forming the engine event loop, where panicking shortcuts are
/// banned.
const EVENT_LOOP: &[&str] = &[
    "crates/simcore/src/engine.rs",
    "crates/simcore/src/streaming.rs",
    // The snapshot codec and the fleet's serving loop sit on the same
    // hot path: a corrupt migration document must surface as a
    // `SimError` / failed tenant, never a panic that takes down every
    // co-scheduled tenant on the shard.
    "crates/simcore/src/snapshot.rs",
    "crates/fleet/src/lib.rs",
];

/// The L005 rule value.
pub struct CrateHygiene;

/// Whether `rel` is a crate root the forbid-attr check applies to.
fn is_crate_root(rel: &str) -> bool {
    if rel == "src/lib.rs" || rel == "src/main.rs" {
        return true;
    }
    let Some(rest) = rel.strip_prefix("crates/") else {
        return false;
    };
    let mut parts = rest.split('/');
    let (_crate_name, src, file) = (parts.next(), parts.next(), parts.next());
    src == Some("src")
        && (file == Some("lib.rs") || file == Some("main.rs"))
        && parts.next().is_none()
}

impl Rule for CrateHygiene {
    fn id(&self) -> &'static str {
        "L005"
    }

    fn summary(&self) -> &'static str {
        "crate roots must `#![forbid(unsafe_code)]`; the engine event loop must not \
         `unwrap()`/`expect()` (errors carry audit context)"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &ws.files {
            if is_crate_root(&file.rel) {
                let has_forbid = (0..file.tokens.len()).any(|i| {
                    file.tok(i) == "forbid"
                        && file.next_code(i).is_some_and(|p| file.tok(p) == "(")
                        && file
                            .next_code(i)
                            .and_then(|p| file.next_code(p))
                            .is_some_and(|a| file.tok(a) == "unsafe_code")
                });
                if !has_forbid {
                    out.push(Diagnostic {
                        rule: self.id(),
                        path: file.rel.clone(),
                        line: 1,
                        col: 1,
                        message: "crate root missing `#![forbid(unsafe_code)]`".to_string(),
                    });
                }
            }
            if EVENT_LOOP.contains(&file.rel.as_str()) {
                for i in 0..file.tokens.len() {
                    if file.in_test_code(i) {
                        continue;
                    }
                    let text = file.tok(i);
                    if (text == "unwrap" || text == "expect")
                        && file.prev_code(i).is_some_and(|p| file.tok(p) == ".")
                        && file.next_code(i).is_some_and(|n| file.tok(n) == "(")
                    {
                        out.push(diag_at(
                            file,
                            i,
                            self.id(),
                            format!(
                                "`.{text}()` in the engine event loop; return a SimError \
                                 (panics lose the audit context that diagnoses large-n runs)"
                            ),
                        ));
                    }
                }
            }
        }
        out
    }
}
