//! L009 — `parsched-snap/v1` completeness.
//!
//! The snapshot codec round-trips the engine mid-run (suspend/resume,
//! fleet migration). Its failure mode is silent: add a field to `Engine`,
//! `JobArena`, or `SrptSet`, forget the codec, and every test that doesn't
//! cross a suspend point still passes — restore just resurrects a subtly
//! different engine. This rule makes the omission a lint error: every
//! field of the participating structs must be *referenced* both somewhere
//! on the render path (reachable from `Engine::snapshot` /
//! `Snapshot::to_value`) and somewhere on the parse path (reachable from
//! `Engine::restore` / `Snapshot::from_value`).
//!
//! The check is name-based (an identifier token equal to the field name
//! inside a reachable function body counts), so a field whose name is
//! ubiquitous (`m`) is vacuously covered — the rule under-approximates
//! there, which is documented in docs/LINTS.md. Fields that are
//! *deliberately* not snapshotted (borrowed collaborators, scratch
//! buffers rebuilt on restore) carry inline waivers at their definition
//! line stating why restore fidelity does not need them.
//!
//! A paired check covers policy state: a `Policy` impl that overrides
//! `snapshot_state` without `restore_state` (or vice versa) round-trips
//! to a policy that silently dropped its state.

use std::collections::BTreeSet;

use crate::engine::Workspace;
use crate::lex::TokenKind;
use crate::reach::Reach;
use crate::rules::{diag_at, Rule};
use crate::Diagnostic;

/// Structs participating in `parsched-snap/v1`.
const CHECKED: &[&str] = &[
    "Engine",
    "JobArena",
    "SrptSet",
    "Snapshot",
    "SnapCfg",
    "SnapJob",
    "SetSnap",
    "SinkState",
];

/// Entry points of the render (suspend) path.
const RENDER_ROOTS: &[&str] = &["Engine::snapshot", "Snapshot::to_value"];

/// Entry points of the parse (resume) path.
const PARSE_ROOTS: &[&str] = &["Engine::restore", "Snapshot::from_value"];

/// The L009 rule value.
pub struct SnapshotComplete;

/// The render-path and parse-path identifier sets, or `None` when the
/// workspace has no codec (shared with `--explain`).
pub(crate) fn coverage(ws: &Workspace) -> Option<(BTreeSet<String>, BTreeSet<String>)> {
    let graph = ws.graph();
    let lookup_all =
        |names: &[&str]| -> Vec<usize> { names.iter().flat_map(|n| graph.lookup(n)).collect() };
    let render_roots = lookup_all(RENDER_ROOTS);
    let parse_roots = lookup_all(PARSE_ROOTS);
    if render_roots.is_empty() && parse_roots.is_empty() {
        return None;
    }
    Some((
        reachable_idents(ws, &render_roots),
        reachable_idents(ws, &parse_roots),
    ))
}

/// All identifier tokens inside bodies of functions reachable from
/// `roots`.
fn reachable_idents(ws: &Workspace, roots: &[usize]) -> BTreeSet<String> {
    let graph = ws.graph();
    let reach = Reach::compute(graph, roots, |_| false);
    let mut idents = BTreeSet::new();
    for (id, f) in graph.fns.iter().enumerate() {
        if !reach.contains(id) || f.def.is_test {
            continue;
        }
        let Some((start, end)) = f.def.body else {
            continue;
        };
        let file = &ws.files[f.file];
        for i in start..end.min(file.tokens.len()) {
            if file.tokens[i].kind == TokenKind::Ident {
                idents.insert(file.tok(i).to_string());
            }
        }
    }
    idents
}

impl Rule for SnapshotComplete {
    fn id(&self) -> &'static str {
        "L009"
    }

    fn summary(&self) -> &'static str {
        "parsched-snap/v1 completeness: every field of the snapshot-participating structs is \
         referenced on both the render and parse paths, and Policy snapshot_state/restore_state \
         come in pairs"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let graph = ws.graph();
        let Some((render, parse)) = coverage(ws) else {
            return Vec::new(); // No codec in this workspace — rule is inert.
        };
        let mut out = Vec::new();
        for name in CHECKED {
            for s in graph.structs_named(name) {
                if s.def.is_enum {
                    continue;
                }
                let file = &ws.files[s.file];
                for field in &s.def.fields {
                    let in_render = render.contains(&field.name);
                    let in_parse = parse.contains(&field.name);
                    if in_render && in_parse {
                        continue;
                    }
                    let missing = match (in_render, in_parse) {
                        (false, false) => "render or parse path",
                        (false, true) => "render path (Engine::snapshot / Snapshot::to_value)",
                        (true, false) => "parse path (Engine::restore / Snapshot::from_value)",
                        _ => unreachable!(),
                    };
                    out.push(diag_at(
                        file,
                        field.name_tok,
                        self.id(),
                        format!(
                            "field `{}.{}` is not referenced on the parsched-snap/v1 {missing}; \
                             extend the codec or waive here stating why restore fidelity does \
                             not need it",
                            name, field.name
                        ),
                    ));
                }
            }
        }
        // Policy state must round-trip in pairs.
        if let Some(impls) = graph.trait_impls.get("Policy") {
            for ty in impls {
                let snap = graph.lookup(&format!("{ty}::snapshot_state"));
                let rest = graph.lookup(&format!("{ty}::restore_state"));
                let (present, missing) = match (snap.is_empty(), rest.is_empty()) {
                    (false, true) => (snap[0], "restore_state"),
                    (true, false) => (rest[0], "snapshot_state"),
                    _ => continue,
                };
                let f = &graph.fns[present];
                out.push(diag_at(
                    &ws.files[f.file],
                    f.def.name_tok,
                    self.id(),
                    format!(
                        "`{ty}` overrides `{}` without `{missing}`: snapshot round-trip would \
                         silently drop this policy's state",
                        f.def.name
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{run, Workspace};
    use crate::Diagnostic;

    fn l009(src: &str) -> Vec<Diagnostic> {
        let ws = Workspace::from_memory([("crates/simcore/src/engine.rs", src)]);
        run(&ws)
            .violations
            .into_iter()
            .filter(|d| d.rule == "L009")
            .collect()
    }

    const COMPLETE: &str = "\
pub struct Engine { now: f64, events: u64 }
pub struct Snapshot { now: f64, events: u64 }
impl Engine {
    pub fn snapshot(&self) -> Snapshot { Snapshot { now: self.now, events: self.events } }
    pub fn restore(&mut self, s: &Snapshot) { self.now = s.now; self.events = s.events; }
}
";

    #[test]
    fn complete_codec_is_clean() {
        assert!(l009(COMPLETE).is_empty(), "{:#?}", l009(COMPLETE));
    }

    #[test]
    fn missing_field_flags_at_its_definition() {
        let v = l009(
            "pub struct Engine { now: f64, peak: u64 }\n\
             pub struct Snapshot { now: f64 }\n\
             impl Engine {\n\
                 pub fn snapshot(&self) -> Snapshot { Snapshot { now: self.now } }\n\
                 pub fn restore(&mut self, s: &Snapshot) { self.now = s.now; }\n\
             }\n",
        );
        assert_eq!(v.len(), 1, "{v:#?}");
        assert!(v[0].message.contains("`Engine.peak`"), "{}", v[0].message);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn one_sided_reference_names_the_missing_side() {
        let v = l009(
            "pub struct Engine { now: f64, peak: u64 }\n\
             pub struct Snapshot { now: f64, peak: u64 }\n\
             impl Engine {\n\
                 pub fn snapshot(&self) -> Snapshot { Snapshot { now: self.now, peak: self.peak } }\n\
                 pub fn restore(&mut self, s: &Snapshot) { self.now = s.now; }\n\
             }\n",
        );
        // `peak` appears on render only — flagged (twice: Engine.peak and
        // Snapshot.peak) as missing from the parse path.
        assert_eq!(v.len(), 2, "{v:#?}");
        assert!(v.iter().all(|d| d.message.contains("parse path")), "{v:#?}");
    }

    #[test]
    fn unpaired_policy_state_flags() {
        let src = "\
pub struct Engine { now: f64 }
pub struct Snapshot { now: f64 }
impl Engine {
    pub fn snapshot(&self) -> Snapshot { Snapshot { now: self.now } }
    pub fn restore(&mut self, s: &Snapshot) { self.now = s.now; }
}
pub trait Policy { fn go(&self); }
pub struct Srpt;
impl Policy for Srpt {
    fn go(&self) {}
    fn snapshot_state(&self) -> Vec<u8> { Vec::new() }
}
";
        let v = l009(src);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert!(v[0].message.contains("restore_state"), "{}", v[0].message);
        assert!(v[0].message.contains("`Srpt`"), "{}", v[0].message);
    }

    #[test]
    fn inert_without_a_codec() {
        let v =
            l009("pub struct Engine { hidden: u64 }\nimpl Engine { pub fn run(&mut self) {} }\n");
        assert!(v.is_empty(), "{v:#?}");
    }
}
