//! L007 — panic- and allocation-freedom of the event loop, proven over
//! the call graph.
//!
//! The engine's steady-state contract (docs/PERF.md §6, audited
//! dynamically by the `#[global_allocator]` counting test) is that after
//! warm-up, stepping events neither allocates nor panics. The dynamic
//! test only sees the configurations it runs; this rule complements it
//! statically: from the event-loop roots (`Engine::run*`, `Engine::step`,
//! `SrptSet` mutation, `CalendarQueue`/`EventQueue` ops) every reachable
//! function is checked for panic sinks (`unwrap`/`expect`, panic macros,
//! unchecked indexing) and allocation sinks (`Vec::push`, `Box::new`,
//! `format!`, …).
//!
//! Three structural exemptions keep the rule honest rather than noisy:
//!
//! * **Donated state.** Mutating a buffer donated through
//!   [`EngineBuffers`] (`self.completed.push(done)`) is the zero-alloc
//!   mechanism itself — capacity is retained across runs, and the dynamic
//!   audit verifies no realloc occurs at steady state. The exempt
//!   receiver names are *derived* from the `EngineBuffers` field closure
//!   in the symbol index (fields of its field types, transitively), so
//!   the set can never go stale. Indexing into a donated SoA lane
//!   (`self.remaining[idx]`) is exempt on the same basis: lanes are sized
//!   by the arena and indexed by the dense slots it hands out.
//! * **Caller-donated parameters.** An alloc-method receiver that is a
//!   parameter of the containing function (`out.push(job)` inside
//!   `emit_into(&mut self, out: &mut Vec<Job>)`) mutates a buffer the
//!   caller handed in — the buffer-donation idiom the engine uses
//!   everywhere. Allocation responsibility lies with the buffer's owner,
//!   which the traversal reaches separately; flagging both ends would
//!   double-report every donation chain. Indexing a parameter is *not*
//!   exempt: bounds are a panic question, not an ownership one.
//! * **Instrumentation boundary.** `Observer` impls, the `Auditor` /
//!   `Invariant` machinery, and `Engine::build_audit_frame` /
//!   `check_final_audit` run only in observed/audited configurations,
//!   where the steady-state zero-alloc contract explicitly does not
//!   apply. They are reachable but not traversed.
//!
//! Everything else that fires is either a real contract violation or a
//! conservative over-approximation carrying an inline waiver with its
//! reason.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::engine::Workspace;
use crate::parse::CallKind;
use crate::reach::Reach;
use crate::rules::{diag_at, Rule};
use crate::Diagnostic;

/// Event-loop entry points on `Engine`. `run_loop` is the shared driver
/// behind the four `run*` finalizers and `run_fast_loop` the
/// monomorphized incremental loop it dispatches to; both are listed
/// explicitly so the reachability analysis keeps covering them even if
/// a future refactor changes how the finalizers delegate.
const ENGINE_ROOTS: &[&str] = &[
    "run",
    "run_reusing",
    "run_streaming",
    "run_streaming_reusing",
    "run_loop",
    "run_fast_loop",
    "step",
];

/// Queue types whose mutation ops are event-loop roots.
const QUEUE_OWNERS: &[&str] = &["CalendarQueue", "EventQueue"];

/// Methods excluded from the root set even when `&mut self`: they run
/// outside the steady-state loop (suspend/resume is governed by L009,
/// reset between runs is warm-up).
const NON_LOOP_METHODS: &[&str] = &["snapshot_state", "restore_state", "snapshot", "restore"];

/// Methods that panic on `None`/`Err`.
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macros that panic (note: `debug_assert*` compiles out of release
/// builds, which is what the perf contract measures — allowed).
const PANIC_MACROS: &[&str] = &[
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "assert!",
    "assert_eq!",
    "assert_ne!",
];

/// Method names that (re)allocate on std collections/strings.
const ALLOC_METHODS: &[&str] = &[
    "push",
    "push_str",
    "insert",
    "append",
    "extend",
    "extend_from_slice",
    "resize",
    "reserve",
    "reserve_exact",
    "split_off",
    "to_string",
    "to_owned",
    "to_vec",
    "collect",
    "into_boxed_slice",
    "with_capacity",
];

/// Qualified constructors that allocate.
const ALLOC_QUALIFIED: &[&str] = &[
    "Box::new",
    "Rc::new",
    "Arc::new",
    "String::from",
    "Vec::from",
    "String::from_utf8",
    "String::from_utf8_lossy",
];

/// Macros that allocate (or do I/O, which the loop must not).
const ALLOC_MACROS: &[&str] = &[
    "format!",
    "vec!",
    "println!",
    "print!",
    "eprintln!",
    "eprint!",
];

/// The L007 root set: every event-loop entry point the rule proves over.
/// Public so the acceptance test can assert coverage of `Engine::run`,
/// `Engine::run_streaming`, and their `_reusing` variants through the
/// symbol index.
pub fn event_loop_roots(graph: &CallGraph) -> Vec<usize> {
    let mut roots = Vec::new();
    for (id, f) in graph.fns.iter().enumerate() {
        if f.def.is_test {
            continue;
        }
        let Some(owner) = f.def.owner.as_deref() else {
            continue;
        };
        let name = f.def.name.as_str();
        let is_root = (owner == "Engine" && ENGINE_ROOTS.contains(&name))
            || (owner == "SrptSet" && f.def.mut_self && !NON_LOOP_METHODS.contains(&name))
            || (QUEUE_OWNERS.contains(&owner)
                && f.def.mut_self
                && !name.starts_with("snapshot")
                && !name.starts_with("restore"));
        if is_root {
            roots.push(id);
        }
    }
    roots
}

/// The instrumentation boundary: reachable, but calls inside are not
/// followed (see module docs).
pub(crate) fn is_boundary(graph: &CallGraph, id: usize) -> bool {
    let f = &graph.fns[id];
    if let Some(owner) = f.def.owner.as_deref() {
        if owner == "Observer"
            || owner == "Auditor"
            || owner == "Invariant"
            || graph.implements(owner, "Observer")
            || graph.implements(owner, "Invariant")
        {
            return true;
        }
        if owner == "Engine"
            && matches!(
                f.def.name.as_str(),
                "build_audit_frame" | "check_final_audit"
            )
        {
            return true;
        }
    }
    false
}

/// Names of buffers donated through `EngineBuffers`: its fields plus,
/// transitively, the fields of every workspace type appearing in those
/// fields' types.
pub(crate) fn donated_names(graph: &CallGraph) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let mut seen_types: BTreeSet<String> = BTreeSet::new();
    let mut worklist: Vec<String> = vec!["EngineBuffers".to_string()];
    while let Some(ty) = worklist.pop() {
        if !seen_types.insert(ty.clone()) {
            continue;
        }
        for s in graph.structs_named(&ty) {
            for field in &s.def.fields {
                if !s.def.is_enum {
                    names.insert(field.name.clone());
                }
                for t in &field.ty_idents {
                    if !seen_types.contains(t) && !graph.structs_named(t).is_empty() {
                        worklist.push(t.clone());
                    }
                }
            }
        }
    }
    names
}

/// The L007 rule value.
pub struct EventLoopReachability;

impl Rule for EventLoopReachability {
    fn id(&self) -> &'static str {
        "L007"
    }

    fn summary(&self) -> &'static str {
        "panic or allocation reachable from an event-loop root (Engine::run*/step, SrptSet \
         mutation, event-queue ops); the steady-state loop must be panic- and alloc-free"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let graph = ws.graph();
        let roots = event_loop_roots(graph);
        if roots.is_empty() {
            return Vec::new();
        }
        let reach = Reach::compute(graph, &roots, |id| is_boundary(graph, id));
        let donated = donated_names(graph);
        let mut out = Vec::new();
        for (id, f) in graph.fns.iter().enumerate() {
            // Boundary fns are reachable but are instrumentation — their
            // bodies are outside the steady-state contract.
            if !reach.contains(id) || f.def.is_test || is_boundary(graph, id) {
                continue;
            }
            let file = &ws.files[f.file];
            let root = reach
                .path_to(id)
                .and_then(|p| p.first().map(|&r| graph.fns[r].qual_name()))
                .unwrap_or_default();
            let here = f.def.name.clone();
            for call in &graph.resolved[id] {
                let site = &call.site;
                let qual = site.qualified_name();
                let donated_recv = site
                    .receiver
                    .as_deref()
                    .is_some_and(|r| donated.contains(r));
                // Caller-donated buffer (see module docs): exempts alloc
                // methods only, never indexing.
                let param_recv = site
                    .receiver
                    .as_deref()
                    .is_some_and(|r| f.def.params.iter().any(|(p, _)| p == r));
                let hit: Option<String> = match &site.kind {
                    CallKind::Method(n) | CallKind::Plain(n)
                        if PANIC_METHODS.contains(&n.as_str()) =>
                    {
                        Some(format!("`.{n}()` can panic"))
                    }
                    CallKind::Macro(_) if PANIC_MACROS.contains(&qual.as_str()) => {
                        Some(format!("`{qual}` panics"))
                    }
                    CallKind::Macro(_) if ALLOC_MACROS.contains(&qual.as_str()) => {
                        Some(format!("`{qual}` allocates"))
                    }
                    CallKind::Method(n) if ALLOC_METHODS.contains(&n.as_str()) => {
                        if donated_recv || param_recv {
                            None
                        } else {
                            Some(format!(
                                "`.{n}()` may allocate (receiver is not EngineBuffers-donated state)"
                            ))
                        }
                    }
                    CallKind::Qualified { .. }
                        if ALLOC_QUALIFIED.contains(&qual.as_str())
                            || ALLOC_METHODS
                                .iter()
                                .any(|m| qual.ends_with(&format!("::{m}"))) =>
                    {
                        Some(format!("`{qual}` allocates"))
                    }
                    CallKind::Index => {
                        if donated_recv {
                            None
                        } else {
                            Some(
                                "unchecked indexing can panic out-of-bounds (base is not a \
                                 donated SoA lane)"
                                    .to_string(),
                            )
                        }
                    }
                    _ => None,
                };
                if let Some(what) = hit {
                    out.push(diag_at(
                        file,
                        site.tok,
                        self.id(),
                        format!(
                            "{what} in `{here}`, reachable from event-loop root `{root}` \
                             (path: `parsched lint --explain L007 {here}`); the steady-state \
                             loop must be panic- and alloc-free"
                        ),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, Workspace};

    const ENGINE_SRC: &str = "\
pub struct JobArena { remaining: Vec<f64> }
pub struct EngineBuffers { jobs: JobArena, completed: Vec<u64> }
pub struct Engine { jobs: JobArena, completed: Vec<u64>, log: Vec<u64> }
impl Engine {
    pub fn run(&mut self) { self.step(); }
    pub fn step(&mut self) {
        self.completed.push(1);
        self.log.push(2);
        let x = peek_first(&self.jobs.remaining);
        let _ = x;
    }
}
fn peek_first(xs: &[f64]) -> f64 { xs[0] }
";

    fn outcome(src: &str) -> Vec<Diagnostic> {
        let ws = Workspace::from_memory([("crates/simcore/src/engine.rs", src)]);
        run(&ws)
            .violations
            .into_iter()
            .filter(|d| d.rule == "L007")
            .collect()
    }

    #[test]
    fn donated_push_is_exempt_and_others_flag() {
        let v = outcome(ENGINE_SRC);
        // `log` is not an EngineBuffers field; `xs[0]` is not a donated
        // lane. `completed.push` is donated.
        assert_eq!(v.len(), 2, "{v:#?}");
        assert!(v.iter().any(|d| d.message.contains("`.push()`")), "{v:#?}");
        assert!(v.iter().any(|d| d.message.contains("indexing")), "{v:#?}");
    }

    #[test]
    fn unreachable_code_is_ignored() {
        let v = outcome(
            "pub struct Engine;\nimpl Engine { pub fn run(&mut self) {} }\n\
             fn island() { let v: Vec<u32> = vec![]; v.to_vec().reverse(); helper().unwrap(); }\n\
             fn helper() -> Option<u32> { None }\n",
        );
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn observer_impls_are_a_traversal_boundary() {
        let v = outcome(
            "pub trait Observer { fn on_advance(&mut self); }\n\
             pub struct Trace; impl Observer for Trace {\n\
                 fn on_advance(&mut self) { self.samples.push(1); }\n}\n\
             pub struct Engine;\nimpl Engine { pub fn run(&mut self) { self.obs.on_advance(); } }\n",
        );
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn panic_macros_and_unwrap_flag_transitively() {
        let v = outcome(
            "pub struct Engine;\nimpl Engine { pub fn run(&mut self) { helper(); } }\n\
             fn helper() { deep(); }\nfn deep() { panic!(\"boom\"); }\n",
        );
        assert_eq!(v.len(), 1, "{v:#?}");
        assert!(v[0].message.contains("panic!"));
    }
}
