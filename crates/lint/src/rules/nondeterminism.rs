//! L002 — nondeterminism in simulation paths.
//!
//! Trace replay (`parsched audit`) and the four-way differential oracle
//! are only sound if a simulation is a pure function of its inputs and
//! seed. Wall clocks, entropy-seeded RNGs, and default-hasher map/set
//! iteration (whose order varies per process) all break that, usually in
//! ways no test at small `n` will catch.

use crate::engine::Workspace;
use crate::lex::TokenKind;
use crate::rules::{diag_at, in_scope, Rule};
use crate::Diagnostic;

/// The crates whose code paths feed simulations. Shared with L008, which
/// treats the same forbidden set as a *reachability* sink: L002 scans
/// these files token-locally, L008 follows calls that leave them.
pub(crate) const SCOPE: &[&str] = &[
    "crates/simcore/src/",
    "crates/core/src/",
    "crates/workloads/src/",
    // The adversary search promises byte-identical output across
    // `--jobs N`; a wall clock or entropy seed anywhere in it breaks
    // the corpus replay contract the same way it breaks trace replay.
    "crates/adversary/src/",
    // The fleet promises byte-identical per-tenant results across shard
    // counts and migrations; any ambient entropy in the serving layer
    // would break that the same way.
    "crates/fleet/src/",
];

/// (identifier, what is wrong with it). Shared with L008.
pub(crate) const BANNED: &[(&str, &str)] = &[
    (
        "Instant",
        "wall-clock time in a simulation path; simulations are driven by the virtual clock \
         (timing belongs in parsched-bench)",
    ),
    (
        "SystemTime",
        "wall-clock time in a simulation path; simulations are driven by the virtual clock",
    ),
    (
        "thread_rng",
        "entropy-seeded RNG in a simulation path; all randomness must flow from an explicit \
         u64 seed so runs replay bit-identically",
    ),
    (
        "from_entropy",
        "entropy-seeded RNG in a simulation path; all randomness must flow from an explicit \
         u64 seed so runs replay bit-identically",
    ),
    (
        "OsRng",
        "OS entropy in a simulation path; all randomness must flow from an explicit u64 seed",
    ),
    (
        "HashMap",
        "default-hasher HashMap in a simulation path; iteration order varies per process \
         (std's RandomState), so derived output can too — use BTreeMap or a dense \
         JobId-indexed structure",
    ),
    (
        "HashSet",
        "default-hasher HashSet in a simulation path; iteration order varies per process — \
         use BTreeSet or a dense JobId-indexed structure",
    ),
];

/// The L002 rule value.
pub struct Nondeterminism;

impl Rule for Nondeterminism {
    fn id(&self) -> &'static str {
        "L002"
    }

    fn summary(&self) -> &'static str {
        "nondeterminism in a simulation path (wall clocks, entropy-seeded RNGs, \
         default-hasher HashMap/HashSet)"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &ws.files {
            if !in_scope(&file.rel, SCOPE) {
                continue;
            }
            for i in 0..file.tokens.len() {
                if file.tokens[i].kind != TokenKind::Ident
                    || file.in_test_code(i)
                    || file.tokens[i].is_comment()
                {
                    continue;
                }
                let text = file.tok(i);
                if let Some((_, why)) = BANNED.iter().find(|(name, _)| *name == text) {
                    out.push(diag_at(file, i, self.id(), format!("`{text}`: {why}")));
                }
            }
        }
        out
    }
}
