//! L003 — direct `==`/`!=` against floating-point values.
//!
//! Event times and remaining work accumulate rounding error, so a control
//! flow decision made with exact float equality is a latent bug that only
//! fires at scale. Comparisons that tolerate error go through
//! `parsched_speedup::float::{approx_eq, approx_le}`; the rare *intended*
//! exact comparisons (sentinel values that were constructed, never
//! computed) go through `parsched_speedup::float::exact_eq`, which names
//! the intent and carries the justification at the definition site.
//!
//! Lexically the rule flags `==`/`!=` with a float literal (or an
//! `f64::`/`f32::` associated constant) on either side. Identifier-vs-
//! identifier float comparisons are outside a token scanner's reach —
//! those are covered by `clippy::float_cmp` in test code review and by
//! the engine's invariant audits at runtime.

use crate::engine::Workspace;
use crate::lex::TokenKind;
use crate::rules::{diag_at, Rule};
use crate::source::SourceFile;
use crate::Diagnostic;

/// The L003 rule value.
pub struct FloatEq;

impl Rule for FloatEq {
    fn id(&self) -> &'static str {
        "L003"
    }

    fn summary(&self) -> &'static str {
        "direct `==`/`!=` on f64 outside the approved tolerance helpers; use \
         float::approx_eq / approx_le, or float::exact_eq for intended sentinel equality"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &ws.files {
            // All production source is in scope; the helpers themselves
            // compare idents, not literals, so they need no exemption.
            let in_src = file.rel.starts_with("src/")
                || (file.rel.starts_with("crates/") && file.rel.contains("/src/"));
            if !in_src {
                continue;
            }
            for i in 0..file.tokens.len() {
                let t = &file.tokens[i];
                if t.kind != TokenKind::Op
                    || (file.tok(i) != "==" && file.tok(i) != "!=")
                    || file.in_test_code(i)
                {
                    continue;
                }
                if let Some(operand) = float_operand(file, i) {
                    out.push(diag_at(
                        file,
                        i,
                        self.id(),
                        format!(
                            "exact float comparison `{} {operand}`; use float::approx_eq \
                             (tolerant) or float::exact_eq (named intended-exact compare)",
                            file.tok(i),
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// If either side of the comparison at token `i` is a float literal or an
/// `f64::`/`f32::` associated constant, returns its text.
fn float_operand(file: &SourceFile, i: usize) -> Option<String> {
    if let Some(p) = file.prev_code(i) {
        if file.tokens[p].kind == TokenKind::Float {
            return Some(file.tok(p).to_string());
        }
    }
    let j = file.next_code(i)?;
    // `== -1.0`: skip a unary minus.
    let j = if file.tok(j) == "-" {
        file.next_code(j)?
    } else {
        j
    };
    if file.tokens[j].kind == TokenKind::Float {
        return Some(file.tok(j).to_string());
    }
    // `== f64::INFINITY` and friends.
    if matches!(file.tok(j), "f64" | "f32") {
        let c = file.next_code(j)?;
        if file.tok(c) == "::" {
            let k = file.next_code(c)?;
            return Some(format!("{}::{}", file.tok(j), file.tok(k)));
        }
    }
    None
}
