//! L006 — hot-path power evaluations must route through `PowKernel`.
//!
//! The engine evaluates `Γ(x) = x^α` on every event interval. A bare
//! `.powf(` / `.powi(` in the engine or policy layer pays the generic
//! `pow` argument-reduction cost per call *and* bypasses the per-α
//! classification that makes the endpoint and sqrt-chain exponents exact
//! (see `crates/speedup/src/kernel.rs` and docs/PERF.md §6). Power-law
//! evaluation belongs in `parsched_speedup` — hot loops hold a cached
//! [`PowKernel`] and everything else calls `Curve::rate`.
//!
//! Theory-layer constants (closed-form competitive ratios, adversary
//! parameters) legitimately compute one-off powers; waive those with
//! `// lint:allow(L006) <why>`. Test code is exempt, as everywhere.

use crate::engine::Workspace;
use crate::rules::{diag_at, in_scope, Rule};
use crate::Diagnostic;

/// Crates whose non-test code sits on the per-event hot path. The
/// `speedup` crate is deliberately absent: it *implements* the kernel,
/// so raw `powf` is its job.
const SCOPE: &[&str] = &[
    "crates/simcore/src/",
    "crates/core/src/",
    "crates/fleet/src/",
];

/// The L006 rule value.
pub struct PowKernelRouting;

impl Rule for PowKernelRouting {
    fn id(&self) -> &'static str {
        "L006"
    }

    fn summary(&self) -> &'static str {
        "engine/policy hot paths must not call .powf()/.powi() directly; route power-law \
         evaluation through a cached parsched_speedup::PowKernel (waive for theory constants)"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &ws.files {
            if !in_scope(&file.rel, SCOPE) {
                continue;
            }
            for i in 0..file.tokens.len() {
                if file.in_test_code(i) {
                    continue;
                }
                let text = file.tok(i);
                if (text == "powf" || text == "powi")
                    && file.prev_code(i).is_some_and(|p| file.tok(p) == ".")
                    && file.next_code(i).is_some_and(|n| file.tok(n) == "(")
                {
                    out.push(diag_at(
                        file,
                        i,
                        self.id(),
                        format!(
                            "`.{text}()` on the engine/policy hot path; evaluate powers \
                             through a cached `PowKernel` (classified once per α) or waive \
                             with a reason if this is one-off theory math"
                        ),
                    ));
                }
            }
        }
        out
    }
}
