//! Reachability over the workspace call graph.
//!
//! A plain BFS from a root set, with two refinements the rules need:
//! a *boundary* predicate (functions that are reachable but whose own
//! calls are not followed — e.g. `Observer` instrumentation hooks that
//! run outside the zero-alloc steady-state contract), and a parent map so
//! `--explain` can print the shortest root → symbol call path.

use std::collections::VecDeque;

use crate::callgraph::CallGraph;

/// Result of one reachability pass.
#[derive(Debug)]
pub struct Reach {
    /// Whether each function (by id) is reachable from the root set.
    pub reachable: Vec<bool>,
    /// BFS parent of each reachable non-root function.
    parent: Vec<Option<usize>>,
    /// The roots the pass started from.
    pub roots: Vec<usize>,
}

impl Reach {
    /// BFS from `roots`. Functions matched by `boundary` are marked
    /// reachable (a diagnostic can still anchor there) but their outgoing
    /// edges are not followed.
    pub fn compute(graph: &CallGraph, roots: &[usize], boundary: impl Fn(usize) -> bool) -> Self {
        let n = graph.fns.len();
        let mut reachable = vec![false; n];
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut queue = VecDeque::new();
        for &r in roots {
            if r < n && !reachable[r] {
                reachable[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(u) = queue.pop_front() {
            if boundary(u) {
                continue;
            }
            for &v in &graph.edges[u] {
                if !reachable[v] && !graph.fns[v].def.is_test {
                    reachable[v] = true;
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        Self {
            reachable,
            parent,
            roots: roots.to_vec(),
        }
    }

    /// Whether function `id` is reachable.
    pub fn contains(&self, id: usize) -> bool {
        self.reachable.get(id).copied().unwrap_or(false)
    }

    /// The shortest call path root → … → `id` (function ids), or `None`
    /// if `id` is unreachable.
    pub fn path_to(&self, id: usize) -> Option<Vec<usize>> {
        if !self.contains(id) {
            return None;
        }
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
            if path.len() > self.reachable.len() {
                break; // cycle guard; cannot happen with a well-formed parent map
            }
        }
        path.reverse();
        Some(path)
    }

    /// Renders `path_to(id)` as `A::f -> B::g -> h`.
    pub fn render_path(&self, graph: &CallGraph, id: usize) -> Option<String> {
        let path = self.path_to(id)?;
        Some(
            path.iter()
                .map(|&i| graph.fns[i].qual_name())
                .collect::<Vec<_>>()
                .join(" -> "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn graph(src: &str) -> CallGraph {
        CallGraph::build(&[SourceFile::new("crates/x/src/lib.rs", src)])
    }

    #[test]
    fn transitive_reachability_and_paths() {
        let g = graph("fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn island() {}\n");
        let (a, c, island) = (g.lookup("a")[0], g.lookup("c")[0], g.lookup("island")[0]);
        let r = Reach::compute(&g, &[a], |_| false);
        assert!(r.contains(c));
        assert!(!r.contains(island));
        assert_eq!(r.render_path(&g, c).unwrap(), "a -> b -> c");
        assert!(r.path_to(island).is_none());
    }

    #[test]
    fn boundary_is_reachable_but_not_traversed() {
        let g = graph("fn a() { hook(); }\nfn hook() { deep(); }\nfn deep() {}\n");
        let (a, hook, deep) = (g.lookup("a")[0], g.lookup("hook")[0], g.lookup("deep")[0]);
        let r = Reach::compute(&g, &[a], |i| i == hook);
        assert!(r.contains(hook));
        assert!(!r.contains(deep));
    }

    #[test]
    fn cycles_terminate() {
        let g = graph("fn a() { b(); }\nfn b() { a(); }\n");
        let a = g.lookup("a")[0];
        let r = Reach::compute(&g, &[a], |_| false);
        assert!(r.contains(g.lookup("b")[0]));
        assert_eq!(r.render_path(&g, a).unwrap(), "a");
    }

    #[test]
    fn test_functions_are_not_traversed() {
        let g = graph(
            "fn a() { b(); }\nfn b() {}\n#[cfg(test)]\nmod tests { fn t() { super::a(); } }\n",
        );
        let b = g.lookup("b")[0];
        let t = g
            .fns
            .iter()
            .position(|f| f.def.name == "t")
            .expect("test fn indexed");
        let r = Reach::compute(&g, &[g.lookup("a")[0]], |_| false);
        assert!(r.contains(b));
        assert!(!r.contains(t));
    }
}
